/// \file fault_injector.h
/// \brief Parameterized, seeded corruption of synthetic captures with the
/// dominant real-world acquisition failures the paper's pristine lab rig
/// never sees: per-marker occlusion gaps (NaN runs), EMG channel
/// dropouts/flatlines, amplifier saturation clipping, 50/60 Hz mains-hum
/// bursts, and inter-stream trigger jitter / clock drift. The injector is
/// the test bed for the robustness layer (core/stream_health.h and the
/// classifier's graceful-degradation path): every fault it plants is one
/// the health monitor must detect and the pipeline must survive.

#ifndef MOCEMG_SYNTH_FAULT_INJECTOR_H_
#define MOCEMG_SYNTH_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "emg/emg_recording.h"
#include "mocap/motion_sequence.h"
#include "synth/dataset.h"
#include "util/random.h"
#include "util/result.h"

namespace mocemg {

/// \brief The fault taxonomy the injector can plant.
enum class FaultType : int {
  /// A marker's 3D position is NaN over a run of frames (camera loses
  /// line of sight).
  kMarkerOcclusion = 0,
  /// An EMG channel flatlines at a constant level (electrode lift-off or
  /// lead break).
  kChannelDropout = 1,
  /// An EMG channel's samples are clipped at ±level (amplifier
  /// saturation).
  kSaturation = 2,
  /// A 50/60 Hz sinusoid is added over burst spans (power-line
  /// interference through a degraded electrode contact).
  kHumBurst = 3,
  /// The EMG stream starts early/late relative to mocap (trigger jitter).
  kTriggerSkew = 4,
  /// The EMG clock runs fast/slow by a ppm factor while claiming the
  /// nominal rate (unsynchronized sample clocks).
  kClockDrift = 5,
};

/// \brief Stable lower-case name ("marker_occlusion", "hum_burst", …).
const char* FaultTypeName(FaultType type);

/// \brief One planted fault, for test assertions and bench logs.
/// `stream_index` is the marker index (mocap faults) or channel index
/// (EMG faults); `begin`/`end` the affected frame/sample span;
/// `magnitude` the fault-specific scale (occluded frames, clip level,
/// hum amplitude, skew seconds, drift ppm).
struct FaultEvent {
  FaultType type = FaultType::kMarkerOcclusion;
  size_t stream_index = 0;
  size_t begin = 0;
  size_t end = 0;
  double magnitude = 0.0;
};

/// \brief Fault mix and intensities. All probabilities/fractions are in
/// [0, 1]; a fraction of 0 disables that fault. Every realization is
/// deterministic in `seed`.
struct FaultInjectorOptions {
  uint64_t seed = 20260807;

  /// Fraction of (non-pelvis) markers that suffer occlusion gaps.
  double occlusion_marker_fraction = 0.0;
  /// Fraction of an affected marker's frames that end up occluded.
  double occlusion_fraction = 0.25;
  /// Mean gap-run length in frames (runs are uniform in [1, 2·mean−1]).
  size_t occlusion_mean_gap_frames = 6;
  /// Whether the pelvis marker may be occluded; off by default because
  /// the pelvis anchors the local transform and its loss downgrades the
  /// whole mocap stream.
  bool occlude_pelvis = false;

  /// Fraction of EMG channels that drop out (flatline end-to-end).
  double dropout_channel_fraction = 0.0;
  /// Constant level of a dropped channel (volts; 0 = dead-short).
  double dropout_level_v = 0.0;

  /// Fraction of EMG channels clipped by amplifier saturation.
  double saturation_channel_fraction = 0.0;
  /// Clip level (volts). 0 = auto: half the channel's peak |amplitude|,
  /// guaranteeing visible clipping on any non-silent channel.
  double saturation_level_v = 0.0;

  /// Fraction of EMG channels contaminated by mains-hum bursts.
  double hum_channel_fraction = 0.0;
  /// Hum amplitude (volts) and line frequency (50 or 60 Hz).
  double hum_amplitude_v = 1e-4;
  double hum_freq_hz = 50.0;
  /// Fraction of the record covered by hum bursts (one burst ≈
  /// `hum_mean_burst_ms` long).
  double hum_burst_fraction = 0.3;
  size_t hum_mean_burst_ms = 400;

  /// Trigger skew: per-trial start-time offset between the streams drawn
  /// uniformly from ±this bound (ms). Positive realizations delay the
  /// EMG stream, negative the mocap stream.
  double trigger_jitter_ms = 0.0;
  /// EMG clock-rate error in parts-per-million; the corrupted recording
  /// still claims the nominal rate.
  double clock_drift_ppm = 0.0;
};

/// \brief Seeded fault generator. One injector corrupts any number of
/// captures; every planted fault is appended to `events()`.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorOptions& options);

  /// \brief Returns a copy of `clean` with occlusion gaps planted. The
  /// result fails MotionSequence::Validate() by design (NaN runs) until
  /// repaired by StreamHealth.
  Result<MotionSequence> CorruptMocap(const MotionSequence& clean);

  /// \brief Returns a copy of `raw` with dropout/saturation/hum/drift
  /// faults planted. Channel count, length, and claimed rate are
  /// preserved (drift stretches content, not metadata).
  Result<EmgRecording> CorruptEmg(const EmgRecording& raw);

  /// \brief Corrupts both streams of a captured trial and applies the
  /// trigger skew between them.
  Result<CapturedMotion> Corrupt(const CapturedMotion& clean);

  /// \brief Every fault planted so far, in planting order.
  const std::vector<FaultEvent>& events() const { return events_; }
  void ClearEvents() { events_.clear(); }

  const FaultInjectorOptions& options() const { return options_; }

 private:
  FaultInjectorOptions options_;
  Rng rng_;
  std::vector<FaultEvent> events_;
};

/// \brief Preset fault mix for the severity sweep of
/// bench/abl9_fault_tolerance: severity 0 is pristine, 1 is heavily
/// degraded (most markers gapped, half the channels dead or clipped, hum
/// everywhere, multi-frame trigger skew). Clamps severity to [0, 1].
FaultInjectorOptions FaultSeverityPreset(double severity, uint64_t seed);

}  // namespace mocemg

#endif  // MOCEMG_SYNTH_FAULT_INJECTOR_H_
