/// \file muscle_model.h
/// \brief Muscle activation model: turns joint kinematics into per-muscle
/// neural-drive envelopes in [0, 1].
///
/// The drive for each muscle is a torque proxy around its joint —
/// inertial (∝ angular acceleration), viscous (∝ velocity), and
/// gravitational (∝ a posture term) components — half-wave rectified on
/// the muscle's action side (flexor vs extensor), plus a co-contraction
/// floor and a tonic baseline. This captures the physiologically salient
/// facts the paper leans on: EMG reflects internal dynamics that are only
/// loosely coupled to the external trajectory, so two kinematically
/// similar trials can carry visibly different EMG. The per-trial gain
/// jitter below (electrode placement, skin impedance, fatigue) widens
/// that dissociation further.

#ifndef MOCEMG_SYNTH_MUSCLE_MODEL_H_
#define MOCEMG_SYNTH_MUSCLE_MODEL_H_

#include <vector>

#include "emg/muscle.h"
#include "synth/kinematics.h"
#include "util/random.h"
#include "util/result.h"

namespace mocemg {

/// \brief Activation-model coefficients. Defaults produce plausible
/// surface-EMG envelopes for the motion vocabulary in motion_classes.h.
struct MuscleModelOptions {
  /// Inertial drive weight (per rad/s²).
  double inertial_gain = 0.035;
  /// Viscous drive weight (per rad/s).
  double viscous_gain = 0.16;
  /// Gravity/posture drive weight.
  double gravity_gain = 0.30;
  /// Co-contraction: fraction of the antagonist's drive mirrored into
  /// this muscle.
  double co_contraction = 0.15;
  /// Tonic (resting) activation floor.
  double tonic_level = 0.04;
  /// Activation low-pass time constant (s) — muscle excitation dynamics.
  double smoothing_tau_s = 0.06;
  /// Std-dev of the per-trial multiplicative gain jitter (lognormal-ish).
  double trial_gain_sigma = 0.25;
};

/// \brief One muscle's activation envelope, same rate/length as the
/// driving angle series.
struct MuscleActivation {
  Muscle muscle;
  std::vector<double> activation;  ///< in [0, 1]
};

/// \brief Activations of the four right-arm muscles (biceps, triceps,
/// upper forearm, lower forearm — the paper's electrode set) for an arm
/// trial.
Result<std::vector<MuscleActivation>> ComputeArmActivations(
    const ArmAngleSeries& angles, double frame_rate_hz,
    const MuscleModelOptions& options, Rng* rng);

/// \brief Activations of the two right-leg muscles (front shin / tibialis
/// anterior, back shin / gastrocnemius) for a leg trial.
Result<std::vector<MuscleActivation>> ComputeLegActivations(
    const LegAngleSeries& angles, double frame_rate_hz,
    const MuscleModelOptions& options, Rng* rng);

}  // namespace mocemg

#endif  // MOCEMG_SYNTH_MUSCLE_MODEL_H_
