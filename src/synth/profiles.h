/// \file profiles.h
/// \brief Joint-angle trajectory primitives for the motion synthesizer.
///
/// Human point-to-point limb movements are well described by minimum-jerk
/// profiles (smooth position, zero velocity/acceleration at the
/// endpoints); rhythmic movements by windowed oscillations. A motion
/// class in this library is a set of per-joint keyframe profiles plus
/// optional oscillation overlays; trial-to-trial variation perturbs the
/// keyframes, which is exactly the "semantically similar motions with
/// large variations" structure the paper's fuzzy approach targets.

#ifndef MOCEMG_SYNTH_PROFILES_H_
#define MOCEMG_SYNTH_PROFILES_H_

#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief One (time, angle) anchor of a profile.
struct Keyframe {
  double time_s = 0.0;
  double value = 0.0;
};

/// \brief Piecewise minimum-jerk interpolation through keyframes: within
/// each segment the value follows a + (b−a)·(10τ³ − 15τ⁴ + 6τ⁵); before
/// the first/after the last keyframe the value is held.
class KeyframeProfile {
 public:
  KeyframeProfile() = default;
  explicit KeyframeProfile(std::vector<Keyframe> keys);

  /// \brief Value at time t (seconds).
  double Sample(double t) const;

  /// \brief Samples [0, duration) at `rate_hz` into a series.
  std::vector<double> SampleSeries(double duration_s, double rate_hz) const;

  /// \brief Uniformly scales all keyframe times (speed variation).
  void ScaleTime(double factor);

  /// \brief Uniformly scales all keyframe values about `pivot`.
  void ScaleValues(double factor, double pivot = 0.0);

  /// \brief Shifts all keyframe values.
  void OffsetValues(double delta);

  const std::vector<Keyframe>& keyframes() const { return keys_; }
  double end_time() const { return keys_.empty() ? 0.0 : keys_.back().time_s; }

 private:
  std::vector<Keyframe> keys_;
};

/// \brief A windowed sinusoid a·sin(2πf·(t−t_on) + φ) active on
/// [t_on, t_off], with smooth cosine ramps of `ramp_s` at both ends so the
/// overlay never injects jerk discontinuities.
struct Oscillation {
  double amplitude = 0.0;
  double frequency_hz = 1.0;
  double phase_rad = 0.0;
  double t_on_s = 0.0;
  double t_off_s = 1e9;
  double ramp_s = 0.15;

  double Sample(double t) const;
};

/// \brief A complete single-joint trajectory: keyframed base plus
/// oscillation overlays.
class JointProfile {
 public:
  JointProfile() = default;
  explicit JointProfile(KeyframeProfile base) : base_(std::move(base)) {}

  void AddOscillation(const Oscillation& osc) { overlays_.push_back(osc); }

  double Sample(double t) const;
  std::vector<double> SampleSeries(double duration_s, double rate_hz) const;

  KeyframeProfile& base() { return base_; }
  const KeyframeProfile& base() const { return base_; }
  std::vector<Oscillation>& overlays() { return overlays_; }

 private:
  KeyframeProfile base_;
  std::vector<Oscillation> overlays_;
};

/// \brief Central differences (forward/backward at edges) of a uniformly
/// sampled series; used for angular velocity/acceleration in the muscle
/// model. Returns a same-length series.
std::vector<double> Differentiate(const std::vector<double>& series,
                                  double rate_hz);

}  // namespace mocemg

#endif  // MOCEMG_SYNTH_PROFILES_H_
