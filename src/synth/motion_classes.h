/// \file motion_classes.h
/// \brief The motion vocabulary of the synthetic test bed. Mirrors the
/// paper's experimental procedure: participants performing instructed
/// motions ("raise arm", "throw ball", …) with natural trial-to-trial
/// variation, analyzed separately for the right hand and the right leg.
///
/// Every generator returns per-joint angle series at the capture rate,
/// already perturbed by a TrialVariation so that no two trials are
/// identical: amplitudes, speeds, onset phases, and resting postures all
/// vary, and rhythmic classes vary in cycle frequency and phase.

#ifndef MOCEMG_SYNTH_MOTION_CLASSES_H_
#define MOCEMG_SYNTH_MOTION_CLASSES_H_

#include <string>
#include <vector>

#include "synth/kinematics.h"
#include "util/random.h"
#include "util/result.h"

namespace mocemg {

/// \brief Right-hand motion classes (the paper names raise-arm and
/// throw-ball explicitly; the rest round out a realistic instruction set).
enum class HandMotionClass : int {
  kRaiseArm = 0,
  kThrowBall,
  kWave,
  kPunch,
  kDrink,
  kPushDoor,
  kNumClasses,
};

/// \brief Right-leg motion classes.
enum class LegMotionClass : int {
  kWalk = 0,
  kKick,
  kSquat,
  kStepUp,
  kToeTap,
  kNumClasses,
};

const char* HandMotionClassName(HandMotionClass cls);
const char* LegMotionClassName(LegMotionClass cls);
size_t NumHandClasses();
size_t NumLegClasses();

/// \brief Per-trial perturbation sampled once per captured motion.
struct TrialVariation {
  /// Multiplies movement amplitudes about the rest posture.
  double amplitude_scale = 1.0;
  /// Multiplies the duration (slower/faster executions).
  double time_scale = 1.0;
  /// Onset delay before the instructed movement begins (s).
  double onset_delay_s = 0.0;
  /// Resting-posture offset added to every joint (rad).
  double posture_offset_rad = 0.0;
  /// Frequency scale for rhythmic classes.
  double rhythm_scale = 1.0;
};

/// \brief Draws a natural trial variation (moderate, class-independent).
TrialVariation SampleTrialVariation(Rng* rng);

/// \brief A generated hand trial: angle series plus the trial's nominal
/// duration (pelvis stays in place for hand motions).
struct HandMotionSpec {
  ArmAngleSeries angles;
  double duration_s = 0.0;
};

/// \brief A generated leg trial: angle series plus optional pelvis
/// translation tracks (walking progresses forward, step-up raises the
/// body) — global effects the local transform must cancel.
struct LegMotionSpec {
  LegAngleSeries angles;
  std::vector<double> pelvis_dx;
  std::vector<double> pelvis_dz;
  double duration_s = 0.0;
};

/// \brief Generates one right-hand trial of the given class.
Result<HandMotionSpec> GenerateHandMotion(HandMotionClass cls,
                                          const TrialVariation& variation,
                                          double frame_rate_hz, Rng* rng);

/// \brief Generates one right-leg trial of the given class.
Result<LegMotionSpec> GenerateLegMotion(LegMotionClass cls,
                                        const TrialVariation& variation,
                                        double frame_rate_hz, Rng* rng);

}  // namespace mocemg

#endif  // MOCEMG_SYNTH_MOTION_CLASSES_H_
