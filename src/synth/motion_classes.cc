#include "synth/motion_classes.h"

#include <algorithm>
#include <cmath>

#include "synth/profiles.h"
#include "util/macros.h"

namespace mocemg {
namespace {

// Small helper: keyframe list → profile with per-keyframe value jitter.
KeyframeProfile Jittered(std::vector<Keyframe> keys, double jitter_rad,
                         Rng* rng) {
  for (auto& k : keys) {
    k.value += rng->Gaussian(0.0, jitter_rad);
  }
  return KeyframeProfile(std::move(keys));
}

// Applies the shared trial transforms to a base profile: onset delay,
// time scaling, amplitude scaling about the first keyframe's value, and
// posture offset.
JointProfile Shape(KeyframeProfile base, const TrialVariation& v) {
  const double pivot =
      base.keyframes().empty() ? 0.0 : base.keyframes().front().value;
  base.ScaleValues(v.amplitude_scale, pivot);
  base.ScaleTime(v.time_scale);
  // Onset delay: shift all keyframes right.
  std::vector<Keyframe> keys = base.keyframes();
  for (auto& k : keys) k.time_s += v.onset_delay_s;
  if (!keys.empty()) {
    keys.insert(keys.begin(), Keyframe{0.0, keys.front().value});
  }
  KeyframeProfile shifted(std::move(keys));
  shifted.OffsetValues(v.posture_offset_rad);
  return JointProfile(std::move(shifted));
}

struct ArmProfiles {
  JointProfile shoulder_elev;
  JointProfile shoulder_azim;
  JointProfile elbow;
  JointProfile wrist;
};

struct LegProfiles {
  JointProfile hip;
  JointProfile knee;
  JointProfile ankle;
  JointProfile pelvis_dx;  // mm
  JointProfile pelvis_dz;  // mm
};

constexpr double kJit = 0.04;  // per-keyframe angle jitter (rad)

ArmProfiles BuildHandProfiles(HandMotionClass cls,
                              const TrialVariation& v, double* duration_s,
                              Rng* rng) {
  ArmProfiles p;
  double base_duration = 2.5;
  switch (cls) {
    case HandMotionClass::kRaiseArm: {
      base_duration = 2.6;
      p.shoulder_elev = Shape(
          Jittered({{0.0, 0.10}, {1.0, 1.75}, {1.8, 1.75}, {2.5, 0.35}},
                   kJit, rng),
          v);
      p.shoulder_azim =
          Shape(Jittered({{0.0, 0.0}, {2.5, 0.05}}, kJit * 0.5, rng), v);
      p.elbow = Shape(
          Jittered({{0.0, 0.15}, {1.0, 0.30}, {2.5, 0.20}}, kJit, rng), v);
      p.wrist =
          Shape(Jittered({{0.0, 0.0}, {2.5, 0.05}}, kJit * 0.5, rng), v);
      break;
    }
    case HandMotionClass::kThrowBall: {
      base_duration = 2.2;
      // Wind-up, cock the elbow, explosive extension, follow-through.
      p.shoulder_elev = Shape(
          Jittered({{0.0, 0.20},
                    {0.7, 1.60},
                    {1.1, 1.80},
                    {1.35, 1.10},
                    {2.0, 0.40}},
                   kJit, rng),
          v);
      p.shoulder_azim = Shape(
          Jittered({{0.0, 0.0}, {0.7, -0.45}, {1.35, 0.35}, {2.0, 0.05}},
                   kJit, rng),
          v);
      p.elbow = Shape(Jittered({{0.0, 0.25},
                                {0.7, 1.90},
                                {1.1, 2.00},
                                {1.3, 0.25},
                                {2.0, 0.30}},
                               kJit, rng),
                      v);
      p.wrist = Shape(
          Jittered({{0.0, 0.0}, {1.1, 0.55}, {1.3, -0.45}, {2.0, 0.0}},
                   kJit, rng),
          v);
      break;
    }
    case HandMotionClass::kWave: {
      base_duration = 3.0;
      p.shoulder_elev = Shape(
          Jittered({{0.0, 0.15}, {0.8, 1.55}, {2.4, 1.55}, {3.0, 0.30}},
                   kJit, rng),
          v);
      p.shoulder_azim =
          Shape(Jittered({{0.0, 0.0}, {3.0, 0.0}}, kJit * 0.5, rng), v);
      p.elbow = Shape(
          Jittered({{0.0, 0.20}, {0.8, 1.25}, {2.4, 1.25}, {3.0, 0.25}},
                   kJit, rng),
          v);
      p.wrist =
          Shape(Jittered({{0.0, 0.0}, {3.0, 0.0}}, kJit * 0.5, rng), v);
      // The wave itself: wrist and forearm oscillation while the arm is up.
      Oscillation wave;
      wave.amplitude = 0.45 * v.amplitude_scale;
      wave.frequency_hz = 2.2 * v.rhythm_scale / v.time_scale;
      wave.phase_rad = rng->Uniform(0.0, 2.0 * M_PI);
      wave.t_on_s = (0.9 + v.onset_delay_s) * v.time_scale;
      wave.t_off_s = (2.3 + v.onset_delay_s) * v.time_scale;
      p.wrist.AddOscillation(wave);
      Oscillation sway = wave;
      sway.amplitude = 0.18 * v.amplitude_scale;
      p.shoulder_azim.AddOscillation(sway);
      break;
    }
    case HandMotionClass::kPunch: {
      base_duration = 1.9;
      p.shoulder_elev = Shape(
          Jittered({{0.0, 0.25}, {0.55, 0.35}, {0.85, 1.45}, {1.6, 0.35}},
                   kJit, rng),
          v);
      p.shoulder_azim = Shape(
          Jittered({{0.0, 0.10}, {0.85, -0.15}, {1.6, 0.10}}, kJit, rng),
          v);
      p.elbow = Shape(Jittered({{0.0, 0.90},
                                {0.55, 2.10},
                                {0.85, 0.15},
                                {1.25, 0.20},
                                {1.6, 0.90}},
                               kJit, rng),
                      v);
      p.wrist =
          Shape(Jittered({{0.0, 0.0}, {1.6, 0.0}}, kJit * 0.5, rng), v);
      break;
    }
    case HandMotionClass::kDrink: {
      base_duration = 3.2;
      p.shoulder_elev = Shape(
          Jittered({{0.0, 0.15}, {1.0, 0.65}, {2.2, 0.70}, {3.2, 0.20}},
                   kJit, rng),
          v);
      p.shoulder_azim = Shape(
          Jittered({{0.0, 0.0}, {1.0, 0.25}, {3.2, 0.05}}, kJit, rng), v);
      p.elbow = Shape(Jittered({{0.0, 0.25},
                                {1.0, 2.25},
                                {2.2, 2.30},
                                {3.2, 0.35}},
                               kJit, rng),
                      v);
      p.wrist = Shape(
          Jittered({{0.0, 0.0}, {1.2, 0.35}, {2.2, 0.40}, {3.2, 0.0}},
                   kJit, rng),
          v);
      break;
    }
    case HandMotionClass::kPushDoor: {
      base_duration = 2.8;
      p.shoulder_elev = Shape(
          Jittered({{0.0, 0.20}, {0.9, 1.15}, {2.0, 1.25}, {2.8, 0.30}},
                   kJit, rng),
          v);
      p.shoulder_azim = Shape(
          Jittered({{0.0, 0.0}, {0.9, -0.10}, {2.8, 0.0}}, kJit, rng), v);
      p.elbow = Shape(Jittered({{0.0, 1.50},
                                {0.9, 0.95},
                                {2.0, 0.25},
                                {2.8, 1.10}},
                               kJit, rng),
                      v);
      p.wrist = Shape(
          Jittered({{0.0, -0.30}, {2.0, -0.35}, {2.8, -0.10}}, kJit, rng),
          v);
      break;
    }
    case HandMotionClass::kNumClasses:
      break;
  }
  *duration_s = base_duration * v.time_scale + v.onset_delay_s + 0.2;
  return p;
}

LegProfiles BuildLegProfiles(LegMotionClass cls, const TrialVariation& v,
                             double* duration_s, Rng* rng) {
  LegProfiles p;
  double base_duration = 2.5;
  switch (cls) {
    case LegMotionClass::kWalk: {
      base_duration = 3.0;
      const double stride_hz = 0.9 * v.rhythm_scale / v.time_scale;
      p.hip = Shape(
          Jittered({{0.0, 0.05}, {3.0, 0.05}}, kJit * 0.5, rng), v);
      Oscillation hip_osc;
      hip_osc.amplitude = 0.42 * v.amplitude_scale;
      hip_osc.frequency_hz = stride_hz;
      hip_osc.phase_rad = rng->Uniform(0.0, 0.6);
      hip_osc.t_on_s = 0.1;
      hip_osc.t_off_s = (3.0 + v.onset_delay_s) * v.time_scale;
      p.hip.AddOscillation(hip_osc);
      p.knee = Shape(
          Jittered({{0.0, 0.25}, {3.0, 0.25}}, kJit * 0.5, rng), v);
      // Knee flexes strongly during swing: same frequency, offset phase,
      // rectified shape approximated by a biased oscillation.
      Oscillation knee_osc = hip_osc;
      knee_osc.amplitude = 0.55 * v.amplitude_scale;
      knee_osc.phase_rad = hip_osc.phase_rad + 1.3;
      p.knee.AddOscillation(knee_osc);
      p.ankle =
          Shape(Jittered({{0.0, 0.0}, {3.0, 0.0}}, kJit * 0.5, rng), v);
      Oscillation ankle_osc = hip_osc;
      ankle_osc.amplitude = 0.28 * v.amplitude_scale;
      ankle_osc.phase_rad = hip_osc.phase_rad + 2.4;
      p.ankle.AddOscillation(ankle_osc);
      // Forward progression: ~1.1 m/s walking speed.
      const double speed_mm_s = 1100.0 * v.amplitude_scale;
      p.pelvis_dx = JointProfile(KeyframeProfile(
          {{0.0, 0.0}, {3.0 * v.time_scale, speed_mm_s * 3.0 * v.time_scale}}));
      // Vertical bob at twice the stride frequency.
      Oscillation bob;
      bob.amplitude = 18.0;
      bob.frequency_hz = 2.0 * stride_hz;
      bob.t_off_s = 3.0 * v.time_scale;
      p.pelvis_dz = JointProfile(KeyframeProfile({{0.0, 0.0}}));
      p.pelvis_dz.AddOscillation(bob);
      break;
    }
    case LegMotionClass::kKick: {
      base_duration = 2.0;
      p.hip = Shape(Jittered({{0.0, 0.05},
                              {0.55, -0.30},
                              {0.95, 1.15},
                              {1.5, 0.20},
                              {2.0, 0.05}},
                             kJit, rng),
                    v);
      p.knee = Shape(Jittered({{0.0, 0.15},
                               {0.55, 1.55},
                               {0.95, 0.10},
                               {1.5, 0.40},
                               {2.0, 0.15}},
                              kJit, rng),
                     v);
      p.ankle = Shape(
          Jittered({{0.0, 0.0}, {0.95, -0.35}, {2.0, 0.0}}, kJit, rng), v);
      p.pelvis_dx = JointProfile(KeyframeProfile({{0.0, 0.0}}));
      p.pelvis_dz = JointProfile(KeyframeProfile({{0.0, 0.0}}));
      break;
    }
    case LegMotionClass::kSquat: {
      base_duration = 3.2;
      p.hip = Shape(Jittered({{0.0, 0.05},
                              {1.1, 1.35},
                              {1.9, 1.40},
                              {3.2, 0.10}},
                             kJit, rng),
                    v);
      p.knee = Shape(Jittered({{0.0, 0.10},
                               {1.1, 1.90},
                               {1.9, 1.95},
                               {3.2, 0.15}},
                              kJit, rng),
                     v);
      p.ankle = Shape(
          Jittered({{0.0, 0.0}, {1.1, 0.40}, {1.9, 0.40}, {3.2, 0.0}},
                   kJit, rng),
          v);
      p.pelvis_dx = JointProfile(KeyframeProfile({{0.0, 0.0}}));
      // The body drops as the knees bend.
      p.pelvis_dz = JointProfile(KeyframeProfile({{0.0, 0.0},
                                                  {1.1 * v.time_scale, -320.0 * v.amplitude_scale},
                                                  {1.9 * v.time_scale, -330.0 * v.amplitude_scale},
                                                  {3.2 * v.time_scale, 0.0}}));
      break;
    }
    case LegMotionClass::kStepUp: {
      base_duration = 2.6;
      p.hip = Shape(Jittered({{0.0, 0.05},
                              {0.8, 1.05},
                              {1.7, 0.15},
                              {2.6, 0.05}},
                             kJit, rng),
                    v);
      p.knee = Shape(Jittered({{0.0, 0.10},
                               {0.8, 1.35},
                               {1.7, 0.10},
                               {2.6, 0.10}},
                              kJit, rng),
                     v);
      p.ankle = Shape(
          Jittered({{0.0, 0.0}, {0.8, 0.25}, {1.4, -0.30}, {2.6, 0.0}},
                   kJit, rng),
          v);
      p.pelvis_dx = JointProfile(KeyframeProfile(
          {{0.0, 0.0}, {1.7 * v.time_scale, 260.0}, {2.6 * v.time_scale, 300.0}}));
      p.pelvis_dz = JointProfile(KeyframeProfile(
          {{0.0, 0.0}, {0.8 * v.time_scale, 40.0}, {1.7 * v.time_scale, 200.0}, {2.6 * v.time_scale, 210.0}}));
      break;
    }
    case LegMotionClass::kToeTap: {
      base_duration = 2.8;
      p.hip = Shape(
          Jittered({{0.0, 0.05}, {2.8, 0.05}}, kJit * 0.5, rng), v);
      p.knee = Shape(
          Jittered({{0.0, 0.20}, {2.8, 0.20}}, kJit * 0.5, rng), v);
      p.ankle =
          Shape(Jittered({{0.0, 0.05}, {2.8, 0.05}}, kJit * 0.5, rng), v);
      Oscillation tap;
      tap.amplitude = 0.40 * v.amplitude_scale;
      tap.frequency_hz = 2.6 * v.rhythm_scale / v.time_scale;
      tap.phase_rad = rng->Uniform(0.0, 2.0 * M_PI);
      tap.t_on_s = 0.3;
      tap.t_off_s = (2.5 + v.onset_delay_s) * v.time_scale;
      p.ankle.AddOscillation(tap);
      p.pelvis_dx = JointProfile(KeyframeProfile({{0.0, 0.0}}));
      p.pelvis_dz = JointProfile(KeyframeProfile({{0.0, 0.0}}));
      break;
    }
    case LegMotionClass::kNumClasses:
      break;
  }
  *duration_s = base_duration * v.time_scale + v.onset_delay_s + 0.2;
  return p;
}

}  // namespace

const char* HandMotionClassName(HandMotionClass cls) {
  switch (cls) {
    case HandMotionClass::kRaiseArm:
      return "raise_arm";
    case HandMotionClass::kThrowBall:
      return "throw_ball";
    case HandMotionClass::kWave:
      return "wave";
    case HandMotionClass::kPunch:
      return "punch";
    case HandMotionClass::kDrink:
      return "drink";
    case HandMotionClass::kPushDoor:
      return "push_door";
    case HandMotionClass::kNumClasses:
      break;
  }
  return "?";
}

const char* LegMotionClassName(LegMotionClass cls) {
  switch (cls) {
    case LegMotionClass::kWalk:
      return "walk";
    case LegMotionClass::kKick:
      return "kick";
    case LegMotionClass::kSquat:
      return "squat";
    case LegMotionClass::kStepUp:
      return "step_up";
    case LegMotionClass::kToeTap:
      return "toe_tap";
    case LegMotionClass::kNumClasses:
      break;
  }
  return "?";
}

size_t NumHandClasses() {
  return static_cast<size_t>(HandMotionClass::kNumClasses);
}
size_t NumLegClasses() {
  return static_cast<size_t>(LegMotionClass::kNumClasses);
}

TrialVariation SampleTrialVariation(Rng* rng) {
  TrialVariation v;
  v.amplitude_scale = std::clamp(rng->Gaussian(1.0, 0.12), 0.7, 1.3);
  v.time_scale = std::clamp(rng->Gaussian(1.0, 0.12), 0.7, 1.35);
  v.onset_delay_s = rng->Uniform(0.0, 0.25);
  v.posture_offset_rad = rng->Gaussian(0.0, 0.05);
  v.rhythm_scale = std::clamp(rng->Gaussian(1.0, 0.10), 0.75, 1.25);
  return v;
}

Result<HandMotionSpec> GenerateHandMotion(HandMotionClass cls,
                                          const TrialVariation& variation,
                                          double frame_rate_hz, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (cls >= HandMotionClass::kNumClasses) {
    return Status::InvalidArgument("invalid hand motion class");
  }
  if (frame_rate_hz <= 0.0) {
    return Status::InvalidArgument("frame rate must be positive");
  }
  HandMotionSpec spec;
  ArmProfiles p =
      BuildHandProfiles(cls, variation, &spec.duration_s, rng);
  spec.angles.shoulder_elevation =
      p.shoulder_elev.SampleSeries(spec.duration_s, frame_rate_hz);
  spec.angles.shoulder_azimuth =
      p.shoulder_azim.SampleSeries(spec.duration_s, frame_rate_hz);
  spec.angles.elbow_flexion =
      p.elbow.SampleSeries(spec.duration_s, frame_rate_hz);
  spec.angles.wrist_flexion =
      p.wrist.SampleSeries(spec.duration_s, frame_rate_hz);
  MOCEMG_RETURN_NOT_OK(spec.angles.Validate());
  return spec;
}

Result<LegMotionSpec> GenerateLegMotion(LegMotionClass cls,
                                        const TrialVariation& variation,
                                        double frame_rate_hz, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (cls >= LegMotionClass::kNumClasses) {
    return Status::InvalidArgument("invalid leg motion class");
  }
  if (frame_rate_hz <= 0.0) {
    return Status::InvalidArgument("frame rate must be positive");
  }
  LegMotionSpec spec;
  LegProfiles p = BuildLegProfiles(cls, variation, &spec.duration_s, rng);
  spec.angles.hip_flexion =
      p.hip.SampleSeries(spec.duration_s, frame_rate_hz);
  spec.angles.knee_flexion =
      p.knee.SampleSeries(spec.duration_s, frame_rate_hz);
  spec.angles.ankle_flexion =
      p.ankle.SampleSeries(spec.duration_s, frame_rate_hz);
  spec.pelvis_dx = p.pelvis_dx.SampleSeries(spec.duration_s, frame_rate_hz);
  spec.pelvis_dz = p.pelvis_dz.SampleSeries(spec.duration_s, frame_rate_hz);
  MOCEMG_RETURN_NOT_OK(spec.angles.Validate());
  return spec;
}

}  // namespace mocemg
