#include "synth/dataset.h"

#include <cmath>

#include "synth/kinematics.h"
#include "synth/motion_classes.h"
#include "util/macros.h"

namespace mocemg {

size_t NumClassesForLimb(Limb limb) {
  return limb == Limb::kRightHand ? NumHandClasses() : NumLegClasses();
}

const char* ClassNameForLimb(Limb limb, size_t class_id) {
  if (limb == Limb::kRightHand) {
    return HandMotionClassName(static_cast<HandMotionClass>(class_id));
  }
  return LegMotionClassName(static_cast<LegMotionClass>(class_id));
}

Result<CapturedMotion> GenerateTrial(const DatasetOptions& options,
                                     size_t class_id, size_t trial,
                                     uint64_t trial_seed) {
  if (class_id >= NumClassesForLimb(options.limb)) {
    return Status::InvalidArgument("class_id out of range");
  }
  Rng rng(trial_seed);
  const size_t subject =
      options.num_subjects == 0 ? 0 : trial % options.num_subjects;
  // Subject stature: deterministic in (seed, subject) so all of a
  // subject's trials share a body.
  Rng subject_rng(options.seed ^ (0x51B9ULL + 0x9E37ULL * (subject + 1)));
  const double scale =
      1.0 + options.subject_scale_range * subject_rng.Uniform(-1.0, 1.0);
  const BodyDimensions body = BodyDimensions{}.Scaled(scale);

  const TrialVariation variation = SampleTrialVariation(&rng);

  PlacementOptions placement;
  placement.origin_x = rng.Uniform(-options.placement_range_mm,
                                   options.placement_range_mm);
  placement.origin_y = rng.Uniform(-options.placement_range_mm,
                                   options.placement_range_mm);
  placement.origin_z = 1000.0 * scale;
  placement.heading_rad =
      rng.Uniform(-options.heading_range_rad, options.heading_range_rad);
  placement.marker_noise_mm = options.marker_noise_mm;
  placement.frame_rate_hz = options.frame_rate_hz;

  CapturedMotion captured;
  captured.class_id = class_id;
  captured.class_name = ClassNameForLimb(options.limb, class_id);
  captured.trial = trial;
  captured.subject = subject;

  MotionSequence mocap;
  std::vector<MuscleActivation> activations;
  if (options.limb == Limb::kRightHand) {
    MOCEMG_ASSIGN_OR_RETURN(
        HandMotionSpec spec,
        GenerateHandMotion(static_cast<HandMotionClass>(class_id),
                           variation, options.frame_rate_hz, &rng));
    MOCEMG_ASSIGN_OR_RETURN(
        mocap,
        SynthesizeArmCapture(spec.angles, body, placement, &rng));
    MOCEMG_ASSIGN_OR_RETURN(
        activations,
        ComputeArmActivations(spec.angles, options.frame_rate_hz,
                              options.muscle, &rng));
  } else {
    MOCEMG_ASSIGN_OR_RETURN(
        LegMotionSpec spec,
        GenerateLegMotion(static_cast<LegMotionClass>(class_id), variation,
                          options.frame_rate_hz, &rng));
    placement.pelvis_dx = spec.pelvis_dx;
    placement.pelvis_dz = spec.pelvis_dz;
    MOCEMG_ASSIGN_OR_RETURN(
        mocap, SynthesizeLegCapture(spec.angles, body, placement, &rng));
    MOCEMG_ASSIGN_OR_RETURN(
        activations,
        ComputeLegActivations(spec.angles, options.frame_rate_hz,
                              options.muscle, &rng));
  }

  MOCEMG_ASSIGN_OR_RETURN(
      EmgRecording emg_raw,
      SynthesizeEmgRecording(activations, options.frame_rate_hz,
                             options.emg, &rng));

  // Trigger-module start latencies (zero in the paper's synchronized
  // rig; configurable for the jitter ablation).
  const TriggerEvent ev = FireTrigger(options.trigger, &rng);
  if (ev.mocap_start_s > 0.0) {
    MOCEMG_ASSIGN_OR_RETURN(mocap,
                            ApplyStartLatency(mocap, ev.mocap_start_s));
  }
  if (ev.emg_start_s > 0.0) {
    MOCEMG_ASSIGN_OR_RETURN(emg_raw,
                            ApplyStartLatency(emg_raw, ev.emg_start_s));
  }

  captured.mocap = std::move(mocap);
  captured.emg_raw = std::move(emg_raw);
  return captured;
}

Result<std::vector<CapturedMotion>> GenerateDataset(
    const DatasetOptions& options) {
  if (options.trials_per_class == 0) {
    return Status::InvalidArgument("trials_per_class must be >= 1");
  }
  if (options.frame_rate_hz <= 0.0) {
    return Status::InvalidArgument("frame rate must be positive");
  }
  const size_t num_classes = NumClassesForLimb(options.limb);
  Rng seeder(options.seed);
  std::vector<CapturedMotion> dataset;
  dataset.reserve(num_classes * options.trials_per_class);
  for (size_t cls = 0; cls < num_classes; ++cls) {
    for (size_t trial = 0; trial < options.trials_per_class; ++trial) {
      MOCEMG_ASSIGN_OR_RETURN(
          CapturedMotion m,
          GenerateTrial(options, cls, trial, seeder.NextUint64()));
      dataset.push_back(std::move(m));
    }
  }
  return dataset;
}

}  // namespace mocemg
