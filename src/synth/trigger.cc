#include "synth/trigger.h"

#include <algorithm>
#include <cmath>

namespace mocemg {

TriggerEvent FireTrigger(const TriggerOptions& options, Rng* rng) {
  TriggerEvent ev;
  double mocap = options.mocap_latency_ms;
  double emg = options.emg_latency_ms;
  if (rng != nullptr && options.jitter_ms > 0.0) {
    mocap += rng->Gaussian(0.0, options.jitter_ms);
    emg += rng->Gaussian(0.0, options.jitter_ms);
  }
  ev.mocap_start_s = std::max(0.0, mocap / 1000.0);
  ev.emg_start_s = std::max(0.0, emg / 1000.0);
  return ev;
}

Result<MotionSequence> ApplyStartLatency(const MotionSequence& motion,
                                         double latency_s) {
  if (latency_s < 0.0) {
    return Status::InvalidArgument("latency must be >= 0");
  }
  const size_t drop = static_cast<size_t>(
      std::lround(latency_s * motion.frame_rate_hz()));
  if (drop >= motion.num_frames()) {
    return Status::InvalidArgument(
        "latency swallows the whole motion capture");
  }
  return motion.FrameSlice(drop, motion.num_frames());
}

Result<EmgRecording> ApplyStartLatency(const EmgRecording& recording,
                                       double latency_s) {
  if (latency_s < 0.0) {
    return Status::InvalidArgument("latency must be >= 0");
  }
  const size_t drop = static_cast<size_t>(
      std::lround(latency_s * recording.sample_rate_hz()));
  if (drop >= recording.num_samples()) {
    return Status::InvalidArgument(
        "latency swallows the whole EMG recording");
  }
  return recording.SampleSlice(drop, recording.num_samples());
}

}  // namespace mocemg
