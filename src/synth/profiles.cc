#include "synth/profiles.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mocemg {

KeyframeProfile::KeyframeProfile(std::vector<Keyframe> keys)
    : keys_(std::move(keys)) {
  MOCEMG_CHECK(std::is_sorted(keys_.begin(), keys_.end(),
                              [](const Keyframe& a, const Keyframe& b) {
                                return a.time_s < b.time_s;
                              }))
      << "keyframes must be time-ordered";
}

double KeyframeProfile::Sample(double t) const {
  if (keys_.empty()) return 0.0;
  if (t <= keys_.front().time_s) return keys_.front().value;
  if (t >= keys_.back().time_s) return keys_.back().value;
  // Find the segment containing t.
  size_t hi = 1;
  while (keys_[hi].time_s < t) ++hi;
  const Keyframe& a = keys_[hi - 1];
  const Keyframe& b = keys_[hi];
  const double span = b.time_s - a.time_s;
  if (span <= 0.0) return b.value;
  const double tau = (t - a.time_s) / span;
  const double s = tau * tau * tau * (10.0 + tau * (-15.0 + 6.0 * tau));
  return a.value + (b.value - a.value) * s;
}

std::vector<double> KeyframeProfile::SampleSeries(double duration_s,
                                                  double rate_hz) const {
  const size_t n = static_cast<size_t>(std::lround(duration_s * rate_hz));
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = Sample(static_cast<double>(i) / rate_hz);
  }
  return out;
}

void KeyframeProfile::ScaleTime(double factor) {
  for (auto& k : keys_) k.time_s *= factor;
}

void KeyframeProfile::ScaleValues(double factor, double pivot) {
  for (auto& k : keys_) k.value = pivot + (k.value - pivot) * factor;
}

void KeyframeProfile::OffsetValues(double delta) {
  for (auto& k : keys_) k.value += delta;
}

double Oscillation::Sample(double t) const {
  if (t < t_on_s || t > t_off_s) return 0.0;
  double env = 1.0;
  if (ramp_s > 0.0) {
    if (t < t_on_s + ramp_s) {
      env = 0.5 * (1.0 - std::cos(M_PI * (t - t_on_s) / ramp_s));
    } else if (t > t_off_s - ramp_s) {
      env = 0.5 * (1.0 - std::cos(M_PI * (t_off_s - t) / ramp_s));
    }
  }
  return env * amplitude *
         std::sin(2.0 * M_PI * frequency_hz * (t - t_on_s) + phase_rad);
}

double JointProfile::Sample(double t) const {
  double v = base_.Sample(t);
  for (const auto& o : overlays_) v += o.Sample(t);
  return v;
}

std::vector<double> JointProfile::SampleSeries(double duration_s,
                                               double rate_hz) const {
  const size_t n = static_cast<size_t>(std::lround(duration_s * rate_hz));
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = Sample(static_cast<double>(i) / rate_hz);
  }
  return out;
}

std::vector<double> Differentiate(const std::vector<double>& series,
                                  double rate_hz) {
  const size_t n = series.size();
  std::vector<double> out(n, 0.0);
  if (n < 2) return out;
  out[0] = (series[1] - series[0]) * rate_hz;
  out[n - 1] = (series[n - 1] - series[n - 2]) * rate_hz;
  for (size_t i = 1; i + 1 < n; ++i) {
    out[i] = (series[i + 1] - series[i - 1]) * rate_hz * 0.5;
  }
  return out;
}

}  // namespace mocemg
