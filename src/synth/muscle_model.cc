#include "synth/muscle_model.h"

#include <algorithm>
#include <cmath>

#include "synth/profiles.h"
#include "util/macros.h"

namespace mocemg {
namespace {

// Signed torque proxy for one joint angle series. Positive values drive
// the "positive-direction" muscle (e.g. flexor), negative the antagonist.
std::vector<double> TorqueProxy(const std::vector<double>& theta,
                                double rate_hz,
                                const MuscleModelOptions& opt,
                                double gravity_sign) {
  const std::vector<double> omega = Differentiate(theta, rate_hz);
  const std::vector<double> alpha = Differentiate(omega, rate_hz);
  std::vector<double> tau(theta.size());
  for (size_t i = 0; i < theta.size(); ++i) {
    tau[i] = opt.inertial_gain * alpha[i] + opt.viscous_gain * omega[i] +
             opt.gravity_gain * gravity_sign * std::sin(theta[i]);
  }
  return tau;
}

// First-order low-pass (excitation→activation dynamics).
void Smooth(std::vector<double>* a, double rate_hz, double tau_s) {
  if (a->empty() || tau_s <= 0.0) return;
  const double alpha = 1.0 / (1.0 + tau_s * rate_hz);
  double state = (*a)[0];
  for (double& v : *a) {
    state += alpha * (v - state);
    v = state;
  }
}

// Agonist/antagonist activation pair from one torque proxy.
struct ActivationPair {
  std::vector<double> agonist;     // fires on positive torque
  std::vector<double> antagonist;  // fires on negative torque
};

ActivationPair SplitActivation(const std::vector<double>& tau,
                               double rate_hz,
                               const MuscleModelOptions& opt, Rng* rng) {
  ActivationPair pair;
  const size_t n = tau.size();
  pair.agonist.resize(n);
  pair.antagonist.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double pos = std::max(tau[i], 0.0);
    const double neg = std::max(-tau[i], 0.0);
    pair.agonist[i] = pos + opt.co_contraction * neg + opt.tonic_level;
    pair.antagonist[i] = neg + opt.co_contraction * pos + opt.tonic_level;
  }
  Smooth(&pair.agonist, rate_hz, opt.smoothing_tau_s);
  Smooth(&pair.antagonist, rate_hz, opt.smoothing_tau_s);
  // Per-trial multiplicative gain (electrode placement, impedance,
  // fatigue) — independent per muscle.
  const double g1 = std::exp(rng->Gaussian(0.0, opt.trial_gain_sigma));
  const double g2 = std::exp(rng->Gaussian(0.0, opt.trial_gain_sigma));
  for (size_t i = 0; i < n; ++i) {
    pair.agonist[i] = std::clamp(pair.agonist[i] * g1, 0.0, 1.0);
    pair.antagonist[i] = std::clamp(pair.antagonist[i] * g2, 0.0, 1.0);
  }
  return pair;
}

Status ValidateInputs(size_t frames, double frame_rate_hz,
                      const Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (frames == 0) return Status::InvalidArgument("empty angle series");
  if (frame_rate_hz <= 0.0) {
    return Status::InvalidArgument("frame rate must be positive");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<MuscleActivation>> ComputeArmActivations(
    const ArmAngleSeries& angles, double frame_rate_hz,
    const MuscleModelOptions& options, Rng* rng) {
  MOCEMG_RETURN_NOT_OK(angles.Validate());
  MOCEMG_RETURN_NOT_OK(
      ValidateInputs(angles.num_frames(), frame_rate_hz, rng));

  // Elbow: biceps = flexor (positive), triceps = extensor. Gravity loads
  // the flexor when the forearm is horizontal — the sin(θ) posture term
  // with positive sign approximates the forearm-weight moment. Biceps
  // also assists shoulder elevation a little.
  std::vector<double> elbow_tau = TorqueProxy(
      angles.elbow_flexion, frame_rate_hz, options, /*gravity_sign=*/1.0);
  const std::vector<double> shoulder_tau =
      TorqueProxy(angles.shoulder_elevation, frame_rate_hz, options, 1.0);
  for (size_t i = 0; i < elbow_tau.size(); ++i) {
    elbow_tau[i] += 0.25 * std::max(shoulder_tau[i], 0.0);
  }
  ActivationPair elbow =
      SplitActivation(elbow_tau, frame_rate_hz, options, rng);

  // Wrist: lower forearm (flexors) on positive wrist torque, upper
  // forearm (extensors) on negative. Forearm muscles also stabilize the
  // wrist whenever the elbow moves fast (grip/brace), so a fraction of
  // the absolute elbow torque leaks into both.
  std::vector<double> wrist_tau = TorqueProxy(
      angles.wrist_flexion, frame_rate_hz, options, /*gravity_sign=*/0.4);
  std::vector<double> brace(wrist_tau.size());
  for (size_t i = 0; i < wrist_tau.size(); ++i) {
    brace[i] = 0.30 * std::fabs(elbow_tau[i]);
  }
  std::vector<double> wrist_flex_drive(wrist_tau.size());
  std::vector<double> wrist_ext_drive(wrist_tau.size());
  for (size_t i = 0; i < wrist_tau.size(); ++i) {
    wrist_flex_drive[i] = wrist_tau[i] + brace[i];
    wrist_ext_drive[i] = -wrist_tau[i] + brace[i];
  }
  ActivationPair wrist_flex =
      SplitActivation(wrist_flex_drive, frame_rate_hz, options, rng);
  ActivationPair wrist_ext =
      SplitActivation(wrist_ext_drive, frame_rate_hz, options, rng);

  std::vector<MuscleActivation> out;
  out.push_back({Muscle::kBiceps, std::move(elbow.agonist)});
  out.push_back({Muscle::kTriceps, std::move(elbow.antagonist)});
  out.push_back({Muscle::kUpperForearm, std::move(wrist_ext.agonist)});
  out.push_back({Muscle::kLowerForearm, std::move(wrist_flex.agonist)});
  return out;
}

Result<std::vector<MuscleActivation>> ComputeLegActivations(
    const LegAngleSeries& angles, double frame_rate_hz,
    const MuscleModelOptions& options, Rng* rng) {
  MOCEMG_RETURN_NOT_OK(angles.Validate());
  MOCEMG_RETURN_NOT_OK(
      ValidateInputs(angles.num_frames(), frame_rate_hz, rng));

  // Ankle: tibialis anterior (front shin) dorsiflexes (positive θa),
  // gastrocnemius (back shin) plantarflexes. The gastrocnemius also
  // fires with knee/hip extension effort (push-off, squat rise), which
  // the knee torque's negative side approximates.
  std::vector<double> ankle_tau = TorqueProxy(
      angles.ankle_flexion, frame_rate_hz, options, /*gravity_sign=*/0.6);
  const std::vector<double> knee_tau =
      TorqueProxy(angles.knee_flexion, frame_rate_hz, options, 0.8);
  std::vector<double> front_drive(ankle_tau.size());
  std::vector<double> back_drive(ankle_tau.size());
  for (size_t i = 0; i < ankle_tau.size(); ++i) {
    front_drive[i] = ankle_tau[i];
    back_drive[i] = -ankle_tau[i] + 0.35 * std::max(-knee_tau[i], 0.0) +
                    0.20 * std::max(knee_tau[i], 0.0);
  }
  ActivationPair front =
      SplitActivation(front_drive, frame_rate_hz, options, rng);
  ActivationPair back =
      SplitActivation(back_drive, frame_rate_hz, options, rng);

  std::vector<MuscleActivation> out;
  out.push_back({Muscle::kFrontShin, std::move(front.agonist)});
  out.push_back({Muscle::kBackShin, std::move(back.agonist)});
  return out;
}

}  // namespace mocemg
