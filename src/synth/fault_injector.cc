#include "synth/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "synth/trigger.h"
#include "util/macros.h"

namespace mocemg {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Picks `count` distinct indices out of `pool` (shuffled draw).
std::vector<size_t> PickDistinct(std::vector<size_t> pool, size_t count,
                                 Rng* rng) {
  rng->Shuffle(&pool);
  pool.resize(std::min(count, pool.size()));
  std::sort(pool.begin(), pool.end());
  return pool;
}

// fraction ∈ [0,1] of `n` items, rounded, but at least one when the
// fraction is positive and the pool is non-empty.
size_t FractionCount(double fraction, size_t n) {
  if (fraction <= 0.0 || n == 0) return 0;
  const size_t count =
      static_cast<size_t>(std::lround(fraction * static_cast<double>(n)));
  return std::clamp<size_t>(count, 1, n);
}

}  // namespace

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kMarkerOcclusion:
      return "marker_occlusion";
    case FaultType::kChannelDropout:
      return "channel_dropout";
    case FaultType::kSaturation:
      return "saturation";
    case FaultType::kHumBurst:
      return "hum_burst";
    case FaultType::kTriggerSkew:
      return "trigger_skew";
    case FaultType::kClockDrift:
      return "clock_drift";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultInjectorOptions& options)
    : options_(options), rng_(options.seed) {}

Result<MotionSequence> FaultInjector::CorruptMocap(
    const MotionSequence& clean) {
  if (clean.num_frames() == 0) {
    return Status::InvalidArgument("cannot corrupt an empty motion");
  }
  MotionSequence out = clean;
  if (options_.occlusion_marker_fraction <= 0.0 ||
      options_.occlusion_fraction <= 0.0) {
    return out;
  }

  std::vector<size_t> eligible;
  for (size_t m = 0; m < clean.num_markers(); ++m) {
    if (!options_.occlude_pelvis &&
        clean.marker_set().segments()[m] == Segment::kPelvis) {
      continue;
    }
    eligible.push_back(m);
  }
  const std::vector<size_t> victims = PickDistinct(
      eligible,
      FractionCount(options_.occlusion_marker_fraction, eligible.size()),
      &rng_);

  const size_t frames = clean.num_frames();
  const size_t mean_gap = std::max<size_t>(1, options_.occlusion_mean_gap_frames);
  for (size_t m : victims) {
    const size_t target = std::max<size_t>(
        1, static_cast<size_t>(std::lround(options_.occlusion_fraction *
                                           static_cast<double>(frames))));
    size_t occluded = 0;
    // Bounded attempts: overlapping gaps make progress probabilistic.
    for (int attempt = 0; attempt < 64 && occluded < target; ++attempt) {
      const size_t len = std::min<size_t>(
          frames, 1 + rng_.NextBelow(2 * mean_gap));
      const size_t begin = rng_.NextBelow(frames - len + 1);
      size_t fresh = 0;
      for (size_t f = begin; f < begin + len; ++f) {
        if (std::isfinite(out.positions()(f, 3 * m))) ++fresh;
        out.SetMarkerPosition(f, m, {kNaN, kNaN, kNaN});
      }
      occluded += fresh;
      if (fresh > 0) {
        events_.push_back({FaultType::kMarkerOcclusion, m, begin,
                           begin + len, static_cast<double>(fresh)});
      }
    }
  }
  return out;
}

Result<EmgRecording> FaultInjector::CorruptEmg(const EmgRecording& raw) {
  if (raw.num_samples() == 0 || raw.num_channels() == 0) {
    return Status::InvalidArgument("cannot corrupt an empty recording");
  }
  std::vector<std::vector<double>> channels;
  channels.reserve(raw.num_channels());
  for (size_t c = 0; c < raw.num_channels(); ++c) {
    channels.push_back(raw.channel(c));
  }
  const size_t n = raw.num_samples();
  const double fs = raw.sample_rate_hz();
  std::vector<size_t> all(raw.num_channels());
  std::iota(all.begin(), all.end(), 0);

  // Clock drift first: it stretches genuine signal content, and later
  // faults (dropout, clipping, hum) happen in the receiver's time base.
  if (options_.clock_drift_ppm != 0.0) {
    const double factor = 1.0 + options_.clock_drift_ppm * 1e-6;
    for (auto& ch : channels) {
      std::vector<double> warped(n);
      for (size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) * factor;
        const size_t lo = std::min<size_t>(static_cast<size_t>(t), n - 1);
        const size_t hi = std::min<size_t>(lo + 1, n - 1);
        const double frac = t - static_cast<double>(lo);
        warped[i] = (1.0 - frac) * ch[lo] + frac * ch[hi];
      }
      ch = std::move(warped);
    }
    events_.push_back(
        {FaultType::kClockDrift, 0, 0, n, options_.clock_drift_ppm});
  }

  // Hum bursts.
  for (size_t c : PickDistinct(
           all, FractionCount(options_.hum_channel_fraction, all.size()),
           &rng_)) {
    const size_t mean_burst = std::max<size_t>(
        1, static_cast<size_t>(
               std::lround(static_cast<double>(options_.hum_mean_burst_ms) *
                           fs / 1000.0)));
    const size_t target = static_cast<size_t>(std::lround(
        options_.hum_burst_fraction * static_cast<double>(n)));
    size_t covered = 0;
    for (int attempt = 0; attempt < 64 && covered < target; ++attempt) {
      const size_t len =
          std::min<size_t>(n, 1 + rng_.NextBelow(2 * mean_burst));
      const size_t begin = rng_.NextBelow(n - len + 1);
      const double phase = rng_.Uniform(0.0, 2.0 * M_PI);
      for (size_t i = begin; i < begin + len; ++i) {
        channels[c][i] +=
            options_.hum_amplitude_v *
            std::sin(2.0 * M_PI * options_.hum_freq_hz *
                         static_cast<double>(i) / fs +
                     phase);
      }
      covered += len;
      events_.push_back({FaultType::kHumBurst, c, begin, begin + len,
                         options_.hum_amplitude_v});
    }
  }

  // Saturation clipping.
  for (size_t c : PickDistinct(
           all,
           FractionCount(options_.saturation_channel_fraction, all.size()),
           &rng_)) {
    double level = options_.saturation_level_v;
    if (level <= 0.0) {
      double peak = 0.0;
      for (double v : channels[c]) peak = std::max(peak, std::fabs(v));
      level = 0.5 * peak;
    }
    if (level <= 0.0) continue;  // silent channel: nothing to clip
    for (double& v : channels[c]) v = std::clamp(v, -level, level);
    events_.push_back({FaultType::kSaturation, c, 0, n, level});
  }

  // Channel dropout last: a dead electrode flatlines whatever else
  // happened on that channel.
  for (size_t c : PickDistinct(
           all,
           FractionCount(options_.dropout_channel_fraction, all.size()),
           &rng_)) {
    std::fill(channels[c].begin(), channels[c].end(),
              options_.dropout_level_v);
    events_.push_back(
        {FaultType::kChannelDropout, c, 0, n, options_.dropout_level_v});
  }

  return EmgRecording::Create(raw.muscles(), std::move(channels),
                              raw.sample_rate_hz());
}

Result<CapturedMotion> FaultInjector::Corrupt(const CapturedMotion& clean) {
  CapturedMotion out = clean;

  // Trigger skew first, on the clean streams, so all later fault spans
  // are expressed in the final (delivered) time base.
  if (options_.trigger_jitter_ms > 0.0) {
    const double skew_s =
        rng_.Uniform(-options_.trigger_jitter_ms,
                     options_.trigger_jitter_ms) /
        1000.0;
    if (skew_s > 0.0) {
      MOCEMG_ASSIGN_OR_RETURN(out.emg_raw,
                              ApplyStartLatency(out.emg_raw, skew_s));
      events_.push_back({FaultType::kTriggerSkew, 0, 0,
                         out.emg_raw.num_samples(), skew_s});
    } else if (skew_s < 0.0) {
      MOCEMG_ASSIGN_OR_RETURN(out.mocap,
                              ApplyStartLatency(out.mocap, -skew_s));
      events_.push_back({FaultType::kTriggerSkew, 0, 0,
                         out.mocap.num_frames(), skew_s});
    }
  }

  MOCEMG_ASSIGN_OR_RETURN(out.mocap, CorruptMocap(out.mocap));
  MOCEMG_ASSIGN_OR_RETURN(out.emg_raw, CorruptEmg(out.emg_raw));
  return out;
}

FaultInjectorOptions FaultSeverityPreset(double severity, uint64_t seed) {
  const double s = std::clamp(severity, 0.0, 1.0);
  FaultInjectorOptions o;
  o.seed = seed;
  o.occlusion_marker_fraction = 0.75 * s;
  o.occlusion_fraction = 0.1 + 0.3 * s;
  o.occlusion_mean_gap_frames = 4 + static_cast<size_t>(std::lround(8.0 * s));
  o.dropout_channel_fraction = 0.5 * s;
  o.saturation_channel_fraction = 0.5 * s;
  o.saturation_level_v = 0.0;  // auto: half the channel peak
  o.hum_channel_fraction = s;
  o.hum_amplitude_v = 2e-4 * s;
  o.hum_burst_fraction = 0.2 + 0.4 * s;
  o.trigger_jitter_ms = 40.0 * s;
  o.clock_drift_ppm = 2000.0 * s;
  return o;
}

}  // namespace mocemg
