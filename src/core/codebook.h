/// \file codebook.h
/// \brief The fuzzy codebook: FCM centers trained on the database's
/// window points (Eq. 4), membership evaluation for any window point
/// (Eq. 9), and the final motion feature vector built from per-cluster
/// [min, max] of the highest memberships (Eq. 5–8).

#ifndef MOCEMG_CORE_CODEBOOK_H_
#define MOCEMG_CORE_CODEBOOK_H_

#include <vector>

#include "cluster/fcm.h"
#include "linalg/matrix.h"
#include "util/result.h"

namespace mocemg {

/// \brief Trained FCM centers plus the fuzzifier; the object queries are
/// scored against.
class FcmCodebook {
 public:
  FcmCodebook() = default;

  /// \brief Trains the codebook on (already normalized) window points.
  static Result<FcmCodebook> Train(const Matrix& points,
                                   const FcmOptions& options);

  /// \brief Builds a codebook from externally computed centers (e.g. the
  /// k-means ablation or deserialization).
  static Result<FcmCodebook> FromCenters(Matrix centers, double fuzziness);

  size_t num_clusters() const { return centers_.rows(); }
  size_t dimension() const { return centers_.cols(); }
  const Matrix& centers() const { return centers_; }
  double fuzziness() const { return fuzziness_; }

  /// \brief Degrees of membership of one window point with every cluster
  /// (Eq. 9).
  Result<std::vector<double>> Membership(
      const std::vector<double>& point) const;

  /// \brief Membership rows for a whole window-feature matrix.
  Result<Matrix> MembershipMatrix(const Matrix& points) const;

 private:
  Matrix centers_;
  double fuzziness_ = 2.0;
};

/// \brief Eq. 5–8: from a motion's windows × c membership matrix, take
/// each window's highest membership and its cluster, then per cluster the
/// max (Eq. 7) and min (Eq. 8) of those highest values. Clusters that win
/// no window contribute (0, 0). Layout: [min_1, max_1, …, min_c, max_c],
/// length 2c.
Result<std::vector<double>> FinalMotionFeature(const Matrix& memberships);

/// \brief Hard-assignment analogue for the fuzzy-vs-hard ablation: each
/// window one-hot votes for its nearest center; the final vector is the
/// per-cluster fraction of windows won (length c, sums to 1).
Result<std::vector<double>> HardAssignmentFeature(const Matrix& centers,
                                                  const Matrix& points);

}  // namespace mocemg

#endif  // MOCEMG_CORE_CODEBOOK_H_
