/// \file normalizer.h
/// \brief Per-dimension z-score normalization fitted on the database's
/// window points and applied to queries.
///
/// The paper appends volt-scale IAV values (~1e−5) to unit-scale
/// weighted-SVD components and clusters with Euclidean FCM; without
/// rescaling, the EMG dimensions would be numerically invisible and the
/// "integration" of the two modalities vacuous. The paper does not spell
/// this step out; the ablation bench abl4 quantifies it.

#ifndef MOCEMG_CORE_NORMALIZER_H_
#define MOCEMG_CORE_NORMALIZER_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace mocemg {

/// \brief Fitted affine per-dimension transform x → (x − μ) / σ.
class Normalizer {
 public:
  Normalizer() = default;

  /// \brief Fits means and standard deviations on row-points. Dimensions
  /// with zero variance get σ = 1 (pass-through after centering).
  static Result<Normalizer> Fit(const Matrix& points);

  /// \brief An identity normalizer of dimension `dim` (ablation off-arm).
  static Normalizer Identity(size_t dim);

  /// \brief Reconstructs a normalizer from stored moments
  /// (deserialization); stddev entries must be positive and finite.
  static Result<Normalizer> FromMoments(std::vector<double> mean,
                                        std::vector<double> stddev);

  /// \brief Transforms a matrix of row-points (must match dimension).
  Result<Matrix> Transform(const Matrix& points) const;

  /// \brief Transforms one point in place.
  Status TransformInPlace(std::vector<double>* point) const;

  /// \brief Inverse transform of one point (for reporting in raw units).
  Status InverseInPlace(std::vector<double>* point) const;

  /// \brief Multiplies the *output* of dimension j by `factor` (folded
  /// into the stored σ). Used for modality balancing: scaling each
  /// modality's block by 1/√(block dims) makes the blocks contribute
  /// equal expected mass to squared Euclidean distances, so the larger
  /// block (12 mocap dims vs 4 EMG dims on the hand) cannot out-vote the
  /// smaller one.
  Status ScaleOutput(size_t dimension, double factor);

  size_t dimension() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace mocemg

#endif  // MOCEMG_CORE_NORMALIZER_H_
