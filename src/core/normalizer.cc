#include "core/normalizer.h"

#include <cmath>

namespace mocemg {

Result<Normalizer> Normalizer::Fit(const Matrix& points) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("cannot fit normalizer on empty data");
  }
  Normalizer norm;
  norm.mean_.assign(d, 0.0);
  norm.stddev_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = points.RowPtr(i);
    for (size_t j = 0; j < d; ++j) norm.mean_[j] += row[j];
  }
  for (double& m : norm.mean_) m /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double* row = points.RowPtr(i);
    for (size_t j = 0; j < d; ++j) {
      const double delta = row[j] - norm.mean_[j];
      norm.stddev_[j] += delta * delta;
    }
  }
  for (double& s : norm.stddev_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s <= 0.0 || !std::isfinite(s)) s = 1.0;
  }
  return norm;
}

Result<Normalizer> Normalizer::FromMoments(std::vector<double> mean,
                                           std::vector<double> stddev) {
  if (mean.empty() || mean.size() != stddev.size()) {
    return Status::InvalidArgument("moment vectors empty or mismatched");
  }
  for (double s : stddev) {
    if (s <= 0.0 || !std::isfinite(s)) {
      return Status::InvalidArgument("stddev entries must be positive");
    }
  }
  Normalizer norm;
  norm.mean_ = std::move(mean);
  norm.stddev_ = std::move(stddev);
  return norm;
}

Normalizer Normalizer::Identity(size_t dim) {
  Normalizer norm;
  norm.mean_.assign(dim, 0.0);
  norm.stddev_.assign(dim, 1.0);
  return norm;
}

Result<Matrix> Normalizer::Transform(const Matrix& points) const {
  if (points.cols() != dimension()) {
    return Status::InvalidArgument(
        "normalizer dimension " + std::to_string(dimension()) +
        " does not match points of dimension " +
        std::to_string(points.cols()));
  }
  Matrix out = points;
  for (size_t i = 0; i < out.rows(); ++i) {
    double* row = out.RowPtr(i);
    for (size_t j = 0; j < dimension(); ++j) {
      row[j] = (row[j] - mean_[j]) / stddev_[j];
    }
  }
  return out;
}

Status Normalizer::TransformInPlace(std::vector<double>* point) const {
  if (point == nullptr || point->size() != dimension()) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  for (size_t j = 0; j < dimension(); ++j) {
    (*point)[j] = ((*point)[j] - mean_[j]) / stddev_[j];
  }
  return Status::OK();
}

Status Normalizer::ScaleOutput(size_t dimension, double factor) {
  if (dimension >= stddev_.size()) {
    return Status::OutOfRange("dimension outside normalizer");
  }
  if (factor <= 0.0 || !std::isfinite(factor)) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  stddev_[dimension] /= factor;
  return Status::OK();
}

Status Normalizer::InverseInPlace(std::vector<double>* point) const {
  if (point == nullptr || point->size() != dimension()) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  for (size_t j = 0; j < dimension(); ++j) {
    (*point)[j] = (*point)[j] * stddev_[j] + mean_[j];
  }
  return Status::OK();
}

}  // namespace mocemg
