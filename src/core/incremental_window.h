/// \file incremental_window.h
/// \brief Incremental sliding-window featurization: O(hop) per window
/// instead of O(window).
///
/// Consecutive windows share `window − hop` frames, and both window
/// features the paper uses are functions of streaming-updatable
/// statistics:
///
///  - The weighted-SVD joint feature (Eq. 2–3) depends on the w×3
///    window A only through its 3×3 Gram matrix G = AᵀA (σᵢ² and vᵢ are
///    G's eigenpairs). JointGramState maintains G under rank-1 row
///    add/remove as the window slides and obtains (σᵢ, vᵢ) from the
///    allocation-free 3×3 eigensolver in linalg/gram_svd.h.
///  - The scalar EMG features (Eq. 1 and the Hudgins family) are plain
///    running sums — see EmgWindowSums in emg/features.h.
///
/// Numerical contract (property-tested at 1e-10 relative tolerance, see
/// DESIGN.md §9): the incremental path may differ from the exact path
/// only by float round-off, bounded by two mechanisms. A periodic exact
/// refresh every K windows (WindowFeatureOptions::gram_refresh_interval)
/// caps accumulated add/remove drift, and a per-window conditioning
/// guard falls back to the exact Jacobi SVD whenever the Gram spectrum
/// cannot support the tolerance: the Gram matrix squares the condition
/// number, so small or tightly-clustered eigenvalues lose digits the
/// one-sided path keeps. The guard triggers on (a) λmin/λmax below
/// WindowFeatureOptions::gram_condition_floor, (b) an eigenvalue pair
/// closer than its perturbation-theory error budget (clustered
/// eigenvalues make the eigenbasis — and hence the Eq. 3 sum — wander),
/// and (c) a numerically ambiguous sign convention (two components of a
/// singular vector tied in magnitude). Fallbacks recompute that
/// joint-window exactly, so degenerate inputs (constant joints,
/// rank-deficient windows) produce byte-identical results to the exact
/// path.
///
/// Determinism contract: all state updates are sequential per chunk and
/// chunk decomposition is a pure function of (num_windows, grain)
/// (util/parallel.h), so batch extraction is bit-identical at every
/// thread count; a fixed featurization mode changes results only within
/// the round-off bound above.

#ifndef MOCEMG_CORE_INCREMENTAL_WINDOW_H_
#define MOCEMG_CORE_INCREMENTAL_WINDOW_H_

#include <cstddef>

#include "linalg/gram_svd.h"
#include "util/status.h"

namespace mocemg {

/// \brief Which featurization engine ExtractWindowFeatures and
/// StreamingClassifier use. A performance knob, not a model parameter:
/// it is not serialized with trained models and any mode may classify
/// with any model.
enum class FeaturizationMode : int {
  /// Recompute every window from scratch (the reference path).
  kExact = 0,
  /// Slide per-joint Gram matrices and per-channel running sums.
  kIncremental = 1,
  /// Pick incremental exactly when consecutive windows overlap
  /// (hop < window); with disjoint windows nothing carries over, so
  /// exact is both the fast and the simple choice.
  kAuto = 2,
};

const char* FeaturizationModeName(FeaturizationMode mode);

/// \brief Resolves kAuto for a concrete window/hop geometry; kExact and
/// kIncremental pass through.
FeaturizationMode ResolveFeaturizationMode(FeaturizationMode mode,
                                           size_t window_frames,
                                           size_t hop_frames);

/// \brief The 3×3 Gram matrix G = AᵀA of one joint's current w×3
/// window, maintained under row insertion and removal in O(1) per row.
class JointGramState {
 public:
  /// Clears to the empty window (G = 0).
  void Reset();

  /// Adds / removes the contribution of one frame's local position
  /// `xyz` (3 doubles). Removal must only be applied to rows previously
  /// added; the symmetric update costs 6 multiplies either way.
  void AddRow(const double* xyz);
  void RemoveRow(const double* xyz);

  /// Exact recomputation from `w` contiguous rows (row-major w×3) —
  /// the drift-bounding refresh and the seed for a run's first window.
  void Refresh(const double* rows, size_t w);

  /// Slides from window rows [old_begin, old_end) to
  /// [new_begin, new_end) of the row-major track whose row i starts at
  /// `track + 3*i`. Requires forward motion; disjoint spans degrade to
  /// Refresh over the new span.
  void Slide(const double* track, size_t old_begin, size_t old_end,
             size_t new_begin, size_t new_end);

  /// Computes the Eq. 3 weighted-SVD feature from the maintained Gram
  /// matrix into `out3` and returns true, or returns false when the
  /// conditioning guard demands the exact path (see the file comment;
  /// `condition_floor` is WindowFeatureOptions::gram_condition_floor).
  /// An all-zero spectrum emits the zero vector (the documented
  /// stationary-joint convention), matching the exact path.
  ///
  /// `fresh` declares that the state was recomputed from the window
  /// rows (Refresh) rather than slid into place. A fresh Gram carries
  /// only the w-term accumulation round-off (≈ 2e-15 relative) instead
  /// of the up-to-K-slides drift the guard budgets for (≈ 1e-14), so
  /// the spectrum guards relax by that error ratio: the gap floor drops
  /// 10× and the condition floor 100× (the condition-floor error bound
  /// scales with √(λ0/λ2), hence the square). Callers use this to retry
  /// a guard rejection after an exact refresh before paying the full
  /// one-sided SVD.
  /// Not const: each solve caches its eigenbasis to warm-start the
  /// next one — the window slides one hop between calls, so the basis
  /// barely rotates and most Jacobi rotations are skipped (see
  /// ComputeSvdFromGram3's warm-started overload).
  bool WeightedSvdFeature(double condition_floor, double* out3,
                          bool fresh = false);

  /// Split form of WeightedSvdFeature for solving several joints'
  /// eigenproblems together: FillTask points `task` at this state's
  /// Gram matrix, warm basis, and result slot; after
  /// ComputeSvdFromGram3Many runs the tasks (interleaving the serial
  /// rotation chains of independent joints), FinishSolve applies the
  /// same guard chain, warm-basis caching, and feature emission as
  /// WeightedSvdFeature. FillTask → Many → FinishSolve is bit-identical
  /// to WeightedSvdFeature per joint; on a guard rejection `out3` is
  /// left untouched for the exact path to fill.
  void FillTask(GramSvd3Task* task);
  bool FinishSolve(const GramSvd3Task& task, double condition_floor,
                   double* out3, bool fresh = false);

  /// The packed symmetric Gram [xx, xy, xz, yy, yz, zz].
  const double* packed() const { return g_; }

 private:
  double g_[6] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  double warm_v_[9] = {0.0};
  GramSvd3 eig_;
  bool has_warm_ = false;
};

}  // namespace mocemg

#endif  // MOCEMG_CORE_INCREMENTAL_WINDOW_H_
