/// \file classifier.h
/// \brief End-to-end facade over the paper's pipeline: condition EMG →
/// local-transform mocap → window features (IAV ⊕ weighted SVD) →
/// normalize → FCM codebook → final 2c feature vectors → nearest-
/// neighbour classification / retrieval. This is the type a downstream
/// application holds.

#ifndef MOCEMG_CORE_CLASSIFIER_H_
#define MOCEMG_CORE_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/codebook.h"
#include "core/normalizer.h"
#include "core/stream_health.h"
#include "core/window_features.h"
#include "db/motion_database.h"
#include "emg/acquisition.h"
#include "util/result.h"

namespace mocemg {

/// \brief One training motion: the synchronized capture plus its label.
struct LabeledMotion {
  MotionSequence mocap;  ///< global coordinates, capture frame rate
  EmgRecording emg;      ///< raw (signed, high-rate) unless
                         ///< ClassifierOptions::condition_emg is false
  size_t label = 0;
  std::string label_name;
};

/// \brief Clustering backend for the codebook.
enum class ClusterMethod : int {
  /// The paper's fuzzy c-means with membership min/max features.
  kFuzzyCMeans = 0,
  /// Hard k-means with vote-fraction features (ablation A2).
  kKmeansHard = 1,
};

/// \brief Full pipeline configuration.
struct ClassifierOptions {
  WindowFeatureOptions features;
  FcmOptions fcm;
  AcquisitionOptions acquisition;
  /// When true (default) LabeledMotion::emg / query EMG is raw and the
  /// acquisition chain is applied; set false if inputs are already
  /// conditioned to the mocap frame rate.
  bool condition_emg = true;
  /// z-score the window features before clustering (ablation A4).
  bool normalize_features = true;
  /// After z-scoring, scale each modality block by 1/√(its dimension) so
  /// EMG and mocap contribute equal expected mass to the Euclidean
  /// metric FCM clusters with. Without this, the hand's 12 mocap
  /// dimensions out-vote its 4 EMG dimensions ~3:1 and the "integration"
  /// degenerates toward mocap-only (ablation A4 quantifies it).
  bool balance_modalities = true;
  ClusterMethod cluster_method = ClusterMethod::kFuzzyCMeans;
  /// Additionally train mocap-only and EMG-only fallback sub-models so
  /// ClassifyRobust can survive the total loss of one modality. Off by
  /// default: it triples training cost and most callers never degrade.
  bool train_fallbacks = false;
  /// Thresholds for the degraded-capture path (ClassifyRobust).
  StreamHealthOptions health;
  /// Trial-level parallelism for Train's featurization pass and the
  /// final-feature pass. Window-level (features.parallel) and FCM
  /// (fcm.parallel) parallelism nest under it and automatically run
  /// inline inside a parallel region. Trained models are bit-identical
  /// for every max_threads.
  ParallelOptions parallel;
};

/// \brief A retrieval hit.
struct MotionMatch {
  size_t index = 0;      ///< position in the training set
  size_t label = 0;
  double distance = 0.0;  ///< Euclidean distance in final-feature space
};

/// \brief Which feature subspace produced a decision.
enum class ClassifierMode : int {
  kFull = 0,       ///< integrated EMG ⊕ mocap features (the paper)
  kMocapOnly = 1,  ///< EMG unusable → mocap-only fallback sub-model
  kEmgOnly = 2,    ///< mocap unusable → EMG-only fallback sub-model
};

/// \brief Stable lower-case name ("full", "mocap_only", "emg_only").
const char* ClassifierModeName(ClassifierMode mode);

/// \brief A decision from the degraded-capture path, carrying the full
/// health diagnosis alongside the label.
struct RobustDecision {
  size_t label = 0;
  std::string label_name;
  ClassifierMode mode = ClassifierMode::kFull;
  /// True whenever the decision was not made on pristine full-modality
  /// data — a repair, mask, notch, or modality fallback was involved.
  bool degraded = false;
  StreamHealthReport health;
  std::vector<MotionMatch> matches;  ///< from the deciding sub-model
};

/// \brief Trained classifier: codebook + normalizer + the database's
/// final feature vectors.
class MotionClassifier {
 public:
  MotionClassifier() = default;

  /// \brief Trains the full pipeline on labelled captures. All motions
  /// must share marker set/channel layout; fails otherwise.
  static Result<MotionClassifier> Train(
      const std::vector<LabeledMotion>& motions,
      const ClassifierOptions& options);

  /// \brief Reassembles a classifier from persisted parts (model_io.h).
  /// `final_features` rows must match labels/names; the feature length
  /// must agree with the codebook under the options' cluster method.
  /// Note: `options.balance_modalities` is already folded into the
  /// persisted normalizer, so FromParts must not re-apply it.
  static Result<MotionClassifier> FromParts(
      const ClassifierOptions& options, Normalizer normalizer,
      FcmCodebook codebook, Matrix final_features,
      std::vector<size_t> labels, std::vector<std::string> label_names);

  /// \brief Runs the feature pipeline on one (query) capture and returns
  /// its final feature vector (length 2c for FCM, c for the hard-cluster
  /// ablation).
  Result<std::vector<double>> Featurize(const MotionSequence& mocap,
                                        const EmgRecording& emg) const;

  /// \brief k nearest training motions to a final feature vector,
  /// ascending by distance.
  Result<std::vector<MotionMatch>> NearestNeighbors(
      const std::vector<double>& final_feature, size_t k) const;

  /// \brief Classifies a capture by its nearest neighbour's label.
  Result<size_t> Classify(const MotionSequence& mocap,
                          const EmgRecording& emg) const;

  /// \brief Classifies a batch of captures: a parallel featurization
  /// pass over the trials, then one batched retrieval through a
  /// QueryServer over the final-feature database (blocked many-to-many
  /// kernels instead of num_trials one-to-many sweeps). Falls back to
  /// per-trial Classify when the final database is unavailable.
  /// `trials[i].label` is ignored; element i of the result equals
  /// Classify(trials[i].mocap, trials[i].emg) exactly — the batched
  /// kernels and the per-pair kernels agree bitwise and both paths
  /// break distance ties toward the smaller training index — so
  /// results are bit-identical at any thread count. On failure,
  /// returns the failing trial's error with its index in the message
  /// (lowest failing index among executed chunks).
  Result<std::vector<size_t>> ClassifyBatch(
      const std::vector<LabeledMotion>& trials,
      const ParallelOptions& parallel = {}) const;

  /// \brief Degradation-aware classification. Assesses stream health,
  /// repairs what is repairable (bounded marker-gap interpolation, notch
  /// at a detected hum frequency), masks dead EMG channels to their
  /// neutral (training-mean) feature values, and — when a whole modality
  /// is unusable and fallbacks were trained — decides in the healthy
  /// modality's subspace. Fails with FailedPrecondition when both
  /// modalities are unusable, or when one is unusable and no fallback
  /// exists (surfaced, never silently guessed). `k` sets how many
  /// matches the decision carries.
  Result<RobustDecision> ClassifyRobust(const MotionSequence& mocap,
                                        const EmgRecording& emg,
                                        size_t k = 1) const;

  /// \brief True when the modality-fallback sub-models are available
  /// (trained with ClassifierOptions::train_fallbacks).
  bool has_fallbacks() const {
    return mocap_only_ != nullptr && emg_only_ != nullptr;
  }

  /// \brief The sub-model deciding in `mode` (`this` for kFull); null if
  /// that fallback was not trained.
  const MotionClassifier* submodel(ClassifierMode mode) const;

  /// \brief The training set's final features as a MotionDatabase —
  /// the retrieval-side view of this classifier (record i holds final
  /// feature row i with labels_[i]). Built once at Train/FromParts;
  /// null only if that build failed (batch classification then uses
  /// the per-trial path). Callers use it to build a FeatureIndex or a
  /// QueryServer over the trained model.
  const MotionDatabase* final_database() const { return final_db_.get(); }

  /// \brief Training-set final features as rows (one per motion).
  const Matrix& final_features() const { return final_features_; }
  const std::vector<size_t>& labels() const { return labels_; }
  const std::vector<std::string>& label_names() const {
    return label_names_;
  }
  const FcmCodebook& codebook() const { return codebook_; }
  const Normalizer& normalizer() const { return normalizer_; }
  const ClassifierOptions& options() const { return options_; }
  size_t num_motions() const { return labels_.size(); }

 private:
  /// Window features of one capture, normalized.
  Result<Matrix> WindowPoints(const MotionSequence& mocap,
                              const EmgRecording& emg) const;
  Result<std::vector<double>> FinalFeature(const Matrix& points) const;
  /// Like WindowPoints, but with explicit (possibly notch-augmented)
  /// options and dead EMG channels neutralized to the training mean
  /// before the z-score transform (so they land at exactly 0).
  Result<Matrix> WindowPointsMasked(
      const MotionSequence& mocap, const EmgRecording& emg,
      const ClassifierOptions& options,
      const std::vector<size_t>* masked_channels) const;
  /// Populates final_db_ from final_features_/labels_; clears it on
  /// any insert failure (best-effort — the per-trial path still works).
  void BuildFinalDatabase();

  ClassifierOptions options_;
  Normalizer normalizer_;
  FcmCodebook codebook_;
  Matrix final_features_;
  std::vector<size_t> labels_;
  std::vector<std::string> label_names_;
  /// Modality-fallback sub-models (shared so the classifier stays
  /// copyable); null unless trained with train_fallbacks.
  std::shared_ptr<const MotionClassifier> mocap_only_;
  std::shared_ptr<const MotionClassifier> emg_only_;
  /// Retrieval-side view of final_features_ (shared so the classifier
  /// stays copyable; immutable after construction).
  std::shared_ptr<const MotionDatabase> final_db_;
};

}  // namespace mocemg

#endif  // MOCEMG_CORE_CLASSIFIER_H_
