/// \file classifier.h
/// \brief End-to-end facade over the paper's pipeline: condition EMG →
/// local-transform mocap → window features (IAV ⊕ weighted SVD) →
/// normalize → FCM codebook → final 2c feature vectors → nearest-
/// neighbour classification / retrieval. This is the type a downstream
/// application holds.

#ifndef MOCEMG_CORE_CLASSIFIER_H_
#define MOCEMG_CORE_CLASSIFIER_H_

#include <string>
#include <vector>

#include "core/codebook.h"
#include "core/normalizer.h"
#include "core/window_features.h"
#include "emg/acquisition.h"
#include "util/result.h"

namespace mocemg {

/// \brief One training motion: the synchronized capture plus its label.
struct LabeledMotion {
  MotionSequence mocap;  ///< global coordinates, capture frame rate
  EmgRecording emg;      ///< raw (signed, high-rate) unless
                         ///< ClassifierOptions::condition_emg is false
  size_t label = 0;
  std::string label_name;
};

/// \brief Clustering backend for the codebook.
enum class ClusterMethod : int {
  /// The paper's fuzzy c-means with membership min/max features.
  kFuzzyCMeans = 0,
  /// Hard k-means with vote-fraction features (ablation A2).
  kKmeansHard = 1,
};

/// \brief Full pipeline configuration.
struct ClassifierOptions {
  WindowFeatureOptions features;
  FcmOptions fcm;
  AcquisitionOptions acquisition;
  /// When true (default) LabeledMotion::emg / query EMG is raw and the
  /// acquisition chain is applied; set false if inputs are already
  /// conditioned to the mocap frame rate.
  bool condition_emg = true;
  /// z-score the window features before clustering (ablation A4).
  bool normalize_features = true;
  /// After z-scoring, scale each modality block by 1/√(its dimension) so
  /// EMG and mocap contribute equal expected mass to the Euclidean
  /// metric FCM clusters with. Without this, the hand's 12 mocap
  /// dimensions out-vote its 4 EMG dimensions ~3:1 and the "integration"
  /// degenerates toward mocap-only (ablation A4 quantifies it).
  bool balance_modalities = true;
  ClusterMethod cluster_method = ClusterMethod::kFuzzyCMeans;
};

/// \brief A retrieval hit.
struct MotionMatch {
  size_t index = 0;      ///< position in the training set
  size_t label = 0;
  double distance = 0.0;  ///< Euclidean distance in final-feature space
};

/// \brief Trained classifier: codebook + normalizer + the database's
/// final feature vectors.
class MotionClassifier {
 public:
  MotionClassifier() = default;

  /// \brief Trains the full pipeline on labelled captures. All motions
  /// must share marker set/channel layout; fails otherwise.
  static Result<MotionClassifier> Train(
      const std::vector<LabeledMotion>& motions,
      const ClassifierOptions& options);

  /// \brief Reassembles a classifier from persisted parts (model_io.h).
  /// `final_features` rows must match labels/names; the feature length
  /// must agree with the codebook under the options' cluster method.
  /// Note: `options.balance_modalities` is already folded into the
  /// persisted normalizer, so FromParts must not re-apply it.
  static Result<MotionClassifier> FromParts(
      const ClassifierOptions& options, Normalizer normalizer,
      FcmCodebook codebook, Matrix final_features,
      std::vector<size_t> labels, std::vector<std::string> label_names);

  /// \brief Runs the feature pipeline on one (query) capture and returns
  /// its final feature vector (length 2c for FCM, c for the hard-cluster
  /// ablation).
  Result<std::vector<double>> Featurize(const MotionSequence& mocap,
                                        const EmgRecording& emg) const;

  /// \brief k nearest training motions to a final feature vector,
  /// ascending by distance.
  Result<std::vector<MotionMatch>> NearestNeighbors(
      const std::vector<double>& final_feature, size_t k) const;

  /// \brief Classifies a capture by its nearest neighbour's label.
  Result<size_t> Classify(const MotionSequence& mocap,
                          const EmgRecording& emg) const;

  /// \brief Training-set final features as rows (one per motion).
  const Matrix& final_features() const { return final_features_; }
  const std::vector<size_t>& labels() const { return labels_; }
  const std::vector<std::string>& label_names() const {
    return label_names_;
  }
  const FcmCodebook& codebook() const { return codebook_; }
  const Normalizer& normalizer() const { return normalizer_; }
  const ClassifierOptions& options() const { return options_; }
  size_t num_motions() const { return labels_.size(); }

 private:
  /// Window features of one capture, normalized.
  Result<Matrix> WindowPoints(const MotionSequence& mocap,
                              const EmgRecording& emg) const;
  Result<std::vector<double>> FinalFeature(const Matrix& points) const;

  ClassifierOptions options_;
  Normalizer normalizer_;
  FcmCodebook codebook_;
  Matrix final_features_;
  std::vector<size_t> labels_;
  std::vector<std::string> label_names_;
};

}  // namespace mocemg

#endif  // MOCEMG_CORE_CLASSIFIER_H_
