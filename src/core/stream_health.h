/// \file stream_health.h
/// \brief Online health assessment and bounded repair of degraded capture
/// streams. A deployed rig — unlike the paper's pristine 16-camera Vicon
/// + hardware-triggered Delsys lab — routinely delivers occluded markers
/// (NaN runs), lifted electrodes (flatlined channels), clipped
/// amplifiers, and mains-hum contamination. StreamHealth detects these
/// conditions per marker / per channel, repairs what is repairable
/// (bounded-gap interpolation for markers; hum is repairable downstream
/// by a notch filter), and reports per-modality usability so the
/// classifier can degrade gracefully instead of emitting garbage
/// (see MotionClassifier::ClassifyRobust).
///
/// Policy summary (full rationale in DESIGN.md §Robustness):
///  - repaired: interior marker gaps ≤ max_repair_gap_frames (linear
///    interpolation), edge gaps ≤ bound (nearest-frame hold), hum
///    (notch at the detected line frequency);
///  - masked:   flatlined / saturated EMG channels (neutralized per
///    window by the classifier, provided ≤ half the channels are dead);
///  - surfaced: markers occluded beyond max_occlusion_fraction, gaps
///    beyond the repair bound, or a majority of dead channels — the
///    affected modality is flagged unusable and the classifier falls
///    back to the healthy one.

#ifndef MOCEMG_CORE_STREAM_HEALTH_H_
#define MOCEMG_CORE_STREAM_HEALTH_H_

#include <string>
#include <vector>

#include "emg/emg_recording.h"
#include "mocap/motion_sequence.h"
#include "util/result.h"

namespace mocemg {

/// \brief Detection thresholds and repair bounds.
struct StreamHealthOptions {
  /// Longest marker gap (frames) repaired by interpolation/hold; at the
  /// default 120 Hz this is 100 ms, comfortably within limb-motion
  /// coherence time.
  size_t max_repair_gap_frames = 12;
  /// A marker missing more than this fraction of frames is unusable even
  /// if every individual gap is repairable.
  double max_occlusion_fraction = 0.4;
  /// Tolerated fraction of frames in gaps beyond the repair bound
  /// (filled by hold to stay finite, but fabricated).
  double max_unrepaired_fraction = 0.1;
  /// Channel variance (V²) below which it is a flatline. Surface EMG at
  /// rest still shows µV-scale noise (variance ≳ 1e-12 V²).
  double flatline_variance_floor = 1e-14;
  /// Fraction of samples at the channel's peak |amplitude| above which
  /// the channel counts as saturated (a clean stochastic signal touches
  /// within 2% of its peak only a vanishing fraction of the time).
  double saturation_clip_fraction_max = 0.1;
  /// Fraction of total signal power at a probed line frequency above
  /// which the channel is hum-contaminated.
  double hum_power_ratio_max = 0.25;
  /// Line frequencies probed (Hz); both major grids by default.
  std::vector<double> hum_probe_hz = {50.0, 60.0};
  /// EMG stays usable (with dead channels masked) while at most this
  /// fraction of channels is dead; beyond it the modality is unusable.
  double max_masked_channel_fraction = 0.5;
};

/// \brief Per-marker occlusion diagnosis.
struct MarkerHealth {
  size_t marker_index = 0;
  size_t missing_frames = 0;    ///< frames with any non-finite coordinate
  size_t longest_gap = 0;       ///< longest missing run (frames)
  size_t repairable_frames = 0; ///< missing frames within the repair bound
  size_t unrepaired_frames = 0; ///< missing frames beyond the bound
  double health = 1.0;          ///< 1 − missing fraction
  bool usable = true;
};

/// \brief Per-channel EMG diagnosis.
struct ChannelHealth {
  size_t channel = 0;
  size_t non_finite = 0;     ///< NaN/inf samples (always fatal)
  double variance = 0.0;     ///< V²
  double clip_fraction = 0.0;
  double hum_ratio = 0.0;    ///< strongest probed line-frequency share
  double hum_freq_hz = 0.0;  ///< frequency attaining hum_ratio
  bool flatline = false;
  bool saturated = false;
  bool hum_contaminated = false;  ///< repairable (notch), not fatal
  double health = 1.0;
  bool usable = true;
};

/// \brief Joint diagnosis of one synchronized capture.
struct StreamHealthReport {
  std::vector<MarkerHealth> markers;
  std::vector<ChannelHealth> channels;
  double mocap_health = 1.0;  ///< worst marker health
  double emg_health = 1.0;    ///< usable-channel fraction
  bool mocap_usable = true;
  bool emg_usable = true;
  /// Dead channels the classifier should neutralize per window (set only
  /// when emg_usable).
  std::vector<size_t> masked_channels;
  /// Hum detected on any channel; repair = notch at `hum_freq_hz`.
  bool hum_detected = false;
  double hum_freq_hz = 0.0;
  /// Any repair (interpolation/hold/mask/notch) was or will be applied.
  bool any_repair = false;

  /// \brief One-line diagnosis for logs and decision structs.
  std::string Summary() const;
};

/// \brief Detector + repairer. Stateless between calls; cheap to
/// construct per capture or hold per session.
class StreamHealth {
 public:
  StreamHealth() = default;
  explicit StreamHealth(StreamHealthOptions options)
      : options_(std::move(options)) {}

  /// \brief Assesses both streams and aggregates modality usability.
  /// Neither stream is modified. `emg` may be raw or conditioned; the
  /// detectors are scale-free except the flatline variance floor.
  Result<StreamHealthReport> Assess(const MotionSequence& mocap,
                                    const EmgRecording& emg) const;

  /// \brief Per-marker gap diagnosis only.
  Result<std::vector<MarkerHealth>> AssessMocap(
      const MotionSequence& mocap) const;

  /// \brief Per-channel diagnosis only.
  Result<std::vector<ChannelHealth>> AssessEmg(
      const EmgRecording& emg) const;

  /// \brief Returns a fully finite copy of `mocap`: interior gaps within
  /// the repair bound are linearly interpolated, edge gaps held at the
  /// nearest captured frame, and over-bound gaps filled the same way but
  /// counted as unrepaired (fabricated) data. A marker with no captured
  /// frame at all is zero-filled. When `report` is non-null its marker
  /// entries and `any_repair` flag are updated.
  Result<MotionSequence> RepairMocap(const MotionSequence& mocap,
                                     StreamHealthReport* report) const;

  const StreamHealthOptions& options() const { return options_; }

 private:
  MarkerHealth DiagnoseMarker(const MotionSequence& mocap,
                              size_t marker) const;

  StreamHealthOptions options_;
};

}  // namespace mocemg

#endif  // MOCEMG_CORE_STREAM_HEALTH_H_
