#include "core/model_io.h"

#include <sstream>

#include "util/csv.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace mocemg {
namespace {

constexpr char kMagic[] = "MOCEMGM1";

const char* ClusterMethodName(ClusterMethod method) {
  return method == ClusterMethod::kFuzzyCMeans ? "fcm" : "kmeans_hard";
}

Result<ClusterMethod> ClusterMethodFromName(std::string_view name) {
  if (name == "fcm") return ClusterMethod::kFuzzyCMeans;
  if (name == "kmeans_hard") return ClusterMethod::kKmeansHard;
  return Status::ParseError("unknown cluster method '" +
                            std::string(name) + "'");
}

Result<EmgFeatureKind> EmgFeatureFromName(std::string_view name) {
  for (EmgFeatureKind kind :
       {EmgFeatureKind::kIav, EmgFeatureKind::kMav, EmgFeatureKind::kRms,
        EmgFeatureKind::kWaveformLength, EmgFeatureKind::kZeroCrossings,
        EmgFeatureKind::kAr4}) {
    if (name == EmgFeatureKindName(kind)) return kind;
  }
  return Status::ParseError("unknown EMG feature '" + std::string(name) +
                            "'");
}

Result<MocapFeatureKind> MocapFeatureFromName(std::string_view name) {
  for (MocapFeatureKind kind :
       {MocapFeatureKind::kWeightedSvd, MocapFeatureKind::kMeanPosition,
        MocapFeatureKind::kDisplacement}) {
    if (name == MocapFeatureKindName(kind)) return kind;
  }
  return Status::ParseError("unknown mocap feature '" +
                            std::string(name) + "'");
}

void WriteVector(std::ostringstream* out, const char* key,
                 const std::vector<double>& v) {
  *out << key;
  for (double x : v) *out << '\t' << FormatDouble(x, 12);
  *out << '\n';
}

// One parsed "key<TAB>fields..." line.
struct Line {
  std::string key;
  std::vector<std::string> fields;
};

class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  /// Next non-empty line; fails at end of input.
  Result<Line> Next(const char* expected_key = nullptr) {
    std::string raw;
    while (std::getline(in_, raw)) {
      if (!raw.empty() && raw.back() == '\r') raw.pop_back();
      if (Trim(raw).empty()) continue;
      std::vector<std::string> parts = Split(raw, '\t');
      Line line;
      line.key = parts[0];
      line.fields.assign(parts.begin() + 1, parts.end());
      if (expected_key != nullptr && line.key != expected_key) {
        return Status::ParseError("expected key '" +
                                  std::string(expected_key) + "', got '" +
                                  line.key + "'");
      }
      return line;
    }
    return Status::ParseError(
        std::string("model truncated; expected ") +
        (expected_key ? expected_key : "more data"));
  }

 private:
  std::istringstream in_;
};

Result<double> OneDouble(const Line& line) {
  if (line.fields.size() != 1) {
    return Status::ParseError("key '" + line.key + "' needs one value");
  }
  return ParseDouble(line.fields[0]);
}

Result<std::vector<double>> AllDoubles(const Line& line, size_t expected) {
  if (line.fields.size() != expected) {
    return Status::ParseError(
        "key '" + line.key + "' carries " +
        std::to_string(line.fields.size()) + " values, expected " +
        std::to_string(expected));
  }
  std::vector<double> out;
  out.reserve(expected);
  for (const auto& f : line.fields) {
    MOCEMG_ASSIGN_OR_RETURN(double v, ParseDouble(f));
    out.push_back(v);
  }
  return out;
}

}  // namespace

Result<std::string> SerializeClassifier(
    const MotionClassifier& classifier) {
  if (classifier.num_motions() == 0) {
    return Status::FailedPrecondition("classifier is not trained");
  }
  const ClassifierOptions& opts = classifier.options();
  std::ostringstream out;
  out << kMagic << '\n';
  out << "window_ms\t" << FormatDouble(opts.features.window_ms, 6) << '\n';
  out << "hop_ms\t" << FormatDouble(opts.features.hop_ms, 6) << '\n';
  out << "hop_frames\t" << opts.features.hop_frames << '\n';
  out << "use_emg\t" << (opts.features.use_emg ? 1 : 0) << '\n';
  out << "use_mocap\t" << (opts.features.use_mocap ? 1 : 0) << '\n';
  out << "emg_feature\t" << EmgFeatureKindName(opts.features.emg_feature)
      << '\n';
  out << "mocap_feature\t"
      << MocapFeatureKindName(opts.features.mocap_feature) << '\n';
  out << "normalize_heading\t"
      << (opts.features.local_transform.normalize_heading ? 1 : 0) << '\n';
  out << "condition_emg\t" << (opts.condition_emg ? 1 : 0) << '\n';
  out << "band_low_hz\t" << FormatDouble(opts.acquisition.band_low_hz, 6)
      << '\n';
  out << "band_high_hz\t"
      << FormatDouble(opts.acquisition.band_high_hz, 6) << '\n';
  out << "filter_order\t" << opts.acquisition.filter_order << '\n';
  out << "cluster_method\t" << ClusterMethodName(opts.cluster_method)
      << '\n';
  out << "fuzziness\t"
      << FormatDouble(classifier.codebook().fuzziness(), 6) << '\n';

  out << "dim\t" << classifier.codebook().dimension() << '\n';
  out << "clusters\t" << classifier.codebook().num_clusters() << '\n';
  WriteVector(&out, "normalizer_mean", classifier.normalizer().mean());
  WriteVector(&out, "normalizer_stddev",
              classifier.normalizer().stddev());
  for (size_t i = 0; i < classifier.codebook().num_clusters(); ++i) {
    WriteVector(&out, "center", classifier.codebook().centers().Row(i));
  }

  out << "motions\t" << classifier.num_motions() << '\t'
      << classifier.final_features().cols() << '\n';
  for (size_t i = 0; i < classifier.num_motions(); ++i) {
    out << "motion\t" << classifier.labels()[i] << '\t'
        << classifier.label_names()[i];
    for (double v : classifier.final_features().Row(i)) {
      out << '\t' << FormatDouble(v, 12);
    }
    out << '\n';
  }
  return out.str();
}

Result<MotionClassifier> DeserializeClassifier(const std::string& text) {
  LineReader reader(text);
  MOCEMG_ASSIGN_OR_RETURN(Line magic, reader.Next());
  if (magic.key != kMagic) {
    return Status::ParseError("not a mocemg model (bad magic '" +
                              magic.key + "')");
  }

  ClassifierOptions opts;
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("window_ms"));
    MOCEMG_ASSIGN_OR_RETURN(opts.features.window_ms, OneDouble(l));
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("hop_ms"));
    MOCEMG_ASSIGN_OR_RETURN(opts.features.hop_ms, OneDouble(l));
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("hop_frames"));
    MOCEMG_ASSIGN_OR_RETURN(double v, OneDouble(l));
    opts.features.hop_frames = static_cast<size_t>(v);
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("use_emg"));
    MOCEMG_ASSIGN_OR_RETURN(double v, OneDouble(l));
    opts.features.use_emg = v != 0.0;
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("use_mocap"));
    MOCEMG_ASSIGN_OR_RETURN(double v, OneDouble(l));
    opts.features.use_mocap = v != 0.0;
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("emg_feature"));
    if (l.fields.size() != 1) return Status::ParseError("emg_feature");
    MOCEMG_ASSIGN_OR_RETURN(opts.features.emg_feature,
                            EmgFeatureFromName(l.fields[0]));
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("mocap_feature"));
    if (l.fields.size() != 1) return Status::ParseError("mocap_feature");
    MOCEMG_ASSIGN_OR_RETURN(opts.features.mocap_feature,
                            MocapFeatureFromName(l.fields[0]));
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("normalize_heading"));
    MOCEMG_ASSIGN_OR_RETURN(double v, OneDouble(l));
    opts.features.local_transform.normalize_heading = v != 0.0;
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("condition_emg"));
    MOCEMG_ASSIGN_OR_RETURN(double v, OneDouble(l));
    opts.condition_emg = v != 0.0;
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("band_low_hz"));
    MOCEMG_ASSIGN_OR_RETURN(opts.acquisition.band_low_hz, OneDouble(l));
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("band_high_hz"));
    MOCEMG_ASSIGN_OR_RETURN(opts.acquisition.band_high_hz, OneDouble(l));
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("filter_order"));
    MOCEMG_ASSIGN_OR_RETURN(double v, OneDouble(l));
    opts.acquisition.filter_order = static_cast<int>(v);
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("cluster_method"));
    if (l.fields.size() != 1) return Status::ParseError("cluster_method");
    MOCEMG_ASSIGN_OR_RETURN(opts.cluster_method,
                            ClusterMethodFromName(l.fields[0]));
  }
  double fuzziness = 2.0;
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("fuzziness"));
    MOCEMG_ASSIGN_OR_RETURN(fuzziness, OneDouble(l));
  }

  size_t dim = 0;
  size_t clusters = 0;
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("dim"));
    MOCEMG_ASSIGN_OR_RETURN(double v, OneDouble(l));
    dim = static_cast<size_t>(v);
  }
  {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("clusters"));
    MOCEMG_ASSIGN_OR_RETURN(double v, OneDouble(l));
    clusters = static_cast<size_t>(v);
  }
  if (dim == 0 || clusters == 0) {
    return Status::ParseError("model declares zero dim or clusters");
  }

  MOCEMG_ASSIGN_OR_RETURN(Line mean_line, reader.Next("normalizer_mean"));
  MOCEMG_ASSIGN_OR_RETURN(std::vector<double> mean,
                          AllDoubles(mean_line, dim));
  MOCEMG_ASSIGN_OR_RETURN(Line std_line, reader.Next("normalizer_stddev"));
  MOCEMG_ASSIGN_OR_RETURN(std::vector<double> stddev,
                          AllDoubles(std_line, dim));
  MOCEMG_ASSIGN_OR_RETURN(Normalizer normalizer,
                          Normalizer::FromMoments(std::move(mean),
                                                  std::move(stddev)));

  Matrix centers(clusters, dim);
  for (size_t i = 0; i < clusters; ++i) {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("center"));
    MOCEMG_ASSIGN_OR_RETURN(std::vector<double> row, AllDoubles(l, dim));
    centers.SetRow(i, row);
  }
  MOCEMG_ASSIGN_OR_RETURN(
      FcmCodebook codebook,
      FcmCodebook::FromCenters(std::move(centers), fuzziness));

  MOCEMG_ASSIGN_OR_RETURN(Line motions_line, reader.Next("motions"));
  if (motions_line.fields.size() != 2) {
    return Status::ParseError("'motions' needs count and feature length");
  }
  MOCEMG_ASSIGN_OR_RETURN(int64_t count, ParseInt(motions_line.fields[0]));
  MOCEMG_ASSIGN_OR_RETURN(int64_t flen, ParseInt(motions_line.fields[1]));
  if (count <= 0 || flen <= 0) {
    return Status::ParseError("non-positive motion count/feature length");
  }

  Matrix finals(static_cast<size_t>(count), static_cast<size_t>(flen));
  std::vector<size_t> labels;
  std::vector<std::string> names;
  for (int64_t i = 0; i < count; ++i) {
    MOCEMG_ASSIGN_OR_RETURN(Line l, reader.Next("motion"));
    if (l.fields.size() != 2 + static_cast<size_t>(flen)) {
      return Status::ParseError("motion row " + std::to_string(i) +
                                " has wrong field count");
    }
    MOCEMG_ASSIGN_OR_RETURN(int64_t label, ParseInt(l.fields[0]));
    labels.push_back(static_cast<size_t>(label));
    names.push_back(l.fields[1]);
    std::vector<double> feature;
    feature.reserve(static_cast<size_t>(flen));
    for (int64_t j = 0; j < flen; ++j) {
      MOCEMG_ASSIGN_OR_RETURN(double v,
                              ParseDouble(l.fields[2 + static_cast<size_t>(j)]));
      feature.push_back(v);
    }
    finals.SetRow(static_cast<size_t>(i), feature);
  }

  return MotionClassifier::FromParts(opts, std::move(normalizer),
                                     std::move(codebook),
                                     std::move(finals), std::move(labels),
                                     std::move(names));
}

Status SaveClassifier(const MotionClassifier& classifier,
                      const std::string& path) {
  MOCEMG_ASSIGN_OR_RETURN(std::string text,
                          SerializeClassifier(classifier));
  return WriteStringToFile(path, text);
}

Result<MotionClassifier> LoadClassifier(const std::string& path) {
  MOCEMG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  auto result = DeserializeClassifier(text);
  if (!result.ok()) {
    return result.status().WithContext("while loading model '" + path +
                                       "'");
  }
  return result;
}

}  // namespace mocemg
