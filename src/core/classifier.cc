#include "core/classifier.h"

#include <algorithm>
#include <cmath>

#include "cluster/kmeans.h"
#include "db/query_server.h"
#include "linalg/vector_ops.h"
#include "util/distance_kernels.h"
#include "util/macros.h"
#include "util/top_k.h"

namespace mocemg {
namespace {

// Extracts raw (un-normalized) window features, conditioning EMG first
// when configured.
Result<Matrix> RawWindowPoints(const MotionSequence& mocap,
                               const EmgRecording& emg,
                               const ClassifierOptions& options) {
  EmgRecording conditioned;
  const EmgRecording* emg_ptr = &emg;
  if (options.features.use_emg && options.condition_emg) {
    AcquisitionOptions acq = options.acquisition;
    acq.output_rate_hz = mocap.frame_rate_hz();
    MOCEMG_ASSIGN_OR_RETURN(conditioned, ConditionRecording(emg, acq));
    emg_ptr = &conditioned;
  }
  MOCEMG_ASSIGN_OR_RETURN(
      WindowFeatureMatrix features,
      ExtractWindowFeatures(mocap, *emg_ptr, options.features));
  return std::move(features.points);
}

}  // namespace

const char* ClassifierModeName(ClassifierMode mode) {
  switch (mode) {
    case ClassifierMode::kFull:
      return "full";
    case ClassifierMode::kMocapOnly:
      return "mocap_only";
    case ClassifierMode::kEmgOnly:
      return "emg_only";
  }
  return "unknown";
}

Result<MotionClassifier> MotionClassifier::Train(
    const std::vector<LabeledMotion>& motions,
    const ClassifierOptions& options) {
  if (motions.empty()) {
    return Status::InvalidArgument("cannot train on an empty database");
  }
  MotionClassifier clf;
  clf.options_ = options;

  // 1. Window features for every motion, in parallel over motions (the
  // window-level parallelism inside ExtractWindowFeatures runs inline
  // when nested here). Each motion's matrix lands in its own slot; the
  // pooled matrix is assembled serially in motion order afterwards, so
  // the row layout — and everything downstream — is independent of the
  // thread count.
  std::vector<Matrix> per_motion(motions.size());
  {
    Status st = ParallelFor(
        motions.size(),
        [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
          for (size_t i = begin; i < end; ++i) {
            auto points =
                RawWindowPoints(motions[i].mocap, motions[i].emg, options);
            if (!points.ok()) {
              return points.status().WithContext(
                  "while featurizing motion " + std::to_string(i) + " ('" +
                  motions[i].label_name + "')");
            }
            per_motion[i] = *std::move(points);
          }
          return Status::OK();
        },
        options.parallel);
    MOCEMG_RETURN_NOT_OK(st);
  }
  Matrix all_points;
  std::vector<std::pair<size_t, size_t>> spans;
  spans.reserve(motions.size());
  for (size_t i = 0; i < motions.size(); ++i) {
    const size_t begin = all_points.rows();
    MOCEMG_RETURN_NOT_OK(all_points.AppendRows(per_motion[i]));
    spans.emplace_back(begin, all_points.rows());
    per_motion[i] = Matrix();  // release as we go; pooled copy suffices
  }

  // 2. Normalize over the pooled window points.
  if (options.normalize_features) {
    MOCEMG_ASSIGN_OR_RETURN(clf.normalizer_, Normalizer::Fit(all_points));
  } else {
    clf.normalizer_ = Normalizer::Identity(all_points.cols());
  }
  if (options.balance_modalities && options.features.use_emg &&
      options.features.use_mocap) {
    // Equalize the modalities' expected contribution to squared
    // distances: each block scaled by 1/√(block dims). Block layout is
    // [EMG | mocap] (Section 3.3's append order).
    const size_t emg_channels = motions[0].emg.num_channels();
    WindowFeatureOptions emg_only = options.features;
    emg_only.use_mocap = false;
    const size_t emg_dim =
        WindowFeatureDimension(emg_only, emg_channels, 0);
    const size_t total = all_points.cols();
    if (emg_dim == 0 || emg_dim >= total) {
      return Status::FailedPrecondition(
          "modality balancing found a degenerate block split");
    }
    const double emg_scale = 1.0 / std::sqrt(static_cast<double>(emg_dim));
    const double mocap_scale =
        1.0 / std::sqrt(static_cast<double>(total - emg_dim));
    for (size_t j = 0; j < total; ++j) {
      MOCEMG_RETURN_NOT_OK(clf.normalizer_.ScaleOutput(
          j, j < emg_dim ? emg_scale : mocap_scale));
    }
  }
  MOCEMG_ASSIGN_OR_RETURN(Matrix normalized,
                          clf.normalizer_.Transform(all_points));

  // 3. Codebook: FCM (the paper) or k-means (ablation).
  if (options.cluster_method == ClusterMethod::kFuzzyCMeans) {
    MOCEMG_ASSIGN_OR_RETURN(clf.codebook_,
                            FcmCodebook::Train(normalized, options.fcm));
  } else {
    KmeansOptions km;
    km.num_clusters = options.fcm.num_clusters;
    km.seed = options.fcm.seed;
    km.restarts = options.fcm.restarts;
    MOCEMG_ASSIGN_OR_RETURN(KmeansModel model, FitKmeans(normalized, km));
    MOCEMG_ASSIGN_OR_RETURN(
        clf.codebook_,
        FcmCodebook::FromCenters(std::move(model.centers),
                                 options.fcm.fuzziness));
  }

  // 4. Final feature vector per motion (Eq. 5–8 on Eq. 9 memberships).
  const size_t feature_len =
      options.cluster_method == ClusterMethod::kFuzzyCMeans
          ? 2 * clf.codebook_.num_clusters()
          : clf.codebook_.num_clusters();
  clf.final_features_ = Matrix(motions.size(), feature_len);
  {
    // Membership evaluation against the fixed codebook is read-only and
    // each motion writes its own final-feature row.
    Status st = ParallelFor(
        motions.size(),
        [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
          for (size_t i = begin; i < end; ++i) {
            const Matrix points =
                normalized.RowSlice(spans[i].first, spans[i].second);
            auto feature = clf.FinalFeature(points);
            if (!feature.ok()) {
              return feature.status().WithContext(
                  "while building the final feature of motion " +
                  std::to_string(i));
            }
            clf.final_features_.SetRow(i, *feature);
          }
          return Status::OK();
        },
        options.parallel);
    MOCEMG_RETURN_NOT_OK(st);
  }
  clf.labels_.reserve(motions.size());
  clf.label_names_.reserve(motions.size());
  for (const LabeledMotion& motion : motions) {
    clf.labels_.push_back(motion.label);
    clf.label_names_.push_back(motion.label_name);
  }

  // 5. Optional modality-fallback sub-models for ClassifyRobust: the
  // same pipeline restricted to each modality's feature block.
  clf.BuildFinalDatabase();
  if (options.train_fallbacks && options.features.use_emg &&
      options.features.use_mocap) {
    ClassifierOptions sub = options;
    sub.train_fallbacks = false;
    sub.features.use_emg = false;
    auto mocap_only = Train(motions, sub);
    if (!mocap_only.ok()) {
      return mocap_only.status().WithContext(
          "while training the mocap-only fallback");
    }
    clf.mocap_only_ =
        std::make_shared<const MotionClassifier>(*std::move(mocap_only));
    sub.features.use_emg = true;
    sub.features.use_mocap = false;
    auto emg_only = Train(motions, sub);
    if (!emg_only.ok()) {
      return emg_only.status().WithContext(
          "while training the EMG-only fallback");
    }
    clf.emg_only_ =
        std::make_shared<const MotionClassifier>(*std::move(emg_only));
  }
  return clf;
}

Result<MotionClassifier> MotionClassifier::FromParts(
    const ClassifierOptions& options, Normalizer normalizer,
    FcmCodebook codebook, Matrix final_features,
    std::vector<size_t> labels, std::vector<std::string> label_names) {
  if (codebook.num_clusters() == 0) {
    return Status::InvalidArgument("codebook has no clusters");
  }
  if (normalizer.dimension() != codebook.dimension()) {
    return Status::InvalidArgument(
        "normalizer dimension " + std::to_string(normalizer.dimension()) +
        " does not match codebook dimension " +
        std::to_string(codebook.dimension()));
  }
  const size_t expected_len =
      options.cluster_method == ClusterMethod::kFuzzyCMeans
          ? 2 * codebook.num_clusters()
          : codebook.num_clusters();
  if (final_features.cols() != expected_len) {
    return Status::InvalidArgument(
        "final features have length " +
        std::to_string(final_features.cols()) + ", expected " +
        std::to_string(expected_len));
  }
  if (final_features.rows() != labels.size() ||
      labels.size() != label_names.size() || labels.empty()) {
    return Status::InvalidArgument(
        "final features / labels / names are inconsistent or empty");
  }
  MotionClassifier clf;
  clf.options_ = options;
  // Balancing is baked into the persisted normalizer (see header note);
  // clear the flag so nothing downstream re-applies it.
  clf.options_.balance_modalities = false;
  clf.normalizer_ = std::move(normalizer);
  clf.codebook_ = std::move(codebook);
  clf.final_features_ = std::move(final_features);
  clf.labels_ = std::move(labels);
  clf.label_names_ = std::move(label_names);
  clf.BuildFinalDatabase();
  return clf;
}

void MotionClassifier::BuildFinalDatabase() {
  auto db = std::make_shared<MotionDatabase>();
  for (size_t i = 0; i < final_features_.rows(); ++i) {
    MotionRecord rec;
    rec.name = label_names_[i] + "/" + std::to_string(i);
    rec.label = labels_[i];
    rec.label_name = label_names_[i];
    const double* row = final_features_.RowPtr(i);
    rec.feature.assign(row, row + final_features_.cols());
    if (!db->Insert(std::move(rec)).ok()) {
      final_db_.reset();
      return;
    }
  }
  final_db_ = std::move(db);
}

Result<Matrix> MotionClassifier::WindowPoints(
    const MotionSequence& mocap, const EmgRecording& emg) const {
  MOCEMG_ASSIGN_OR_RETURN(Matrix points,
                          RawWindowPoints(mocap, emg, options_));
  return normalizer_.Transform(points);
}

Result<std::vector<double>> MotionClassifier::FinalFeature(
    const Matrix& points) const {
  if (options_.cluster_method == ClusterMethod::kFuzzyCMeans) {
    MOCEMG_ASSIGN_OR_RETURN(Matrix memberships,
                            codebook_.MembershipMatrix(points));
    return FinalMotionFeature(memberships);
  }
  return HardAssignmentFeature(codebook_.centers(), points);
}

Result<std::vector<double>> MotionClassifier::Featurize(
    const MotionSequence& mocap, const EmgRecording& emg) const {
  if (codebook_.num_clusters() == 0) {
    return Status::FailedPrecondition("classifier is not trained");
  }
  MOCEMG_ASSIGN_OR_RETURN(Matrix points, WindowPoints(mocap, emg));
  return FinalFeature(points);
}

Result<std::vector<MotionMatch>> MotionClassifier::NearestNeighbors(
    const std::vector<double>& final_feature, size_t k) const {
  if (final_features_.rows() == 0) {
    return Status::FailedPrecondition("classifier is not trained");
  }
  if (final_feature.size() != final_features_.cols()) {
    return Status::InvalidArgument(
        "final feature dimension mismatch: got " +
        std::to_string(final_feature.size()) + ", database has " +
        std::to_string(final_features_.cols()));
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  // final_features_ is row-major contiguous: one packed kernel call for
  // all squared distances, then a squared-space bounded top-k (sqrt is
  // monotone) with the sqrt deferred to the k reported matches. Ties
  // resolve toward the smaller training index (top_k.h), the same rule
  // as every kNN path in db/, so the retrieval and serving layers
  // agree bitwise with this one.
  const size_t n = final_features_.rows();
  std::vector<double> sq(n);
  SquaredL2OneToMany(final_feature.data(), final_features_.RowPtr(0), n,
                     final_features_.cols(), sq.data());
  BoundedTopK top(std::min(k, n));
  for (size_t i = 0; i < n; ++i) top.Push(sq[i], i);
  std::vector<TopKEntry> entries;
  top.ExtractSorted(&entries);
  std::vector<MotionMatch> matches(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    matches[i].index = entries[i].second;
    matches[i].label = labels_[entries[i].second];
    matches[i].distance = std::sqrt(entries[i].first);
  }
  return matches;
}

Result<size_t> MotionClassifier::Classify(const MotionSequence& mocap,
                                          const EmgRecording& emg) const {
  MOCEMG_ASSIGN_OR_RETURN(std::vector<double> feature,
                          Featurize(mocap, emg));
  MOCEMG_ASSIGN_OR_RETURN(std::vector<MotionMatch> nn,
                          NearestNeighbors(feature, 1));
  return nn[0].label;
}

Result<std::vector<size_t>> MotionClassifier::ClassifyBatch(
    const std::vector<LabeledMotion>& trials,
    const ParallelOptions& parallel) const {
  if (codebook_.num_clusters() == 0) {
    return Status::FailedPrecondition("classifier is not trained");
  }
  // Stage 1: featurize every trial in parallel (the dominant cost —
  // conditioning, windowing, membership evaluation).
  std::vector<std::vector<double>> features(trials.size());
  Status st = ParallelFor(
      trials.size(),
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        for (size_t i = begin; i < end; ++i) {
          auto feature = Featurize(trials[i].mocap, trials[i].emg);
          if (!feature.ok()) {
            return feature.status().WithContext(
                "while classifying batch trial " + std::to_string(i));
          }
          features[i] = *std::move(feature);
        }
        return Status::OK();
      },
      parallel);
  MOCEMG_RETURN_NOT_OK(st);

  // Stage 2: one batched retrieval through the query server — the
  // whole batch streams the final-feature block in tiles instead of
  // running num_trials independent one-to-many sweeps, and repeated
  // trials coalesce/hit the cache. Classify() is nearest-neighbour
  // (k = 1), and a one-hit vote is that hit's label, so each element
  // matches Classify's decision bit-for-bit. Any serving problem
  // falls back to the per-trial path rather than failing the batch.
  if (final_db_ != nullptr) {
    QueryServerOptions srv;
    srv.parallel = parallel;
    auto server = QueryServer::Create(
        final_db_.get(), static_cast<const FeatureIndex*>(nullptr), srv);
    if (server.ok()) {
      auto labels = server->ClassifyBatch(features, 1);
      if (labels.ok()) return *std::move(labels);
    }
  }
  std::vector<size_t> labels(trials.size(), 0);
  for (size_t i = 0; i < trials.size(); ++i) {
    MOCEMG_ASSIGN_OR_RETURN(std::vector<MotionMatch> nn,
                            NearestNeighbors(features[i], 1));
    labels[i] = nn[0].label;
  }
  return labels;
}

const MotionClassifier* MotionClassifier::submodel(
    ClassifierMode mode) const {
  switch (mode) {
    case ClassifierMode::kFull:
      return this;
    case ClassifierMode::kMocapOnly:
      return mocap_only_.get();
    case ClassifierMode::kEmgOnly:
      return emg_only_.get();
  }
  return nullptr;
}

Result<Matrix> MotionClassifier::WindowPointsMasked(
    const MotionSequence& mocap, const EmgRecording& emg,
    const ClassifierOptions& options,
    const std::vector<size_t>* masked_channels) const {
  MOCEMG_ASSIGN_OR_RETURN(Matrix points,
                          RawWindowPoints(mocap, emg, options));
  if (masked_channels != nullptr && !masked_channels->empty() &&
      options.features.use_emg) {
    // EMG block leads the feature layout (Section 3.3 append order),
    // channel-major with a fixed per-channel width.
    WindowFeatureOptions one_channel = options.features;
    one_channel.use_mocap = false;
    const size_t per_channel = WindowFeatureDimension(one_channel, 1, 0);
    for (size_t c : *masked_channels) {
      for (size_t d = 0; d < per_channel; ++d) {
        const size_t col = c * per_channel + d;
        if (col >= points.cols()) break;
        // Training mean ⇒ exactly 0 after the z-score transform: the
        // dead channel neither votes for nor against any cluster.
        const double neutral = normalizer_.mean()[col];
        for (size_t r = 0; r < points.rows(); ++r) {
          points(r, col) = neutral;
        }
      }
    }
  }
  return normalizer_.Transform(points);
}

Result<RobustDecision> MotionClassifier::ClassifyRobust(
    const MotionSequence& mocap, const EmgRecording& emg,
    size_t k) const {
  if (codebook_.num_clusters() == 0) {
    return Status::FailedPrecondition("classifier is not trained");
  }
  if (!options_.features.use_emg || !options_.features.use_mocap) {
    return Status::FailedPrecondition(
        "ClassifyRobust needs the integrated (EMG + mocap) pipeline");
  }
  const StreamHealth monitor(options_.health);
  RobustDecision decision;
  MOCEMG_ASSIGN_OR_RETURN(decision.health, monitor.Assess(mocap, emg));

  // Repair what is repairable before featurizing: occlusion gaps become
  // finite (interpolated/held) coordinates.
  MotionSequence repaired;
  const MotionSequence* mocap_ptr = &mocap;
  bool mocap_missing = false;
  for (const auto& m : decision.health.markers) {
    if (m.missing_frames > 0) mocap_missing = true;
  }
  if (mocap_missing) {
    MOCEMG_ASSIGN_OR_RETURN(
        repaired, monitor.RepairMocap(mocap, &decision.health));
    mocap_ptr = &repaired;
  }

  // Modality fallback policy: an unusable modality is dropped, never
  // silently guessed around.
  if (!decision.health.mocap_usable && !decision.health.emg_usable) {
    return Status::FailedPrecondition(
        "both modalities unusable: " + decision.health.Summary());
  }
  if (!decision.health.emg_usable) {
    if (mocap_only_ == nullptr) {
      return Status::FailedPrecondition(
          "EMG unusable (" + decision.health.Summary() +
          ") and no mocap-only fallback was trained; set "
          "ClassifierOptions::train_fallbacks");
    }
    decision.mode = ClassifierMode::kMocapOnly;
  } else if (!decision.health.mocap_usable) {
    if (emg_only_ == nullptr) {
      return Status::FailedPrecondition(
          "mocap unusable (" + decision.health.Summary() +
          ") and no EMG-only fallback was trained; set "
          "ClassifierOptions::train_fallbacks");
    }
    decision.mode = ClassifierMode::kEmgOnly;
  }
  const MotionClassifier* deciding = submodel(decision.mode);

  // Detected hum is repaired in conditioning: notch at the line
  // frequency the health monitor measured.
  ClassifierOptions opts = deciding->options_;
  if (decision.health.hum_detected && opts.features.use_emg &&
      opts.condition_emg) {
    opts.acquisition.notch_hz = decision.health.hum_freq_hz;
  }
  const std::vector<size_t>* mask =
      decision.mode == ClassifierMode::kFull &&
              !decision.health.masked_channels.empty()
          ? &decision.health.masked_channels
          : nullptr;

  MOCEMG_ASSIGN_OR_RETURN(
      Matrix points,
      deciding->WindowPointsMasked(*mocap_ptr, emg, opts, mask));
  MOCEMG_ASSIGN_OR_RETURN(std::vector<double> feature,
                          deciding->FinalFeature(points));
  MOCEMG_ASSIGN_OR_RETURN(decision.matches,
                          deciding->NearestNeighbors(feature, k));
  decision.label = decision.matches[0].label;
  decision.label_name =
      deciding->label_names_[decision.matches[0].index];
  decision.degraded = decision.mode != ClassifierMode::kFull ||
                      decision.health.any_repair;
  return decision;
}

}  // namespace mocemg
