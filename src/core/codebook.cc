#include "core/codebook.h"

#include <algorithm>

#include "util/distance_kernels.h"
#include "util/macros.h"

namespace mocemg {

Result<FcmCodebook> FcmCodebook::Train(const Matrix& points,
                                       const FcmOptions& options) {
  MOCEMG_ASSIGN_OR_RETURN(FcmModel model, FitFcm(points, options));
  FcmCodebook book;
  book.centers_ = std::move(model.centers);
  book.fuzziness_ = options.fuzziness;
  return book;
}

Result<FcmCodebook> FcmCodebook::FromCenters(Matrix centers,
                                             double fuzziness) {
  if (centers.rows() == 0 || centers.cols() == 0) {
    return Status::InvalidArgument("codebook needs non-empty centers");
  }
  if (fuzziness <= 1.0) {
    return Status::InvalidArgument("fuzzifier m must be > 1");
  }
  FcmCodebook book;
  book.centers_ = std::move(centers);
  book.fuzziness_ = fuzziness;
  return book;
}

Result<std::vector<double>> FcmCodebook::Membership(
    const std::vector<double>& point) const {
  return EvaluateMembership(centers_, point, fuzziness_);
}

Result<Matrix> FcmCodebook::MembershipMatrix(const Matrix& points) const {
  if (points.cols() != dimension()) {
    return Status::InvalidArgument(
        "points dimension " + std::to_string(points.cols()) +
        " does not match codebook dimension " +
        std::to_string(dimension()));
  }
  return EvaluateMembershipBatch(centers_, points, fuzziness_);
}

Result<std::vector<double>> FinalMotionFeature(const Matrix& memberships) {
  const size_t windows = memberships.rows();
  const size_t c = memberships.cols();
  if (windows == 0 || c == 0) {
    return Status::InvalidArgument("empty membership matrix");
  }
  // Per window: the highest membership h_t and its cluster a_t (Eq. 5–6).
  std::vector<double> max_per_cluster(c, 0.0);
  std::vector<double> min_per_cluster(c, 0.0);
  std::vector<bool> seen(c, false);
  for (size_t w = 0; w < windows; ++w) {
    const double* row = memberships.RowPtr(w);
    size_t arg = 0;
    double best = row[0];
    for (size_t i = 1; i < c; ++i) {
      if (row[i] > best) {
        best = row[i];
        arg = i;
      }
    }
    if (!seen[arg]) {
      seen[arg] = true;
      max_per_cluster[arg] = best;
      min_per_cluster[arg] = best;
    } else {
      if (best > max_per_cluster[arg]) max_per_cluster[arg] = best;
      if (best < min_per_cluster[arg]) min_per_cluster[arg] = best;
    }
  }
  // Layout [min_i, max_i] per cluster (Eq. 7–8; Figure 4's x-axis).
  std::vector<double> feature(2 * c, 0.0);
  for (size_t i = 0; i < c; ++i) {
    feature[2 * i] = min_per_cluster[i];
    feature[2 * i + 1] = max_per_cluster[i];
  }
  return feature;
}

Result<std::vector<double>> HardAssignmentFeature(const Matrix& centers,
                                                  const Matrix& points) {
  if (points.rows() == 0) {
    return Status::InvalidArgument("no window points");
  }
  if (centers.rows() == 0) {
    return Status::InvalidArgument("no centers");
  }
  if (points.cols() != centers.cols()) {
    return Status::InvalidArgument("dimension mismatch");
  }
  // Blocked assignment: distances of a tile of windows to all centers in
  // one kernel call, then a scalar argmin per window (first minimum wins,
  // matching NearestCenter).
  constexpr size_t kVoteTile = 32;
  const size_t c = centers.rows();
  const size_t d = centers.cols();
  std::vector<double> votes(c, 0.0);
  std::vector<double> tile_sq(kVoteTile * c);
  for (size_t i0 = 0; i0 < points.rows(); i0 += kVoteTile) {
    const size_t tile = std::min(kVoteTile, points.rows() - i0);
    SquaredL2ManyToMany(points.RowPtr(i0), tile, centers.RowPtr(0), c, d,
                        tile_sq.data(), c);
    for (size_t t = 0; t < tile; ++t) {
      const double* sq_row = tile_sq.data() + t * c;
      double best = sq_row[0];
      size_t arg = 0;
      for (size_t i = 1; i < c; ++i) {
        if (sq_row[i] < best) {
          best = sq_row[i];
          arg = i;
        }
      }
      votes[arg] += 1.0;
    }
  }
  const double inv = 1.0 / static_cast<double>(points.rows());
  for (double& v : votes) v *= inv;
  return votes;
}

}  // namespace mocemg
