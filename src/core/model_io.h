/// \file model_io.h
/// \brief Persistence for trained MotionClassifier models.
///
/// A deployed application (a prosthetic controller, a gait-lab station)
/// trains once on the database and classifies for weeks; it must not
/// re-run FCM at boot. The model file is a self-describing text format
/// ("MOCEMGM1") holding the pipeline options that affect inference, the
/// fitted normalizer, the FCM centers, and the database's final feature
/// vectors with labels. Loading reconstructs a classifier that produces
/// bit-identical Featurize()/Classify() results.

#ifndef MOCEMG_CORE_MODEL_IO_H_
#define MOCEMG_CORE_MODEL_IO_H_

#include <string>

#include "core/classifier.h"
#include "util/result.h"

namespace mocemg {

/// \brief Serializes a trained classifier to the model text format.
Result<std::string> SerializeClassifier(const MotionClassifier& classifier);

/// \brief Reconstructs a classifier from model text. Fails on version
/// mismatch, truncation, or any shape inconsistency.
Result<MotionClassifier> DeserializeClassifier(const std::string& text);

/// \brief Writes a trained classifier to a file.
Status SaveClassifier(const MotionClassifier& classifier,
                      const std::string& path);

/// \brief Reads a trained classifier from a file.
Result<MotionClassifier> LoadClassifier(const std::string& path);

}  // namespace mocemg

#endif  // MOCEMG_CORE_MODEL_IO_H_
