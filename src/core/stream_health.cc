#include "core/stream_health.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "signal/spectral.h"
#include "util/macros.h"

namespace mocemg {
namespace {

// A frame is missing when any of the marker's three coordinates is
// non-finite (cameras either triangulate a point or don't).
bool FrameMissing(const MotionSequence& mocap, size_t frame,
                  size_t marker) {
  for (size_t k = 0; k < 3; ++k) {
    if (!std::isfinite(mocap.positions()(frame, 3 * marker + k))) {
      return true;
    }
  }
  return false;
}

// Missing runs of one marker as [begin, end) spans.
std::vector<std::pair<size_t, size_t>> MissingRuns(
    const MotionSequence& mocap, size_t marker) {
  std::vector<std::pair<size_t, size_t>> runs;
  const size_t frames = mocap.num_frames();
  size_t f = 0;
  while (f < frames) {
    if (!FrameMissing(mocap, f, marker)) {
      ++f;
      continue;
    }
    size_t end = f + 1;
    while (end < frames && FrameMissing(mocap, end, marker)) ++end;
    runs.emplace_back(f, end);
    f = end;
  }
  return runs;
}

}  // namespace

std::string StreamHealthReport::Summary() const {
  size_t markers_ok = 0;
  for (const auto& m : markers) markers_ok += m.usable ? 1 : 0;
  size_t channels_ok = 0;
  for (const auto& c : channels) channels_ok += c.usable ? 1 : 0;
  std::ostringstream out;
  out << "mocap " << markers_ok << "/" << markers.size()
      << " markers ok (health " << mocap_health << ", "
      << (mocap_usable ? "usable" : "UNUSABLE") << "); emg " << channels_ok
      << "/" << channels.size() << " channels ok (health " << emg_health
      << ", " << (emg_usable ? "usable" : "UNUSABLE") << ")";
  if (!masked_channels.empty()) {
    out << "; masked channels:";
    for (size_t c : masked_channels) out << " " << c;
  }
  if (hum_detected) out << "; hum @ " << hum_freq_hz << " Hz";
  if (any_repair) out << "; repairs applied";
  return out.str();
}

MarkerHealth StreamHealth::DiagnoseMarker(const MotionSequence& mocap,
                                          size_t marker) const {
  MarkerHealth h;
  h.marker_index = marker;
  const size_t frames = mocap.num_frames();
  for (const auto& [begin, end] : MissingRuns(mocap, marker)) {
    const size_t len = end - begin;
    h.missing_frames += len;
    h.longest_gap = std::max(h.longest_gap, len);
    if (len <= options_.max_repair_gap_frames) {
      h.repairable_frames += len;
    } else {
      h.unrepaired_frames += len;
    }
  }
  const double missing_fraction =
      static_cast<double>(h.missing_frames) / static_cast<double>(frames);
  const double unrepaired_fraction =
      static_cast<double>(h.unrepaired_frames) /
      static_cast<double>(frames);
  h.health = 1.0 - missing_fraction;
  h.usable = missing_fraction <= options_.max_occlusion_fraction &&
             unrepaired_fraction <= options_.max_unrepaired_fraction;
  return h;
}

Result<std::vector<MarkerHealth>> StreamHealth::AssessMocap(
    const MotionSequence& mocap) const {
  if (mocap.num_frames() == 0) {
    return Status::InvalidArgument("cannot assess an empty motion");
  }
  std::vector<MarkerHealth> out;
  out.reserve(mocap.num_markers());
  for (size_t m = 0; m < mocap.num_markers(); ++m) {
    out.push_back(DiagnoseMarker(mocap, m));
  }
  return out;
}

Result<std::vector<ChannelHealth>> StreamHealth::AssessEmg(
    const EmgRecording& emg) const {
  if (emg.num_samples() == 0 || emg.num_channels() == 0) {
    return Status::InvalidArgument("cannot assess an empty recording");
  }
  const double fs = emg.sample_rate_hz();
  const size_t n = emg.num_samples();
  std::vector<ChannelHealth> out;
  out.reserve(emg.num_channels());
  for (size_t c = 0; c < emg.num_channels(); ++c) {
    const std::vector<double>& x = emg.channel(c);
    ChannelHealth h;
    h.channel = c;

    double mean = 0.0;
    double peak = 0.0;
    for (double v : x) {
      if (!std::isfinite(v)) {
        ++h.non_finite;
        continue;
      }
      mean += v;
      peak = std::max(peak, std::fabs(v));
    }
    const size_t finite = n - h.non_finite;
    if (finite == 0) {
      h.flatline = true;
      h.health = 0.0;
      h.usable = false;
      out.push_back(h);
      continue;
    }
    mean /= static_cast<double>(finite);
    double var = 0.0;
    double mean_square = 0.0;
    size_t clipped = 0;
    for (double v : x) {
      if (!std::isfinite(v)) continue;
      var += (v - mean) * (v - mean);
      mean_square += v * v;
      if (peak > 0.0 && std::fabs(v) >= 0.98 * peak) ++clipped;
    }
    var /= static_cast<double>(finite);
    mean_square /= static_cast<double>(finite);
    h.variance = var;
    h.clip_fraction =
        static_cast<double>(clipped) / static_cast<double>(finite);

    h.flatline = var < options_.flatline_variance_floor;
    h.saturated = !h.flatline &&
                  h.clip_fraction > options_.saturation_clip_fraction_max;

    // Hum share of total power at each probed line frequency. Goertzel
    // returns |X|²/N ≈ N·A²/4 for a full-scale tone of amplitude A,
    // whose mean-square share is A²/2 — hence the 2/N normalization.
    if (!h.flatline && mean_square > 0.0 && h.non_finite == 0) {
      for (double f : options_.hum_probe_hz) {
        if (f <= 0.0 || f >= fs / 2.0) continue;
        auto power = GoertzelPower(x, f, fs);
        if (!power.ok()) continue;
        const double ratio = std::min(
            1.0, 2.0 * *power / (static_cast<double>(n) * mean_square));
        if (ratio > h.hum_ratio) {
          h.hum_ratio = ratio;
          h.hum_freq_hz = f;
        }
      }
      h.hum_contaminated = h.hum_ratio > options_.hum_power_ratio_max;
    }

    h.usable = h.non_finite == 0 && !h.flatline && !h.saturated;
    h.health = h.usable ? (h.hum_contaminated ? 1.0 - h.hum_ratio : 1.0)
                        : 0.0;
    out.push_back(h);
  }
  return out;
}

Result<StreamHealthReport> StreamHealth::Assess(
    const MotionSequence& mocap, const EmgRecording& emg) const {
  StreamHealthReport report;
  MOCEMG_ASSIGN_OR_RETURN(report.markers, AssessMocap(mocap));
  MOCEMG_ASSIGN_OR_RETURN(report.channels, AssessEmg(emg));

  report.mocap_health = 1.0;
  report.mocap_usable = true;
  for (const auto& m : report.markers) {
    report.mocap_health = std::min(report.mocap_health, m.health);
    if (!m.usable) report.mocap_usable = false;
    if (m.missing_frames > 0) report.any_repair = true;
  }

  size_t dead = 0;
  double strongest_hum = 0.0;
  for (const auto& c : report.channels) {
    if (!c.usable) ++dead;
    if (c.hum_contaminated && c.hum_ratio > strongest_hum) {
      strongest_hum = c.hum_ratio;
      report.hum_detected = true;
      report.hum_freq_hz = c.hum_freq_hz;
      report.any_repair = true;
    }
  }
  const double dead_fraction = static_cast<double>(dead) /
                               static_cast<double>(report.channels.size());
  report.emg_health = 1.0 - dead_fraction;
  report.emg_usable =
      dead_fraction <= options_.max_masked_channel_fraction;
  if (report.emg_usable && dead > 0) {
    for (const auto& c : report.channels) {
      if (!c.usable) report.masked_channels.push_back(c.channel);
    }
    report.any_repair = true;
  }
  return report;
}

Result<MotionSequence> StreamHealth::RepairMocap(
    const MotionSequence& mocap, StreamHealthReport* report) const {
  if (mocap.num_frames() == 0) {
    return Status::InvalidArgument("cannot repair an empty motion");
  }
  MotionSequence out = mocap;
  Matrix& pos = out.mutable_positions();
  const size_t frames = out.num_frames();
  bool repaired_any = false;

  for (size_t m = 0; m < out.num_markers(); ++m) {
    const auto runs = MissingRuns(mocap, m);
    if (runs.empty()) continue;
    repaired_any = true;
    size_t captured = frames;
    for (const auto& [begin, end] : runs) captured -= end - begin;
    if (captured == 0) {
      // Marker never seen: zero-fill (pelvis-relative origin) — usable
      // is already false in any assessment of this marker.
      for (size_t f = 0; f < frames; ++f) {
        for (size_t k = 0; k < 3; ++k) pos(f, 3 * m + k) = 0.0;
      }
      continue;
    }
    for (const auto& [begin, end] : runs) {
      const bool has_before = begin > 0;
      const bool has_after = end < frames;
      for (size_t k = 0; k < 3; ++k) {
        const size_t col = 3 * m + k;
        if (has_before && has_after) {
          // Linear interpolation across the gap.
          const double a = pos(begin - 1, col);
          const double b = pos(end, col);
          const double span = static_cast<double>(end - (begin - 1));
          for (size_t f = begin; f < end; ++f) {
            const double t =
                static_cast<double>(f - (begin - 1)) / span;
            pos(f, col) = (1.0 - t) * a + t * b;
          }
        } else if (has_before) {
          for (size_t f = begin; f < end; ++f) {
            pos(f, col) = pos(begin - 1, col);
          }
        } else {  // leading gap: hold the first captured frame
          for (size_t f = begin; f < end; ++f) {
            pos(f, col) = pos(end, col);
          }
        }
      }
    }
  }

  if (report != nullptr) {
    if (repaired_any) report->any_repair = true;
  }
  return out;
}

}  // namespace mocemg
