/// \file mocap_features.h
/// \brief Mocap window features. The paper's mapping (Eq. 2–3): the w×3
/// joint matrix of a window is decomposed with SVD and the three right
/// singular vectors, weighted by their normalized singular values, are
/// summed into a 3-vector that "represents the contribution of the
/// corresponding joint to the motion … and captures the geometric
/// similarity of motion matrices". Naive alternatives are provided for
/// the ablation bench (abl3).

#ifndef MOCEMG_CORE_MOCAP_FEATURES_H_
#define MOCEMG_CORE_MOCAP_FEATURES_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/svd.h"
#include "util/result.h"

namespace mocemg {

/// \brief Which per-joint window feature to compute.
enum class MocapFeatureKind : int {
  /// The paper's weighted-SVD feature (Eq. 3): f = Σ_i (σ_i/Σσ)·v_i.
  kWeightedSvd = 0,
  /// Mean position of the window (baseline).
  kMeanPosition,
  /// Net displacement (last − first frame) of the window (baseline).
  kDisplacement,
};

const char* MocapFeatureKindName(MocapFeatureKind kind);

/// \brief The weighted-SVD joint feature (Eq. 2–3). `joint_window` is the
/// w×3 slice of one joint's trajectory within one window; the result is a
/// 3-vector. Degenerate windows (all singular values zero, i.e. the joint
/// did not move and sits at the local origin) yield the zero vector.
Result<std::vector<double>> WeightedSvdFeature(const Matrix& joint_window);

/// \brief Computes the selected per-joint feature (always length 3).
Result<std::vector<double>> ExtractMocapFeature(MocapFeatureKind kind,
                                                const Matrix& joint_window);

/// \brief Reusable workspace for ExtractMocapFeatureInto: the SVD
/// scratch plus the decomposition result buffers, both recycled across
/// same-shape windows (the per-window extraction loop).
struct MocapFeatureScratch {
  SvdScratch svd;
  SvdResult svd_result;
};

/// \brief Allocation-free variant for the window loop: writes the
/// 3-vector into `out`. Identical values to ExtractMocapFeature.
Status ExtractMocapFeatureInto(MocapFeatureKind kind,
                               const Matrix& joint_window,
                               MocapFeatureScratch* scratch, double* out);

}  // namespace mocemg

#endif  // MOCEMG_CORE_MOCAP_FEATURES_H_
