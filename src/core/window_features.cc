#include "core/window_features.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "linalg/vector_ops.h"
#include "util/macros.h"

namespace mocemg {

size_t WindowFeatureDimension(const WindowFeatureOptions& options,
                              size_t emg_channels, size_t mocap_segments) {
  size_t dim = 0;
  if (options.use_emg) {
    dim += EmgFeatureWidth(options.emg_feature) * emg_channels;
  }
  if (options.use_mocap) dim += 3 * mocap_segments;
  return dim;
}

Result<WindowFeatureMatrix> ExtractWindowFeatures(
    const MotionSequence& mocap, const EmgRecording& emg,
    const WindowFeatureOptions& options) {
  if (!options.use_emg && !options.use_mocap) {
    return Status::InvalidArgument(
        "at least one modality must be enabled");
  }
  // Reject malformed segmentation parameters here with messages naming
  // the option fields; WindowMsToFrames clamps to >= 1 frame, so a
  // negative window_ms would otherwise silently become a 1-frame window
  // and MakeWindowPlan would never see anything wrong.
  if (!(options.window_ms > 0.0)) {
    return Status::InvalidArgument(
        "window_ms must be positive, got " +
        std::to_string(options.window_ms));
  }
  if (options.hop_ms < 0.0) {
    return Status::InvalidArgument(
        "hop_ms must be non-negative, got " +
        std::to_string(options.hop_ms));
  }
  MOCEMG_RETURN_NOT_OK(mocap.Validate());
  if (options.use_emg) {
    MOCEMG_RETURN_NOT_OK(emg.Validate());
    if (std::fabs(emg.sample_rate_hz() - mocap.frame_rate_hz()) > 1e-9) {
      return Status::FailedPrecondition(
          "EMG must be conditioned to the mocap frame rate before "
          "feature extraction (got " +
          std::to_string(emg.sample_rate_hz()) + " Hz vs " +
          std::to_string(mocap.frame_rate_hz()) + " Hz)");
    }
  }

  // The synchronized streams can differ by a few frames at the capture
  // edges (resampler rounding); work on the overlap.
  size_t frames = mocap.num_frames();
  if (options.use_emg) frames = std::min(frames, emg.num_samples());

  const size_t window_frames =
      WindowMsToFrames(options.window_ms, mocap.frame_rate_hz());
  size_t hop_frames = options.hop_frames;
  if (options.hop_ms > 0.0) {
    hop_frames = WindowMsToFrames(options.hop_ms, mocap.frame_rate_hz());
  }
  // hop_frames == 0 is the documented non-overlapping default; resolve
  // it explicitly so the plan below always advances.
  if (hop_frames == 0) hop_frames = window_frames;
  if (window_frames == 0 || hop_frames == 0) {
    return Status::InvalidArgument(
        "window/hop resolve to zero frames (window_ms=" +
        std::to_string(options.window_ms) +
        ", hop_ms=" + std::to_string(options.hop_ms) + ")");
  }
  MOCEMG_ASSIGN_OR_RETURN(
      WindowPlan plan,
      MakeWindowPlan(frames, window_frames, hop_frames));

  // Local transform once, then slice per window.
  MotionSequence local;
  std::vector<Segment> feature_segments;
  if (options.use_mocap) {
    MOCEMG_ASSIGN_OR_RETURN(local,
                            ToPelvisLocal(mocap, options.local_transform));
    for (Segment s : local.marker_set().segments()) {
      if (s != Segment::kPelvis) feature_segments.push_back(s);
    }
    if (feature_segments.empty()) {
      return Status::InvalidArgument(
          "mocap modality enabled but capture has no non-pelvis markers");
    }
  }

  // Hoist everything loop-invariant out of the window loop: the full
  // per-segment joint tracks (previously re-copied once per window) and
  // the per-channel EMG sample pointers.
  std::vector<Matrix> joints;
  joints.reserve(feature_segments.size());
  for (Segment s : feature_segments) {
    MOCEMG_ASSIGN_OR_RETURN(Matrix joint, local.JointMatrix(s));
    joints.push_back(std::move(joint));
  }
  const size_t num_channels = options.use_emg ? emg.num_channels() : 0;
  std::vector<const double*> channel_ptrs(num_channels, nullptr);
  for (size_t c = 0; c < num_channels; ++c) {
    channel_ptrs[c] = emg.channel(c).data();
  }
  const size_t emg_width =
      options.use_emg ? EmgFeatureWidth(options.emg_feature) : 0;

  const size_t dim = WindowFeatureDimension(
      options, num_channels, feature_segments.size());
  Matrix points(plan.num_windows(), dim);

  // Each window fills its own row of `points`; rows are disjoint, so
  // windows parallelize with bit-identical results at any thread count.
  // Scratch (SVD workspace + the w×3 window copy) is per chunk.
  Status st = ParallelFor(
      plan.num_windows(),
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        MocapFeatureScratch mocap_scratch;
        Matrix window(window_frames, 3);
        for (size_t w = begin; w < end; ++w) {
          const WindowSpan span = plan.spans[w];
          double* row = points.RowPtr(w);
          size_t col = 0;
          for (size_t c = 0; c < num_channels; ++c) {
            MOCEMG_RETURN_NOT_OK(ExtractEmgFeatureInto(
                options.emg_feature, channel_ptrs[c] + span.begin,
                span.length(), row + col));
            col += emg_width;
          }
          if (options.use_mocap) {
            // Every plan span is full window length today; guard the
            // scratch shape anyway so a future partial-window plan
            // cannot silently read stale rows.
            if (window.rows() != span.length()) {
              window = Matrix(span.length(), 3);
            }
            for (const Matrix& joint : joints) {
              // The w×3 slice of a row-major frames×3 track is one
              // contiguous block.
              std::memcpy(window.RowPtr(0), joint.RowPtr(span.begin),
                          span.length() * 3 * sizeof(double));
              MOCEMG_RETURN_NOT_OK(ExtractMocapFeatureInto(
                  options.mocap_feature, window, &mocap_scratch,
                  row + col));
              col += 3;
            }
          }
        }
        return Status::OK();
      },
      options.parallel);
  MOCEMG_RETURN_NOT_OK(st);

  WindowFeatureMatrix out;
  out.points = std::move(points);
  out.plan = std::move(plan);
  return out;
}

}  // namespace mocemg
