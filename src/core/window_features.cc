#include "core/window_features.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "linalg/vector_ops.h"
#include "util/logging.h"
#include "util/macros.h"

namespace mocemg {
namespace {

// Fraction of its own length a stream may lose to the work-on-the-
// overlap policy before the truncation is worth a warning.
constexpr double kTruncationWarnFraction = 0.05;

// Per-chunk incremental-mocap counters; merged in ascending chunk order
// after the parallel loop (chunking is pure in (n, grain), so the
// totals are thread-count independent).
struct ChunkGramStats {
  size_t fast = 0;
  size_t fallback = 0;
  size_t refreshes = 0;
  size_t fresh_retries = 0;
};

}  // namespace

size_t WindowFeatureDimension(const WindowFeatureOptions& options,
                              size_t emg_channels, size_t mocap_segments) {
  size_t dim = 0;
  if (options.use_emg) {
    dim += EmgFeatureWidth(options.emg_feature) * emg_channels;
  }
  if (options.use_mocap) dim += 3 * mocap_segments;
  return dim;
}

Result<size_t> ResolveHopFrames(const WindowFeatureOptions& options,
                                double frame_rate_hz,
                                size_t window_frames) {
  if (options.hop_ms > 0.0) {
    const size_t from_ms = WindowMsToFrames(options.hop_ms, frame_rate_hz);
    if (options.hop_frames > 0 && options.hop_frames != from_ms) {
      return Status::InvalidArgument(
          "hop_ms=" + std::to_string(options.hop_ms) + " resolves to " +
          std::to_string(from_ms) + " frames at " +
          std::to_string(frame_rate_hz) + " Hz but hop_frames=" +
          std::to_string(options.hop_frames) +
          " disagrees; hop_ms takes precedence over hop_frames — set "
          "only one, or make them agree");
    }
    return from_ms;
  }
  return options.hop_frames > 0 ? options.hop_frames : window_frames;
}

Result<WindowFeatureMatrix> ExtractWindowFeatures(
    const MotionSequence& mocap, const EmgRecording& emg,
    const WindowFeatureOptions& options, WindowFeatureStats* stats) {
  if (stats != nullptr) *stats = WindowFeatureStats{};
  if (!options.use_emg && !options.use_mocap) {
    return Status::InvalidArgument(
        "at least one modality must be enabled");
  }
  // Reject malformed segmentation parameters here with messages naming
  // the option fields; WindowMsToFrames clamps to >= 1 frame, so a
  // negative window_ms would otherwise silently become a 1-frame window
  // and MakeWindowPlan would never see anything wrong.
  if (!(options.window_ms > 0.0)) {
    return Status::InvalidArgument(
        "window_ms must be positive, got " +
        std::to_string(options.window_ms));
  }
  if (options.hop_ms < 0.0) {
    return Status::InvalidArgument(
        "hop_ms must be non-negative, got " +
        std::to_string(options.hop_ms));
  }
  MOCEMG_RETURN_NOT_OK(mocap.Validate());
  if (options.use_emg) {
    MOCEMG_RETURN_NOT_OK(emg.Validate());
    if (std::fabs(emg.sample_rate_hz() - mocap.frame_rate_hz()) > 1e-9) {
      return Status::FailedPrecondition(
          "EMG must be conditioned to the mocap frame rate before "
          "feature extraction (got " +
          std::to_string(emg.sample_rate_hz()) + " Hz vs " +
          std::to_string(mocap.frame_rate_hz()) + " Hz)");
    }
  }

  // The synchronized streams can differ by a few frames at the capture
  // edges (resampler rounding); work on the overlap and account for the
  // truncation instead of dropping it silently.
  size_t frames = mocap.num_frames();
  if (options.use_emg) frames = std::min(frames, emg.num_samples());
  const size_t mocap_dropped = mocap.num_frames() - frames;
  const size_t emg_dropped =
      options.use_emg ? emg.num_samples() - frames : 0;
  if (stats != nullptr) {
    stats->mocap_frames_dropped = mocap_dropped;
    stats->emg_samples_dropped = emg_dropped;
    stats->frames_used = frames;
  }
  if (static_cast<double>(mocap_dropped) >
      kTruncationWarnFraction * static_cast<double>(mocap.num_frames())) {
    MOCEMG_LOG(kWarning)
        << "mocap/EMG length mismatch: dropping " << mocap_dropped
        << " of " << mocap.num_frames()
        << " mocap frames to the stream overlap (" << frames
        << " frames); check capture synchronization";
  }
  if (options.use_emg &&
      static_cast<double>(emg_dropped) >
          kTruncationWarnFraction *
              static_cast<double>(emg.num_samples())) {
    MOCEMG_LOG(kWarning)
        << "mocap/EMG length mismatch: dropping " << emg_dropped
        << " of " << emg.num_samples()
        << " EMG samples to the stream overlap (" << frames
        << " frames); check capture synchronization";
  }

  const size_t window_frames =
      WindowMsToFrames(options.window_ms, mocap.frame_rate_hz());
  MOCEMG_ASSIGN_OR_RETURN(
      const size_t hop_frames,
      ResolveHopFrames(options, mocap.frame_rate_hz(), window_frames));
  if (window_frames == 0 || hop_frames == 0) {
    return Status::InvalidArgument(
        "window/hop resolve to zero frames (window_ms=" +
        std::to_string(options.window_ms) +
        ", hop_ms=" + std::to_string(options.hop_ms) + ")");
  }
  MOCEMG_ASSIGN_OR_RETURN(
      WindowPlan plan,
      MakeWindowPlan(frames, window_frames, hop_frames));

  // Local transform once, then slice per window.
  MotionSequence local;
  std::vector<Segment> feature_segments;
  if (options.use_mocap) {
    MOCEMG_ASSIGN_OR_RETURN(local,
                            ToPelvisLocal(mocap, options.local_transform));
    for (Segment s : local.marker_set().segments()) {
      if (s != Segment::kPelvis) feature_segments.push_back(s);
    }
    if (feature_segments.empty()) {
      return Status::InvalidArgument(
          "mocap modality enabled but capture has no non-pelvis markers");
    }
  }

  // Hoist everything loop-invariant out of the window loop: the full
  // per-segment joint tracks (previously re-copied once per window) and
  // the per-channel EMG sample pointers.
  std::vector<Matrix> joints;
  joints.reserve(feature_segments.size());
  for (Segment s : feature_segments) {
    MOCEMG_ASSIGN_OR_RETURN(Matrix joint, local.JointMatrix(s));
    joints.push_back(std::move(joint));
  }
  const size_t num_channels = options.use_emg ? emg.num_channels() : 0;
  std::vector<const double*> channel_ptrs(num_channels, nullptr);
  for (size_t c = 0; c < num_channels; ++c) {
    channel_ptrs[c] = emg.channel(c).data();
  }
  const size_t emg_width =
      options.use_emg ? EmgFeatureWidth(options.emg_feature) : 0;

  // Engine selection, per modality: only the weighted-SVD mocap feature
  // and the scalar EMG features have incremental forms; kAuto picks
  // incremental exactly when consecutive windows overlap.
  const FeaturizationMode emg_mode =
      (options.use_emg &&
       EmgFeatureSupportsIncremental(options.emg_feature))
          ? ResolveFeaturizationMode(options.featurization_mode,
                                     window_frames, hop_frames)
          : FeaturizationMode::kExact;
  const FeaturizationMode mocap_mode =
      (options.use_mocap &&
       options.mocap_feature == MocapFeatureKind::kWeightedSvd)
          ? ResolveFeaturizationMode(options.featurization_mode,
                                     window_frames, hop_frames)
          : FeaturizationMode::kExact;
  const size_t refresh_interval =
      std::max<size_t>(options.gram_refresh_interval, 1);

  const size_t dim = WindowFeatureDimension(
      options, num_channels, feature_segments.size());
  Matrix points(plan.num_windows(), dim);

  // With the generic grain (0 → up to 64 chunks) a typical trial gets
  // 1-2-window chunks, and every chunk seeds its incremental state with
  // an exact recomputation — O(window) per window again. Give sliding
  // state room to amortize: at least one refresh period per chunk.
  // Chunking stays a pure function of (num_windows, grain, options), so
  // thread-count invariance is untouched.
  ParallelOptions parallel = options.parallel;
  if (parallel.grain == 0 &&
      (emg_mode == FeaturizationMode::kIncremental ||
       mocap_mode == FeaturizationMode::kIncremental)) {
    parallel.grain = std::max<size_t>(refresh_interval, 16);
  }

  const size_t num_chunks =
      ParallelNumChunks(plan.num_windows(), parallel.grain);
  std::vector<ChunkGramStats> gram_stats(num_chunks);

  // Each window fills its own row of `points`; rows are disjoint, so
  // windows parallelize with bit-identical results at any thread count.
  // Scratch (SVD workspace, the w×3 window copy, and the incremental
  // sliding state) is per chunk: the first window of a chunk seeds the
  // state exactly, later windows slide it, and chunk boundaries depend
  // only on (num_windows, grain) — never on the thread count.
  Status st = ParallelFor(
      plan.num_windows(),
      [&](size_t begin, size_t end, size_t chunk) -> Status {
        MocapFeatureScratch mocap_scratch;
        Matrix window(window_frames, 3);
        std::vector<EmgWindowSums> sums(
            emg_mode == FeaturizationMode::kIncremental ? num_channels
                                                        : 0);
        std::vector<JointGramState> grams(
            mocap_mode == FeaturizationMode::kIncremental ? joints.size()
                                                          : 0);
        std::vector<GramSvd3Task> tasks(grams.size());
        ChunkGramStats& cs = gram_stats[chunk];
        WindowSpan prev{};
        for (size_t w = begin; w < end; ++w) {
          const WindowSpan span = plan.spans[w];
          // Exact reseed on the chunk's first window and every
          // refresh_interval windows after it, bounding float drift of
          // the incremental state.
          const bool refresh = (w - begin) % refresh_interval == 0;
          double* row = points.RowPtr(w);
          size_t col = 0;
          if (emg_mode == FeaturizationMode::kIncremental) {
            for (size_t c = 0; c < num_channels; ++c) {
              if (refresh) {
                sums[c].Recompute(channel_ptrs[c], span.begin, span.end);
              } else {
                sums[c].Slide(channel_ptrs[c], prev.begin, prev.end,
                              span.begin, span.end);
              }
              MOCEMG_RETURN_NOT_OK(sums[c].Emit(
                  options.emg_feature, span.length(), row + col));
              col += emg_width;
            }
          } else {
            for (size_t c = 0; c < num_channels; ++c) {
              MOCEMG_RETURN_NOT_OK(ExtractEmgFeatureInto(
                  options.emg_feature, channel_ptrs[c] + span.begin,
                  span.length(), row + col));
              col += emg_width;
            }
          }
          if (options.use_mocap) {
            // Every plan span is full window length today; guard the
            // scratch shape anyway so a future partial-window plan
            // cannot silently read stale rows.
            if (window.rows() != span.length()) {
              window = Matrix(span.length(), 3);
            }
            if (mocap_mode == FeaturizationMode::kIncremental) {
              if (refresh) ++cs.refreshes;
              // Slide every joint first, then solve all eigenproblems
              // in one batched call: the joints' rotation chains are
              // independent, and ComputeSvdFromGram3Many interleaves
              // them pairwise so their sqrt/divide latencies overlap.
              for (size_t j = 0; j < joints.size(); ++j) {
                const double* track = joints[j].RowPtr(0);
                if (refresh) {
                  grams[j].Refresh(track + 3 * span.begin, span.length());
                } else {
                  grams[j].Slide(track, prev.begin, prev.end, span.begin,
                                 span.end);
                }
                grams[j].FillTask(&tasks[j]);
              }
              ComputeSvdFromGram3Many(tasks.data(), tasks.size());
              for (size_t j = 0; j < joints.size(); ++j) {
                const double* track = joints[j].RowPtr(0);
                bool fast = grams[j].FinishSolve(
                    tasks[j], options.gram_condition_floor, row + col,
                    /*fresh=*/refresh);
                if (!fast && !refresh) {
                  // The guard budgets for slide drift; an exact refresh
                  // removes it, so the fresh-state floors (≈10× looser,
                  // see incremental_window.h) often still clear this
                  // window without the full one-sided SVD. The refresh
                  // also resets drift for the windows after it.
                  grams[j].Refresh(track + 3 * span.begin, span.length());
                  ++cs.fresh_retries;
                  fast = grams[j].WeightedSvdFeature(
                      options.gram_condition_floor, row + col,
                      /*fresh=*/true);
                }
                if (fast) {
                  ++cs.fast;
                } else {
                  // Conditioning guard: recompute this joint-window on
                  // the exact path (identical bytes to kExact).
                  std::memcpy(window.RowPtr(0),
                              joints[j].RowPtr(span.begin),
                              span.length() * 3 * sizeof(double));
                  MOCEMG_RETURN_NOT_OK(ExtractMocapFeatureInto(
                      options.mocap_feature, window, &mocap_scratch,
                      row + col));
                  ++cs.fallback;
                }
                col += 3;
              }
            } else {
              for (const Matrix& joint : joints) {
                // The w×3 slice of a row-major frames×3 track is one
                // contiguous block.
                std::memcpy(window.RowPtr(0), joint.RowPtr(span.begin),
                            span.length() * 3 * sizeof(double));
                MOCEMG_RETURN_NOT_OK(ExtractMocapFeatureInto(
                    options.mocap_feature, window, &mocap_scratch,
                    row + col));
                col += 3;
              }
            }
          }
          prev = span;
        }
        return Status::OK();
      },
      parallel);
  MOCEMG_RETURN_NOT_OK(st);

  if (stats != nullptr) {
    stats->num_windows = plan.num_windows();
    stats->emg_mode = emg_mode;
    stats->mocap_mode = mocap_mode;
    for (const ChunkGramStats& cs : gram_stats) {
      stats->gram_fast_windows += cs.fast;
      stats->gram_fallback_windows += cs.fallback;
      stats->gram_refreshes += cs.refreshes;
      stats->gram_fresh_retries += cs.fresh_retries;
    }
  }

  WindowFeatureMatrix out;
  out.points = std::move(points);
  out.plan = std::move(plan);
  return out;
}

}  // namespace mocemg
