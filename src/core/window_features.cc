#include "core/window_features.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"
#include "util/macros.h"

namespace mocemg {

size_t WindowFeatureDimension(const WindowFeatureOptions& options,
                              size_t emg_channels, size_t mocap_segments) {
  size_t dim = 0;
  if (options.use_emg) {
    const size_t per_channel =
        options.emg_feature == EmgFeatureKind::kAr4 ? 4 : 1;
    dim += per_channel * emg_channels;
  }
  if (options.use_mocap) dim += 3 * mocap_segments;
  return dim;
}

Result<WindowFeatureMatrix> ExtractWindowFeatures(
    const MotionSequence& mocap, const EmgRecording& emg,
    const WindowFeatureOptions& options) {
  if (!options.use_emg && !options.use_mocap) {
    return Status::InvalidArgument(
        "at least one modality must be enabled");
  }
  MOCEMG_RETURN_NOT_OK(mocap.Validate());
  if (options.use_emg) {
    MOCEMG_RETURN_NOT_OK(emg.Validate());
    if (std::fabs(emg.sample_rate_hz() - mocap.frame_rate_hz()) > 1e-9) {
      return Status::FailedPrecondition(
          "EMG must be conditioned to the mocap frame rate before "
          "feature extraction (got " +
          std::to_string(emg.sample_rate_hz()) + " Hz vs " +
          std::to_string(mocap.frame_rate_hz()) + " Hz)");
    }
  }

  // The synchronized streams can differ by a few frames at the capture
  // edges (resampler rounding); work on the overlap.
  size_t frames = mocap.num_frames();
  if (options.use_emg) frames = std::min(frames, emg.num_samples());

  const size_t window_frames =
      WindowMsToFrames(options.window_ms, mocap.frame_rate_hz());
  size_t hop_frames = options.hop_frames;
  if (options.hop_ms > 0.0) {
    hop_frames = WindowMsToFrames(options.hop_ms, mocap.frame_rate_hz());
  }
  MOCEMG_ASSIGN_OR_RETURN(
      WindowPlan plan,
      MakeWindowPlan(frames, window_frames, hop_frames));

  // Local transform once, then slice per window.
  MotionSequence local;
  std::vector<Segment> feature_segments;
  if (options.use_mocap) {
    MOCEMG_ASSIGN_OR_RETURN(local,
                            ToPelvisLocal(mocap, options.local_transform));
    for (Segment s : local.marker_set().segments()) {
      if (s != Segment::kPelvis) feature_segments.push_back(s);
    }
    if (feature_segments.empty()) {
      return Status::InvalidArgument(
          "mocap modality enabled but capture has no non-pelvis markers");
    }
  }

  const size_t dim = WindowFeatureDimension(
      options, options.use_emg ? emg.num_channels() : 0,
      feature_segments.size());
  Matrix points(plan.num_windows(), dim);

  for (size_t w = 0; w < plan.num_windows(); ++w) {
    const WindowSpan span = plan.spans[w];
    std::vector<double> row;
    row.reserve(dim);
    if (options.use_emg) {
      for (size_t c = 0; c < emg.num_channels(); ++c) {
        const std::vector<double>& ch = emg.channel(c);
        MOCEMG_ASSIGN_OR_RETURN(
            std::vector<double> f,
            ExtractEmgFeature(options.emg_feature, ch.data() + span.begin,
                              span.length()));
        row.insert(row.end(), f.begin(), f.end());
      }
    }
    if (options.use_mocap) {
      for (Segment s : feature_segments) {
        MOCEMG_ASSIGN_OR_RETURN(Matrix joint, local.JointMatrix(s));
        const Matrix window = joint.RowSlice(span.begin, span.end);
        MOCEMG_ASSIGN_OR_RETURN(
            std::vector<double> f,
            ExtractMocapFeature(options.mocap_feature, window));
        row.insert(row.end(), f.begin(), f.end());
      }
    }
    points.SetRow(w, row);
  }

  WindowFeatureMatrix out;
  out.points = std::move(points);
  out.plan = std::move(plan);
  return out;
}

}  // namespace mocemg
