#include "core/streaming.h"

#include <algorithm>
#include <cmath>

#include "emg/features.h"
#include "linalg/vector_ops.h"
#include "signal/window.h"
#include "util/macros.h"

namespace mocemg {

Result<StreamingClassifier> StreamingClassifier::Create(
    const MotionClassifier* model, size_t num_markers,
    size_t pelvis_index, size_t num_emg_channels,
    const StreamingOptions& options) {
  if (model == nullptr || model->num_motions() == 0) {
    return Status::InvalidArgument("streaming needs a trained model");
  }
  if (num_markers == 0 || pelvis_index >= num_markers) {
    return Status::InvalidArgument("invalid marker layout");
  }
  if (options.frame_rate_hz <= 0.0) {
    return Status::InvalidArgument("frame rate must be positive");
  }
  const WindowFeatureOptions& f = model->options().features;
  if (f.use_emg && num_emg_channels == 0) {
    return Status::InvalidArgument(
        "model uses EMG but stream has no EMG channels");
  }
  if (f.use_mocap && num_markers < 2) {
    return Status::InvalidArgument(
        "model uses mocap but stream has no non-pelvis markers");
  }
  // Check dimensional compatibility against the trained normalizer.
  const size_t dim = WindowFeatureDimension(
      f, f.use_emg ? num_emg_channels : 0,
      f.use_mocap ? num_markers - 1 : 0);
  if (dim != model->normalizer().dimension()) {
    return Status::InvalidArgument(
        "stream layout yields " + std::to_string(dim) +
        "-d window features but the model expects " +
        std::to_string(model->normalizer().dimension()));
  }

  StreamingClassifier s;
  s.model_ = model;
  s.options_ = options;
  s.num_markers_ = num_markers;
  s.pelvis_index_ = pelvis_index;
  s.num_emg_channels_ = num_emg_channels;
  s.window_frames_ = WindowMsToFrames(f.window_ms, options.frame_rate_hz);
  s.hop_frames_ = f.hop_frames;
  if (f.hop_ms > 0.0) {
    s.hop_frames_ = WindowMsToFrames(f.hop_ms, options.frame_rate_hz);
  }
  if (s.hop_frames_ == 0) s.hop_frames_ = s.window_frames_;
  const size_t c = model->codebook().num_clusters();
  s.min_per_cluster_.assign(c, 0.0);
  s.max_per_cluster_.assign(c, 0.0);
  s.cluster_seen_.assign(c, false);
  s.votes_.assign(c, 0.0);
  return s;
}

Status StreamingClassifier::PushFrame(
    const std::vector<double>& marker_positions,
    const std::vector<double>& emg_envelope) {
  if (marker_positions.size() != 3 * num_markers_) {
    return Status::InvalidArgument(
        "marker frame has " + std::to_string(marker_positions.size()) +
        " values, expected " + std::to_string(3 * num_markers_));
  }
  if (emg_envelope.size() != num_emg_channels_) {
    return Status::InvalidArgument(
        "EMG frame has " + std::to_string(emg_envelope.size()) +
        " channels, expected " + std::to_string(num_emg_channels_));
  }
  for (double v : marker_positions) {
    if (!std::isfinite(v)) {
      return Status::NumericalError("non-finite marker coordinate");
    }
  }
  // Pelvis-local transform, applied per frame as it arrives.
  std::vector<double> local(marker_positions);
  const double px = local[3 * pelvis_index_];
  const double py = local[3 * pelvis_index_ + 1];
  const double pz = local[3 * pelvis_index_ + 2];
  for (size_t m = 0; m < num_markers_; ++m) {
    local[3 * m] -= px;
    local[3 * m + 1] -= py;
    local[3 * m + 2] -= pz;
  }
  mocap_buffer_.push_back(std::move(local));
  emg_buffer_.push_back(emg_envelope);
  ++frames_pushed_;

  while (frames_pushed_ >= next_window_start_ + window_frames_) {
    MOCEMG_RETURN_NOT_OK(CompleteWindow());
    next_window_start_ += hop_frames_;
    // Trim consumed prefix.
    const size_t drop = next_window_start_ - buffer_start_frame_;
    if (drop > 0 && drop <= mocap_buffer_.size()) {
      mocap_buffer_.erase(mocap_buffer_.begin(),
                          mocap_buffer_.begin() +
                              static_cast<ptrdiff_t>(drop));
      emg_buffer_.erase(emg_buffer_.begin(),
                        emg_buffer_.begin() +
                            static_cast<ptrdiff_t>(drop));
      buffer_start_frame_ = next_window_start_;
    }
  }
  return Status::OK();
}

Status StreamingClassifier::CompleteWindow() {
  const WindowFeatureOptions& f = model_->options().features;
  const size_t offset = next_window_start_ - buffer_start_frame_;
  std::vector<double> feature;

  if (f.use_emg) {
    std::vector<double> channel(window_frames_);
    for (size_t c = 0; c < num_emg_channels_; ++c) {
      for (size_t i = 0; i < window_frames_; ++i) {
        channel[i] = emg_buffer_[offset + i][c];
      }
      MOCEMG_ASSIGN_OR_RETURN(
          std::vector<double> part,
          ExtractEmgFeature(f.emg_feature, channel.data(),
                            window_frames_));
      feature.insert(feature.end(), part.begin(), part.end());
    }
  }
  if (f.use_mocap) {
    Matrix joint(window_frames_, 3);
    for (size_t m = 0; m < num_markers_; ++m) {
      if (m == pelvis_index_) continue;
      for (size_t i = 0; i < window_frames_; ++i) {
        joint(i, 0) = mocap_buffer_[offset + i][3 * m];
        joint(i, 1) = mocap_buffer_[offset + i][3 * m + 1];
        joint(i, 2) = mocap_buffer_[offset + i][3 * m + 2];
      }
      MOCEMG_ASSIGN_OR_RETURN(
          std::vector<double> part,
          ExtractMocapFeature(f.mocap_feature, joint));
      feature.insert(feature.end(), part.begin(), part.end());
    }
  }

  MOCEMG_RETURN_NOT_OK(
      model_->normalizer().TransformInPlace(&feature));
  MOCEMG_ASSIGN_OR_RETURN(std::vector<double> u,
                          model_->codebook().Membership(feature));
  MOCEMG_ASSIGN_OR_RETURN(size_t winner, ArgMax(u));
  const double h = u[winner];
  if (!cluster_seen_[winner]) {
    cluster_seen_[winner] = true;
    min_per_cluster_[winner] = h;
    max_per_cluster_[winner] = h;
  } else {
    min_per_cluster_[winner] = std::min(min_per_cluster_[winner], h);
    max_per_cluster_[winner] = std::max(max_per_cluster_[winner], h);
  }
  votes_[winner] += 1.0;
  ++windows_completed_;
  return Status::OK();
}

Result<std::vector<double>> StreamingClassifier::CurrentFinalFeature()
    const {
  if (windows_completed_ == 0) {
    return Status::FailedPrecondition("no completed windows yet");
  }
  const size_t c = min_per_cluster_.size();
  if (model_->options().cluster_method == ClusterMethod::kFuzzyCMeans) {
    std::vector<double> feature(2 * c, 0.0);
    for (size_t i = 0; i < c; ++i) {
      feature[2 * i] = min_per_cluster_[i];
      feature[2 * i + 1] = max_per_cluster_[i];
    }
    return feature;
  }
  std::vector<double> feature(votes_);
  const double inv = 1.0 / static_cast<double>(windows_completed_);
  for (double& v : feature) v *= inv;
  return feature;
}

Result<size_t> StreamingClassifier::CurrentDecision() const {
  if (windows_completed_ < options_.min_windows_for_decision) {
    return Status::FailedPrecondition(
        "only " + std::to_string(windows_completed_) +
        " windows completed; decision needs " +
        std::to_string(options_.min_windows_for_decision));
  }
  MOCEMG_ASSIGN_OR_RETURN(std::vector<MotionMatch> nn, CurrentMatches(1));
  return nn[0].label;
}

Result<std::vector<MotionMatch>> StreamingClassifier::CurrentMatches(
    size_t k) const {
  MOCEMG_ASSIGN_OR_RETURN(std::vector<double> feature,
                          CurrentFinalFeature());
  return model_->NearestNeighbors(feature, k);
}

void StreamingClassifier::Reset() {
  mocap_buffer_.clear();
  emg_buffer_.clear();
  frames_pushed_ = 0;
  next_window_start_ = 0;
  buffer_start_frame_ = 0;
  windows_completed_ = 0;
  std::fill(min_per_cluster_.begin(), min_per_cluster_.end(), 0.0);
  std::fill(max_per_cluster_.begin(), max_per_cluster_.end(), 0.0);
  std::fill(cluster_seen_.begin(), cluster_seen_.end(), false);
  std::fill(votes_.begin(), votes_.end(), 0.0);
}

}  // namespace mocemg
