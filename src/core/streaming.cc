#include "core/streaming.h"

#include <algorithm>
#include <cmath>

#include "emg/features.h"
#include "linalg/vector_ops.h"
#include "signal/window.h"
#include "util/macros.h"

namespace mocemg {
namespace {

// Per-channel width of the EMG feature block.
size_t PerChannelWidth(const WindowFeatureOptions& f) {
  WindowFeatureOptions one_channel = f;
  one_channel.use_mocap = false;
  return WindowFeatureDimension(one_channel, 1, 0);
}

}  // namespace

Result<StreamingClassifier> StreamingClassifier::Create(
    const MotionClassifier* model, size_t num_markers,
    size_t pelvis_index, size_t num_emg_channels,
    const StreamingOptions& options) {
  if (model == nullptr || model->num_motions() == 0) {
    return Status::InvalidArgument("streaming needs a trained model");
  }
  if (num_markers == 0 || pelvis_index >= num_markers) {
    return Status::InvalidArgument("invalid marker layout");
  }
  if (options.frame_rate_hz <= 0.0) {
    return Status::InvalidArgument("frame rate must be positive");
  }
  const WindowFeatureOptions& f = model->options().features;
  if (f.use_emg && num_emg_channels == 0) {
    return Status::InvalidArgument(
        "model uses EMG but stream has no EMG channels");
  }
  if (f.use_mocap && num_markers < 2) {
    return Status::InvalidArgument(
        "model uses mocap but stream has no non-pelvis markers");
  }
  // Check dimensional compatibility against the trained normalizer.
  const size_t dim = WindowFeatureDimension(
      f, f.use_emg ? num_emg_channels : 0,
      f.use_mocap ? num_markers - 1 : 0);
  if (dim != model->normalizer().dimension()) {
    return Status::InvalidArgument(
        "stream layout yields " + std::to_string(dim) +
        "-d window features but the model expects " +
        std::to_string(model->normalizer().dimension()));
  }

  StreamingClassifier s;
  s.model_ = model;
  s.options_ = options;
  s.num_markers_ = num_markers;
  s.pelvis_index_ = pelvis_index;
  s.num_emg_channels_ = num_emg_channels;
  s.window_frames_ = WindowMsToFrames(f.window_ms, options.frame_rate_hz);
  // Shared hop resolution (hop_ms precedence + conflict rejection),
  // identical to the batch extractor's.
  MOCEMG_ASSIGN_OR_RETURN(
      s.hop_frames_,
      ResolveHopFrames(f, options.frame_rate_hz, s.window_frames_));
  // Featurization engine: the stream option overrides the model's, and
  // streaming restricts incremental to overlapping windows — with
  // hop >= window nothing carries over between windows.
  const FeaturizationMode requested =
      options.featurization_mode.value_or(f.featurization_mode);
  if (s.hop_frames_ < s.window_frames_ &&
      ResolveFeaturizationMode(requested, s.window_frames_,
                               s.hop_frames_) ==
          FeaturizationMode::kIncremental) {
    if (f.use_emg && EmgFeatureSupportsIncremental(f.emg_feature)) {
      s.emg_mode_ = FeaturizationMode::kIncremental;
    }
    if (f.use_mocap &&
        f.mocap_feature == MocapFeatureKind::kWeightedSvd) {
      s.mocap_mode_ = FeaturizationMode::kIncremental;
    }
  }
  s.gram_refresh_interval_ = std::max<size_t>(f.gram_refresh_interval, 1);
  s.gram_condition_floor_ = f.gram_condition_floor;
  s.emg_sums_.assign(num_emg_channels, EmgWindowSums{});
  s.joint_grams_.assign(num_markers, JointGramState{});
  BindModeState(&s.full_state_, model, ClassifierMode::kFull);
  if (options.tolerate_faults && model->has_fallbacks()) {
    BindModeState(&s.mocap_state_, model->submodel(ClassifierMode::kMocapOnly),
                  ClassifierMode::kMocapOnly);
    BindModeState(&s.emg_state_, model->submodel(ClassifierMode::kEmgOnly),
                  ClassifierMode::kEmgOnly);
  }
  s.last_pelvis_global_.assign(3, 0.0);
  s.last_local_.assign(num_markers, std::vector<double>(3, 0.0));
  s.have_marker_.assign(num_markers, false);
  s.hold_streak_.assign(num_markers, 0);
  s.last_emg_.assign(num_emg_channels, 0.0);
  s.emg_tail_.assign(num_emg_channels, {});
  s.channel_masked_.assign(num_emg_channels, false);
  return s;
}

void StreamingClassifier::BindModeState(ModeState* state,
                                        const MotionClassifier* model,
                                        ClassifierMode mode) {
  state->model = model;
  state->mode = mode;
  const size_t c = model->codebook().num_clusters();
  state->min_per_cluster.assign(c, 0.0);
  state->max_per_cluster.assign(c, 0.0);
  state->cluster_seen.assign(c, false);
  state->votes.assign(c, 0.0);
}

Status StreamingClassifier::PushFrame(
    const std::vector<double>& marker_positions,
    const std::vector<double>& emg_envelope) {
  if (marker_positions.size() != 3 * num_markers_) {
    return Status::InvalidArgument(
        "marker frame has " + std::to_string(marker_positions.size()) +
        " values, expected " + std::to_string(3 * num_markers_));
  }
  if (emg_envelope.size() != num_emg_channels_) {
    return Status::InvalidArgument(
        "EMG frame has " + std::to_string(emg_envelope.size()) +
        " channels, expected " + std::to_string(num_emg_channels_));
  }
  if (!options_.tolerate_faults) {
    for (double v : marker_positions) {
      if (!std::isfinite(v)) {
        return Status::NumericalError("non-finite marker coordinate");
      }
    }
    for (double v : emg_envelope) {
      if (!std::isfinite(v)) {
        return Status::NumericalError("non-finite EMG sample");
      }
    }
  }

  bool patched = false;

  // Pelvis first: it anchors the local transform, so a lost pelvis is
  // held at its last captured global position.
  std::vector<double> pelvis(3);
  bool pelvis_missing = false;
  for (size_t k = 0; k < 3; ++k) {
    pelvis[k] = marker_positions[3 * pelvis_index_ + k];
    if (!std::isfinite(pelvis[k])) pelvis_missing = true;
  }
  if (pelvis_missing) {
    pelvis = last_pelvis_global_;  // zeros until first capture
    patched = true;
    if (++hold_streak_[pelvis_index_] > options_.max_hold_frames) {
      health_.mocap_degraded = true;
    }
  } else {
    last_pelvis_global_ = pelvis;
    have_pelvis_ = true;
    hold_streak_[pelvis_index_] = 0;
  }

  // Pelvis-local transform, applied per frame as it arrives; occluded
  // markers are held at their last captured *local* position, freezing
  // the relative pose rather than fabricating motion.
  std::vector<double> local(3 * num_markers_, 0.0);
  for (size_t m = 0; m < num_markers_; ++m) {
    if (m == pelvis_index_) continue;
    bool missing = false;
    for (size_t k = 0; k < 3; ++k) {
      if (!std::isfinite(marker_positions[3 * m + k])) missing = true;
    }
    if (missing) {
      for (size_t k = 0; k < 3; ++k) local[3 * m + k] = last_local_[m][k];
      patched = true;
      if (++hold_streak_[m] > options_.max_hold_frames) {
        health_.mocap_degraded = true;
      }
    } else {
      for (size_t k = 0; k < 3; ++k) {
        local[3 * m + k] = marker_positions[3 * m + k] - pelvis[k];
        last_local_[m][k] = local[3 * m + k];
      }
      have_marker_[m] = true;
      hold_streak_[m] = 0;
    }
  }

  // EMG: patch non-finite samples with the last good value and feed the
  // trailing window the flatline detector evaluates.
  std::vector<double> emg = emg_envelope;
  for (size_t c = 0; c < num_emg_channels_; ++c) {
    if (!std::isfinite(emg[c])) {
      emg[c] = last_emg_[c];
      patched = true;
    } else {
      last_emg_[c] = emg[c];
    }
    if (options_.tolerate_faults && options_.flatline_window_frames > 0) {
      std::vector<double>& tail = emg_tail_[c];
      tail.push_back(emg[c]);
      if (tail.size() > options_.flatline_window_frames) {
        tail.erase(tail.begin());
      }
      if (tail.size() == options_.flatline_window_frames) {
        double mean = 0.0;
        for (double v : tail) mean += v;
        mean /= static_cast<double>(tail.size());
        double var = 0.0;
        for (double v : tail) var += (v - mean) * (v - mean);
        var /= static_cast<double>(tail.size());
        const bool was_masked = channel_masked_[c];
        channel_masked_[c] = var < options_.flatline_variance_floor;
        if (channel_masked_[c] && !was_masked) {
          ++health_.flatlined_channels;
        } else if (!channel_masked_[c] && was_masked) {
          --health_.flatlined_channels;
        }
      }
    }
  }
  if (patched) ++health_.frames_patched;
  health_.markers_held = 0;
  for (size_t streak : hold_streak_) {
    if (streak > 0) ++health_.markers_held;
  }

  mocap_buffer_.push_back(std::move(local));
  emg_buffer_.push_back(std::move(emg));
  ++frames_pushed_;

  // O(1) incremental-state update for the arriving frame. The state
  // covers [next_window_start_, frames_pushed_); with overlapping hops
  // (the only geometry the incremental modes resolve to) every arriving
  // frame is at or past the next window start.
  const size_t frame_index = frames_pushed_ - 1;
  if (frame_index >= next_window_start_) {
    if (mocap_mode_ == FeaturizationMode::kIncremental) {
      const std::vector<double>& row = mocap_buffer_.back();
      for (size_t m = 0; m < num_markers_; ++m) {
        if (m == pelvis_index_) continue;
        joint_grams_[m].AddRow(&row[3 * m]);
      }
    }
    if (emg_mode_ == FeaturizationMode::kIncremental) {
      const std::vector<double>& cur = emg_buffer_.back();
      if (frame_index > next_window_start_) {
        const std::vector<double>& prev =
            emg_buffer_[emg_buffer_.size() - 2];
        for (size_t c = 0; c < num_emg_channels_; ++c) {
          emg_sums_[c].AddTailSample(cur[c], prev[c]);
        }
      } else {
        for (size_t c = 0; c < num_emg_channels_; ++c) {
          emg_sums_[c].AddTailSample(cur[c]);
        }
      }
    }
  }

  while (frames_pushed_ >= next_window_start_ + window_frames_) {
    MOCEMG_RETURN_NOT_OK(CompleteWindow());
    const size_t old_start = next_window_start_;
    next_window_start_ += hop_frames_;
    // Drop the hopped-over frames from the incremental state before the
    // buffer trim below discards their rows.
    RebaseIncrementalState(old_start);
    // Trim consumed prefix.
    const size_t drop = next_window_start_ - buffer_start_frame_;
    if (drop > 0 && drop <= mocap_buffer_.size()) {
      mocap_buffer_.erase(mocap_buffer_.begin(),
                          mocap_buffer_.begin() +
                              static_cast<ptrdiff_t>(drop));
      emg_buffer_.erase(emg_buffer_.begin(),
                        emg_buffer_.begin() +
                            static_cast<ptrdiff_t>(drop));
      buffer_start_frame_ = next_window_start_;
    }
  }
  return Status::OK();
}

Status StreamingClassifier::UpdateModeState(
    ModeState* state, std::vector<double> raw_feature) {
  MOCEMG_RETURN_NOT_OK(
      state->model->normalizer().TransformInPlace(&raw_feature));
  MOCEMG_ASSIGN_OR_RETURN(
      std::vector<double> u,
      state->model->codebook().Membership(raw_feature));
  MOCEMG_ASSIGN_OR_RETURN(size_t winner, ArgMax(u));
  const double h = u[winner];
  if (!state->cluster_seen[winner]) {
    state->cluster_seen[winner] = true;
    state->min_per_cluster[winner] = h;
    state->max_per_cluster[winner] = h;
  } else {
    state->min_per_cluster[winner] =
        std::min(state->min_per_cluster[winner], h);
    state->max_per_cluster[winner] =
        std::max(state->max_per_cluster[winner], h);
  }
  state->votes[winner] += 1.0;
  return Status::OK();
}

Status StreamingClassifier::CompleteWindow() {
  const WindowFeatureOptions& f = model_->options().features;
  const size_t offset = next_window_start_ - buffer_start_frame_;

  // Periodic exact reseed of the incremental state, bounding the float
  // drift of the per-frame add/remove updates (same cadence contract as
  // the batch extractor; see incremental_window.h).
  if ((emg_mode_ == FeaturizationMode::kIncremental ||
       mocap_mode_ == FeaturizationMode::kIncremental) &&
      windows_since_refresh_ >= gram_refresh_interval_) {
    RefreshIncrementalState(offset);
    windows_since_refresh_ = 0;
  }
  ++windows_since_refresh_;

  // Raw (un-normalized) modality parts of this window's feature point.
  std::vector<double> emg_part;
  std::vector<double> mocap_part;

  if (f.use_emg) {
    const size_t per_channel = PerChannelWidth(f);
    std::vector<double> channel(window_frames_);
    for (size_t c = 0; c < num_emg_channels_; ++c) {
      if (options_.tolerate_faults && channel_masked_[c]) {
        // Neutralize a flatlined channel: the full model's training mean
        // z-scores to exactly 0 (fallback sub-models share the same raw
        // means, fitted on the same pooled windows).
        for (size_t d = 0; d < per_channel; ++d) {
          emg_part.push_back(
              model_->normalizer().mean()[c * per_channel + d]);
        }
        continue;
      }
      if (emg_mode_ == FeaturizationMode::kIncremental) {
        // All incremental EMG kinds are width 1 (AR(4) is excluded by
        // EmgFeatureSupportsIncremental).
        double value = 0.0;
        MOCEMG_RETURN_NOT_OK(
            emg_sums_[c].Emit(f.emg_feature, window_frames_, &value));
        emg_part.push_back(value);
        continue;
      }
      for (size_t i = 0; i < window_frames_; ++i) {
        channel[i] = emg_buffer_[offset + i][c];
      }
      MOCEMG_ASSIGN_OR_RETURN(
          std::vector<double> part,
          ExtractEmgFeature(f.emg_feature, channel.data(),
                            window_frames_));
      emg_part.insert(emg_part.end(), part.begin(), part.end());
    }
  }
  if (f.use_mocap) {
    Matrix joint(window_frames_, 3);
    // The state is fresh (pure in-order accumulation, no slide drift)
    // on the first window after Create/Reset and on every cadence
    // reseed, which both leave the counter at 1 here.
    const bool state_fresh = windows_since_refresh_ == 1;
    if (mocap_mode_ == FeaturizationMode::kIncremental) {
      // Batch the non-pelvis eigensolves into one call so the joints'
      // independent rotation chains interleave (same pattern as the
      // batch extractor, see ComputeSvdFromGram3Many).
      gram_tasks_.clear();
      for (size_t m = 0; m < num_markers_; ++m) {
        if (m == pelvis_index_) continue;
        gram_tasks_.emplace_back();
        joint_grams_[m].FillTask(&gram_tasks_.back());
      }
      ComputeSvdFromGram3Many(gram_tasks_.data(), gram_tasks_.size());
    }
    size_t task_index = 0;
    for (size_t m = 0; m < num_markers_; ++m) {
      if (m == pelvis_index_) continue;
      if (mocap_mode_ == FeaturizationMode::kIncremental) {
        double feature[3];
        bool fast = joint_grams_[m].FinishSolve(
            gram_tasks_[task_index++], gram_condition_floor_, feature,
            state_fresh);
        if (!fast && !state_fresh) {
          // Retry at the fresh-state floors after recomputing this
          // joint's Gram over the completing window (same two-tier
          // policy as the batch extractor, see incremental_window.h).
          joint_grams_[m].Reset();
          for (size_t i = 0; i < window_frames_; ++i) {
            joint_grams_[m].AddRow(&mocap_buffer_[offset + i][3 * m]);
          }
          fast = joint_grams_[m].WeightedSvdFeature(
              gram_condition_floor_, feature, /*fresh=*/true);
        }
        if (fast) {
          mocap_part.insert(mocap_part.end(), feature, feature + 3);
          continue;
        }
        // Conditioning guard tripped: recompute this joint-window on
        // the exact path below.
      }
      for (size_t i = 0; i < window_frames_; ++i) {
        joint(i, 0) = mocap_buffer_[offset + i][3 * m];
        joint(i, 1) = mocap_buffer_[offset + i][3 * m + 1];
        joint(i, 2) = mocap_buffer_[offset + i][3 * m + 2];
      }
      MOCEMG_ASSIGN_OR_RETURN(
          std::vector<double> part,
          ExtractMocapFeature(f.mocap_feature, joint));
      mocap_part.insert(mocap_part.end(), part.begin(), part.end());
    }
  }

  std::vector<double> feature = emg_part;
  feature.insert(feature.end(), mocap_part.begin(), mocap_part.end());
  MOCEMG_RETURN_NOT_OK(UpdateModeState(&full_state_, std::move(feature)));
  if (mocap_state_.model != nullptr) {
    MOCEMG_RETURN_NOT_OK(UpdateModeState(&mocap_state_, mocap_part));
  }
  if (emg_state_.model != nullptr) {
    MOCEMG_RETURN_NOT_OK(UpdateModeState(&emg_state_, emg_part));
  }
  ++windows_completed_;
  return Status::OK();
}

void StreamingClassifier::RebaseIncrementalState(size_t old_start) {
  if (emg_mode_ != FeaturizationMode::kIncremental &&
      mocap_mode_ != FeaturizationMode::kIncremental) {
    return;
  }
  // The incremental modes only run with hop < window, so the advanced
  // start stays strictly inside the pushed frames and every removed
  // frame (and its successor, for the pair terms) is still buffered.
  for (size_t frame = old_start; frame < next_window_start_; ++frame) {
    const size_t off = frame - buffer_start_frame_;
    if (mocap_mode_ == FeaturizationMode::kIncremental) {
      const std::vector<double>& row = mocap_buffer_[off];
      for (size_t m = 0; m < num_markers_; ++m) {
        if (m == pelvis_index_) continue;
        joint_grams_[m].RemoveRow(&row[3 * m]);
      }
    }
    if (emg_mode_ == FeaturizationMode::kIncremental) {
      const std::vector<double>& cur = emg_buffer_[off];
      const std::vector<double>& next = emg_buffer_[off + 1];
      for (size_t c = 0; c < num_emg_channels_; ++c) {
        emg_sums_[c].RemoveHeadSample(cur[c], next[c]);
      }
    }
  }
}

void StreamingClassifier::RefreshIncrementalState(size_t offset) {
  // The state covers exactly the completing window (completion fires on
  // the frame that fills it), so a full recomputation over
  // [offset, offset + window) reseeds it with the same frame order a
  // fresh run would use.
  if (mocap_mode_ == FeaturizationMode::kIncremental) {
    for (size_t m = 0; m < num_markers_; ++m) {
      if (m == pelvis_index_) continue;
      joint_grams_[m].Reset();
    }
    for (size_t i = 0; i < window_frames_; ++i) {
      const std::vector<double>& row = mocap_buffer_[offset + i];
      for (size_t m = 0; m < num_markers_; ++m) {
        if (m == pelvis_index_) continue;
        joint_grams_[m].AddRow(&row[3 * m]);
      }
    }
  }
  if (emg_mode_ == FeaturizationMode::kIncremental) {
    for (size_t c = 0; c < num_emg_channels_; ++c) {
      emg_sums_[c].Reset();
    }
    for (size_t i = 0; i < window_frames_; ++i) {
      const std::vector<double>& cur = emg_buffer_[offset + i];
      if (i > 0) {
        const std::vector<double>& prev = emg_buffer_[offset + i - 1];
        for (size_t c = 0; c < num_emg_channels_; ++c) {
          emg_sums_[c].AddTailSample(cur[c], prev[c]);
        }
      } else {
        for (size_t c = 0; c < num_emg_channels_; ++c) {
          emg_sums_[c].AddTailSample(cur[c]);
        }
      }
    }
  }
}

Result<std::vector<double>> StreamingClassifier::FinalFeatureFromState(
    const ModeState& state) const {
  if (windows_completed_ == 0) {
    return Status::FailedPrecondition("no completed windows yet");
  }
  const size_t c = state.min_per_cluster.size();
  if (state.model->options().cluster_method ==
      ClusterMethod::kFuzzyCMeans) {
    std::vector<double> feature(2 * c, 0.0);
    for (size_t i = 0; i < c; ++i) {
      feature[2 * i] = state.min_per_cluster[i];
      feature[2 * i + 1] = state.max_per_cluster[i];
    }
    return feature;
  }
  std::vector<double> feature(state.votes);
  const double inv = 1.0 / static_cast<double>(windows_completed_);
  for (double& v : feature) v *= inv;
  return feature;
}

Result<std::vector<double>> StreamingClassifier::CurrentFinalFeature()
    const {
  return FinalFeatureFromState(full_state_);
}

Result<size_t> StreamingClassifier::CurrentDecision() const {
  if (windows_completed_ < options_.min_windows_for_decision) {
    return Status::FailedPrecondition(
        "only " + std::to_string(windows_completed_) +
        " windows completed; decision needs " +
        std::to_string(options_.min_windows_for_decision));
  }
  MOCEMG_ASSIGN_OR_RETURN(std::vector<MotionMatch> nn, CurrentMatches(1));
  return nn[0].label;
}

Result<std::vector<MotionMatch>> StreamingClassifier::CurrentMatches(
    size_t k) const {
  MOCEMG_ASSIGN_OR_RETURN(std::vector<double> feature,
                          CurrentFinalFeature());
  return model_->NearestNeighbors(feature, k);
}

Result<StreamingDecision> StreamingClassifier::CurrentRobustDecision()
    const {
  if (!options_.tolerate_faults) {
    return Status::FailedPrecondition(
        "robust decisions need StreamingOptions::tolerate_faults");
  }
  if (windows_completed_ < options_.min_windows_for_decision) {
    return Status::FailedPrecondition(
        "only " + std::to_string(windows_completed_) +
        " windows completed; decision needs " +
        std::to_string(options_.min_windows_for_decision));
  }
  StreamingDecision decision;
  decision.health = health_;

  // Mode policy mirrors ClassifyRobust: a majority of flatlined channels
  // drops EMG, a marker held beyond bound drops mocap — provided the
  // model carries the matching fallback. With both degraded (or no
  // fallbacks) the full subspace decides, best effort, flagged degraded.
  const bool emg_unusable =
      2 * health_.flatlined_channels > num_emg_channels_;
  const bool mocap_unusable = health_.mocap_degraded;
  const ModeState* state = &full_state_;
  if (emg_unusable && !mocap_unusable && mocap_state_.model != nullptr) {
    state = &mocap_state_;
  } else if (mocap_unusable && !emg_unusable &&
             emg_state_.model != nullptr) {
    state = &emg_state_;
  }
  decision.mode = state->mode;

  MOCEMG_ASSIGN_OR_RETURN(std::vector<double> feature,
                          FinalFeatureFromState(*state));
  MOCEMG_ASSIGN_OR_RETURN(std::vector<MotionMatch> nn,
                          state->model->NearestNeighbors(feature, 1));
  decision.label = nn[0].label;
  decision.distance = nn[0].distance;
  decision.degraded =
      decision.mode != ClassifierMode::kFull || health_.degraded();
  return decision;
}

void StreamingClassifier::Reset() {
  mocap_buffer_.clear();
  emg_buffer_.clear();
  frames_pushed_ = 0;
  next_window_start_ = 0;
  buffer_start_frame_ = 0;
  windows_completed_ = 0;
  for (EmgWindowSums& sums : emg_sums_) sums.Reset();
  for (JointGramState& gram : joint_grams_) gram.Reset();
  windows_since_refresh_ = 0;
  for (ModeState* state : {&full_state_, &mocap_state_, &emg_state_}) {
    std::fill(state->min_per_cluster.begin(),
              state->min_per_cluster.end(), 0.0);
    std::fill(state->max_per_cluster.begin(),
              state->max_per_cluster.end(), 0.0);
    std::fill(state->cluster_seen.begin(), state->cluster_seen.end(),
              false);
    std::fill(state->votes.begin(), state->votes.end(), 0.0);
  }
  health_ = StreamingHealth{};
  have_pelvis_ = false;
  std::fill(last_pelvis_global_.begin(), last_pelvis_global_.end(), 0.0);
  for (auto& l : last_local_) std::fill(l.begin(), l.end(), 0.0);
  std::fill(have_marker_.begin(), have_marker_.end(), false);
  std::fill(hold_streak_.begin(), hold_streak_.end(), 0);
  std::fill(last_emg_.begin(), last_emg_.end(), 0.0);
  for (auto& t : emg_tail_) t.clear();
  std::fill(channel_masked_.begin(), channel_masked_.end(), false);
}

}  // namespace mocemg
