#include "core/incremental_window.h"

#include <cmath>

namespace mocemg {
namespace {

// Perturbation budget for clustered eigenvalues: a backward error of
// ε·λmax rotates the (i, j) eigenplane by ~ε·λmax/(λᵢ−λⱼ), and that
// rotation enters the Eq. 3 sum scaled by the pair's larger weight
// σᵢ/Σσ ≤ σᵢ/σmax. Requiring λᵢ−λⱼ ≥ kRelativeGapFloor·λmax·(σᵢ/σmax)
// keeps the feature error below ~ε/kRelativeGapFloor ≈ 1e-11 for the
// ε ≈ 1e-14 the refresh cadence guarantees.
constexpr double kRelativeGapFloor = 1e-3;

// Guard relief for a freshly recomputed Gram (see the header): the
// accumulation round-off of a ≤ 32-row window is ~10× below the slide
// drift the floors above budget for, so the gap floor relaxes by that
// ratio and the condition floor by its square.
constexpr double kFreshGapRelief = 1e-1;
constexpr double kFreshConditionRelief = 1e-2;

// The sign convention keys on the largest-|·| component of each vᵢ;
// below this relative margin over the runner-up, independent round-off
// (exact vs Gram path) can legitimately pick different components and
// flip the column, so the guard sends the window to the exact path.
constexpr double kSignMarginFloor = 1e-6;

}  // namespace

const char* FeaturizationModeName(FeaturizationMode mode) {
  switch (mode) {
    case FeaturizationMode::kExact:
      return "exact";
    case FeaturizationMode::kIncremental:
      return "incremental";
    case FeaturizationMode::kAuto:
      return "auto";
  }
  return "?";
}

FeaturizationMode ResolveFeaturizationMode(FeaturizationMode mode,
                                           size_t window_frames,
                                           size_t hop_frames) {
  if (mode != FeaturizationMode::kAuto) return mode;
  return hop_frames < window_frames ? FeaturizationMode::kIncremental
                                    : FeaturizationMode::kExact;
}

void JointGramState::Reset() {
  for (double& g : g_) g = 0.0;
  has_warm_ = false;
}

void JointGramState::AddRow(const double* xyz) {
  const double x = xyz[0];
  const double y = xyz[1];
  const double z = xyz[2];
  g_[0] += x * x;
  g_[1] += x * y;
  g_[2] += x * z;
  g_[3] += y * y;
  g_[4] += y * z;
  g_[5] += z * z;
}

void JointGramState::RemoveRow(const double* xyz) {
  const double x = xyz[0];
  const double y = xyz[1];
  const double z = xyz[2];
  g_[0] -= x * x;
  g_[1] -= x * y;
  g_[2] -= x * z;
  g_[3] -= y * y;
  g_[4] -= y * z;
  g_[5] -= z * z;
}

void JointGramState::Refresh(const double* rows, size_t w) {
  // Zeroes only the accumulator: a refresh recomputes the same (or an
  // adjacent) window, so a cached warm basis stays a good seed for the
  // next solve. Reset() is the full clear.
  for (double& g : g_) g = 0.0;
  for (size_t i = 0; i < w; ++i) AddRow(rows + 3 * i);
}

void JointGramState::Slide(const double* track, size_t old_begin,
                           size_t old_end, size_t new_begin,
                           size_t new_end) {
  if (new_begin >= old_end) {
    Refresh(track + 3 * new_begin, new_end - new_begin);
    return;
  }
  for (size_t i = old_begin; i < new_begin; ++i) RemoveRow(track + 3 * i);
  for (size_t i = old_end; i < new_end; ++i) AddRow(track + 3 * i);
}

bool JointGramState::WeightedSvdFeature(double condition_floor,
                                        double* out3, bool fresh) {
  GramSvd3Task task;
  FillTask(&task);
  task.status = ComputeSvdFromGram3(task.gram, task.warm_v, task.out);
  return FinishSolve(task, condition_floor, out3, fresh);
}

void JointGramState::FillTask(GramSvd3Task* task) {
  task->gram = g_;
  task->warm_v = has_warm_ ? warm_v_ : nullptr;
  task->out = &eig_;
}

bool JointGramState::FinishSolve(const GramSvd3Task& task,
                                 double condition_floor, double* out3,
                                 bool fresh) {
  if (!task.status.ok()) {
    has_warm_ = false;
    return false;
  }
  const GramSvd3& eig = *task.out;
  for (int i = 0; i < 9; ++i) warm_v_[i] = eig.v[i];
  has_warm_ = true;
  if (eig.sigma[0] <= 0.0) {
    // Stationary joint at the local origin: zero feature, exactly the
    // exact path's degenerate-window convention.
    out3[0] = 0.0;
    out3[1] = 0.0;
    out3[2] = 0.0;
    return true;
  }
  const double l0 = eig.lambda[0];
  const double l1 = eig.lambda[1] > 0.0 ? eig.lambda[1] : 0.0;
  const double l2 = eig.lambda[2] > 0.0 ? eig.lambda[2] : 0.0;
  // (a) Conditioning floor: the Gram path only carries half the digits
  // of the one-sided SVD, so a spread past the floor is noise here.
  if (l2 < (fresh ? kFreshConditionRelief * condition_floor
                  : condition_floor) *
               l0) {
    return false;
  }
  // (b) Clustered eigenvalues (weighted gap — see kRelativeGapFloor).
  const double gap_unit = (fresh ? kFreshGapRelief * kRelativeGapFloor
                                 : kRelativeGapFloor) *
                          l0 / eig.sigma[0];
  if (l0 - l1 < gap_unit * eig.sigma[0]) return false;
  if (l1 - l2 < gap_unit * eig.sigma[1]) return false;
  if (l0 - l2 < gap_unit * eig.sigma[0]) return false;
  // (c) Ambiguous sign convention.
  if (eig.sign_margin < kSignMarginFloor) return false;

  const double sum = eig.sigma[0] + eig.sigma[1] + eig.sigma[2];
  for (int i = 0; i < 3; ++i) {
    double f = 0.0;
    for (int k = 0; k < 3; ++k) {
      f += (eig.sigma[k] / sum) * eig.v[3 * i + k];
    }
    out3[i] = f;
  }
  return true;
}

}  // namespace mocemg
