/// \file window_features.h
/// \brief The combined per-window feature point (paper Section 3.3): the
/// m-length EMG feature vector appended to the n-length mocap feature
/// vector maps each window to a point in (m+n)-dimensional feature space.

#ifndef MOCEMG_CORE_WINDOW_FEATURES_H_
#define MOCEMG_CORE_WINDOW_FEATURES_H_

#include <vector>

#include "core/mocap_features.h"
#include "emg/acquisition.h"
#include "emg/emg_recording.h"
#include "emg/features.h"
#include "linalg/matrix.h"
#include "mocap/local_transform.h"
#include "mocap/motion_sequence.h"
#include "signal/window.h"
#include "util/parallel.h"
#include "util/result.h"

namespace mocemg {

/// \brief Window-feature extraction parameters; defaults follow the
/// paper (IAV + weighted SVD, non-overlapping windows).
struct WindowFeatureOptions {
  /// Window size in ms; the paper sweeps 50–200.
  double window_ms = 100.0;
  /// Sliding-window hop in ms; takes precedence over hop_frames when
  /// positive. A fixed hop (e.g. 50 ms) keeps the number of windows per
  /// motion independent of the window size, so growing the window adds
  /// context instead of shrinking the feature set — the "sliding window
  /// approach" of the paper's Section 1.
  double hop_ms = 0.0;
  /// Hop in frames; 0 = non-overlapping (hop = window).
  size_t hop_frames = 0;
  /// Modality toggles (ablation A1: EMG-only / mocap-only / combined).
  bool use_emg = true;
  bool use_mocap = true;
  EmgFeatureKind emg_feature = EmgFeatureKind::kIav;
  MocapFeatureKind mocap_feature = MocapFeatureKind::kWeightedSvd;
  /// Pelvis-local transform options (applied to the mocap stream).
  LocalTransformOptions local_transform;
  /// Window-level parallelism. Results are bit-identical for every
  /// max_threads (each window computes its feature row independently).
  ParallelOptions parallel;
};

/// \brief One motion's window features: points × dims matrix plus the
/// window plan that produced it.
struct WindowFeatureMatrix {
  Matrix points;
  WindowPlan plan;
};

/// \brief Extracts the combined window-feature matrix for one motion.
///
/// `mocap` is the *global* capture (the local transform is applied
/// here); `emg` must already be conditioned to the mocap frame rate (see
/// ConditionRecording). Frame counts may differ by capture-edge effects;
/// the overlap is used. Fails if the overlap is shorter than one window,
/// if rates mismatch, or if an enabled modality is empty.
Result<WindowFeatureMatrix> ExtractWindowFeatures(
    const MotionSequence& mocap, const EmgRecording& emg,
    const WindowFeatureOptions& options);

/// \brief Feature dimensionality the options produce for a given number
/// of EMG channels and (non-pelvis) mocap segments.
size_t WindowFeatureDimension(const WindowFeatureOptions& options,
                              size_t emg_channels, size_t mocap_segments);

}  // namespace mocemg

#endif  // MOCEMG_CORE_WINDOW_FEATURES_H_
