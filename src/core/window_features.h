/// \file window_features.h
/// \brief The combined per-window feature point (paper Section 3.3): the
/// m-length EMG feature vector appended to the n-length mocap feature
/// vector maps each window to a point in (m+n)-dimensional feature space.

#ifndef MOCEMG_CORE_WINDOW_FEATURES_H_
#define MOCEMG_CORE_WINDOW_FEATURES_H_

#include <vector>

#include "core/incremental_window.h"
#include "core/mocap_features.h"
#include "emg/acquisition.h"
#include "emg/emg_recording.h"
#include "emg/features.h"
#include "linalg/matrix.h"
#include "mocap/local_transform.h"
#include "mocap/motion_sequence.h"
#include "signal/window.h"
#include "util/parallel.h"
#include "util/result.h"

namespace mocemg {

/// \brief Window-feature extraction parameters; defaults follow the
/// paper (IAV + weighted SVD, non-overlapping windows).
struct WindowFeatureOptions {
  /// Window size in ms; the paper sweeps 50–200.
  double window_ms = 100.0;
  /// Sliding-window hop in ms. Precedence: a positive hop_ms wins over
  /// hop_frames (it is rate-independent, so the same options serve
  /// captures at different frame rates). Setting BOTH to non-default
  /// values is accepted only when they resolve to the same frame count
  /// at the capture's rate; a conflicting pair is rejected with an
  /// error naming the two fields (see ResolveHopFrames). A fixed hop
  /// (e.g. 50 ms) keeps the number of windows per motion independent of
  /// the window size, so growing the window adds context instead of
  /// shrinking the feature set — the "sliding window approach" of the
  /// paper's Section 1.
  double hop_ms = 0.0;
  /// Hop in frames; 0 = non-overlapping (hop = window). Overridden by a
  /// positive hop_ms (see above).
  size_t hop_frames = 0;
  /// Modality toggles (ablation A1: EMG-only / mocap-only / combined).
  bool use_emg = true;
  bool use_mocap = true;
  EmgFeatureKind emg_feature = EmgFeatureKind::kIav;
  MocapFeatureKind mocap_feature = MocapFeatureKind::kWeightedSvd;
  /// Pelvis-local transform options (applied to the mocap stream).
  LocalTransformOptions local_transform;
  /// Window-level parallelism. Results are bit-identical for every
  /// max_threads (each window computes its feature row independently on
  /// the exact path; the incremental path gives every chunk its own
  /// sliding state seeded by an exact recomputation, and chunking is a
  /// pure function of (num_windows, grain) — see DESIGN.md §9). When
  /// grain is 0 and an incremental engine is active, the extractor uses
  /// an effective grain of max(gram_refresh_interval, 16) instead of
  /// the generic 64-chunk split: tiny chunks would turn almost every
  /// window into a chunk-seed recomputation and erase the O(hop)
  /// advantage. Set grain explicitly to override.
  ParallelOptions parallel;
  /// Featurization engine (see core/incremental_window.h): kExact
  /// recomputes every window from scratch; kIncremental slides per-joint
  /// Gram matrices and per-channel running EMG sums so a window costs
  /// O(hop) instead of O(window); kAuto (the default) picks incremental
  /// exactly when windows overlap (hop < window). Feature kinds without
  /// an incremental form (AR(4) EMG, the non-SVD mocap baselines) keep
  /// the exact path regardless. Incremental results match exact within
  /// the round-off bound documented in incremental_window.h
  /// (property-tested at 1e-10 relative) and stay bit-identical at
  /// every thread count for a fixed mode. A runtime performance knob:
  /// not serialized with trained models.
  FeaturizationMode featurization_mode = FeaturizationMode::kAuto;
  /// Incremental path only: exact state refresh cadence in windows,
  /// bounding accumulated add/remove float drift. 0 behaves as 1
  /// (refresh every window).
  size_t gram_refresh_interval = 16;
  /// Incremental path only: fall back to the exact Jacobi SVD for a
  /// joint-window whose Gram eigenvalue ratio λmin/λmax is below this
  /// floor — the Gram matrix squares the condition number, so such
  /// spectra carry fewer correct digits than the tolerance contract
  /// needs.
  double gram_condition_floor = 1e-6;
};

/// \brief Resolves the effective hop in frames at `frame_rate_hz`,
/// enforcing the documented precedence: positive hop_ms wins over
/// hop_frames; both set and disagreeing at this rate is rejected with
/// kInvalidArgument naming the fields; 0/0 resolves to `window_frames`
/// (non-overlapping).
Result<size_t> ResolveHopFrames(const WindowFeatureOptions& options,
                                double frame_rate_hz,
                                size_t window_frames);

/// \brief Per-extraction accounting, filled when the caller passes a
/// stats out-param to ExtractWindowFeatures: how much of each stream the
/// work-on-the-overlap policy dropped, and which engine ran.
struct WindowFeatureStats {
  /// Trailing frames/samples dropped because the synchronized streams
  /// differ in length (the overlap is used). A warning is logged when
  /// either stream loses more than ~5% of itself.
  size_t mocap_frames_dropped = 0;
  size_t emg_samples_dropped = 0;
  /// Overlap length actually featurized, and windows produced.
  size_t frames_used = 0;
  size_t num_windows = 0;
  /// Engine each modality resolved to (kAuto never appears here).
  FeaturizationMode emg_mode = FeaturizationMode::kExact;
  FeaturizationMode mocap_mode = FeaturizationMode::kExact;
  /// Incremental-mocap path counters, per joint-window: fast Gram
  /// emissions, conditioning-guard fallbacks to the exact SVD, and (per
  /// window) exact Gram refreshes. A guard rejection of a slid Gram
  /// first refreshes the state and retries at the fresh-state floors
  /// (counted in gram_fresh_retries, see incremental_window.h); it
  /// lands in gram_fast_windows when the retry passes and in
  /// gram_fallback_windows when the window still needs the exact SVD.
  size_t gram_fast_windows = 0;
  size_t gram_fallback_windows = 0;
  size_t gram_refreshes = 0;
  size_t gram_fresh_retries = 0;
};

/// \brief One motion's window features: points × dims matrix plus the
/// window plan that produced it.
struct WindowFeatureMatrix {
  Matrix points;
  WindowPlan plan;
};

/// \brief Extracts the combined window-feature matrix for one motion.
///
/// `mocap` is the *global* capture (the local transform is applied
/// here); `emg` must already be conditioned to the mocap frame rate (see
/// ConditionRecording). Frame counts may differ by capture-edge effects;
/// the overlap is used (pass `stats` to see how much was dropped; a
/// warning is logged when a stream loses more than ~5% of itself). Fails
/// if the overlap is shorter than one window, if rates mismatch, or if
/// an enabled modality is empty.
Result<WindowFeatureMatrix> ExtractWindowFeatures(
    const MotionSequence& mocap, const EmgRecording& emg,
    const WindowFeatureOptions& options,
    WindowFeatureStats* stats = nullptr);

/// \brief Feature dimensionality the options produce for a given number
/// of EMG channels and (non-pelvis) mocap segments.
size_t WindowFeatureDimension(const WindowFeatureOptions& options,
                              size_t emg_channels, size_t mocap_segments);

}  // namespace mocemg

#endif  // MOCEMG_CORE_WINDOW_FEATURES_H_
