#include "core/mocap_features.h"

#include "linalg/svd.h"
#include "util/macros.h"

namespace mocemg {

const char* MocapFeatureKindName(MocapFeatureKind kind) {
  switch (kind) {
    case MocapFeatureKind::kWeightedSvd:
      return "weighted_svd";
    case MocapFeatureKind::kMeanPosition:
      return "mean_position";
    case MocapFeatureKind::kDisplacement:
      return "displacement";
  }
  return "?";
}

Result<std::vector<double>> WeightedSvdFeature(const Matrix& joint_window) {
  if (joint_window.cols() != 3) {
    return Status::InvalidArgument(
        "joint window must have 3 columns (x, y, z), got " +
        std::to_string(joint_window.cols()));
  }
  if (joint_window.rows() == 0) {
    return Status::InvalidArgument("empty joint window");
  }
  MOCEMG_ASSIGN_OR_RETURN(SvdResult svd, ComputeSvd(joint_window));

  double sigma_sum = 0.0;
  for (double s : svd.singular_values) sigma_sum += s;
  std::vector<double> feature(3, 0.0);
  if (sigma_sum <= 0.0) return feature;  // stationary at the origin

  // f = Σ_i ŵ_i v_i with ŵ_i = σ_i / Σσ (Eq. 3). With windows shorter
  // than 3 frames fewer singular pairs exist; the sum simply runs over
  // the available ones.
  for (size_t i = 0; i < svd.singular_values.size(); ++i) {
    const double w = svd.singular_values[i] / sigma_sum;
    for (size_t j = 0; j < 3; ++j) {
      feature[j] += w * svd.v(j, i);
    }
  }
  return feature;
}

Result<std::vector<double>> ExtractMocapFeature(MocapFeatureKind kind,
                                                const Matrix& joint_window) {
  if (joint_window.cols() != 3 || joint_window.rows() == 0) {
    return Status::InvalidArgument("joint window must be w x 3, w >= 1");
  }
  switch (kind) {
    case MocapFeatureKind::kWeightedSvd:
      return WeightedSvdFeature(joint_window);
    case MocapFeatureKind::kMeanPosition: {
      std::vector<double> f(3, 0.0);
      for (size_t r = 0; r < joint_window.rows(); ++r) {
        for (size_t c = 0; c < 3; ++c) f[c] += joint_window(r, c);
      }
      const double inv = 1.0 / static_cast<double>(joint_window.rows());
      for (double& v : f) v *= inv;
      // Positions are mm-scale; bring to O(1) like the SVD feature so the
      // ablation compares feature *content*, not numeric range.
      for (double& v : f) v /= 1000.0;
      return f;
    }
    case MocapFeatureKind::kDisplacement: {
      const size_t last = joint_window.rows() - 1;
      std::vector<double> f(3);
      for (size_t c = 0; c < 3; ++c) {
        f[c] = (joint_window(last, c) - joint_window(0, c)) / 1000.0;
      }
      return f;
    }
  }
  return Status::InvalidArgument("unknown mocap feature kind");
}

}  // namespace mocemg
