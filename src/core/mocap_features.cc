#include "core/mocap_features.h"

#include "linalg/svd.h"
#include "util/macros.h"

namespace mocemg {
namespace {

// The weighted-SVD feature (Eq. 2–3) on pre-validated input, writing
// into `out` (length 3) with all intermediates in `scratch`.
Status WeightedSvdFeatureInto(const Matrix& joint_window,
                              MocapFeatureScratch* scratch, double* out) {
  MOCEMG_RETURN_NOT_OK(
      ComputeSvdInto(joint_window, {}, &scratch->svd, &scratch->svd_result));
  const SvdResult& svd = scratch->svd_result;

  double sigma_sum = 0.0;
  for (double s : svd.singular_values) sigma_sum += s;
  out[0] = out[1] = out[2] = 0.0;
  if (sigma_sum <= 0.0) return Status::OK();  // stationary at the origin

  // f = Σ_i ŵ_i v_i with ŵ_i = σ_i / Σσ (Eq. 3). With windows shorter
  // than 3 frames fewer singular pairs exist; the sum simply runs over
  // the available ones.
  for (size_t i = 0; i < svd.singular_values.size(); ++i) {
    const double w = svd.singular_values[i] / sigma_sum;
    for (size_t j = 0; j < 3; ++j) {
      out[j] += w * svd.v(j, i);
    }
  }
  return Status::OK();
}

}  // namespace

const char* MocapFeatureKindName(MocapFeatureKind kind) {
  switch (kind) {
    case MocapFeatureKind::kWeightedSvd:
      return "weighted_svd";
    case MocapFeatureKind::kMeanPosition:
      return "mean_position";
    case MocapFeatureKind::kDisplacement:
      return "displacement";
  }
  return "?";
}

Result<std::vector<double>> WeightedSvdFeature(const Matrix& joint_window) {
  if (joint_window.cols() != 3) {
    return Status::InvalidArgument(
        "joint window must have 3 columns (x, y, z), got " +
        std::to_string(joint_window.cols()));
  }
  if (joint_window.rows() == 0) {
    return Status::InvalidArgument("empty joint window");
  }
  MocapFeatureScratch scratch;
  std::vector<double> feature(3, 0.0);
  MOCEMG_RETURN_NOT_OK(
      WeightedSvdFeatureInto(joint_window, &scratch, feature.data()));
  return feature;
}

Status ExtractMocapFeatureInto(MocapFeatureKind kind,
                               const Matrix& joint_window,
                               MocapFeatureScratch* scratch, double* out) {
  if (joint_window.cols() != 3 || joint_window.rows() == 0) {
    return Status::InvalidArgument("joint window must be w x 3, w >= 1");
  }
  switch (kind) {
    case MocapFeatureKind::kWeightedSvd:
      return WeightedSvdFeatureInto(joint_window, scratch, out);
    case MocapFeatureKind::kMeanPosition: {
      out[0] = out[1] = out[2] = 0.0;
      for (size_t r = 0; r < joint_window.rows(); ++r) {
        for (size_t c = 0; c < 3; ++c) out[c] += joint_window(r, c);
      }
      const double inv = 1.0 / static_cast<double>(joint_window.rows());
      // Positions are mm-scale; bring to O(1) like the SVD feature so the
      // ablation compares feature *content*, not numeric range.
      for (size_t c = 0; c < 3; ++c) out[c] = out[c] * inv / 1000.0;
      return Status::OK();
    }
    case MocapFeatureKind::kDisplacement: {
      const size_t last = joint_window.rows() - 1;
      for (size_t c = 0; c < 3; ++c) {
        out[c] = (joint_window(last, c) - joint_window(0, c)) / 1000.0;
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown mocap feature kind");
}

Result<std::vector<double>> ExtractMocapFeature(MocapFeatureKind kind,
                                                const Matrix& joint_window) {
  MocapFeatureScratch scratch;
  std::vector<double> feature(3, 0.0);
  MOCEMG_RETURN_NOT_OK(
      ExtractMocapFeatureInto(kind, joint_window, &scratch, feature.data()));
  return feature;
}

}  // namespace mocemg
