/// \file streaming.h
/// \brief Online (frame-by-frame) classification on top of a trained
/// MotionClassifier — the decision loop of a prosthetic controller.
///
/// The batch pipeline sees a whole capture; a controller sees frames as
/// they arrive. StreamingClassifier consumes synchronized frame pairs
/// (global marker positions + conditioned EMG envelope samples at the
/// mocap frame rate), cuts them into the same windows the model was
/// trained with, evaluates Eq. 9 memberships per completed window,
/// maintains the running final feature vector (Eq. 5–8 over the windows
/// so far), and exposes the current nearest-neighbour decision at any
/// time — so the decision sharpens as the motion unfolds.
///
/// The EMG stream must already be conditioned to the frame rate (see
/// ConditionRecording; a live rig runs the same band-pass/rectify chain
/// causally). Mocap frames are global: the pelvis-local transform is
/// applied here per frame.

#ifndef MOCEMG_CORE_STREAMING_H_
#define MOCEMG_CORE_STREAMING_H_

#include <vector>

#include "core/classifier.h"
#include "util/result.h"

namespace mocemg {

/// \brief Streaming-session parameters.
struct StreamingOptions {
  /// Frame rate of the incoming synchronized streams (Hz).
  double frame_rate_hz = 120.0;
  /// Decisions before this many completed windows are refused.
  size_t min_windows_for_decision = 2;
};

/// \brief Incremental featurizer + classifier over one motion stream.
/// Create one per motion (or Reset() between motions).
class StreamingClassifier {
 public:
  /// \brief Binds to a trained model. `num_markers` counts the incoming
  /// marker set (pelvis at `pelvis_index`), `num_emg_channels` the
  /// conditioned EMG channels; both must match what the model was
  /// trained on. The model must outlive the streamer.
  static Result<StreamingClassifier> Create(const MotionClassifier* model,
                                            size_t num_markers,
                                            size_t pelvis_index,
                                            size_t num_emg_channels,
                                            const StreamingOptions& options);

  /// \brief Pushes one synchronized frame: `marker_positions` is
  /// 3·num_markers global coordinates, `emg_envelope` one non-negative
  /// envelope sample per channel. Completed windows are featurized
  /// internally.
  Status PushFrame(const std::vector<double>& marker_positions,
                   const std::vector<double>& emg_envelope);

  /// \brief Completed (featurized) windows so far.
  size_t windows_completed() const { return windows_completed_; }
  size_t frames_pushed() const { return frames_pushed_; }

  /// \brief The running final feature vector (Eq. 5–8 over windows so
  /// far). Fails before the first completed window.
  Result<std::vector<double>> CurrentFinalFeature() const;

  /// \brief Current 1-NN decision; fails until
  /// StreamingOptions::min_windows_for_decision windows completed.
  Result<size_t> CurrentDecision() const;

  /// \brief Current k-NN matches against the model's database.
  Result<std::vector<MotionMatch>> CurrentMatches(size_t k) const;

  /// \brief Clears stream state for the next motion.
  void Reset();

 private:
  StreamingClassifier() = default;

  Status CompleteWindow();

  const MotionClassifier* model_ = nullptr;
  StreamingOptions options_;
  size_t num_markers_ = 0;
  size_t pelvis_index_ = 0;
  size_t num_emg_channels_ = 0;
  size_t window_frames_ = 0;
  size_t hop_frames_ = 0;

  /// Ring buffers of the last `window_frames_` pelvis-local marker rows
  /// and EMG rows (stored linearly; trimmed on hop).
  std::vector<std::vector<double>> mocap_buffer_;
  std::vector<std::vector<double>> emg_buffer_;
  size_t frames_pushed_ = 0;
  size_t next_window_start_ = 0;
  size_t buffer_start_frame_ = 0;
  size_t windows_completed_ = 0;

  /// Running Eq. 5–8 state: per cluster the min/max winning membership.
  std::vector<double> min_per_cluster_;
  std::vector<double> max_per_cluster_;
  std::vector<bool> cluster_seen_;
  /// Hard-cluster fallback (vote counts) when the model is a k-means
  /// ablation model.
  std::vector<double> votes_;
};

}  // namespace mocemg

#endif  // MOCEMG_CORE_STREAMING_H_
