/// \file streaming.h
/// \brief Online (frame-by-frame) classification on top of a trained
/// MotionClassifier — the decision loop of a prosthetic controller.
///
/// The batch pipeline sees a whole capture; a controller sees frames as
/// they arrive. StreamingClassifier consumes synchronized frame pairs
/// (global marker positions + conditioned EMG envelope samples at the
/// mocap frame rate), cuts them into the same windows the model was
/// trained with, evaluates Eq. 9 memberships per completed window,
/// maintains the running final feature vector (Eq. 5–8 over the windows
/// so far), and exposes the current nearest-neighbour decision at any
/// time — so the decision sharpens as the motion unfolds.
///
/// The EMG stream must already be conditioned to the frame rate (see
/// ConditionRecording; a live rig runs the same band-pass/rectify chain
/// causally). Mocap frames are global: the pelvis-local transform is
/// applied here per frame.

#ifndef MOCEMG_CORE_STREAMING_H_
#define MOCEMG_CORE_STREAMING_H_

#include <optional>
#include <vector>

#include "core/classifier.h"
#include "core/incremental_window.h"
#include "emg/features.h"
#include "util/result.h"

namespace mocemg {

/// \brief Streaming-session parameters.
struct StreamingOptions {
  /// Frame rate of the incoming synchronized streams (Hz).
  double frame_rate_hz = 120.0;
  /// Decisions before this many completed windows are refused.
  size_t min_windows_for_decision = 2;
  /// Tolerate degraded frames instead of rejecting them: occluded
  /// (non-finite) markers are held at their last captured pelvis-local
  /// position, non-finite EMG samples at the last good value, and
  /// flatlined channels are masked to their neutral feature value. Off
  /// by default — a strict stream surfaces every bad frame as an error.
  bool tolerate_faults = false;
  /// A marker held for more than this many consecutive frames marks the
  /// mocap stream degraded (sticky until Reset).
  size_t max_hold_frames = 12;
  /// Trailing per-channel window (frames) and variance floor for online
  /// flatline detection on the conditioned EMG envelope.
  size_t flatline_window_frames = 24;
  double flatline_variance_floor = 1e-16;
  /// Featurization engine for the per-frame path; unset uses the
  /// model's WindowFeatureOptions::featurization_mode (a runtime knob,
  /// so overriding it per stream is always model-compatible). On the
  /// incremental path each arriving frame updates per-joint Gram
  /// matrices and per-channel running sums in O(1), making window
  /// completion O(joints + channels) instead of O(window·(joints +
  /// channels)) — constant-latency online classification. Streaming
  /// runs incremental only when windows overlap (hop < window); with
  /// disjoint windows nothing carries over and exact is used
  /// regardless of the requested mode.
  std::optional<FeaturizationMode> featurization_mode;
};

/// \brief Live health counters of a fault-tolerant stream.
struct StreamingHealth {
  size_t frames_patched = 0;      ///< frames with any substituted value
  size_t markers_held = 0;        ///< markers currently holding last-good
  size_t flatlined_channels = 0;  ///< channels currently masked
  /// Some marker exceeded max_hold_frames (sticky until Reset).
  bool mocap_degraded = false;
  bool emg_degraded() const { return flatlined_channels > 0; }
  bool degraded() const {
    return frames_patched > 0 || mocap_degraded || emg_degraded();
  }
};

/// \brief A degradation-aware streaming decision.
struct StreamingDecision {
  size_t label = 0;
  ClassifierMode mode = ClassifierMode::kFull;
  bool degraded = false;
  double distance = 0.0;  ///< nearest-neighbour distance in the deciding
                          ///< sub-model's final-feature space
  StreamingHealth health;
};

/// \brief Incremental featurizer + classifier over one motion stream.
/// Create one per motion (or Reset() between motions).
class StreamingClassifier {
 public:
  /// \brief Binds to a trained model. `num_markers` counts the incoming
  /// marker set (pelvis at `pelvis_index`), `num_emg_channels` the
  /// conditioned EMG channels; both must match what the model was
  /// trained on. The model must outlive the streamer.
  static Result<StreamingClassifier> Create(const MotionClassifier* model,
                                            size_t num_markers,
                                            size_t pelvis_index,
                                            size_t num_emg_channels,
                                            const StreamingOptions& options);

  /// \brief Pushes one synchronized frame: `marker_positions` is
  /// 3·num_markers global coordinates, `emg_envelope` one non-negative
  /// envelope sample per channel. Completed windows are featurized
  /// internally.
  Status PushFrame(const std::vector<double>& marker_positions,
                   const std::vector<double>& emg_envelope);

  /// \brief Completed (featurized) windows so far.
  size_t windows_completed() const { return windows_completed_; }
  size_t frames_pushed() const { return frames_pushed_; }

  /// \brief The running final feature vector (Eq. 5–8 over windows so
  /// far). Fails before the first completed window.
  Result<std::vector<double>> CurrentFinalFeature() const;

  /// \brief Current 1-NN decision; fails until
  /// StreamingOptions::min_windows_for_decision windows completed.
  Result<size_t> CurrentDecision() const;

  /// \brief Current k-NN matches against the model's database.
  Result<std::vector<MotionMatch>> CurrentMatches(size_t k) const;

  /// \brief Degradation-aware decision (requires tolerate_faults).
  /// Selects the deciding subspace from live health — majority of
  /// channels flatlined → mocap-only, mocap degraded → EMG-only, when
  /// the model carries fallbacks — and reports mode, health, and the
  /// degraded flag alongside the label. With both modalities degraded
  /// (or no fallbacks trained) it stays in the full subspace, best
  /// effort, flagged degraded. Fails until min_windows_for_decision.
  Result<StreamingDecision> CurrentRobustDecision() const;

  /// \brief Live health counters (all zero unless tolerate_faults).
  const StreamingHealth& health() const { return health_; }

  /// \brief Clears stream state for the next motion.
  void Reset();

 private:
  /// Running Eq. 5–8 (or vote) state against one sub-model's codebook.
  struct ModeState {
    const MotionClassifier* model = nullptr;
    ClassifierMode mode = ClassifierMode::kFull;
    std::vector<double> min_per_cluster;
    std::vector<double> max_per_cluster;
    std::vector<bool> cluster_seen;
    std::vector<double> votes;
  };

  StreamingClassifier() = default;

  Status CompleteWindow();
  /// Removes frames [old_start, next_window_start_) from the
  /// incremental state when the window start advances (called before
  /// the buffer trim — it reads the dropped rows).
  void RebaseIncrementalState(size_t old_start);
  /// Exact recomputation of the incremental state from the buffered
  /// window at `offset` — the periodic drift-bounding refresh.
  void RefreshIncrementalState(size_t offset);
  static void BindModeState(ModeState* state,
                            const MotionClassifier* model,
                            ClassifierMode mode);
  /// Normalizes `raw_feature` with the state's model, evaluates the
  /// membership, and folds the winner into the running Eq. 5–8 state.
  static Status UpdateModeState(ModeState* state,
                                std::vector<double> raw_feature);
  Result<std::vector<double>> FinalFeatureFromState(
      const ModeState& state) const;

  const MotionClassifier* model_ = nullptr;
  StreamingOptions options_;
  size_t num_markers_ = 0;
  size_t pelvis_index_ = 0;
  size_t num_emg_channels_ = 0;
  size_t window_frames_ = 0;
  size_t hop_frames_ = 0;

  /// Resolved featurization engine per modality (kAuto never stored)
  /// and its numerical knobs, taken from the model's feature options.
  FeaturizationMode emg_mode_ = FeaturizationMode::kExact;
  FeaturizationMode mocap_mode_ = FeaturizationMode::kExact;
  size_t gram_refresh_interval_ = 16;
  double gram_condition_floor_ = 1e-6;
  /// Incremental per-frame state: one running-sums block per EMG
  /// channel, one Gram matrix per marker (the pelvis entry is unused).
  /// Both cover exactly the frames [next_window_start_, frames_pushed_).
  std::vector<EmgWindowSums> emg_sums_;
  std::vector<JointGramState> joint_grams_;
  /// Scratch for batching the non-pelvis joints' eigensolves into one
  /// ComputeSvdFromGram3Many call per completed window.
  std::vector<GramSvd3Task> gram_tasks_;
  size_t windows_since_refresh_ = 0;

  /// Ring buffers of the last `window_frames_` pelvis-local marker rows
  /// and EMG rows (stored linearly; trimmed on hop).
  std::vector<std::vector<double>> mocap_buffer_;
  std::vector<std::vector<double>> emg_buffer_;
  size_t frames_pushed_ = 0;
  size_t next_window_start_ = 0;
  size_t buffer_start_frame_ = 0;
  size_t windows_completed_ = 0;

  /// Full-model running state, plus per-modality fallback states when
  /// the model carries fallback sub-models and tolerate_faults is on.
  ModeState full_state_;
  ModeState mocap_state_;
  ModeState emg_state_;

  /// Fault-tolerance state (tolerate_faults only).
  StreamingHealth health_;
  std::vector<double> last_pelvis_global_;   ///< last captured pelvis
  bool have_pelvis_ = false;
  std::vector<std::vector<double>> last_local_;  ///< per marker, 3 coords
  std::vector<bool> have_marker_;
  std::vector<size_t> hold_streak_;
  std::vector<double> last_emg_;
  /// Trailing envelope samples per channel for flatline detection.
  std::vector<std::vector<double>> emg_tail_;
  std::vector<bool> channel_masked_;
};

}  // namespace mocemg

#endif  // MOCEMG_CORE_STREAMING_H_
