#include "cluster/gustafson_kessel.h"

#include <cmath>
#include <limits>

#include "cluster/kmeans.h"
#include "linalg/lu.h"
#include "linalg/vector_ops.h"
#include "util/distance_kernels.h"
#include "util/macros.h"
#include "util/random.h"

namespace mocemg {
namespace {

// u_i ∝ d_i^(−1/(m−1)) on squared distances; crisp on exact hits.
void MembershipRow(const std::vector<double>& sq, double exponent,
                   double* row) {
  const size_t c = sq.size();
  size_t zeros = 0;
  for (size_t i = 0; i < c; ++i) {
    if (sq[i] <= 0.0) ++zeros;
  }
  if (zeros > 0) {
    for (size_t i = 0; i < c; ++i) {
      row[i] = sq[i] <= 0.0 ? 1.0 / static_cast<double>(zeros) : 0.0;
    }
    return;
  }
  double sum = 0.0;
  for (size_t i = 0; i < c; ++i) {
    row[i] = std::pow(1.0 / sq[i], exponent);
    sum += row[i];
  }
  for (size_t i = 0; i < c; ++i) row[i] /= sum;
}

double QuadraticForm(const Matrix& a, const std::vector<double>& delta) {
  const size_t d = delta.size();
  double sum = 0.0;
  for (size_t r = 0; r < d; ++r) {
    double inner = 0.0;
    const double* row = a.RowPtr(r);
    for (size_t c = 0; c < d; ++c) inner += row[c] * delta[c];
    sum += delta[r] * inner;
  }
  return sum;
}

}  // namespace

Matrix GkModel::NormMatrix(size_t i) const {
  const size_t d = dimension();
  return norm_matrices.RowSlice(i * d, (i + 1) * d);
}

Result<double> GkModel::SquaredDistanceTo(
    size_t i, const std::vector<double>& point) const {
  if (i >= num_clusters()) {
    return Status::OutOfRange("cluster index out of range");
  }
  if (point.size() != dimension()) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  const std::vector<double> delta = SubtractVectors(point, centers.Row(i));
  return QuadraticForm(NormMatrix(i), delta);
}

Result<std::vector<double>> GkModel::Membership(
    const std::vector<double>& point, double fuzziness) const {
  if (fuzziness <= 1.0) {
    return Status::InvalidArgument("fuzzifier m must be > 1");
  }
  const size_t c = num_clusters();
  std::vector<double> sq(c);
  for (size_t i = 0; i < c; ++i) {
    MOCEMG_ASSIGN_OR_RETURN(sq[i], SquaredDistanceTo(i, point));
  }
  std::vector<double> row(c);
  MembershipRow(sq, 1.0 / (fuzziness - 1.0), row.data());
  return row;
}

Result<GkModel> FitGustafsonKessel(const Matrix& points,
                                   const GkOptions& options) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  const size_t c = options.num_clusters;
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("GK on empty point set");
  }
  if (c == 0 || n < c) {
    return Status::InvalidArgument("GK needs 1 <= c <= n");
  }
  if (options.fuzziness <= 1.0) {
    return Status::InvalidArgument("fuzzifier m must be > 1");
  }
  if (options.regularization < 0.0 || options.regularization > 1.0) {
    return Status::InvalidArgument("regularization must be in [0, 1]");
  }
  const double m = options.fuzziness;
  const double exponent = 1.0 / (m - 1.0);

  // Init: k-means++ centers, Euclidean memberships.
  KmeansOptions km;
  km.num_clusters = c;
  km.seed = options.seed;
  km.max_iterations = 1;
  MOCEMG_ASSIGN_OR_RETURN(KmeansModel seeded, FitKmeans(points, km));
  Matrix centers = std::move(seeded.centers);
  Matrix u(n, c);
  {
    std::vector<double> sq(c);
    for (size_t k = 0; k < n; ++k) {
      SquaredL2OneToMany(points.RowPtr(k), centers.RowPtr(0), c, d,
                         sq.data());
      MembershipRow(sq, exponent, u.RowPtr(k));
    }
  }

  // Total data variance for covariance regularization.
  double total_var = 0.0;
  {
    std::vector<double> mean(d, 0.0);
    for (size_t k = 0; k < n; ++k) Axpy(1.0, points.Row(k), &mean);
    for (double& v : mean) v /= static_cast<double>(n);
    for (size_t k = 0; k < n; ++k) {
      total_var += SquaredL2(points.RowPtr(k), mean.data(), d);
    }
    total_var /= static_cast<double>(n) * static_cast<double>(d);
    if (total_var <= 0.0) total_var = 1.0;
  }

  GkModel model;
  model.norm_matrices = Matrix(c * d, d);
  Rng rng(options.seed ^ 0xD1CEULL);
  size_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Centers from memberships.
    centers = Matrix(c, d);
    std::vector<double> weight(c, 0.0);
    for (size_t k = 0; k < n; ++k) {
      const double* urow = u.RowPtr(k);
      const double* prow = points.RowPtr(k);
      for (size_t i = 0; i < c; ++i) {
        const double w = std::pow(urow[i], m);
        weight[i] += w;
        double* crow = centers.RowPtr(i);
        for (size_t j = 0; j < d; ++j) crow[j] += w * prow[j];
      }
    }
    for (size_t i = 0; i < c; ++i) {
      if (weight[i] <= 0.0) {
        centers.SetRow(i,
                       points.Row(static_cast<size_t>(rng.NextBelow(n))));
        weight[i] = 1.0;
      } else {
        double* crow = centers.RowPtr(i);
        for (size_t j = 0; j < d; ++j) crow[j] /= weight[i];
      }
    }

    // Fuzzy covariances → norm matrices A_i = (ρ det F)^(1/d) F⁻¹.
    for (size_t i = 0; i < c; ++i) {
      Matrix f(d, d);
      for (size_t k = 0; k < n; ++k) {
        const double w = std::pow(u(k, i), m);
        const std::vector<double> delta =
            SubtractVectors(points.Row(k), centers.Row(i));
        for (size_t r = 0; r < d; ++r) {
          for (size_t s2 = r; s2 < d; ++s2) {
            f(r, s2) += w * delta[r] * delta[s2];
          }
        }
      }
      for (size_t r = 0; r < d; ++r) {
        for (size_t s2 = r; s2 < d; ++s2) {
          f(r, s2) /= weight[i];
          f(s2, r) = f(r, s2);
        }
      }
      // Regularize toward the scaled identity so F stays invertible.
      if (options.regularization > 0.0) {
        const double g = options.regularization;
        for (size_t r = 0; r < d; ++r) {
          for (size_t s2 = 0; s2 < d; ++s2) f(r, s2) *= (1.0 - g);
          f(r, r) += g * total_var;
        }
      }
      auto lu = LuDecomposition::Compute(f);
      if (!lu.ok()) {
        return Status::NumericalError(
            "cluster covariance singular; raise GkOptions::regularization");
      }
      const double det = lu->Determinant();
      if (det <= 0.0) {
        return Status::NumericalError("non-positive covariance determinant");
      }
      MOCEMG_ASSIGN_OR_RETURN(Matrix f_inv, lu->Inverse());
      const double scale =
          std::pow(options.volume * det, 1.0 / static_cast<double>(d));
      for (size_t r = 0; r < d; ++r) {
        for (size_t s2 = 0; s2 < d; ++s2) {
          model.norm_matrices(i * d + r, s2) = scale * f_inv(r, s2);
        }
      }
    }

    // Membership update with the adapted norms.
    model.centers = centers;
    double objective = 0.0;
    double max_delta = 0.0;
    std::vector<double> sq(c);
    for (size_t k = 0; k < n; ++k) {
      const std::vector<double> p = points.Row(k);
      for (size_t i = 0; i < c; ++i) {
        const std::vector<double> delta =
            SubtractVectors(p, centers.Row(i));
        sq[i] = QuadraticForm(model.NormMatrix(i), delta);
        if (sq[i] < 0.0) sq[i] = 0.0;  // numerical guard
      }
      std::vector<double> row(c);
      MembershipRow(sq, exponent, row.data());
      double* urow = u.RowPtr(k);
      for (size_t i = 0; i < c; ++i) {
        max_delta = std::max(max_delta, std::fabs(row[i] - urow[i]));
        urow[i] = row[i];
        objective += std::pow(row[i], m) * sq[i];
      }
    }
    model.objective_history.push_back(objective);
    if (max_delta < options.epsilon) {
      ++iter;
      break;
    }
  }
  model.memberships = std::move(u);
  model.iterations = iter;
  return model;
}

}  // namespace mocemg
