/// \file fcm.h
/// \brief Fuzzy c-means clustering (Bezdek), the paper's Eq. 4 and the
/// heart of its feature construction. Hand-rolled: the model exposes both
/// the training fit over the database's window points and the
/// out-of-sample membership evaluation for query windows (Eq. 9).

#ifndef MOCEMG_CLUSTER_FCM_H_
#define MOCEMG_CLUSTER_FCM_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/parallel.h"
#include "util/result.h"

namespace mocemg {

/// \brief Initialization strategy for the FCM iteration.
///
/// A fully random row-stochastic membership matrix (MATLAB initfcm's
/// textbook init) is deliberately NOT offered: averaged over many points
/// it places every initial center at (almost) the global centroid, which
/// is a *fixed point* of the FCM update — the iteration can stall there
/// under any finite epsilon, yielding uniform memberships u ≡ 1/c and
/// useless features. Both inits below start from distinct data points.
enum class FcmInit : int {
  /// c distinct points drawn uniformly from the data as initial centers.
  kRandomPoints = 0,
  /// k-means++ seeded centers: spread-out, usually fewer iterations.
  kKmeansPlusPlus = 1,
};

/// \brief FCM hyper-parameters. Defaults follow the paper: m = 2 ("most
/// widely used", their Section 4, citing Nascimento).
struct FcmOptions {
  /// Pre-determined number of clusters c (the paper sweeps 2–40).
  size_t num_clusters = 6;
  /// Fuzzifier m ∈ (1, ∞); the paper fixes 2.
  double fuzziness = 2.0;
  size_t max_iterations = 300;
  /// Convergence: stop when max |U_new − U_old| < epsilon.
  double epsilon = 1e-6;
  uint64_t seed = 42;
  FcmInit init = FcmInit::kKmeansPlusPlus;
  /// Independent restarts; the fit with the lowest final objective wins.
  int restarts = 1;
  /// Point-level parallelism for the membership (E) and center-
  /// accumulation (M) steps. Per-chunk partial sums are combined in a
  /// fixed chunk order, so fits — and therefore restarts — are
  /// bit-identical for every max_threads.
  ParallelOptions parallel;
};

/// \brief A fitted fuzzy c-means model.
struct FcmModel {
  /// Cluster centers, c × d (the paper's "center/median points").
  Matrix centers;
  /// Membership matrix U, points × c; each row sums to 1.
  Matrix memberships;
  /// Objective J_m per iteration (the paper's objFcn history).
  std::vector<double> objective_history;
  size_t iterations = 0;

  size_t num_clusters() const { return centers.rows(); }
  size_t dimension() const { return centers.cols(); }
};

/// \brief Fits FCM to row-points. Fails when there are fewer points than
/// clusters, on invalid hyper-parameters, or on dimension mismatches.
Result<FcmModel> FitFcm(const Matrix& points, const FcmOptions& options);

/// \brief Out-of-sample membership of one point against fixed centers —
/// the paper's Eq. 9: u_i = 1 / Σ_j (‖x−c_i‖ / ‖x−c_j‖)^(2/(m−1)).
/// A point coinciding with a center gets membership 1 there, 0 elsewhere.
Result<std::vector<double>> EvaluateMembership(const Matrix& centers,
                                               const std::vector<double>& point,
                                               double fuzziness = 2.0);

/// \brief Eq. 9 membership for a whole matrix of row-points at once
/// (the classifier's per-window evaluation path). Row k is bit-identical
/// to EvaluateMembership(centers, points.Row(k), fuzziness): the batch
/// runs the blocked distance kernel over point tiles, and per-pair
/// kernel arithmetic does not depend on the tiling.
Result<Matrix> EvaluateMembershipBatch(const Matrix& centers,
                                       const Matrix& points,
                                       double fuzziness = 2.0);

}  // namespace mocemg

#endif  // MOCEMG_CLUSTER_FCM_H_
