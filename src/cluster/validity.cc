#include "cluster/validity.h"

#include <cmath>
#include <limits>

#include "linalg/vector_ops.h"

namespace mocemg {

Result<double> PartitionCoefficient(const FcmModel& model) {
  const size_t n = model.memberships.rows();
  const size_t c = model.memberships.cols();
  if (n == 0 || c == 0) {
    return Status::InvalidArgument("empty membership matrix");
  }
  double sum = 0.0;
  for (double u : model.memberships.data()) sum += u * u;
  return sum / static_cast<double>(n);
}

Result<double> PartitionEntropy(const FcmModel& model) {
  const size_t n = model.memberships.rows();
  const size_t c = model.memberships.cols();
  if (n == 0 || c == 0) {
    return Status::InvalidArgument("empty membership matrix");
  }
  double sum = 0.0;
  for (double u : model.memberships.data()) {
    if (u > 0.0) sum += u * std::log(u);
  }
  return -sum / static_cast<double>(n);
}

Result<double> XieBeniIndex(const FcmModel& model, const Matrix& points,
                            double fuzziness) {
  const size_t n = points.rows();
  const size_t c = model.centers.rows();
  if (n == 0 || c < 2) {
    return Status::InvalidArgument(
        "Xie-Beni needs points and at least two clusters");
  }
  if (model.memberships.rows() != n || model.memberships.cols() != c) {
    return Status::InvalidArgument(
        "membership matrix does not match points/centers");
  }
  double compactness = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const std::vector<double> p = points.Row(k);
    for (size_t i = 0; i < c; ++i) {
      compactness += std::pow(model.memberships(k, i), fuzziness) *
                     SquaredDistance(p, model.centers.Row(i));
    }
  }
  double min_sep = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < c; ++i) {
    for (size_t j = i + 1; j < c; ++j) {
      min_sep = std::min(
          min_sep,
          SquaredDistance(model.centers.Row(i), model.centers.Row(j)));
    }
  }
  if (min_sep <= 0.0) {
    return Status::NumericalError("coincident cluster centers");
  }
  return compactness / (static_cast<double>(n) * min_sep);
}

}  // namespace mocemg
