#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "linalg/vector_ops.h"
#include "util/macros.h"
#include "util/random.h"

namespace mocemg {
namespace {

// k-means++ seeding: first center uniform, subsequent centers sampled
// proportionally to squared distance from the nearest chosen center.
Matrix SeedCenters(const Matrix& points, size_t c, Rng* rng) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  Matrix centers(c, d);
  std::vector<double> min_sq(n, std::numeric_limits<double>::infinity());
  size_t first = static_cast<size_t>(rng->NextBelow(n));
  centers.SetRow(0, points.Row(first));
  for (size_t i = 1; i < c; ++i) {
    double total = 0.0;
    const std::vector<double> prev = centers.Row(i - 1);
    for (size_t k = 0; k < n; ++k) {
      const double sq = SquaredDistance(points.Row(k), prev);
      if (sq < min_sq[k]) min_sq[k] = sq;
      total += min_sq[k];
    }
    size_t pick = 0;
    if (total > 0.0) {
      double target = rng->NextDouble() * total;
      double acc = 0.0;
      for (size_t k = 0; k < n; ++k) {
        acc += min_sq[k];
        if (acc >= target) {
          pick = k;
          break;
        }
      }
    } else {
      pick = static_cast<size_t>(rng->NextBelow(n));
    }
    centers.SetRow(i, points.Row(pick));
  }
  return centers;
}

struct Fit {
  KmeansModel model;
};

Fit FitOnce(const Matrix& points, const KmeansOptions& options,
            uint64_t seed) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  const size_t c = options.num_clusters;
  Rng rng(seed);
  Matrix centers = SeedCenters(points, c, &rng);
  std::vector<size_t> assign(n, 0);

  size_t iter = 0;
  double inertia = 0.0;
  for (; iter < options.max_iterations; ++iter) {
    // Assignment step.
    inertia = 0.0;
    for (size_t k = 0; k < n; ++k) {
      const std::vector<double> p = points.Row(k);
      double best = std::numeric_limits<double>::infinity();
      size_t arg = 0;
      for (size_t i = 0; i < c; ++i) {
        const double sq = SquaredDistance(p, centers.Row(i));
        if (sq < best) {
          best = sq;
          arg = i;
        }
      }
      assign[k] = arg;
      inertia += best;
    }
    // Update step.
    Matrix next(c, d);
    std::vector<size_t> counts(c, 0);
    for (size_t k = 0; k < n; ++k) {
      const double* prow = points.RowPtr(k);
      double* crow = next.RowPtr(assign[k]);
      for (size_t j = 0; j < d; ++j) crow[j] += prow[j];
      ++counts[assign[k]];
    }
    double movement = 0.0;
    for (size_t i = 0; i < c; ++i) {
      if (counts[i] == 0) {
        // Empty cluster: re-seed at a random point.
        next.SetRow(i, points.Row(static_cast<size_t>(rng.NextBelow(n))));
      } else {
        double* crow = next.RowPtr(i);
        for (size_t j = 0; j < d; ++j) {
          crow[j] /= static_cast<double>(counts[i]);
        }
      }
      movement += EuclideanDistance(next.Row(i), centers.Row(i));
    }
    centers = std::move(next);
    if (movement < options.tolerance) {
      ++iter;
      break;
    }
  }

  Fit fit;
  fit.model.centers = std::move(centers);
  fit.model.assignments = std::move(assign);
  fit.model.inertia = inertia;
  fit.model.iterations = iter;
  return fit;
}

}  // namespace

Result<KmeansModel> FitKmeans(const Matrix& points,
                              const KmeansOptions& options) {
  if (points.rows() == 0 || points.cols() == 0) {
    return Status::InvalidArgument("k-means on empty point set");
  }
  if (options.num_clusters == 0 ||
      points.rows() < options.num_clusters) {
    return Status::InvalidArgument(
        "k-means needs 1 <= c <= n, got c=" +
        std::to_string(options.num_clusters) + " n=" +
        std::to_string(points.rows()));
  }
  if (options.restarts <= 0 || options.max_iterations == 0) {
    return Status::InvalidArgument("iterations and restarts must be >= 1");
  }
  Rng seeder(options.seed);
  KmeansModel best;
  double best_inertia = std::numeric_limits<double>::infinity();
  for (int r = 0; r < options.restarts; ++r) {
    Fit fit = FitOnce(points, options, seeder.NextUint64());
    if (fit.model.inertia < best_inertia) {
      best_inertia = fit.model.inertia;
      best = std::move(fit.model);
    }
  }
  return best;
}

Result<size_t> NearestCenter(const Matrix& centers,
                             const std::vector<double>& point) {
  if (centers.rows() == 0) {
    return Status::InvalidArgument("no centers");
  }
  if (point.size() != centers.cols()) {
    return Status::InvalidArgument("dimension mismatch");
  }
  double best = std::numeric_limits<double>::infinity();
  size_t arg = 0;
  for (size_t i = 0; i < centers.rows(); ++i) {
    const double sq = SquaredDistance(point, centers.Row(i));
    if (sq < best) {
      best = sq;
      arg = i;
    }
  }
  return arg;
}

}  // namespace mocemg
