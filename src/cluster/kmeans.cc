#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "linalg/vector_ops.h"
#include "util/distance_kernels.h"
#include "util/macros.h"
#include "util/random.h"

namespace mocemg {
namespace {

// Point tile for the blocked assignment kernel: distances of a tile of
// points to all centers land in one scratch block, so the center rows
// are streamed once per tile instead of once per point.
constexpr size_t kAssignTile = 32;

// k-means++ seeding: first center uniform, subsequent centers sampled
// proportionally to squared distance from the nearest chosen center.
Matrix SeedCenters(const Matrix& points, size_t c, Rng* rng) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  Matrix centers(c, d);
  std::vector<double> min_sq(n, std::numeric_limits<double>::infinity());
  size_t first = static_cast<size_t>(rng->NextBelow(n));
  centers.SetRow(0, points.Row(first));
  for (size_t i = 1; i < c; ++i) {
    double total = 0.0;
    const double* prev = centers.RowPtr(i - 1);
    for (size_t k = 0; k < n; ++k) {
      const double sq = SquaredL2(points.RowPtr(k), prev, d);
      if (sq < min_sq[k]) min_sq[k] = sq;
      total += min_sq[k];
    }
    size_t pick = 0;
    if (total > 0.0) {
      double target = rng->NextDouble() * total;
      double acc = 0.0;
      for (size_t k = 0; k < n; ++k) {
        acc += min_sq[k];
        if (acc >= target) {
          pick = k;
          break;
        }
      }
    } else {
      pick = static_cast<size_t>(rng->NextBelow(n));
    }
    centers.SetRow(i, points.Row(pick));
  }
  return centers;
}

struct Fit {
  KmeansModel model;
};

Fit FitOnce(const Matrix& points, const KmeansOptions& options,
            uint64_t seed) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  const size_t c = options.num_clusters;
  Rng rng(seed);
  Matrix centers = SeedCenters(points, c, &rng);
  std::vector<size_t> assign(n, 0);

  size_t iter = 0;
  double inertia = 0.0;
  std::vector<double> tile_sq(kAssignTile * c);
  for (; iter < options.max_iterations; ++iter) {
    // Assignment step: blocked many-to-many kernel over point tiles,
    // then a scalar argmin per point. Per-pair bits match the pair
    // kernel, so the tiling never changes the assignment.
    inertia = 0.0;
    for (size_t k0 = 0; k0 < n; k0 += kAssignTile) {
      const size_t tile = std::min(kAssignTile, n - k0);
      SquaredL2ManyToMany(points.RowPtr(k0), tile, centers.RowPtr(0), c,
                          d, tile_sq.data(), c);
      for (size_t t = 0; t < tile; ++t) {
        const double* sq_row = tile_sq.data() + t * c;
        double best = sq_row[0];
        size_t arg = 0;
        for (size_t i = 1; i < c; ++i) {
          if (sq_row[i] < best) {
            best = sq_row[i];
            arg = i;
          }
        }
        assign[k0 + t] = arg;
        inertia += best;
      }
    }
    // Update step.
    Matrix next(c, d);
    std::vector<size_t> counts(c, 0);
    for (size_t k = 0; k < n; ++k) {
      const double* prow = points.RowPtr(k);
      double* crow = next.RowPtr(assign[k]);
      for (size_t j = 0; j < d; ++j) crow[j] += prow[j];
      ++counts[assign[k]];
    }
    double movement = 0.0;
    for (size_t i = 0; i < c; ++i) {
      if (counts[i] == 0) {
        // Empty cluster: re-seed at a random point.
        next.SetRow(i, points.Row(static_cast<size_t>(rng.NextBelow(n))));
      } else {
        double* crow = next.RowPtr(i);
        for (size_t j = 0; j < d; ++j) {
          crow[j] /= static_cast<double>(counts[i]);
        }
      }
      movement += std::sqrt(SquaredL2(next.RowPtr(i), centers.RowPtr(i), d));
    }
    centers = std::move(next);
    if (movement < options.tolerance) {
      ++iter;
      break;
    }
  }

  Fit fit;
  fit.model.centers = std::move(centers);
  fit.model.assignments = std::move(assign);
  fit.model.inertia = inertia;
  fit.model.iterations = iter;
  return fit;
}

}  // namespace

Result<KmeansModel> FitKmeans(const Matrix& points,
                              const KmeansOptions& options) {
  if (points.rows() == 0 || points.cols() == 0) {
    return Status::InvalidArgument("k-means on empty point set");
  }
  if (options.num_clusters == 0 ||
      points.rows() < options.num_clusters) {
    return Status::InvalidArgument(
        "k-means needs 1 <= c <= n, got c=" +
        std::to_string(options.num_clusters) + " n=" +
        std::to_string(points.rows()));
  }
  if (options.restarts <= 0 || options.max_iterations == 0) {
    return Status::InvalidArgument("iterations and restarts must be >= 1");
  }
  Rng seeder(options.seed);
  KmeansModel best;
  double best_inertia = std::numeric_limits<double>::infinity();
  for (int r = 0; r < options.restarts; ++r) {
    Fit fit = FitOnce(points, options, seeder.NextUint64());
    if (fit.model.inertia < best_inertia) {
      best_inertia = fit.model.inertia;
      best = std::move(fit.model);
    }
  }
  return best;
}

Result<size_t> NearestCenter(const Matrix& centers,
                             const std::vector<double>& point) {
  if (centers.rows() == 0) {
    return Status::InvalidArgument("no centers");
  }
  if (point.size() != centers.cols()) {
    return Status::InvalidArgument("dimension mismatch");
  }
  std::vector<double> sq(centers.rows());
  SquaredL2OneToMany(point.data(), centers.RowPtr(0), centers.rows(),
                     centers.cols(), sq.data());
  double best = sq[0];
  size_t arg = 0;
  for (size_t i = 1; i < centers.rows(); ++i) {
    if (sq[i] < best) {
      best = sq[i];
      arg = i;
    }
  }
  return arg;
}

}  // namespace mocemg
