/// \file gustafson_kessel.h
/// \brief Gustafson–Kessel fuzzy clustering: FCM with a per-cluster
/// adaptive Mahalanobis norm, so clusters can be ellipsoidal instead of
/// spherical. A natural "future work" extension of the paper: window
/// features of one motion phase form elongated clouds (EMG amplitude
/// varies along the movement) that spherical FCM must shatter.
///
/// Per cluster i, the norm matrix is A_i = (ρ_i · det F_i)^(1/d) F_i⁻¹
/// where F_i is the fuzzy covariance of the cluster; distances are
/// d²(x, c_i) = (x−c_i)ᵀ A_i (x−c_i). Covariances are regularized toward
/// the identity to stay invertible on degenerate data.

#ifndef MOCEMG_CLUSTER_GUSTAFSON_KESSEL_H_
#define MOCEMG_CLUSTER_GUSTAFSON_KESSEL_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace mocemg {

/// \brief GK hyper-parameters.
struct GkOptions {
  size_t num_clusters = 6;
  double fuzziness = 2.0;
  size_t max_iterations = 150;
  double epsilon = 1e-5;
  uint64_t seed = 42;
  /// Covariance regularization: F ← (1−γ)F + γ·σ²I. 0 disables.
  double regularization = 0.05;
  /// Cluster volumes ρ_i (all 1 by convention).
  double volume = 1.0;
};

/// \brief A fitted GK model.
struct GkModel {
  Matrix centers;      ///< c × d
  Matrix memberships;  ///< n × c, rows sum to 1
  /// Per-cluster norm matrices A_i, stored stacked (c·d × d).
  Matrix norm_matrices;
  std::vector<double> objective_history;
  size_t iterations = 0;

  size_t num_clusters() const { return centers.rows(); }
  size_t dimension() const { return centers.cols(); }

  /// \brief The d×d norm matrix of cluster i.
  Matrix NormMatrix(size_t i) const;

  /// \brief Squared GK distance of a point to cluster i.
  Result<double> SquaredDistanceTo(size_t i,
                                   const std::vector<double>& point) const;

  /// \brief Out-of-sample membership row (GK analogue of Eq. 9).
  Result<std::vector<double>> Membership(
      const std::vector<double>& point, double fuzziness = 2.0) const;
};

/// \brief Fits Gustafson–Kessel clustering to row-points.
Result<GkModel> FitGustafsonKessel(const Matrix& points,
                                   const GkOptions& options);

}  // namespace mocemg

#endif  // MOCEMG_CLUSTER_GUSTAFSON_KESSEL_H_
