#include "cluster/fcm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kmeans.h"
#include "linalg/vector_ops.h"
#include "util/distance_kernels.h"
#include "util/macros.h"
#include "util/random.h"

namespace mocemg {
namespace {

// Point tile for the E-step's blocked distance kernel: a tile's
// point-to-center distances land in one scratch block so the center
// rows stream once per tile, not once per point. Tiling never changes
// bits (each pair's accumulation is self-contained in the kernel).
constexpr size_t kEstepTile = 32;

// u^m, with the paper's m = 2 special-cased to a multiply: pow()
// otherwise dominates the M-step accumulation at small dimensions.
inline double FuzzyWeight(double u, double m) {
  return m == 2.0 ? u * u : std::pow(u, m);
}

Status ValidateOptions(const Matrix& points, const FcmOptions& options) {
  if (points.rows() == 0 || points.cols() == 0) {
    return Status::InvalidArgument("FCM on empty point set");
  }
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("FCM needs at least one cluster");
  }
  if (points.rows() < options.num_clusters) {
    return Status::InvalidArgument(
        "FCM with c=" + std::to_string(options.num_clusters) +
        " clusters needs at least that many points, got " +
        std::to_string(points.rows()));
  }
  if (options.fuzziness <= 1.0) {
    return Status::InvalidArgument("fuzzifier m must be > 1");
  }
  if (options.max_iterations == 0 || options.restarts <= 0) {
    return Status::InvalidArgument("iterations and restarts must be >= 1");
  }
  // A single NaN point poisons every center through the weighted means
  // and the fit silently degenerates; surface it instead.
  for (size_t r = 0; r < points.rows(); ++r) {
    for (size_t c = 0; c < points.cols(); ++c) {
      if (!std::isfinite(points(r, c))) {
        return Status::NumericalError(
            "FCM input contains a non-finite value at point " +
            std::to_string(r) + ", dimension " + std::to_string(c));
      }
    }
  }
  return Status::OK();
}

// Membership update for one point given squared distances to all
// centers: u_i = 1 / Σ_j (d_i/d_j)^(2/(m−1)) computed stably via the
// reciprocal-power form. Points coinciding with centers get crisp rows.
void MembershipRow(const double* sq_dists, size_t c, double exponent,
                   double* row) {
  // Exact hits: distribute crisp membership over coincident centers.
  size_t zero_count = 0;
  for (size_t i = 0; i < c; ++i) {
    if (sq_dists[i] <= 0.0) ++zero_count;
  }
  if (zero_count > 0) {
    for (size_t i = 0; i < c; ++i) {
      row[i] = sq_dists[i] <= 0.0 ? 1.0 / static_cast<double>(zero_count)
                                  : 0.0;
    }
    return;
  }
  // u_i ∝ d_i^(−1/(m−1)) on squared distances (so exponent = 1/(m−1)).
  // The paper's m = 2 means exponent = 1: a plain reciprocal — skip the
  // pow() call, which otherwise dominates the row (IEEE pow(x, 1) == x
  // exactly, so the fast path is bit-identical).
  double sum = 0.0;
  if (exponent == 1.0) {
    for (size_t i = 0; i < c; ++i) {
      row[i] = 1.0 / sq_dists[i];
      sum += row[i];
    }
  } else {
    for (size_t i = 0; i < c; ++i) {
      row[i] = std::pow(1.0 / sq_dists[i], exponent);
      sum += row[i];
    }
  }
  for (size_t i = 0; i < c; ++i) row[i] /= sum;
}

struct Fit {
  FcmModel model;
  double objective = std::numeric_limits<double>::infinity();
};

Result<Fit> FitOnce(const Matrix& points, const FcmOptions& options,
                    uint64_t seed) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  const size_t c = options.num_clusters;
  const double m = options.fuzziness;
  const double exponent = 1.0 / (m - 1.0);

  Rng rng(seed);
  Matrix u(n, c);
  Matrix centers(c, d);

  // Both inits pick distinct data points as the initial centers and
  // derive U from them via the membership formula (see FcmInit docs for
  // why a random membership matrix is not an option).
  Matrix init_centers(c, d);
  if (options.init == FcmInit::kRandomPoints) {
    // Partial Fisher–Yates over indices for c distinct draws.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < c; ++i) {
      const size_t j = i + static_cast<size_t>(rng.NextBelow(n - i));
      std::swap(idx[i], idx[j]);
      init_centers.SetRow(i, points.Row(idx[i]));
    }
  } else {
    KmeansOptions km;
    km.num_clusters = c;
    km.seed = seed;
    km.max_iterations = 1;  // seeding only: k-means++ centers
    MOCEMG_ASSIGN_OR_RETURN(KmeansModel seeded, FitKmeans(points, km));
    init_centers = std::move(seeded.centers);
  }
  // Initial memberships from the seed centers: each point's row is
  // independent, so this parallelizes with bit-identical results.
  {
    Status st = ParallelFor(
        n,
        [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
          std::vector<double> sq(kEstepTile * c);
          for (size_t k0 = begin; k0 < end; k0 += kEstepTile) {
            const size_t tile = std::min(kEstepTile, end - k0);
            SquaredL2ManyToMany(points.RowPtr(k0), tile,
                                init_centers.RowPtr(0), c, d, sq.data(),
                                c);
            for (size_t t = 0; t < tile; ++t) {
              MembershipRow(sq.data() + t * c, c, exponent,
                            u.RowPtr(k0 + t));
            }
          }
          return Status::OK();
        },
        options.parallel);
    MOCEMG_RETURN_NOT_OK(st);
  }

  // Per-chunk partial accumulators for the M-step and the per-iteration
  // reductions. The chunk decomposition is a pure function of (n, grain)
  // — never of the thread count — and partials are combined in ascending
  // chunk order, so every thread count produces the same bits. Allocated
  // once, reused every iteration.
  const size_t num_chunks = ParallelNumChunks(n, options.parallel.grain);
  std::vector<Matrix> part_centers(num_chunks, Matrix(c, d));
  std::vector<std::vector<double>> part_weight(
      num_chunks, std::vector<double>(c, 0.0));
  std::vector<double> part_objective(num_chunks, 0.0);
  std::vector<double> part_max_delta(num_chunks, 0.0);

  FcmModel model;
  size_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Center update: c_i = Σ_k u_ik^m x_k / Σ_k u_ik^m, accumulated as
    // per-chunk partial sums.
    Status st = ParallelFor(
        n,
        [&](size_t begin, size_t end, size_t chunk) -> Status {
          Matrix& pc = part_centers[chunk];
          std::vector<double>& pw = part_weight[chunk];
          std::fill(pc.mutable_data().begin(), pc.mutable_data().end(),
                    0.0);
          std::fill(pw.begin(), pw.end(), 0.0);
          for (size_t k = begin; k < end; ++k) {
            const double* urow = u.RowPtr(k);
            const double* prow = points.RowPtr(k);
            for (size_t i = 0; i < c; ++i) {
              const double w = FuzzyWeight(urow[i], m);
              pw[i] += w;
              double* crow = pc.RowPtr(i);
              for (size_t j = 0; j < d; ++j) crow[j] += w * prow[j];
            }
          }
          return Status::OK();
        },
        options.parallel);
    MOCEMG_RETURN_NOT_OK(st);
    std::fill(centers.mutable_data().begin(),
              centers.mutable_data().end(), 0.0);
    std::vector<double> weight(c, 0.0);
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      const Matrix& pc = part_centers[chunk];
      const std::vector<double>& pw = part_weight[chunk];
      for (size_t i = 0; i < c; ++i) {
        weight[i] += pw[i];
        double* crow = centers.RowPtr(i);
        const double* prow = pc.RowPtr(i);
        for (size_t j = 0; j < d; ++j) crow[j] += prow[j];
      }
    }
    for (size_t i = 0; i < c; ++i) {
      if (weight[i] <= 0.0) {
        // Degenerate cluster: re-seed its center at a random point.
        const size_t pick = static_cast<size_t>(rng.NextBelow(n));
        centers.SetRow(i, points.Row(pick));
      } else {
        double* crow = centers.RowPtr(i);
        for (size_t j = 0; j < d; ++j) crow[j] /= weight[i];
      }
    }

    // Membership update + objective + convergence check. Rows of U are
    // written disjointly; the objective is an ordered per-chunk sum and
    // max_delta an (order-insensitive) max.
    st = ParallelFor(
        n,
        [&](size_t begin, size_t end, size_t chunk) -> Status {
          std::vector<double> sq(kEstepTile * c);
          std::vector<double> new_row(c);
          double objective = 0.0;
          double max_delta = 0.0;
          for (size_t k0 = begin; k0 < end; k0 += kEstepTile) {
            const size_t tile = std::min(kEstepTile, end - k0);
            SquaredL2ManyToMany(points.RowPtr(k0), tile,
                                centers.RowPtr(0), c, d, sq.data(), c);
            for (size_t t = 0; t < tile; ++t) {
              const double* sq_row = sq.data() + t * c;
              MembershipRow(sq_row, c, exponent, new_row.data());
              double* urow = u.RowPtr(k0 + t);
              for (size_t i = 0; i < c; ++i) {
                max_delta =
                    std::max(max_delta, std::fabs(new_row[i] - urow[i]));
                urow[i] = new_row[i];
                objective += FuzzyWeight(new_row[i], m) * sq_row[i];
              }
            }
          }
          part_objective[chunk] = objective;
          part_max_delta[chunk] = max_delta;
          return Status::OK();
        },
        options.parallel);
    MOCEMG_RETURN_NOT_OK(st);
    double objective = 0.0;
    double max_delta = 0.0;
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      objective += part_objective[chunk];
      max_delta = std::max(max_delta, part_max_delta[chunk]);
    }
    model.objective_history.push_back(objective);
    if (max_delta < options.epsilon) {
      ++iter;
      break;
    }
  }

  model.centers = std::move(centers);
  model.memberships = std::move(u);
  model.iterations = iter;
  Fit fit;
  fit.objective = model.objective_history.empty()
                      ? std::numeric_limits<double>::infinity()
                      : model.objective_history.back();
  fit.model = std::move(model);
  return fit;
}

}  // namespace

Result<FcmModel> FitFcm(const Matrix& points, const FcmOptions& options) {
  MOCEMG_RETURN_NOT_OK(ValidateOptions(points, options));
  Rng seeder(options.seed);
  Fit best;
  bool have_best = false;
  for (int r = 0; r < options.restarts; ++r) {
    MOCEMG_ASSIGN_OR_RETURN(Fit fit,
                            FitOnce(points, options, seeder.NextUint64()));
    if (!have_best || fit.objective < best.objective) {
      best = std::move(fit);
      have_best = true;
    }
  }
  return std::move(best.model);
}

Result<std::vector<double>> EvaluateMembership(
    const Matrix& centers, const std::vector<double>& point,
    double fuzziness) {
  if (centers.rows() == 0) {
    return Status::InvalidArgument("no cluster centers");
  }
  if (point.size() != centers.cols()) {
    return Status::InvalidArgument(
        "point dimension " + std::to_string(point.size()) +
        " does not match center dimension " +
        std::to_string(centers.cols()));
  }
  if (fuzziness <= 1.0) {
    return Status::InvalidArgument("fuzzifier m must be > 1");
  }
  for (double v : point) {
    if (!std::isfinite(v)) {
      return Status::NumericalError(
          "membership evaluation on a non-finite point");
    }
  }
  const size_t c = centers.rows();
  std::vector<double> sq(c);
  SquaredL2OneToMany(point.data(), centers.RowPtr(0), c, centers.cols(),
                     sq.data());
  std::vector<double> row(c);
  MembershipRow(sq.data(), c, 1.0 / (fuzziness - 1.0), row.data());
  return row;
}

Result<Matrix> EvaluateMembershipBatch(const Matrix& centers,
                                       const Matrix& points,
                                       double fuzziness) {
  if (centers.rows() == 0) {
    return Status::InvalidArgument("no cluster centers");
  }
  if (points.cols() != centers.cols()) {
    return Status::InvalidArgument(
        "points dimension " + std::to_string(points.cols()) +
        " does not match center dimension " +
        std::to_string(centers.cols()));
  }
  if (fuzziness <= 1.0) {
    return Status::InvalidArgument("fuzzifier m must be > 1");
  }
  for (double v : points.data()) {
    if (!std::isfinite(v)) {
      return Status::NumericalError(
          "membership evaluation on a non-finite point");
    }
  }
  const size_t n = points.rows();
  const size_t c = centers.rows();
  const size_t d = centers.cols();
  const double exponent = 1.0 / (fuzziness - 1.0);
  Matrix out(n, c);
  std::vector<double> sq(kEstepTile * c);
  for (size_t k0 = 0; k0 < n; k0 += kEstepTile) {
    const size_t tile = std::min(kEstepTile, n - k0);
    SquaredL2ManyToMany(points.RowPtr(k0), tile, centers.RowPtr(0), c, d,
                        sq.data(), c);
    for (size_t t = 0; t < tile; ++t) {
      MembershipRow(sq.data() + t * c, c, exponent, out.RowPtr(k0 + t));
    }
  }
  return out;
}

}  // namespace mocemg
