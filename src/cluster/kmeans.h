/// \file kmeans.h
/// \brief Hard k-means (Lloyd's algorithm with k-means++ seeding). Serves
/// two roles: baseline for the fuzzy-vs-hard ablation (the paper argues
/// fuzzy clustering suits non-stationary biomedical data better than
/// "traditional clustering techniques"), and optional FCM initialization.

#ifndef MOCEMG_CLUSTER_KMEANS_H_
#define MOCEMG_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace mocemg {

/// \brief k-means hyper-parameters.
struct KmeansOptions {
  size_t num_clusters = 6;
  size_t max_iterations = 200;
  /// Stop when total center movement falls below this.
  double tolerance = 1e-8;
  uint64_t seed = 42;
  int restarts = 1;
};

/// \brief A fitted k-means model.
struct KmeansModel {
  /// Centers, c × d.
  Matrix centers;
  /// Hard assignment per point.
  std::vector<size_t> assignments;
  /// Sum of squared distances to assigned centers.
  double inertia = 0.0;
  size_t iterations = 0;
};

/// \brief Fits k-means to row-points; same preconditions as FCM.
Result<KmeansModel> FitKmeans(const Matrix& points,
                              const KmeansOptions& options);

/// \brief Index of the nearest center to `point` (hard assignment of an
/// out-of-sample point).
Result<size_t> NearestCenter(const Matrix& centers,
                             const std::vector<double>& point);

}  // namespace mocemg

#endif  // MOCEMG_CLUSTER_KMEANS_H_
