/// \file validity.h
/// \brief Cluster-validity indices for choosing the "pre-determined number
/// of clusters" the paper sweeps: partition coefficient and partition
/// entropy (Bezdek) and the Xie–Beni index. The figure benches report the
/// classification metrics; these indices let a user pick c without labels.

#ifndef MOCEMG_CLUSTER_VALIDITY_H_
#define MOCEMG_CLUSTER_VALIDITY_H_

#include "cluster/fcm.h"
#include "util/result.h"

namespace mocemg {

/// \brief Partition coefficient PC = (1/N) Σ_k Σ_i u_ik². Ranges (1/c, 1];
/// higher = crisper partition.
Result<double> PartitionCoefficient(const FcmModel& model);

/// \brief Partition entropy PE = −(1/N) Σ_k Σ_i u_ik ln u_ik. Ranges
/// [0, ln c); lower = crisper partition.
Result<double> PartitionEntropy(const FcmModel& model);

/// \brief Xie–Beni index: J_m-style compactness over N·(minimum squared
/// center separation). Lower is better. Needs the original points.
Result<double> XieBeniIndex(const FcmModel& model, const Matrix& points,
                            double fuzziness = 2.0);

}  // namespace mocemg

#endif  // MOCEMG_CLUSTER_VALIDITY_H_
