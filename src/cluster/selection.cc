#include "cluster/selection.h"

#include <limits>

#include "util/macros.h"

namespace mocemg {

const char* SelectionCriterionName(SelectionCriterion criterion) {
  switch (criterion) {
    case SelectionCriterion::kXieBeni:
      return "xie_beni";
    case SelectionCriterion::kPartitionCoefficient:
      return "partition_coefficient";
    case SelectionCriterion::kPartitionEntropy:
      return "partition_entropy";
  }
  return "?";
}

Result<SelectionResult> SelectClusterCount(
    const Matrix& points, const SelectionOptions& options) {
  if (points.rows() == 0) {
    return Status::InvalidArgument("no points to cluster");
  }
  if (options.candidates.empty()) {
    return Status::InvalidArgument("no candidate cluster counts");
  }
  SelectionResult result;
  double best_score = std::numeric_limits<double>::infinity();
  for (size_t c : options.candidates) {
    // Xie–Beni needs >= 2 clusters; every candidate needs c <= n.
    if (c < 2 || c > points.rows()) continue;
    FcmOptions fcm = options.fcm;
    fcm.num_clusters = c;
    MOCEMG_ASSIGN_OR_RETURN(FcmModel model, FitFcm(points, fcm));

    ClusterCountScore score;
    score.clusters = c;
    score.objective = model.objective_history.empty()
                          ? 0.0
                          : model.objective_history.back();
    MOCEMG_ASSIGN_OR_RETURN(score.partition_coefficient,
                            PartitionCoefficient(model));
    MOCEMG_ASSIGN_OR_RETURN(score.partition_entropy,
                            PartitionEntropy(model));
    auto xb = XieBeniIndex(model, points, fcm.fuzziness);
    // Coincident centers (degenerate fit at this c) disqualify the
    // candidate for Xie–Beni but keep the other scores reportable.
    score.xie_beni = xb.ok() ? *xb : std::numeric_limits<double>::infinity();

    double criterion_value = 0.0;
    switch (options.criterion) {
      case SelectionCriterion::kXieBeni:
        criterion_value = score.xie_beni;
        break;
      case SelectionCriterion::kPartitionCoefficient:
        criterion_value = -score.partition_coefficient;
        break;
      case SelectionCriterion::kPartitionEntropy:
        criterion_value = score.partition_entropy;
        break;
    }
    if (criterion_value < best_score) {
      best_score = criterion_value;
      result.recommended_clusters = c;
    }
    result.scores.push_back(score);
  }
  if (result.scores.empty()) {
    return Status::InvalidArgument(
        "no candidate cluster count is feasible for " +
        std::to_string(points.rows()) + " points");
  }
  return result;
}

}  // namespace mocemg
