/// \file selection.h
/// \brief Unsupervised cluster-count selection. The paper observes that
/// "the performance of the classification varies on choice of cluster
/// numbers" and simply sweeps c with labelled queries; a deployment
/// without labels needs a criterion. This module sweeps c, fits FCM at
/// each, scores the fits with the validity indices, and recommends a c.

#ifndef MOCEMG_CLUSTER_SELECTION_H_
#define MOCEMG_CLUSTER_SELECTION_H_

#include <vector>

#include "cluster/fcm.h"
#include "cluster/validity.h"
#include "util/result.h"

namespace mocemg {

/// \brief Which validity index drives the recommendation.
enum class SelectionCriterion : int {
  /// Minimize the Xie–Beni index (compactness over separation).
  kXieBeni = 0,
  /// Maximize the partition coefficient.
  kPartitionCoefficient = 1,
  /// Minimize the partition entropy.
  kPartitionEntropy = 2,
};

const char* SelectionCriterionName(SelectionCriterion criterion);

/// \brief One candidate's scores.
struct ClusterCountScore {
  size_t clusters = 0;
  double xie_beni = 0.0;
  double partition_coefficient = 0.0;
  double partition_entropy = 0.0;
  double objective = 0.0;  ///< final J_m of the fit
};

/// \brief Sweep configuration.
struct SelectionOptions {
  std::vector<size_t> candidates = {2, 4, 6, 8, 10, 12, 15, 20, 25, 30};
  SelectionCriterion criterion = SelectionCriterion::kXieBeni;
  FcmOptions fcm;  ///< num_clusters is overwritten per candidate
};

/// \brief Full sweep outcome.
struct SelectionResult {
  std::vector<ClusterCountScore> scores;
  size_t recommended_clusters = 0;
};

/// \brief Fits FCM at each candidate c over the window points and picks
/// the best per the criterion. Candidates exceeding the point count are
/// skipped; fails if none remain.
Result<SelectionResult> SelectClusterCount(const Matrix& points,
                                           const SelectionOptions& options);

}  // namespace mocemg

#endif  // MOCEMG_CLUSTER_SELECTION_H_
