/// \file status.h
/// \brief Arrow/RocksDB-style Status object used as the error-handling
/// currency across the whole library. No exceptions cross public API
/// boundaries; every fallible operation returns a Status or Result<T>.

#ifndef MOCEMG_UTIL_STATUS_H_
#define MOCEMG_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace mocemg {

/// \brief Machine-readable error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kIOError = 3,
  kParseError = 4,
  kNotImplemented = 5,
  kAlreadyExists = 6,
  kNotFound = 7,
  kFailedPrecondition = 8,
  kNumericalError = 9,
  kUnknown = 10,
  /// A request's deadline budget elapsed before it was served; the
  /// work was shed, never half-done (query_server.h expiry sweeps).
  kDeadlineExceeded = 11,
  /// A transient serving failure worth retrying (injected evaluation
  /// faults, overload conditions that are expected to clear).
  kUnavailable = 12,
};

/// \brief Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: either OK or a code plus message.
///
/// The OK state is represented with a null payload so that `Status::OK()`
/// is trivially cheap to construct, copy, and test (a single pointer).
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : state_(nullptr) {}
  ~Status() { delete state_; }

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      delete state_;
      state_ = other.state_ ? new State(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&& other) noexcept : state_(other.state_) {
    other.state_ = nullptr;
  }
  Status& operator=(Status&& other) noexcept {
    std::swap(state_, other.state_);
    return *this;
  }

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }

  /// \brief Returns an error status with the given code and message.
  static Status FromCode(StatusCode code, std::string msg) {
    return Status(code, std::move(msg));
  }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// \brief True iff the status is OK.
  bool ok() const { return state_ == nullptr; }

  /// \brief The status code (kOk when ok()).
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }

  /// \brief The error message; empty when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsNumericalError() const {
    return code() == StatusCode::kNumericalError;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// \brief Prepends context to the message of a non-OK status; returns the
  /// status unchanged when OK. Used to build error traces while unwinding.
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  Status(StatusCode code, std::string msg)
      : state_(new State{code, std::move(msg)}) {}

  State* state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace mocemg

#endif  // MOCEMG_UTIL_STATUS_H_
