/// \file clock.h
/// \brief Monotonic time seam for the serving layer.
///
/// Everything time-dependent in the query server — deadline budgets,
/// expiry sweeps, drain-rate measurement, retry-after hints, backoff
/// sleeps — reads time through this interface instead of calling
/// std::chrono directly. Production uses SystemClock() (a
/// steady_clock-backed singleton); tests and the serving fault
/// injector substitute a FakeClock whose time only moves when the test
/// advances it, which is what makes deadline/shedding behaviour a
/// deterministic, replayable function of the request/fault schedule
/// instead of a race against the host scheduler.
///
/// The contract is monotonic microseconds from an arbitrary origin:
/// two NowMicros() values from the same clock are comparable, values
/// from different clocks are not. Implementations must be safe to call
/// from any thread.

#ifndef MOCEMG_UTIL_CLOCK_H_
#define MOCEMG_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace mocemg {

/// \brief Monotonic clock interface (microseconds since an arbitrary
/// origin). Thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// \brief Current monotonic time in microseconds. Never decreases.
  virtual uint64_t NowMicros() const = 0;

  /// \brief Blocks the caller for `micros`. A FakeClock advances its
  /// own time instead of blocking, so backoff loops driven by a fake
  /// clock run at test speed.
  virtual void SleepMicros(uint64_t micros) const = 0;
};

/// \brief The process-wide steady_clock-backed Clock. Never null; the
/// singleton lives for the process lifetime.
const Clock* SystemClock();

/// \brief Manually-advanced clock for tests and fault injection.
/// NowMicros starts at `start_micros` and moves only via Advance /
/// SleepMicros. All methods are thread-safe (single atomic counter).
class FakeClock : public Clock {
 public:
  explicit FakeClock(uint64_t start_micros = 0)
      : now_micros_(start_micros) {}

  uint64_t NowMicros() const override {
    return now_micros_.load(std::memory_order_acquire);
  }

  /// \brief Advancing is the only way fake time moves.
  void Advance(uint64_t micros) {
    now_micros_.fetch_add(micros, std::memory_order_acq_rel);
  }

  /// \brief "Sleeping" on a fake clock just advances it — a backoff
  /// loop under test completes instantly but still observes the exact
  /// timestamps a real sleep would have produced.
  void SleepMicros(uint64_t micros) const override {
    now_micros_.fetch_add(micros, std::memory_order_acq_rel);
  }

 private:
  mutable std::atomic<uint64_t> now_micros_;
};

}  // namespace mocemg

#endif  // MOCEMG_UTIL_CLOCK_H_
