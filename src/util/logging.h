/// \file logging.h
/// \brief Minimal leveled logging plus CHECK-style invariant assertions.

#ifndef MOCEMG_UTIL_LOGGING_H_
#define MOCEMG_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace mocemg {

/// \brief Severity of a log record.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// \brief Global minimum level; records below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// \brief Accumulates one log record and emits it on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// \brief Swallows a disabled log statement's stream expression.
/// operator& binds looser than operator<<, so the whole streamed chain
/// evaluates before being voided (the glog idiom).
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace mocemg

#define MOCEMG_LOG(level)                                               \
  (::mocemg::LogLevel::level < ::mocemg::GetLogLevel())                 \
      ? (void)0                                                         \
      : ::mocemg::internal::Voidify() &                                 \
            ::mocemg::internal::LogMessage(::mocemg::LogLevel::level,   \
                                           __FILE__, __LINE__)          \
                .stream()

/// Hard invariant: aborts with a message when violated, in all build
/// modes. Use for programmer errors that cannot be expressed as Status.
#define MOCEMG_CHECK(cond)                                             \
  while (!(cond))                                                      \
  ::mocemg::internal::LogMessage(::mocemg::LogLevel::kFatal, __FILE__, \
                                 __LINE__)                             \
      .stream()                                                        \
      << "Check failed: " #cond " "

#define MOCEMG_CHECK_OK(status_expr)                    \
  do {                                                  \
    ::mocemg::Status _st = (status_expr);               \
    MOCEMG_CHECK(_st.ok()) << _st.ToString();           \
  } while (false)

#endif  // MOCEMG_UTIL_LOGGING_H_
