#include "util/quant_kernels.h"

#include <algorithm>
#include <cfloat>
#include <cmath>

namespace mocemg {

void ComputeQuantGrid(const double* block, size_t rows, size_t d,
                      double* offsets, double* scale) {
  double max_range = 0.0;
  for (size_t j = 0; j < d; ++j) offsets[j] = block[j];
  // First pass: column minima.
  for (size_t r = 1; r < rows; ++r) {
    const double* row = block + r * d;
    for (size_t j = 0; j < d; ++j) {
      offsets[j] = std::min(offsets[j], row[j]);
    }
  }
  // Second pass: the widest column range sets the uniform step.
  for (size_t r = 0; r < rows; ++r) {
    const double* row = block + r * d;
    for (size_t j = 0; j < d; ++j) {
      max_range = std::max(max_range, row[j] - offsets[j]);
    }
  }
  *scale = max_range / 255.0;
}

namespace {

inline uint8_t EncodeValue(double value, double offset, double scale) {
  if (scale <= 0.0) return 0;
  const double t = std::nearbyint((value - offset) / scale);
  return static_cast<uint8_t>(std::clamp(t, 0.0, 255.0));
}

}  // namespace

void QuantizeRows(const double* block, size_t rows, size_t d,
                  const double* offsets, double scale, uint8_t* codes) {
  for (size_t r = 0; r < rows; ++r) {
    const double* row = block + r * d;
    uint8_t* out = codes + r * d;
    for (size_t j = 0; j < d; ++j) {
      out[j] = EncodeValue(row[j], offsets[j], scale);
    }
  }
}

void QuantizeQuery(const double* query, size_t d, const double* offsets,
                   double scale, uint8_t* qcodes) {
  for (size_t j = 0; j < d; ++j) {
    qcodes[j] = EncodeValue(query[j], offsets[j], scale);
  }
}

void DequantizeRow(const uint8_t* codes, size_t d, const double* offsets,
                   double scale, double* out) {
  for (size_t j = 0; j < d; ++j) {
    out[j] = offsets[j] + scale * static_cast<double>(codes[j]);
  }
}

void QuantizedSsdOneToMany(const uint8_t* qcodes, const uint8_t* codes,
                           size_t rows, size_t d, uint32_t* out) {
  // Plain int32 accumulation: exact (no rounding, no lane contract
  // needed — integer addition is associative) and shaped for the
  // vectorizer (byte loads widened to i16, multiply-accumulated to
  // i32).
  for (size_t r = 0; r < rows; ++r) {
    const uint8_t* c = codes + r * d;
    uint32_t acc = 0;
    for (size_t j = 0; j < d; ++j) {
      const int32_t diff = static_cast<int32_t>(qcodes[j]) -
                           static_cast<int32_t>(c[j]);
      acc += static_cast<uint32_t>(diff * diff);
    }
    out[r] = acc;
  }
}

double QuantScanSlack(size_t d, double a_sq, double b_sq) {
  // Error budget, all terms absolute (magnitudes bounded by
  // a_sq + b_sq =: M, with the caller passing bounds that cover the
  // grid's bounding box as well as the raw rows):
  //   - exact kernel accumulation on the re-rank side:          <= 4dεM
  //   - build-time error measurement accumulation:              <= 4dεM
  //   - query-residual measurement accumulation:                <= 4dεM
  //   - decode roundings (fl(off + s·c)) folded into the above: <= 8dεM
  // 32dεM covers the sum with margin; see DESIGN.md §11.2.
  return 32.0 * static_cast<double>(d) * DBL_EPSILON * (a_sq + b_sq);
}

}  // namespace mocemg
