#include "util/quant_kernels.h"

#include <algorithm>
#include <cfloat>
#include <cmath>

#include "util/kernel_dispatch.h"

namespace mocemg {

void ComputeQuantGrid(const double* block, size_t rows, size_t d,
                      double* offsets, double* scale, uint32_t levels) {
  double max_range = 0.0;
  for (size_t j = 0; j < d; ++j) offsets[j] = block[j];
  // First pass: column minima.
  for (size_t r = 1; r < rows; ++r) {
    const double* row = block + r * d;
    for (size_t j = 0; j < d; ++j) {
      offsets[j] = std::min(offsets[j], row[j]);
    }
  }
  // Second pass: the widest column range sets the uniform step.
  for (size_t r = 0; r < rows; ++r) {
    const double* row = block + r * d;
    for (size_t j = 0; j < d; ++j) {
      max_range = std::max(max_range, row[j] - offsets[j]);
    }
  }
  *scale = max_range / static_cast<double>(levels);
}

namespace {

inline uint8_t EncodeValue(double value, double offset, double scale,
                           double levels) {
  if (scale <= 0.0) return 0;
  const double t = std::nearbyint((value - offset) / scale);
  return static_cast<uint8_t>(std::clamp(t, 0.0, levels));
}

}  // namespace

void QuantizeRows(const double* block, size_t rows, size_t d,
                  const double* offsets, double scale, uint8_t* codes,
                  uint32_t levels) {
  const double lmax = static_cast<double>(levels);
  for (size_t r = 0; r < rows; ++r) {
    const double* row = block + r * d;
    uint8_t* out = codes + r * d;
    for (size_t j = 0; j < d; ++j) {
      out[j] = EncodeValue(row[j], offsets[j], scale, lmax);
    }
  }
}

void QuantizeQuery(const double* query, size_t d, const double* offsets,
                   double scale, uint8_t* qcodes, uint32_t levels) {
  const double lmax = static_cast<double>(levels);
  for (size_t j = 0; j < d; ++j) {
    qcodes[j] = EncodeValue(query[j], offsets[j], scale, lmax);
  }
}

void DequantizeRow(const uint8_t* codes, size_t d, const double* offsets,
                   double scale, double* out) {
  for (size_t j = 0; j < d; ++j) {
    out[j] = offsets[j] + scale * static_cast<double>(codes[j]);
  }
}

void PackNibbleRows(const uint8_t* codes, size_t rows, size_t d,
                    uint8_t* packed) {
  const size_t stride = PackedNibbleStride(d);
  for (size_t r = 0; r < rows; ++r) {
    const uint8_t* in = codes + r * d;
    uint8_t* out = packed + r * stride;
    for (size_t b = 0; b < stride; ++b) {
      const uint8_t lo = static_cast<uint8_t>(in[2 * b] & 0x0F);
      const uint8_t hi = (2 * b + 1 < d)
                             ? static_cast<uint8_t>(in[2 * b + 1] & 0x0F)
                             : uint8_t{0};
      out[b] = static_cast<uint8_t>(lo | (hi << 4));
    }
  }
}

void UnpackNibbleRow(const uint8_t* packed, size_t d, uint8_t* codes) {
  for (size_t j = 0; j < d; ++j) {
    const uint8_t byte = packed[j / 2];
    codes[j] = (j % 2 == 0) ? static_cast<uint8_t>(byte & 0x0F)
                            : static_cast<uint8_t>(byte >> 4);
  }
}

void QuantizedSsdOneToMany(const uint8_t* qcodes, const uint8_t* codes,
                           size_t rows, size_t d, uint32_t* out) {
  internal::ActiveKernelOps().ssd8_one_to_many(qcodes, codes, rows, d, out);
}

void Quantized4SsdOneToMany(const uint8_t* qpacked, const uint8_t* packed,
                            size_t rows, size_t d, uint32_t* out) {
  internal::ActiveKernelOps().ssd4_one_to_many(qpacked, packed, rows, d,
                                               out);
}

void QuantizedSsdManyToMany(const uint8_t* qcodes, size_t num_queries,
                            const uint8_t* codes, size_t rows, size_t d,
                            uint32_t* out, size_t out_stride) {
  internal::ActiveKernelOps().ssd8_many_to_many(qcodes, num_queries, codes,
                                                rows, d, out, out_stride);
}

void Quantized4SsdManyToMany(const uint8_t* qpacked, size_t num_queries,
                             const uint8_t* packed, size_t rows, size_t d,
                             uint32_t* out, size_t out_stride) {
  internal::ActiveKernelOps().ssd4_many_to_many(qpacked, num_queries,
                                                packed, rows, d, out,
                                                out_stride);
}

double QuantScanSlack(size_t d, double a_sq, double b_sq) {
  // Error budget, all terms absolute (magnitudes bounded by
  // a_sq + b_sq =: M, with the caller passing bounds that cover the
  // grid's bounding box as well as the raw rows):
  //   - exact kernel accumulation on the re-rank side:          <= 4dεM
  //   - build-time error measurement accumulation:              <= 4dεM
  //   - query-residual measurement accumulation:                <= 4dεM
  //   - decode roundings (fl(off + s·c)) folded into the above: <= 8dεM
  // 32dεM covers the sum with margin; see DESIGN.md §11.2.
  return 32.0 * static_cast<double>(d) * DBL_EPSILON * (a_sq + b_sq);
}

}  // namespace mocemg
