/// \file kernel_dispatch.h
/// \brief Runtime selection of SIMD backends for the distance / coarse
/// quantized kernel family.
///
/// The library ships several implementations of the hot kernels —
/// portable scalar (the bit-exactness reference, see
/// distance_kernels.h), AVX2, AVX-512 and NEON — each compiled in its
/// own translation unit with target-specific flags, so one binary
/// carries all of them without `-march=native`. At first use the
/// dispatcher probes the CPU once, picks the widest usable backend, and
/// publishes a function-pointer table (`KernelOps`) that every kernel
/// entry point (`SquaredL2OneToMany`, `QuantizedSsdOneToMany`, …) routes
/// through. Consumers — MotionDatabase linear scan, FeatureIndex
/// partition scan and coarse pass, ShardedFeatureIndex, k-means, FCM,
/// GK, classifier kNN — therefore pick up the dispatched backend with
/// no call-site changes.
///
/// **Bit-exactness contract.** Every backend reproduces the scalar
/// reference bit-for-bit, for every shape, dimension and input
/// (including NaN/Inf propagation): the double kernels implement the
/// exact 4-lane accumulation order of distance_kernels.h (one 4-wide
/// vector accumulator, multiply then add — never FMA — with scalar
/// remainder handling in the same lanes), the float32 mirror kernels
/// implement the identical 4-lane order at fp32 precision, and the
/// integer coarse kernels are exact by construction (int32 sums of
/// squared byte diffs are associative). Switching backends can never
/// change a kNN result, a pruning decision, or a clustering iterate —
/// only the wall-clock. The contract is enforced by
/// tests/util/kernel_dispatch_test.cc across dims 1–67 for every
/// backend the binary carries.
///
/// **Override.** `MOCEMG_KERNEL={auto,scalar,avx2,avx512,neon}` (env,
/// read once at first dispatch) or SetKernelBackend() (CLI / tests)
/// force a specific backend; forcing one the CPU or build cannot run
/// fails cleanly (env: warning + auto, API: error Status).

#ifndef MOCEMG_UTIL_KERNEL_DISPATCH_H_
#define MOCEMG_UTIL_KERNEL_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace mocemg {

/// \brief One kernel implementation family, compiled per-TU.
enum class KernelBackend : int {
  kAuto = 0,    ///< pick the widest usable backend (default)
  kScalar = 1,  ///< portable reference (always compiled, always usable)
  kAvx2 = 2,    ///< x86-64 AVX2
  kAvx512 = 3,  ///< x86-64 AVX-512 (F+BW+DQ+VL, VNNI when available)
  kNeon = 4,    ///< aarch64 Advanced SIMD (+dotprod when available)
};

/// \brief Function-pointer table one backend fills in. All entries are
/// non-null and honour the contracts of distance_kernels.h /
/// quant_kernels.h; `ssd4_one_to_many` scans 4-bit nibble-packed codes
/// (row stride ⌈d/2⌉ bytes, dim 2j in the low nibble — see
/// quant_kernels.h). The `*_f32*` entries scan the float32 SoA mirror
/// of the exact tier: fp32 accumulation with the same literal 4-lane
/// order (bit-exact across backends like the double family), plus one
/// fp64-accumulate variant (`l2dot_f32d_one_to_many`) used by the
/// float-precision error-bound analysis and its tests.
///
/// The `*_many_to_many` entries evaluate a whole query block against a
/// row block, writing `out[q * out_stride + r]`. Each (query, row) pair
/// is REQUIRED to produce the exact bits of the corresponding
/// one-to-many entry on that pair — implementations may tile for cache
/// residency and interleave several independent pairs to break the
/// per-pair accumulator latency chain, but every pair keeps its own
/// self-contained 4-lane accumulator, so loop order can never change a
/// result. `l2_gather` evaluates `squared_l2_pair` at a gathered index
/// list (the fp32 tier's f64 refine and the f64 dot-form re-check use
/// it to batch their unseparable rows); same per-pair contract.
struct KernelOps {
  const char* name;
  double (*squared_l2_pair)(const double* x, const double* y, size_t d);
  double (*dot_pair)(const double* x, const double* y, size_t d);
  void (*l2_one_to_many)(const double* query, const double* block,
                         size_t rows, size_t d, double* out);
  void (*l2dot_one_to_many)(const double* query, double query_sq,
                            const double* block, const double* norms_sq,
                            size_t rows, size_t d, double* out);
  void (*row_norms)(const double* block, size_t rows, size_t d,
                    double* out);
  void (*ssd8_one_to_many)(const uint8_t* qcodes, const uint8_t* codes,
                           size_t rows, size_t d, uint32_t* out);
  void (*ssd4_one_to_many)(const uint8_t* qpacked, const uint8_t* packed,
                           size_t rows, size_t d, uint32_t* out);
  void (*l2_f32_one_to_many)(const float* query, const float* block,
                             size_t rows, size_t d, float* out);
  void (*l2dot_f32_one_to_many)(const float* query, float query_sq,
                                const float* block, const float* norms_sq,
                                size_t rows, size_t d, float* out);
  void (*row_norms_f32)(const float* block, size_t rows, size_t d,
                        float* out);
  void (*l2dot_f32d_one_to_many)(const float* query, double query_sq,
                                 const float* block,
                                 const double* norms_sq, size_t rows,
                                 size_t d, double* out);
  void (*l2dot_many_to_many)(const double* queries, const double* query_sqs,
                             size_t num_queries, const double* block,
                             const double* norms_sq, size_t rows, size_t d,
                             double* out, size_t out_stride);
  void (*l2dot_f32_many_to_many)(const float* queries,
                                 const float* query_sqs, size_t num_queries,
                                 const float* block, const float* norms_sq,
                                 size_t rows, size_t d, float* out,
                                 size_t out_stride);
  void (*l2_gather)(const double* query, const double* block,
                    const uint32_t* row_indices, size_t n, size_t d,
                    double* out);
  void (*ssd8_many_to_many)(const uint8_t* qcodes, size_t num_queries,
                            const uint8_t* codes, size_t rows, size_t d,
                            uint32_t* out, size_t out_stride);
  void (*ssd4_many_to_many)(const uint8_t* qpacked, size_t num_queries,
                            const uint8_t* packed, size_t rows, size_t d,
                            uint32_t* out, size_t out_stride);
};

/// \brief Stable lowercase name ("auto", "scalar", "avx2", ...).
const char* KernelBackendName(KernelBackend backend);

/// \brief Parses a backend name (as accepted by MOCEMG_KERNEL).
Result<KernelBackend> ParseKernelBackend(const std::string& name);

/// \brief The backend currently answering dispatched kernel calls
/// (never kAuto — detection has resolved it).
KernelBackend ActiveKernelBackend();

/// \brief Backends compiled into this binary (always includes kScalar).
std::vector<KernelBackend> CompiledKernelBackends();

/// \brief Compiled backends the current CPU can execute.
std::vector<KernelBackend> UsableKernelBackends();

/// \brief Forces the active backend. kAuto re-runs detection (honouring
/// MOCEMG_KERNEL). Fails with FailedPrecondition when the backend is
/// not compiled in or the CPU lacks the features; the active table is
/// unchanged on error. Thread-safe, but swapping mid-scan gives a mix
/// of (bit-identical) backends — intended for startup / tests.
Status SetKernelBackend(KernelBackend backend);

/// \brief The ops table of a specific backend, or nullptr when that
/// backend is not compiled in / not usable on this CPU. kAuto returns
/// the auto-detected table. Exposed for the equivalence tests and the
/// kernel micro-benchmarks; library code should call the dispatched
/// entry points instead.
const KernelOps* GetKernelOps(KernelBackend backend);

/// \brief Snapshot of the dispatch decision for stats / bench metadata.
struct KernelDispatchInfo {
  std::string active;         ///< active backend name
  std::string compiled;       ///< comma-joined compiled backend names
  std::string usable;         ///< comma-joined CPU-usable backend names
  std::string cpu_features;   ///< detected feature flags, comma-joined
  bool env_override = false;  ///< MOCEMG_KERNEL forced a non-auto pick
};

/// \brief Returns the current dispatch decision + CPU feature flags.
KernelDispatchInfo GetKernelDispatchInfo();

namespace internal {
/// The table the dispatched entry points read (acquire-loaded once per
/// call). Initializes dispatch on first use.
const KernelOps& ActiveKernelOps();
}  // namespace internal

}  // namespace mocemg

#endif  // MOCEMG_UTIL_KERNEL_DISPATCH_H_
