/// \file macros.h
/// \brief Control-flow helpers for Status/Result propagation.

#ifndef MOCEMG_UTIL_MACROS_H_
#define MOCEMG_UTIL_MACROS_H_

#include "util/status.h"

/// Evaluates a Status expression and returns it from the enclosing
/// function if it is not OK.
#define MOCEMG_RETURN_NOT_OK(expr)                \
  do {                                            \
    ::mocemg::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (false)

#define MOCEMG_CONCAT_IMPL(x, y) x##y
#define MOCEMG_CONCAT(x, y) MOCEMG_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns its status from the
/// enclosing function, otherwise moves the value into `lhs` (which may be
/// a declaration, e.g. `MOCEMG_ASSIGN_OR_RETURN(auto m, LoadMatrix(p));`).
#define MOCEMG_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  MOCEMG_ASSIGN_OR_RETURN_IMPL(                                        \
      MOCEMG_CONCAT(_mocemg_result_, __LINE__), lhs, rexpr)

#define MOCEMG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie()

#endif  // MOCEMG_UTIL_MACROS_H_
