#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mocemg {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<double> ParseDouble(std::string_view token) {
  std::string t(Trim(token));
  if (t.empty()) return Status::ParseError("empty numeric token");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(t.c_str(), &end);
  if (errno == ERANGE) {
    return Status::ParseError("numeric overflow in token '" + t + "'");
  }
  if (end != t.c_str() + t.size()) {
    return Status::ParseError("trailing garbage in numeric token '" + t +
                              "'");
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view token) {
  std::string t(Trim(token));
  if (t.empty()) return Status::ParseError("empty integer token");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(t.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("integer overflow in token '" + t + "'");
  }
  if (end != t.c_str() + t.size()) {
    return Status::ParseError("trailing garbage in integer token '" + t +
                              "'");
  }
  return static_cast<int64_t>(v);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace mocemg
