/// \file result.h
/// \brief Result<T>: a Status plus a value on success (Arrow-style).

#ifndef MOCEMG_UTIL_RESULT_H_
#define MOCEMG_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace mocemg {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Construction from a value yields an OK result; construction from a
/// non-OK Status yields an error result. Constructing from an OK Status
/// is a programming error (asserted in debug builds, degraded to an
/// Unknown error otherwise).
template <typename T>
class Result {
 public:
  /// Constructs an error result from a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Unknown("Result constructed from OK status");
    }
  }

  /// Constructs an OK result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  /// \brief True iff a value is held.
  bool ok() const { return status_.ok(); }

  /// \brief The status (OK when a value is held).
  const Status& status() const { return status_; }

  /// \brief Access to the held value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie on errored Result");
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie on errored Result");
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie on errored Result");
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Moves the value out, or returns `fallback` if errored.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mocemg

#endif  // MOCEMG_UTIL_RESULT_H_
