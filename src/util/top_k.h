/// \file top_k.h
/// \brief Bounded top-k accumulator for the kNN scans: keeps the k
/// smallest (distance, index) pairs seen so far in a max-heap, so a
/// scan over n candidates costs O(n log k) with k live entries instead
/// of materializing and partially sorting all n.
///
/// Ordering contract: candidates compare by (distance, index)
/// lexicographically — equal distances break toward the *smaller*
/// index. Every kNN path (linear scan, pruned index, classifier
/// final-feature scan) uses this same rule, so ties resolve
/// identically everywhere and reported hit lists are a pure function
/// of the candidate set. Distances must be non-NaN (callers validate
/// inputs; NaN would poison the heap invariant).

#ifndef MOCEMG_UTIL_TOP_K_H_
#define MOCEMG_UTIL_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

namespace mocemg {

/// \brief One scored candidate: (distance, index).
using TopKEntry = std::pair<double, size_t>;

/// \brief Max-heap of the k best (smallest) candidates.
class BoundedTopK {
 public:
  explicit BoundedTopK(size_t k = 0) { Reset(k); }

  /// \brief Clears and sets the capacity (k >= 1 for useful work).
  void Reset(size_t k) {
    k_ = k;
    heap_.clear();
    heap_.reserve(k);
  }

  size_t size() const { return heap_.size(); }
  size_t k() const { return k_; }
  bool full() const { return heap_.size() >= k_; }

  /// \brief The current k-th best distance: +inf until the heap is
  /// full, afterwards the largest kept distance. A candidate with
  /// distance strictly greater than this can never enter.
  double worst() const {
    return full() ? heap_.front().first
                  : std::numeric_limits<double>::infinity();
  }

  /// \brief Offers (distance, index); keeps it iff it is among the k
  /// best seen so far under the (distance, index) order.
  void Push(double distance, size_t index) {
    if (k_ == 0) return;
    const TopKEntry entry{distance, index};
    if (heap_.size() < k_) {
      heap_.push_back(entry);
      std::push_heap(heap_.begin(), heap_.end());
      return;
    }
    if (entry < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = entry;
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  /// \brief Writes the kept entries ascending by (distance, index)
  /// into `out` (replacing its contents). The heap stays valid for
  /// further pushes only after the next Reset.
  void ExtractSorted(std::vector<TopKEntry>* out) {
    std::sort_heap(heap_.begin(), heap_.end());
    out->assign(heap_.begin(), heap_.end());
    heap_.clear();
  }

 private:
  size_t k_ = 0;
  /// std::pair's operator< is exactly the (distance, index)
  /// lexicographic order; the default std::push_heap comparator makes
  /// this a max-heap with the worst kept candidate at front().
  std::vector<TopKEntry> heap_;
};

/// \brief Scatter-gather merge: folds per-source sorted top-k lists
/// (each ascending by (distance, index), as ExtractSorted produces)
/// into `top`, visiting sources in their given order. Because the
/// exact top-k is a pure function of the candidate *set* under the
/// (distance, index) order, the merged heap equals the heap a single
/// scan over the union would have produced — this is the sharded kNN
/// bit-identity lever. Within a source, iteration stops as soon as an
/// entry provably cannot enter (list ascending + heap full + distance
/// strictly beyond the k-th best).
inline void MergeSortedTopK(const std::vector<std::vector<TopKEntry>>& lists,
                            BoundedTopK* top) {
  for (const std::vector<TopKEntry>& list : lists) {
    for (const TopKEntry& entry : list) {
      if (top->full() && entry.first > top->worst()) break;
      top->Push(entry.first, entry.second);
    }
  }
}

}  // namespace mocemg

#endif  // MOCEMG_UTIL_TOP_K_H_
