#include "util/distance_kernels.h"

#include <algorithm>
#include <cfloat>
#include <cmath>

#include "util/kernel_dispatch.h"

namespace mocemg {
namespace {

// Row-tile size for the blocked many-to-many kernel: a tile of rows is
// kept hot across the whole query batch. 256 rows × 64 dims × 8 bytes
// = 128 KiB worst case at the dimensionalities this library sees —
// L2-resident everywhere; at the paper-typical 16–30 dims a tile fits
// comfortably in L1+L2. The tile size never changes per-pair bits
// (each pair's accumulation is self-contained), only cache behaviour.
constexpr size_t kRowTile = 256;

}  // namespace

// The row-shaped entry points route through the runtime-dispatched
// backend table (kernel_dispatch.h). Every backend is bit-identical to
// the scalar reference, so callers observe only a throughput change.

double SquaredL2Dispatched(const double* x, const double* y, size_t d) {
  return internal::ActiveKernelOps().squared_l2_pair(x, y, d);
}

double DotProductDispatched(const double* x, const double* y, size_t d) {
  return internal::ActiveKernelOps().dot_pair(x, y, d);
}

void SquaredL2OneToMany(const double* query, const double* block,
                        size_t rows, size_t d, double* out) {
  internal::ActiveKernelOps().l2_one_to_many(query, block, rows, d, out);
}

void SquaredL2DotOneToMany(const double* query, double query_sq,
                           const double* block, const double* norms_sq,
                           size_t rows, size_t d, double* out) {
  internal::ActiveKernelOps().l2dot_one_to_many(query, query_sq, block,
                                                norms_sq, rows, d, out);
}

void SquaredL2ManyToMany(const double* queries, size_t num_queries,
                         const double* block, size_t rows, size_t d,
                         double* out, size_t out_stride) {
  const KernelOps& ops = internal::ActiveKernelOps();
  for (size_t r0 = 0; r0 < rows; r0 += kRowTile) {
    const size_t tile = std::min(rows - r0, kRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      ops.l2_one_to_many(queries + q * d, block + r0 * d, tile, d,
                         out + q * out_stride + r0);
    }
  }
}

void SquaredL2DotManyToMany(const double* queries, const double* query_sqs,
                            size_t num_queries, const double* block,
                            const double* norms_sq, size_t rows, size_t d,
                            double* out, size_t out_stride) {
  internal::ActiveKernelOps().l2dot_many_to_many(
      queries, query_sqs, num_queries, block, norms_sq, rows, d, out,
      out_stride);
}

void SquaredL2Gather(const double* query, const double* block,
                     const uint32_t* row_indices, size_t n, size_t d,
                     double* out) {
  internal::ActiveKernelOps().l2_gather(query, block, row_indices, n, d,
                                        out);
}

void RowSquaredNorms(const double* block, size_t rows, size_t d,
                     double* out) {
  internal::ActiveKernelOps().row_norms(block, rows, d, out);
}

void SquaredL2F32OneToMany(const float* query, const float* block,
                           size_t rows, size_t d, float* out) {
  internal::ActiveKernelOps().l2_f32_one_to_many(query, block, rows, d,
                                                 out);
}

void SquaredL2DotF32OneToMany(const float* query, float query_sq,
                              const float* block, const float* norms_sq,
                              size_t rows, size_t d, float* out) {
  internal::ActiveKernelOps().l2dot_f32_one_to_many(
      query, query_sq, block, norms_sq, rows, d, out);
}

void SquaredL2DotF32F64OneToMany(const float* query, double query_sq,
                                 const float* block,
                                 const double* norms_sq, size_t rows,
                                 size_t d, double* out) {
  internal::ActiveKernelOps().l2dot_f32d_one_to_many(
      query, query_sq, block, norms_sq, rows, d, out);
}

void RowSquaredNormsF32(const float* block, size_t rows, size_t d,
                        float* out) {
  internal::ActiveKernelOps().row_norms_f32(block, rows, d, out);
}

void SquaredL2F32ManyToMany(const float* queries, size_t num_queries,
                            const float* block, size_t rows, size_t d,
                            float* out, size_t out_stride) {
  // Same L2-resident row tiling as the double kernel; fp32 rows are
  // half the bytes, so a tile covers twice the rows per cache line.
  const KernelOps& ops = internal::ActiveKernelOps();
  for (size_t r0 = 0; r0 < rows; r0 += kRowTile) {
    const size_t tile = std::min(rows - r0, kRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      ops.l2_f32_one_to_many(queries + q * d, block + r0 * d, tile, d,
                             out + q * out_stride + r0);
    }
  }
}

void SquaredL2DotF32ManyToMany(const float* queries,
                               const float* query_sqs, size_t num_queries,
                               const float* block, const float* norms_sq,
                               size_t rows, size_t d, float* out,
                               size_t out_stride) {
  internal::ActiveKernelOps().l2dot_f32_many_to_many(
      queries, query_sqs, num_queries, block, norms_sq, rows, d, out,
      out_stride);
}

double DotFormErrorBound(size_t d, double query_sq, double max_norm_sq) {
  // |fl(dot) − dot| <= γ_d·‖q‖‖r‖ <= γ_d·(q² + r²)/2 with γ_d ≈ d·u,
  // u = ε/2; the norm terms carry γ_d relative error and the final
  // three-term combination a few more ulps. 4·d·ε·(q² + r²) covers the
  // sum of all of it with a >2× margin (DESIGN.md §10.2).
  return 4.0 * static_cast<double>(d) * DBL_EPSILON *
         (query_sq + max_norm_sq);
}

double Float32DotFormErrorBound(size_t d, double query_sq,
                                double max_norm_sq, double max_abs) {
  // Error budget for reading a pair through the float32 mirror
  // (DESIGN.md §15.2). Write S = query_sq + max_norm_sq.
  //
  //  1. Storage rounding: each stored element is fl32(x), relative
  //     error ε32 = 2⁻²³ (or an absolute error <= λ = 2⁻¹⁴⁹ once the
  //     value denormalizes). Through the dot product this perturbs
  //     Σ|x_i·y_i| <= √(q²·r²) <= S/2 by <= 2ε32·S/2 + λ·d·(√S +
  //     max_abs + λ); the norms carry the same storage rounding once
  //     more.
  //  2. fp32 accumulation: the 4-lane dot and norm sums each lose
  //     <= ⌈d/4⌉·ε32 relative (γ-series), again against S/2, with the
  //     λ absolute floor when a partial sum denormalizes.
  //  3. The fp32 three-term combine (q² + r²) − 2·dot touches values
  //     <= 3S: a handful of ε32·S terms.
  //  4. The double dot-form residual DotFormErrorBound — the fp32 scan
  //     is certified against the *difference-form* double kernel.
  //
  // (4d + 32)·ε32·S dominates 1–3's relative parts with better than
  // 2× slack; the λ term covers every absolute (subnormal) leak. The
  // conservativeness property test drives this with mixed 1e±30 scales
  // and pure-subnormal inputs across dims 1..67.
  const double s = query_sq + max_norm_sq;
  const double eps32 = 1.1920928955078125e-07;   // FLT_EPSILON = 2^-23
  const double lambda = 1.401298464324817e-45;   // 2^-149, min subnormal
  const double dd = static_cast<double>(d);
  return (4.0 * dd + 32.0) * eps32 * s +
         8.0 * (dd + 4.0) * lambda *
             (std::sqrt(s) + max_abs + lambda) +
         DotFormErrorBound(d, query_sq, max_norm_sq);
}

}  // namespace mocemg
