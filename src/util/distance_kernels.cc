#include "util/distance_kernels.h"

#include <algorithm>
#include <cfloat>

#include "util/kernel_dispatch.h"

namespace mocemg {
namespace {

// Row-tile size for the blocked many-to-many kernel: a tile of rows is
// kept hot across the whole query batch. 256 rows × 64 dims × 8 bytes
// = 128 KiB worst case at the dimensionalities this library sees —
// L2-resident everywhere; at the paper-typical 16–30 dims a tile fits
// comfortably in L1+L2. The tile size never changes per-pair bits
// (each pair's accumulation is self-contained), only cache behaviour.
constexpr size_t kRowTile = 256;

}  // namespace

// The row-shaped entry points route through the runtime-dispatched
// backend table (kernel_dispatch.h). Every backend is bit-identical to
// the scalar reference, so callers observe only a throughput change.

double SquaredL2Dispatched(const double* x, const double* y, size_t d) {
  return internal::ActiveKernelOps().squared_l2_pair(x, y, d);
}

double DotProductDispatched(const double* x, const double* y, size_t d) {
  return internal::ActiveKernelOps().dot_pair(x, y, d);
}

void SquaredL2OneToMany(const double* query, const double* block,
                        size_t rows, size_t d, double* out) {
  internal::ActiveKernelOps().l2_one_to_many(query, block, rows, d, out);
}

void SquaredL2DotOneToMany(const double* query, double query_sq,
                           const double* block, const double* norms_sq,
                           size_t rows, size_t d, double* out) {
  internal::ActiveKernelOps().l2dot_one_to_many(query, query_sq, block,
                                                norms_sq, rows, d, out);
}

void SquaredL2ManyToMany(const double* queries, size_t num_queries,
                         const double* block, size_t rows, size_t d,
                         double* out, size_t out_stride) {
  const KernelOps& ops = internal::ActiveKernelOps();
  for (size_t r0 = 0; r0 < rows; r0 += kRowTile) {
    const size_t tile = std::min(rows - r0, kRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      ops.l2_one_to_many(queries + q * d, block + r0 * d, tile, d,
                         out + q * out_stride + r0);
    }
  }
}

void RowSquaredNorms(const double* block, size_t rows, size_t d,
                     double* out) {
  internal::ActiveKernelOps().row_norms(block, rows, d, out);
}

double DotFormErrorBound(size_t d, double query_sq, double max_norm_sq) {
  // |fl(dot) − dot| <= γ_d·‖q‖‖r‖ <= γ_d·(q² + r²)/2 with γ_d ≈ d·u,
  // u = ε/2; the norm terms carry γ_d relative error and the final
  // three-term combination a few more ulps. 4·d·ε·(q² + r²) covers the
  // sum of all of it with a >2× margin (DESIGN.md §10.2).
  return 4.0 * static_cast<double>(d) * DBL_EPSILON *
         (query_sq + max_norm_sq);
}

}  // namespace mocemg
