/// \file distance_kernels.h
/// \brief Allocation-free squared-L2 / dot-product kernels shared by
/// every retrieval and clustering hot loop (kNN scans, k-means
/// assignment, the FCM/GK membership steps).
///
/// Three shapes:
///
///  - **pair**       — one (x, y) distance (`SquaredL2`, `DotProduct`),
///  - **one-to-many** — one query against a packed row-major block
///    (`SquaredL2OneToMany`, `SquaredL2DotOneToMany`),
///  - **many-to-many** — a query batch against a block, tiled over the
///    block rows so a tile stays L1/L2-resident across the whole query
///    batch (`SquaredL2ManyToMany`).
///
/// Arithmetic contract (the determinism guarantee everything downstream
/// leans on): every kernel computes each (x, y) pair with **4
/// independent accumulators** over the dimensions — lane j sums the
/// dimensions i with i ≡ j (mod 4) of the unrolled body, the <= 3
/// remainder dimensions land in lanes 0..2 in order, and the lanes
/// combine as `(a0 + a1) + (a2 + a3)`. The combine order is fixed, so a
/// pair's result is bit-identical whether it was computed by the pair
/// kernel, inside a one-to-many row, or inside any tile of the blocked
/// kernel — and therefore identical at every thread count and tile
/// size. The row-shaped entry points below route through the
/// runtime-dispatched SIMD backends (kernel_dispatch.h), each of which
/// reproduces this 4-lane contract bit-for-bit; the inline kernels in
/// this header are the portable scalar *reference* the backends are
/// tested against (and what non-SIMD CPUs run).
///
/// The dot-product form `d²(q, r) = ‖q‖² + ‖r‖² − 2⟨q, r⟩` (fed by
/// per-row norms precomputed at index build) trades the subtraction out
/// of the inner loop but rounds differently from the difference form;
/// `SquaredL2DotOneToMany` is therefore *approximate* and callers that
/// need exactness re-check candidates within `DotFormErrorBound` using
/// the exact pair kernel (see DESIGN.md §10.2 for the bound's
/// derivation).
///
/// Non-finite inputs propagate exactly as in a scalar loop: any NaN
/// coordinate (or an Inf − Inf difference) yields NaN, otherwise an Inf
/// coordinate yields +Inf.

#ifndef MOCEMG_UTIL_DISTANCE_KERNELS_H_
#define MOCEMG_UTIL_DISTANCE_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace mocemg {

/// \brief Squared Euclidean distance ‖x − y‖² over d dimensions.
inline double SquaredL2(const double* x, const double* y, size_t d) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const double d0 = x[i] - y[i];
    const double d1 = x[i + 1] - y[i + 1];
    const double d2 = x[i + 2] - y[i + 2];
    const double d3 = x[i + 3] - y[i + 3];
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  // Remainder dimensions fill lanes 0..2 in order (fixed, so the
  // combine below is a pure function of the inputs).
  if (i < d) {
    const double d0 = x[i] - y[i];
    a0 += d0 * d0;
  }
  if (i + 1 < d) {
    const double d1 = x[i + 1] - y[i + 1];
    a1 += d1 * d1;
  }
  if (i + 2 < d) {
    const double d2 = x[i + 2] - y[i + 2];
    a2 += d2 * d2;
  }
  return (a0 + a1) + (a2 + a3);
}

/// \brief Dot product ⟨x, y⟩ with the same 4-lane accumulation order.
inline double DotProduct(const double* x, const double* y, size_t d) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  if (i < d) a0 += x[i] * y[i];
  if (i + 1 < d) a1 += x[i + 1] * y[i + 1];
  if (i + 2 < d) a2 += x[i + 2] * y[i + 2];
  return (a0 + a1) + (a2 + a3);
}

/// \brief Squared L2 norm ‖x‖² = ⟨x, x⟩ (same bits as DotProduct(x, x)).
inline double SquaredNorm(const double* x, size_t d) {
  return DotProduct(x, x, d);
}

/// \brief fp32 squared L2 with the identical 4-lane accumulation
/// contract at float precision — the scalar reference for the float32
/// SoA mirror kernels (the certified low-precision exact tier).
inline float SquaredL2F32(const float* x, const float* y, size_t d) {
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float d0 = x[i] - y[i];
    const float d1 = x[i + 1] - y[i + 1];
    const float d2 = x[i + 2] - y[i + 2];
    const float d3 = x[i + 3] - y[i + 3];
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  if (i < d) {
    const float d0 = x[i] - y[i];
    a0 += d0 * d0;
  }
  if (i + 1 < d) {
    const float d1 = x[i + 1] - y[i + 1];
    a1 += d1 * d1;
  }
  if (i + 2 < d) {
    const float d2 = x[i + 2] - y[i + 2];
    a2 += d2 * d2;
  }
  return (a0 + a1) + (a2 + a3);
}

/// \brief fp32 dot product, 4-lane order at float precision.
inline float DotProductF32(const float* x, const float* y, size_t d) {
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  if (i < d) a0 += x[i] * y[i];
  if (i + 1 < d) a1 += x[i + 1] * y[i + 1];
  if (i + 2 < d) a2 += x[i + 2] * y[i + 2];
  return (a0 + a1) + (a2 + a3);
}

/// \brief fp32 squared norm (same bits as DotProductF32(x, x)).
inline float SquaredNormF32(const float* x, size_t d) {
  return DotProductF32(x, x, d);
}

/// \brief fp64-accumulate dot product over fp32 inputs: every element
/// is widened to double (exact) and the accumulation runs the double
/// 4-lane contract. Isolates the f64→f32 *storage* rounding from the
/// fp32 *accumulation* rounding — the split the float-precision error
/// bound analysis (and its conservativeness test) relies on.
inline double DotProductF32ToF64(const float* x, const float* y,
                                 size_t d) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    a0 += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    a1 += static_cast<double>(x[i + 1]) * static_cast<double>(y[i + 1]);
    a2 += static_cast<double>(x[i + 2]) * static_cast<double>(y[i + 2]);
    a3 += static_cast<double>(x[i + 3]) * static_cast<double>(y[i + 3]);
  }
  if (i < d) a0 += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  if (i + 1 < d) {
    a1 += static_cast<double>(x[i + 1]) * static_cast<double>(y[i + 1]);
  }
  if (i + 2 < d) {
    a2 += static_cast<double>(x[i + 2]) * static_cast<double>(y[i + 2]);
  }
  return (a0 + a1) + (a2 + a3);
}

/// \brief Pair kernels routed through the runtime-dispatched SIMD
/// backend (kernel_dispatch.h). Bit-identical to the inline reference
/// above on every backend; use these in hot per-pair loops (re-rank,
/// residual measurement) where d is large enough to amortize the
/// indirect call, and the inline forms everywhere else.
double SquaredL2Dispatched(const double* x, const double* y, size_t d);
double DotProductDispatched(const double* x, const double* y, size_t d);

/// \brief out[r] = ‖query − block_row_r‖² for each of the `rows` packed
/// row-major rows (row stride = d). Each out[r] is bit-identical to
/// `SquaredL2(query, block + r*d, d)`.
void SquaredL2OneToMany(const double* query, const double* block,
                        size_t rows, size_t d, double* out);

/// \brief Dot-product-form scan: out[r] = query_sq + norms_sq[r] −
/// 2⟨query, block_row_r⟩, with `query_sq = SquaredNorm(query, d)` and
/// `norms_sq[r] = SquaredNorm(block + r*d, d)` precomputed by the
/// caller. Cheaper than the difference form (no per-dimension subtract)
/// but **approximate**: it differs from `SquaredL2` by at most
/// `DotFormErrorBound(d, query_sq, max_r norms_sq[r])`. Negative
/// results (possible for near-coincident points) are NOT clamped.
void SquaredL2DotOneToMany(const double* query, double query_sq,
                           const double* block, const double* norms_sq,
                           size_t rows, size_t d, double* out);

/// \brief Blocked many-to-many: out[q * out_stride + r] =
/// ‖query_q − block_row_r‖² for q < num_queries, r < rows. The block is
/// processed in row tiles sized for L1/L2 so each tile is streamed once
/// per query batch, not once per query. Per-pair bits equal the pair
/// kernel regardless of the tiling. `queries` is packed row-major with
/// stride d; `out_stride >= rows`.
void SquaredL2ManyToMany(const double* queries, size_t num_queries,
                         const double* block, size_t rows, size_t d,
                         double* out, size_t out_stride);

/// \brief Blocked dot-form many-to-many: out[q * out_stride + r] =
/// query_sqs[q] + norms_sq[r] − 2⟨query_q, block_row_r⟩. Each
/// (query, row) pair is bit-identical to the corresponding
/// `SquaredL2DotOneToMany` output on every backend — the backends tile
/// rows for cache residency and interleave independent pairs for ILP,
/// neither of which can change per-pair bits. Same approximation
/// caveat as the one-to-many dot form.
void SquaredL2DotManyToMany(const double* queries, const double* query_sqs,
                            size_t num_queries, const double* block,
                            const double* norms_sq, size_t rows, size_t d,
                            double* out, size_t out_stride);

/// \brief out[i] = SquaredL2(query, block + row_indices[i]*d, d) for a
/// gathered index list — the blocked refine kernel the fp32 tier and
/// the f64 dot-form re-check use to batch their unseparable rows.
/// Bit-identical per index to the exact pair kernel.
void SquaredL2Gather(const double* query, const double* block,
                     const uint32_t* row_indices, size_t n, size_t d,
                     double* out);

/// \brief out[r] = ‖block_row_r‖², bit-identical to SquaredNorm per row.
void RowSquaredNorms(const double* block, size_t rows, size_t d,
                     double* out);

/// \brief Conservative bound on |dot-form − difference-form| for one
/// pair: 4·d·ε·(query_sq + max_norm_sq), with ε = 2⁻⁵² (see DESIGN.md
/// §10.2). Valid for any row whose squared norm is <= max_norm_sq.
double DotFormErrorBound(size_t d, double query_sq, double max_norm_sq);

/// \brief fp32 mirror entry points, routed through the dispatched
/// backend like their double counterparts. `SquaredL2F32OneToMany` is
/// the difference-form scan (out[r] bit-identical to
/// `SquaredL2F32(query, block + r*d, d)` on every backend);
/// `SquaredL2DotF32OneToMany` is the dot-form scan
/// out[r] = (query_sq + norms_sq[r]) − 2·⟨query, row⟩ at fp32
/// throughout; `SquaredL2DotF32F64OneToMany` is the fp64-accumulate
/// variant over the same fp32 inputs (double norms / output).
void SquaredL2F32OneToMany(const float* query, const float* block,
                           size_t rows, size_t d, float* out);
void SquaredL2DotF32OneToMany(const float* query, float query_sq,
                              const float* block, const float* norms_sq,
                              size_t rows, size_t d, float* out);
void SquaredL2DotF32F64OneToMany(const float* query, double query_sq,
                                 const float* block,
                                 const double* norms_sq, size_t rows,
                                 size_t d, double* out);

/// \brief out[r] = SquaredNormF32 of row r (fp32 accumulation).
void RowSquaredNormsF32(const float* block, size_t rows, size_t d,
                        float* out);

/// \brief Blocked fp32 many-to-many, tiled like SquaredL2ManyToMany;
/// per-pair bits equal SquaredL2F32 regardless of the tiling.
void SquaredL2F32ManyToMany(const float* queries, size_t num_queries,
                            const float* block, size_t rows, size_t d,
                            float* out, size_t out_stride);

/// \brief Blocked fp32 dot-form many-to-many; per-pair bits equal
/// `SquaredL2DotF32OneToMany` on every backend.
void SquaredL2DotF32ManyToMany(const float* queries,
                               const float* query_sqs, size_t num_queries,
                               const float* block, const float* norms_sq,
                               size_t rows, size_t d, float* out,
                               size_t out_stride);

/// \brief Conservative bound on |fp32 dot-form scan − fp64
/// difference-form| for one pair scanned through the float32 mirror:
/// covers the f64→f32 storage rounding of both operands and the norms,
/// the fp32 4-lane dot accumulation, the fp32 three-term combination,
/// and the residual double dot-form error. `max_norm_sq` bounds every
/// mirrored row's squared norm and `max_abs` every mirrored element's
/// magnitude (both collected at pack time); the subnormal absolute
/// floor makes the bound valid even when elements or partial sums
/// denormalize. Callers must also ensure `query_sq + max_norm_sq`
/// stays far below FLT_MAX (the index gates the fp32 tier per
/// partition at 1e30) so no fp32 intermediate overflows.
double Float32DotFormErrorBound(size_t d, double query_sq,
                                double max_norm_sq, double max_abs);

}  // namespace mocemg

#endif  // MOCEMG_UTIL_DISTANCE_KERNELS_H_
