/// \file kernel_backend.h
/// \brief Internal: per-backend KernelOps factories. Each backend lives
/// in its own translation unit compiled with the matching target flags
/// (see src/util/CMakeLists.txt); the dispatcher links only the tables
/// whose MOCEMG_HAVE_*_BACKEND definition is set. Every table must
/// reproduce the scalar reference bit-for-bit (kernel_dispatch.h).

#ifndef MOCEMG_UTIL_KERNELS_KERNEL_BACKEND_H_
#define MOCEMG_UTIL_KERNELS_KERNEL_BACKEND_H_

#include "util/kernel_dispatch.h"

namespace mocemg {
namespace internal {

/// Portable reference backend; always compiled. Its double kernels are
/// the inline ones from distance_kernels.h, so "scalar" is by
/// definition the bit-exactness baseline.
const KernelOps& ScalarKernelOps();

/// x86-64 AVX2 backend (TU compiled with -mavx2).
const KernelOps& Avx2KernelOps();

/// x86-64 AVX-512 backend (TU compiled with
/// -mavx512f -mavx512bw -mavx512dq -mavx512vl [-mavx512vnni]).
const KernelOps& Avx512KernelOps();

/// aarch64 Advanced SIMD backend.
const KernelOps& NeonKernelOps();

}  // namespace internal
}  // namespace mocemg

#endif  // MOCEMG_UTIL_KERNELS_KERNEL_BACKEND_H_
