/// \file kernels_neon.cc
/// \brief aarch64 Advanced SIMD backend. NEON is baseline on aarch64 so
/// this TU needs no extra target flags (beyond -ffp-contract=off); the
/// int8 kernel upgrades to the udot (dot-product) instruction when the
/// compiler baseline carries __ARM_FEATURE_DOTPROD.
///
/// Bit-exactness (kernel_dispatch.h): the double kernels keep the
/// 4-lane contract as a *pair* of 2-wide accumulators — acc01 holds the
/// scalar reference's lanes a0/a1 and acc23 holds a2/a3, each updated
/// with a separate multiply then add (never vfma), remainder dims
/// handled on the extracted lanes with the scalar code, lanes combined
/// as (a0 + a1) + (a2 + a3). The integer kernels are exact: |q − c| via
/// vabd, squared through the widening multiply (vmull_u8 →
/// pairwise-accumulate) or udot, all in uint32 arithmetic.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>

#include "util/kernels/kernel_backend.h"

namespace mocemg {
namespace internal {
namespace {

// ---------------------------------------------------------------------
// double kernels: lanes a0/a1 in acc01, a2/a3 in acc23.

inline double CombineTail(float64x2_t acc01, float64x2_t acc23,
                          const double* x, const double* y, size_t i,
                          size_t d, bool squared) {
  double a0 = vgetq_lane_f64(acc01, 0);
  double a1 = vgetq_lane_f64(acc01, 1);
  double a2 = vgetq_lane_f64(acc23, 0);
  double a3 = vgetq_lane_f64(acc23, 1);
  if (squared) {
    if (i < d) {
      const double d0 = x[i] - y[i];
      a0 += d0 * d0;
    }
    if (i + 1 < d) {
      const double d1 = x[i + 1] - y[i + 1];
      a1 += d1 * d1;
    }
    if (i + 2 < d) {
      const double d2 = x[i + 2] - y[i + 2];
      a2 += d2 * d2;
    }
  } else {
    if (i < d) a0 += x[i] * y[i];
    if (i + 1 < d) a1 += x[i + 1] * y[i + 1];
    if (i + 2 < d) a2 += x[i + 2] * y[i + 2];
  }
  return (a0 + a1) + (a2 + a3);
}

double NeonSquaredL2Pair(const double* x, const double* y, size_t d) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float64x2_t d01 = vsubq_f64(vld1q_f64(x + i), vld1q_f64(y + i));
    const float64x2_t d23 =
        vsubq_f64(vld1q_f64(x + i + 2), vld1q_f64(y + i + 2));
    acc01 = vaddq_f64(acc01, vmulq_f64(d01, d01));
    acc23 = vaddq_f64(acc23, vmulq_f64(d23, d23));
  }
  return CombineTail(acc01, acc23, x, y, i, d, /*squared=*/true);
}

double NeonDotPair(const double* x, const double* y, size_t d) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
    acc23 = vaddq_f64(
        acc23, vmulq_f64(vld1q_f64(x + i + 2), vld1q_f64(y + i + 2)));
  }
  return CombineTail(acc01, acc23, x, y, i, d, /*squared=*/false);
}

void NeonL2OneToMany(const double* query, const double* block, size_t rows,
                     size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = NeonSquaredL2Pair(query, block + r * d, d);
  }
}

void NeonL2DotOneToMany(const double* query, double query_sq,
                        const double* block, const double* norms_sq,
                        size_t rows, size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] =
        query_sq + norms_sq[r] - 2.0 * NeonDotPair(query, block + r * d, d);
  }
}

void NeonRowNorms(const double* block, size_t rows, size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    const double* row = block + r * d;
    out[r] = NeonDotPair(row, row, d);
  }
}

// ---------------------------------------------------------------------
// float32 mirror kernels: one float32x4_t accumulator IS the scalar
// reference's four lanes; multiply then add (never vfma), remainder
// dims on the extracted lanes.

inline float CombineTailF32(float32x4_t acc, const float* x,
                            const float* y, size_t i, size_t d,
                            bool squared) {
  float a0 = vgetq_lane_f32(acc, 0);
  float a1 = vgetq_lane_f32(acc, 1);
  float a2 = vgetq_lane_f32(acc, 2);
  float a3 = vgetq_lane_f32(acc, 3);
  if (squared) {
    if (i < d) {
      const float d0 = x[i] - y[i];
      a0 += d0 * d0;
    }
    if (i + 1 < d) {
      const float d1 = x[i + 1] - y[i + 1];
      a1 += d1 * d1;
    }
    if (i + 2 < d) {
      const float d2 = x[i + 2] - y[i + 2];
      a2 += d2 * d2;
    }
  } else {
    if (i < d) a0 += x[i] * y[i];
    if (i + 1 < d) a1 += x[i + 1] * y[i + 1];
    if (i + 2 < d) a2 += x[i + 2] * y[i + 2];
  }
  return (a0 + a1) + (a2 + a3);
}

inline float NeonSquaredL2PairF32(const float* x, const float* y,
                                  size_t d) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float32x4_t diff = vsubq_f32(vld1q_f32(x + i), vld1q_f32(y + i));
    acc = vaddq_f32(acc, vmulq_f32(diff, diff));
  }
  return CombineTailF32(acc, x, y, i, d, /*squared=*/true);
}

inline float NeonDotPairF32(const float* x, const float* y, size_t d) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    acc = vaddq_f32(acc, vmulq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
  }
  return CombineTailF32(acc, x, y, i, d, /*squared=*/false);
}

// fp64-accumulate over fp32 inputs: widen each float32x4 half to
// float64x2 (exact) and run the double kernel's acc01/acc23 shape.
inline double NeonDotPairF32ToF64(const float* x, const float* y,
                                  size_t d) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float32x4_t vx = vld1q_f32(x + i);
    const float32x4_t vy = vld1q_f32(y + i);
    const float64x2_t x01 = vcvt_f64_f32(vget_low_f32(vx));
    const float64x2_t y01 = vcvt_f64_f32(vget_low_f32(vy));
    const float64x2_t x23 = vcvt_high_f64_f32(vx);
    const float64x2_t y23 = vcvt_high_f64_f32(vy);
    acc01 = vaddq_f64(acc01, vmulq_f64(x01, y01));
    acc23 = vaddq_f64(acc23, vmulq_f64(x23, y23));
  }
  double a0 = vgetq_lane_f64(acc01, 0);
  double a1 = vgetq_lane_f64(acc01, 1);
  double a2 = vgetq_lane_f64(acc23, 0);
  double a3 = vgetq_lane_f64(acc23, 1);
  if (i < d) a0 += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  if (i + 1 < d) {
    a1 += static_cast<double>(x[i + 1]) * static_cast<double>(y[i + 1]);
  }
  if (i + 2 < d) {
    a2 += static_cast<double>(x[i + 2]) * static_cast<double>(y[i + 2]);
  }
  return (a0 + a1) + (a2 + a3);
}

void NeonL2F32OneToMany(const float* query, const float* block,
                        size_t rows, size_t d, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = NeonSquaredL2PairF32(query, block + r * d, d);
  }
}

void NeonL2DotF32OneToMany(const float* query, float query_sq,
                           const float* block, const float* norms_sq,
                           size_t rows, size_t d, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = query_sq + norms_sq[r] -
             2.0f * NeonDotPairF32(query, block + r * d, d);
  }
}

void NeonRowNormsF32(const float* block, size_t rows, size_t d,
                     float* out) {
  for (size_t r = 0; r < rows; ++r) {
    const float* row = block + r * d;
    out[r] = NeonDotPairF32(row, row, d);
  }
}

void NeonL2DotF32F64OneToMany(const float* query, double query_sq,
                              const float* block, const double* norms_sq,
                              size_t rows, size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = query_sq + norms_sq[r] -
             2.0 * NeonDotPairF32ToF64(query, block + r * d, d);
  }
}

// ---------------------------------------------------------------------
// integer coarse kernels.

inline uint32x4_t AddSquares(uint32x4_t acc, uint8x16_t ad) {
#if defined(__ARM_FEATURE_DOTPROD)
  return vdotq_u32(acc, ad, ad);
#else
  const uint16x8_t lo = vmull_u8(vget_low_u8(ad), vget_low_u8(ad));
  const uint16x8_t hi = vmull_u8(vget_high_u8(ad), vget_high_u8(ad));
  return vpadalq_u16(vpadalq_u16(acc, lo), hi);
#endif
}

inline uint32_t Ssd8Row(const uint8_t* q, const uint8_t* c, size_t d) {
  uint32x4_t acc = vdupq_n_u32(0);
  size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    const uint8x16_t ad = vabdq_u8(vld1q_u8(q + j), vld1q_u8(c + j));
    acc = AddSquares(acc, ad);
  }
  uint32_t sum = vaddvq_u32(acc);
  for (; j < d; ++j) {
    const int32_t diff =
        static_cast<int32_t>(q[j]) - static_cast<int32_t>(c[j]);
    sum += static_cast<uint32_t>(diff * diff);
  }
  return sum;
}

void NeonSsd8OneToMany(const uint8_t* qcodes, const uint8_t* codes,
                       size_t rows, size_t d, uint32_t* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = Ssd8Row(qcodes, codes + r * d, d);
  }
}

inline uint32_t Ssd4Row(const uint8_t* q, const uint8_t* c, size_t bytes) {
  const uint8x16_t mask = vdupq_n_u8(0x0F);
  uint32x4_t acc = vdupq_n_u32(0);
  size_t b = 0;
  for (; b + 16 <= bytes; b += 16) {
    const uint8x16_t vq = vld1q_u8(q + b);
    const uint8x16_t vc = vld1q_u8(c + b);
    const uint8x16_t adlo =
        vabdq_u8(vandq_u8(vq, mask), vandq_u8(vc, mask));
    const uint8x16_t adhi =
        vabdq_u8(vshrq_n_u8(vq, 4), vshrq_n_u8(vc, 4));
    acc = AddSquares(acc, adlo);
    acc = AddSquares(acc, adhi);
  }
  uint32_t sum = vaddvq_u32(acc);
  for (; b < bytes; ++b) {
    const int32_t dlo = static_cast<int32_t>(q[b] & 0x0F) -
                        static_cast<int32_t>(c[b] & 0x0F);
    const int32_t dhi =
        static_cast<int32_t>(q[b] >> 4) - static_cast<int32_t>(c[b] >> 4);
    sum += static_cast<uint32_t>(dlo * dlo + dhi * dhi);
  }
  return sum;
}

void NeonSsd4OneToMany(const uint8_t* qpacked, const uint8_t* packed,
                       size_t rows, size_t d, uint32_t* out) {
  const size_t bytes = (d + 1) / 2;
  for (size_t r = 0; r < rows; ++r) {
    out[r] = Ssd4Row(qpacked, packed + r * bytes, bytes);
  }
}

// ---------------------------------------------------------------------
// block (many-to-many) family: 4 independent (query, row) pairs in
// flight per step (8 accumulator registers), sharing one query load, to
// hide the vector-add latency the one-to-many kernels serialize on.
// Each pair keeps the exact acc01/acc23 op sequence of the pair
// kernels, so every pair is bit-identical to the one-to-many path; rows
// are tiled so a streamed tile serves the whole query block.

inline void NeonDot4Rows(const double* x, const double* y0,
                         const double* y1, const double* y2,
                         const double* y3, size_t d, double* out) {
  float64x2_t a0_01 = vdupq_n_f64(0.0), a0_23 = vdupq_n_f64(0.0);
  float64x2_t a1_01 = vdupq_n_f64(0.0), a1_23 = vdupq_n_f64(0.0);
  float64x2_t a2_01 = vdupq_n_f64(0.0), a2_23 = vdupq_n_f64(0.0);
  float64x2_t a3_01 = vdupq_n_f64(0.0), a3_23 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float64x2_t x01 = vld1q_f64(x + i);
    const float64x2_t x23 = vld1q_f64(x + i + 2);
    a0_01 = vaddq_f64(a0_01, vmulq_f64(x01, vld1q_f64(y0 + i)));
    a0_23 = vaddq_f64(a0_23, vmulq_f64(x23, vld1q_f64(y0 + i + 2)));
    a1_01 = vaddq_f64(a1_01, vmulq_f64(x01, vld1q_f64(y1 + i)));
    a1_23 = vaddq_f64(a1_23, vmulq_f64(x23, vld1q_f64(y1 + i + 2)));
    a2_01 = vaddq_f64(a2_01, vmulq_f64(x01, vld1q_f64(y2 + i)));
    a2_23 = vaddq_f64(a2_23, vmulq_f64(x23, vld1q_f64(y2 + i + 2)));
    a3_01 = vaddq_f64(a3_01, vmulq_f64(x01, vld1q_f64(y3 + i)));
    a3_23 = vaddq_f64(a3_23, vmulq_f64(x23, vld1q_f64(y3 + i + 2)));
  }
  out[0] = CombineTail(a0_01, a0_23, x, y0, i, d, /*squared=*/false);
  out[1] = CombineTail(a1_01, a1_23, x, y1, i, d, /*squared=*/false);
  out[2] = CombineTail(a2_01, a2_23, x, y2, i, d, /*squared=*/false);
  out[3] = CombineTail(a3_01, a3_23, x, y3, i, d, /*squared=*/false);
}

inline void NeonSquaredL24Rows(const double* x, const double* y0,
                               const double* y1, const double* y2,
                               const double* y3, size_t d, double* out) {
  float64x2_t a0_01 = vdupq_n_f64(0.0), a0_23 = vdupq_n_f64(0.0);
  float64x2_t a1_01 = vdupq_n_f64(0.0), a1_23 = vdupq_n_f64(0.0);
  float64x2_t a2_01 = vdupq_n_f64(0.0), a2_23 = vdupq_n_f64(0.0);
  float64x2_t a3_01 = vdupq_n_f64(0.0), a3_23 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float64x2_t x01 = vld1q_f64(x + i);
    const float64x2_t x23 = vld1q_f64(x + i + 2);
    const float64x2_t d0_01 = vsubq_f64(x01, vld1q_f64(y0 + i));
    const float64x2_t d0_23 = vsubq_f64(x23, vld1q_f64(y0 + i + 2));
    const float64x2_t d1_01 = vsubq_f64(x01, vld1q_f64(y1 + i));
    const float64x2_t d1_23 = vsubq_f64(x23, vld1q_f64(y1 + i + 2));
    const float64x2_t d2_01 = vsubq_f64(x01, vld1q_f64(y2 + i));
    const float64x2_t d2_23 = vsubq_f64(x23, vld1q_f64(y2 + i + 2));
    const float64x2_t d3_01 = vsubq_f64(x01, vld1q_f64(y3 + i));
    const float64x2_t d3_23 = vsubq_f64(x23, vld1q_f64(y3 + i + 2));
    a0_01 = vaddq_f64(a0_01, vmulq_f64(d0_01, d0_01));
    a0_23 = vaddq_f64(a0_23, vmulq_f64(d0_23, d0_23));
    a1_01 = vaddq_f64(a1_01, vmulq_f64(d1_01, d1_01));
    a1_23 = vaddq_f64(a1_23, vmulq_f64(d1_23, d1_23));
    a2_01 = vaddq_f64(a2_01, vmulq_f64(d2_01, d2_01));
    a2_23 = vaddq_f64(a2_23, vmulq_f64(d2_23, d2_23));
    a3_01 = vaddq_f64(a3_01, vmulq_f64(d3_01, d3_01));
    a3_23 = vaddq_f64(a3_23, vmulq_f64(d3_23, d3_23));
  }
  out[0] = CombineTail(a0_01, a0_23, x, y0, i, d, /*squared=*/true);
  out[1] = CombineTail(a1_01, a1_23, x, y1, i, d, /*squared=*/true);
  out[2] = CombineTail(a2_01, a2_23, x, y2, i, d, /*squared=*/true);
  out[3] = CombineTail(a3_01, a3_23, x, y3, i, d, /*squared=*/true);
}

inline void NeonDotF324Rows(const float* x, const float* y0,
                            const float* y1, const float* y2,
                            const float* y3, size_t d, float* out) {
  float32x4_t a0 = vdupq_n_f32(0.0f);
  float32x4_t a1 = vdupq_n_f32(0.0f);
  float32x4_t a2 = vdupq_n_f32(0.0f);
  float32x4_t a3 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float32x4_t vx = vld1q_f32(x + i);
    a0 = vaddq_f32(a0, vmulq_f32(vx, vld1q_f32(y0 + i)));
    a1 = vaddq_f32(a1, vmulq_f32(vx, vld1q_f32(y1 + i)));
    a2 = vaddq_f32(a2, vmulq_f32(vx, vld1q_f32(y2 + i)));
    a3 = vaddq_f32(a3, vmulq_f32(vx, vld1q_f32(y3 + i)));
  }
  out[0] = CombineTailF32(a0, x, y0, i, d, /*squared=*/false);
  out[1] = CombineTailF32(a1, x, y1, i, d, /*squared=*/false);
  out[2] = CombineTailF32(a2, x, y2, i, d, /*squared=*/false);
  out[3] = CombineTailF32(a3, x, y3, i, d, /*squared=*/false);
}

constexpr size_t kMtmRowTile = 64;

void NeonL2DotManyToMany(const double* queries, const double* query_sqs,
                         size_t num_queries, const double* block,
                         const double* norms_sq, size_t rows, size_t d,
                         double* out, size_t out_stride) {
  for (size_t r0 = 0; r0 < rows; r0 += kMtmRowTile) {
    const size_t rend = r0 + std::min(rows - r0, kMtmRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      const double* query = queries + q * d;
      const double query_sq = query_sqs[q];
      double* orow = out + q * out_stride;
      size_t r = r0;
      for (; r + 4 <= rend; r += 4) {
        double dots[4];
        NeonDot4Rows(query, block + r * d, block + (r + 1) * d,
                     block + (r + 2) * d, block + (r + 3) * d, d, dots);
        orow[r] = query_sq + norms_sq[r] - 2.0 * dots[0];
        orow[r + 1] = query_sq + norms_sq[r + 1] - 2.0 * dots[1];
        orow[r + 2] = query_sq + norms_sq[r + 2] - 2.0 * dots[2];
        orow[r + 3] = query_sq + norms_sq[r + 3] - 2.0 * dots[3];
      }
      for (; r < rend; ++r) {
        orow[r] = query_sq + norms_sq[r] -
                  2.0 * NeonDotPair(query, block + r * d, d);
      }
    }
  }
}

void NeonL2DotF32ManyToMany(const float* queries, const float* query_sqs,
                            size_t num_queries, const float* block,
                            const float* norms_sq, size_t rows, size_t d,
                            float* out, size_t out_stride) {
  for (size_t r0 = 0; r0 < rows; r0 += kMtmRowTile) {
    const size_t rend = r0 + std::min(rows - r0, kMtmRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      const float* query = queries + q * d;
      const float query_sq = query_sqs[q];
      float* orow = out + q * out_stride;
      size_t r = r0;
      for (; r + 4 <= rend; r += 4) {
        float dots[4];
        NeonDotF324Rows(query, block + r * d, block + (r + 1) * d,
                        block + (r + 2) * d, block + (r + 3) * d, d, dots);
        orow[r] = query_sq + norms_sq[r] - 2.0f * dots[0];
        orow[r + 1] = query_sq + norms_sq[r + 1] - 2.0f * dots[1];
        orow[r + 2] = query_sq + norms_sq[r + 2] - 2.0f * dots[2];
        orow[r + 3] = query_sq + norms_sq[r + 3] - 2.0f * dots[3];
      }
      for (; r < rend; ++r) {
        orow[r] = query_sq + norms_sq[r] -
                  2.0f * NeonDotPairF32(query, block + r * d, d);
      }
    }
  }
}

void NeonL2Gather(const double* query, const double* block,
                  const uint32_t* row_indices, size_t n, size_t d,
                  double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    NeonSquaredL24Rows(query,
                       block + static_cast<size_t>(row_indices[i]) * d,
                       block + static_cast<size_t>(row_indices[i + 1]) * d,
                       block + static_cast<size_t>(row_indices[i + 2]) * d,
                       block + static_cast<size_t>(row_indices[i + 3]) * d,
                       d, out + i);
  }
  for (; i < n; ++i) {
    out[i] = NeonSquaredL2Pair(
        query, block + static_cast<size_t>(row_indices[i]) * d, d);
  }
}

// Integer sums are exact at any order; tile the one-to-many kernels so
// a code tile streamed once serves every query in the block.
void NeonSsd8ManyToMany(const uint8_t* qcodes, size_t num_queries,
                        const uint8_t* codes, size_t rows, size_t d,
                        uint32_t* out, size_t out_stride) {
  constexpr size_t kCodeRowTile = 1024;
  for (size_t r0 = 0; r0 < rows; r0 += kCodeRowTile) {
    const size_t tile = std::min(rows - r0, kCodeRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      NeonSsd8OneToMany(qcodes + q * d, codes + r0 * d, tile, d,
                        out + q * out_stride + r0);
    }
  }
}

void NeonSsd4ManyToMany(const uint8_t* qpacked, size_t num_queries,
                        const uint8_t* packed, size_t rows, size_t d,
                        uint32_t* out, size_t out_stride) {
  const size_t bytes = (d + 1) / 2;
  constexpr size_t kCodeRowTile = 1024;
  for (size_t r0 = 0; r0 < rows; r0 += kCodeRowTile) {
    const size_t tile = std::min(rows - r0, kCodeRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      NeonSsd4OneToMany(qpacked + q * bytes, packed + r0 * bytes, tile, d,
                        out + q * out_stride + r0);
    }
  }
}

}  // namespace

const KernelOps& NeonKernelOps() {
  static const KernelOps ops = {
      "neon",
      NeonSquaredL2Pair,
      NeonDotPair,
      NeonL2OneToMany,
      NeonL2DotOneToMany,
      NeonRowNorms,
      NeonSsd8OneToMany,
      NeonSsd4OneToMany,
      NeonL2F32OneToMany,
      NeonL2DotF32OneToMany,
      NeonRowNormsF32,
      NeonL2DotF32F64OneToMany,
      NeonL2DotManyToMany,
      NeonL2DotF32ManyToMany,
      NeonL2Gather,
      NeonSsd8ManyToMany,
      NeonSsd4ManyToMany,
  };
  return ops;
}

}  // namespace internal
}  // namespace mocemg

#endif  // __aarch64__
