/// \file kernels_avx512.cc
/// \brief AVX-512 backend (F+BW+VL). Compiled with `-mavx512f
/// -mavx512bw -mavx512vl -ffp-contract=off`; reached only through
/// runtime dispatch on CPUs with all three feature bits.
///
/// Bit-exactness (kernel_dispatch.h): the double kernels still keep ONE
/// 4-wide accumulator — a 512-bit load covers 8 dims per iteration, but
/// its two 4-dim halves are added into the accumulator *sequentially*
/// (low half first), which is exactly the order the scalar reference's
/// lanes see (lane j sums dims i+j then i+4+j). Multiply then add,
/// never FMA. Integer kernels widen |q − c| with pmaddwd into i32 lanes
/// exactly as the AVX2 backend, just 64 bytes per step; all horizontal
/// reductions use vector adds (defined wraparound) so the uint32 result
/// is exact for totals < 2^32 (guaranteed by the d <= 60000 build
/// gate). VNNI's vpdpbusd is unusable (|q − c| exceeds signed-byte
/// range); pmaddwd is the widening-MAC class used instead, so the
/// backend needs no VNNI feature bit and covers more CPUs.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>

#include "util/kernels/kernel_backend.h"

namespace mocemg {
namespace internal {
namespace {

// ---------------------------------------------------------------------
// double kernels: 4-lane contract, 8 dims per 512-bit load.

inline double CombineTail(__m256d acc, const double* x, const double* y,
                          size_t i, size_t d, bool squared) {
  alignas(32) double a[4];
  _mm256_store_pd(a, acc);
  if (squared) {
    if (i < d) {
      const double d0 = x[i] - y[i];
      a[0] += d0 * d0;
    }
    if (i + 1 < d) {
      const double d1 = x[i + 1] - y[i + 1];
      a[1] += d1 * d1;
    }
    if (i + 2 < d) {
      const double d2 = x[i + 2] - y[i + 2];
      a[2] += d2 * d2;
    }
  } else {
    if (i < d) a[0] += x[i] * y[i];
    if (i + 1 < d) a[1] += x[i + 1] * y[i + 1];
    if (i + 2 < d) a[2] += x[i + 2] * y[i + 2];
  }
  return (a[0] + a[1]) + (a[2] + a[3]);
}

double Avx512SquaredL2Pair(const double* x, const double* y, size_t d) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m512d diff =
        _mm512_sub_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i));
    const __m512d sq = _mm512_mul_pd(diff, diff);
    // Low half first, then high: lane j accumulates dim i+j, then dim
    // i+4+j — the scalar reference's exact per-lane order.
    acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(sq));
    acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(sq, 1));
  }
  if (i + 4 <= d) {
    const __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    i += 4;
  }
  return CombineTail(acc, x, y, i, d, /*squared=*/true);
}

double Avx512DotPair(const double* x, const double* y, size_t d) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m512d prod =
        _mm512_mul_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i));
    acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(prod));
    acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(prod, 1));
  }
  if (i + 4 <= d) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    i += 4;
  }
  return CombineTail(acc, x, y, i, d, /*squared=*/false);
}

void Avx512L2OneToMany(const double* query, const double* block,
                       size_t rows, size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = Avx512SquaredL2Pair(query, block + r * d, d);
  }
}

void Avx512L2DotOneToMany(const double* query, double query_sq,
                          const double* block, const double* norms_sq,
                          size_t rows, size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = query_sq + norms_sq[r] -
             2.0 * Avx512DotPair(query, block + r * d, d);
  }
}

void Avx512RowNorms(const double* block, size_t rows, size_t d,
                    double* out) {
  for (size_t r = 0; r < rows; ++r) {
    const double* row = block + r * d;
    out[r] = Avx512DotPair(row, row, d);
  }
}

// ---------------------------------------------------------------------
// float32 mirror kernels: ONE 4-wide xmm accumulator; a 512-bit load
// covers 16 floats whose four 4-dim chunks are added sequentially
// (chunk 0 first) — lane j therefore accumulates dims i+j, i+4+j,
// i+8+j, i+12+j in the scalar reference's exact order. Multiply then
// add, never FMA.

inline float CombineTailF32(__m128 acc, const float* x, const float* y,
                            size_t i, size_t d, bool squared) {
  alignas(16) float a[4];
  _mm_store_ps(a, acc);
  if (squared) {
    if (i < d) {
      const float d0 = x[i] - y[i];
      a[0] += d0 * d0;
    }
    if (i + 1 < d) {
      const float d1 = x[i + 1] - y[i + 1];
      a[1] += d1 * d1;
    }
    if (i + 2 < d) {
      const float d2 = x[i + 2] - y[i + 2];
      a[2] += d2 * d2;
    }
  } else {
    if (i < d) a[0] += x[i] * y[i];
    if (i + 1 < d) a[1] += x[i + 1] * y[i + 1];
    if (i + 2 < d) a[2] += x[i + 2] * y[i + 2];
  }
  return (a[0] + a[1]) + (a[2] + a[3]);
}

inline __m128 AddChunksSequential(__m128 acc, __m512 wide) {
  acc = _mm_add_ps(acc, _mm512_castps512_ps128(wide));
  acc = _mm_add_ps(acc, _mm512_extractf32x4_ps(wide, 1));
  acc = _mm_add_ps(acc, _mm512_extractf32x4_ps(wide, 2));
  acc = _mm_add_ps(acc, _mm512_extractf32x4_ps(wide, 3));
  return acc;
}

inline float Avx512SquaredL2PairF32(const float* x, const float* y,
                                    size_t d) {
  __m128 acc = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    const __m512 diff =
        _mm512_sub_ps(_mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i));
    acc = AddChunksSequential(acc, _mm512_mul_ps(diff, diff));
  }
  for (; i + 4 <= d; i += 4) {
    const __m128 diff =
        _mm_sub_ps(_mm_loadu_ps(x + i), _mm_loadu_ps(y + i));
    acc = _mm_add_ps(acc, _mm_mul_ps(diff, diff));
  }
  return CombineTailF32(acc, x, y, i, d, /*squared=*/true);
}

inline float Avx512DotPairF32(const float* x, const float* y, size_t d) {
  __m128 acc = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    acc = AddChunksSequential(
        acc, _mm512_mul_ps(_mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i)));
  }
  for (; i + 4 <= d; i += 4) {
    acc = _mm_add_ps(acc,
                     _mm_mul_ps(_mm_loadu_ps(x + i), _mm_loadu_ps(y + i)));
  }
  return CombineTailF32(acc, x, y, i, d, /*squared=*/false);
}

// fp64-accumulate over fp32 inputs: widen 8 floats to a 512-bit double
// vector (exact), then the double kernel's sequential-halves order.
inline double Avx512DotPairF32ToF64(const float* x, const float* y,
                                    size_t d) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m512d vx = _mm512_cvtps_pd(_mm256_loadu_ps(x + i));
    const __m512d vy = _mm512_cvtps_pd(_mm256_loadu_ps(y + i));
    const __m512d prod = _mm512_mul_pd(vx, vy);
    acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(prod));
    acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(prod, 1));
  }
  if (i + 4 <= d) {
    const __m256d vx = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    const __m256d vy = _mm256_cvtps_pd(_mm_loadu_ps(y + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(vx, vy));
    i += 4;
  }
  alignas(32) double a[4];
  _mm256_store_pd(a, acc);
  if (i < d) {
    a[0] += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  if (i + 1 < d) {
    a[1] += static_cast<double>(x[i + 1]) * static_cast<double>(y[i + 1]);
  }
  if (i + 2 < d) {
    a[2] += static_cast<double>(x[i + 2]) * static_cast<double>(y[i + 2]);
  }
  return (a[0] + a[1]) + (a[2] + a[3]);
}

void Avx512L2F32OneToMany(const float* query, const float* block,
                          size_t rows, size_t d, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = Avx512SquaredL2PairF32(query, block + r * d, d);
  }
}

void Avx512L2DotF32OneToMany(const float* query, float query_sq,
                             const float* block, const float* norms_sq,
                             size_t rows, size_t d, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = query_sq + norms_sq[r] -
             2.0f * Avx512DotPairF32(query, block + r * d, d);
  }
}

void Avx512RowNormsF32(const float* block, size_t rows, size_t d,
                       float* out) {
  for (size_t r = 0; r < rows; ++r) {
    const float* row = block + r * d;
    out[r] = Avx512DotPairF32(row, row, d);
  }
}

void Avx512L2DotF32F64OneToMany(const float* query, double query_sq,
                                const float* block,
                                const double* norms_sq, size_t rows,
                                size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = query_sq + norms_sq[r] -
             2.0 * Avx512DotPairF32ToF64(query, block + r * d, d);
  }
}

// ---------------------------------------------------------------------
// integer coarse kernels.

inline uint32_t HorizontalSumU32(__m128i v) {
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(v));
}

inline __m128i Reduce512To128(__m512i v) {
  const __m256i half = _mm256_add_epi32(_mm512_castsi512_si256(v),
                                        _mm512_extracti64x4_epi64(v, 1));
  return _mm_add_epi32(_mm256_castsi256_si128(half),
                       _mm256_extracti128_si256(half, 1));
}

// Small-dimension path (d < 64): per-row work is a couple of 128-bit
// blocks, so the 512-bit reduction plus a scalar remainder loop would
// dominate — at d = 16..30 that made the wide kernel ~1.6x slower than
// the auto-vectorized scalar loop. Instead: 128-bit blocks only, the
// d % 16 tail as ONE maskz byte load (BW+VL), and rows in groups of 4
// so 4 independent accumulators reduce with three phaddd instead of a
// shuffle chain per row. Integer sums are exact at any width and
// order, so this is bit-identical to the scalar reference.

inline __m128i Ssd8AccSmall(const uint8_t* q, const uint8_t* c, size_t d,
                            __mmask16 tail) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = zero;
  size_t j = 0;
  for (; j + 16 <= d; j += 16) {
    const __m128i vq =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + j));
    const __m128i vc =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + j));
    const __m128i ad =
        _mm_sub_epi8(_mm_max_epu8(vq, vc), _mm_min_epu8(vq, vc));
    const __m128i lo = _mm_unpacklo_epi8(ad, zero);
    const __m128i hi = _mm_unpackhi_epi8(ad, zero);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(lo, lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(hi, hi));
  }
  if (tail) {
    const __m128i vq = _mm_maskz_loadu_epi8(tail, q + j);
    const __m128i vc = _mm_maskz_loadu_epi8(tail, c + j);
    const __m128i ad =
        _mm_sub_epi8(_mm_max_epu8(vq, vc), _mm_min_epu8(vq, vc));
    const __m128i lo = _mm_unpacklo_epi8(ad, zero);
    const __m128i hi = _mm_unpackhi_epi8(ad, zero);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(lo, lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(hi, hi));
  }
  return acc;
}

inline void Ssd8SmallDim(const uint8_t* qcodes, const uint8_t* codes,
                         size_t rows, size_t d, uint32_t* out) {
  const __mmask16 tail =
      static_cast<__mmask16>((1u << (d % 16)) - 1u);
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const uint8_t* c = codes + r * d;
    const __m128i a0 = Ssd8AccSmall(qcodes, c, d, tail);
    const __m128i a1 = Ssd8AccSmall(qcodes, c + d, d, tail);
    const __m128i a2 = Ssd8AccSmall(qcodes, c + 2 * d, d, tail);
    const __m128i a3 = Ssd8AccSmall(qcodes, c + 3 * d, d, tail);
    const __m128i sums = _mm_hadd_epi32(_mm_hadd_epi32(a0, a1),
                                        _mm_hadd_epi32(a2, a3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + r), sums);
  }
  for (; r < rows; ++r) {
    out[r] = HorizontalSumU32(Ssd8AccSmall(qcodes, codes + r * d, d, tail));
  }
}

inline uint32_t Ssd8Row(const uint8_t* q, const uint8_t* c, size_t d) {
  const __m512i zero512 = _mm512_setzero_si512();
  __m512i acc512 = zero512;
  size_t j = 0;
  for (; j + 64 <= d; j += 64) {
    const __m512i vq =
        _mm512_loadu_si512(reinterpret_cast<const void*>(q + j));
    const __m512i vc =
        _mm512_loadu_si512(reinterpret_cast<const void*>(c + j));
    const __m512i ad =
        _mm512_sub_epi8(_mm512_max_epu8(vq, vc), _mm512_min_epu8(vq, vc));
    const __m512i lo = _mm512_unpacklo_epi8(ad, zero512);
    const __m512i hi = _mm512_unpackhi_epi8(ad, zero512);
    acc512 = _mm512_add_epi32(acc512, _mm512_madd_epi16(lo, lo));
    acc512 = _mm512_add_epi32(acc512, _mm512_madd_epi16(hi, hi));
  }
  __m128i acc = Reduce512To128(acc512);
  if (j + 32 <= d) {
    const __m256i zero = _mm256_setzero_si256();
    const __m256i vq =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + j));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + j));
    const __m256i ad =
        _mm256_sub_epi8(_mm256_max_epu8(vq, vc), _mm256_min_epu8(vq, vc));
    const __m256i lo = _mm256_unpacklo_epi8(ad, zero);
    const __m256i hi = _mm256_unpackhi_epi8(ad, zero);
    const __m256i part = _mm256_add_epi32(_mm256_madd_epi16(lo, lo),
                                          _mm256_madd_epi16(hi, hi));
    acc = _mm_add_epi32(acc, _mm_add_epi32(_mm256_castsi256_si128(part),
                                           _mm256_extracti128_si256(part, 1)));
    j += 32;
  }
  if (j + 16 <= d) {
    const __m128i zero = _mm_setzero_si128();
    const __m128i vq =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + j));
    const __m128i vc =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + j));
    const __m128i ad =
        _mm_sub_epi8(_mm_max_epu8(vq, vc), _mm_min_epu8(vq, vc));
    const __m128i lo = _mm_unpacklo_epi8(ad, zero);
    const __m128i hi = _mm_unpackhi_epi8(ad, zero);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(lo, lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(hi, hi));
    j += 16;
  }
  if (j < d) {
    const __mmask16 tail =
        static_cast<__mmask16>((1u << (d - j)) - 1u);
    const __m128i zero = _mm_setzero_si128();
    const __m128i vq = _mm_maskz_loadu_epi8(tail, q + j);
    const __m128i vc = _mm_maskz_loadu_epi8(tail, c + j);
    const __m128i ad =
        _mm_sub_epi8(_mm_max_epu8(vq, vc), _mm_min_epu8(vq, vc));
    const __m128i lo = _mm_unpacklo_epi8(ad, zero);
    const __m128i hi = _mm_unpackhi_epi8(ad, zero);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(lo, lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(hi, hi));
  }
  return HorizontalSumU32(acc);
}

void Avx512Ssd8OneToMany(const uint8_t* qcodes, const uint8_t* codes,
                         size_t rows, size_t d, uint32_t* out) {
  if (d < 64) {
    Ssd8SmallDim(qcodes, codes, rows, d, out);
    return;
  }
  for (size_t r = 0; r < rows; ++r) {
    out[r] = Ssd8Row(qcodes, codes + r * d, d);
  }
}

// Same small-input treatment for the nibble kernel: below 32 packed
// bytes (d < 63) the 256/512-bit blocks never run, so use 128-bit
// blocks with a maskz tail and 4-row phaddd reduction. Masked-off
// bytes read as 0 on both sides, so their nibble diffs contribute 0.

inline __m128i Ssd4AccSmall(const uint8_t* q, const uint8_t* c, size_t bytes,
                            __mmask16 tail) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  const __m128i ones = _mm_set1_epi16(1);
  __m128i acc = _mm_setzero_si128();
  size_t b = 0;
  for (; b + 16 <= bytes; b += 16) {
    const __m128i vq =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + b));
    const __m128i vc =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + b));
    const __m128i qlo = _mm_and_si128(vq, mask);
    const __m128i clo = _mm_and_si128(vc, mask);
    const __m128i qhi = _mm_and_si128(_mm_srli_epi16(vq, 4), mask);
    const __m128i chi = _mm_and_si128(_mm_srli_epi16(vc, 4), mask);
    const __m128i adlo =
        _mm_sub_epi8(_mm_max_epu8(qlo, clo), _mm_min_epu8(qlo, clo));
    const __m128i adhi =
        _mm_sub_epi8(_mm_max_epu8(qhi, chi), _mm_min_epu8(qhi, chi));
    const __m128i p = _mm_add_epi16(_mm_maddubs_epi16(adlo, adlo),
                                    _mm_maddubs_epi16(adhi, adhi));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(p, ones));
  }
  if (tail) {
    const __m128i vq = _mm_maskz_loadu_epi8(tail, q + b);
    const __m128i vc = _mm_maskz_loadu_epi8(tail, c + b);
    const __m128i qlo = _mm_and_si128(vq, mask);
    const __m128i clo = _mm_and_si128(vc, mask);
    const __m128i qhi = _mm_and_si128(_mm_srli_epi16(vq, 4), mask);
    const __m128i chi = _mm_and_si128(_mm_srli_epi16(vc, 4), mask);
    const __m128i adlo =
        _mm_sub_epi8(_mm_max_epu8(qlo, clo), _mm_min_epu8(qlo, clo));
    const __m128i adhi =
        _mm_sub_epi8(_mm_max_epu8(qhi, chi), _mm_min_epu8(qhi, chi));
    const __m128i p = _mm_add_epi16(_mm_maddubs_epi16(adlo, adlo),
                                    _mm_maddubs_epi16(adhi, adhi));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(p, ones));
  }
  return acc;
}

inline void Ssd4SmallDim(const uint8_t* qpacked, const uint8_t* packed,
                         size_t rows, size_t bytes, uint32_t* out) {
  const __mmask16 tail =
      static_cast<__mmask16>((1u << (bytes % 16)) - 1u);
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const uint8_t* c = packed + r * bytes;
    const __m128i a0 = Ssd4AccSmall(qpacked, c, bytes, tail);
    const __m128i a1 = Ssd4AccSmall(qpacked, c + bytes, bytes, tail);
    const __m128i a2 = Ssd4AccSmall(qpacked, c + 2 * bytes, bytes, tail);
    const __m128i a3 = Ssd4AccSmall(qpacked, c + 3 * bytes, bytes, tail);
    const __m128i sums = _mm_hadd_epi32(_mm_hadd_epi32(a0, a1),
                                        _mm_hadd_epi32(a2, a3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + r), sums);
  }
  for (; r < rows; ++r) {
    out[r] =
        HorizontalSumU32(Ssd4AccSmall(qpacked, packed + r * bytes, bytes, tail));
  }
}

inline uint32_t Ssd4Row(const uint8_t* q, const uint8_t* c, size_t bytes) {
  const __m512i mask512 = _mm512_set1_epi8(0x0F);
  const __m512i ones512 = _mm512_set1_epi16(1);
  __m512i acc512 = _mm512_setzero_si512();
  size_t b = 0;
  for (; b + 64 <= bytes; b += 64) {
    const __m512i vq =
        _mm512_loadu_si512(reinterpret_cast<const void*>(q + b));
    const __m512i vc =
        _mm512_loadu_si512(reinterpret_cast<const void*>(c + b));
    const __m512i qlo = _mm512_and_si512(vq, mask512);
    const __m512i clo = _mm512_and_si512(vc, mask512);
    const __m512i qhi = _mm512_and_si512(_mm512_srli_epi16(vq, 4), mask512);
    const __m512i chi = _mm512_and_si512(_mm512_srli_epi16(vc, 4), mask512);
    const __m512i adlo =
        _mm512_sub_epi8(_mm512_max_epu8(qlo, clo), _mm512_min_epu8(qlo, clo));
    const __m512i adhi =
        _mm512_sub_epi8(_mm512_max_epu8(qhi, chi), _mm512_min_epu8(qhi, chi));
    const __m512i p = _mm512_add_epi16(_mm512_maddubs_epi16(adlo, adlo),
                                       _mm512_maddubs_epi16(adhi, adhi));
    acc512 = _mm512_add_epi32(acc512, _mm512_madd_epi16(p, ones512));
  }
  __m128i acc = Reduce512To128(acc512);
  if (b + 32 <= bytes) {
    const __m256i mask = _mm256_set1_epi8(0x0F);
    const __m256i ones = _mm256_set1_epi16(1);
    const __m256i vq =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + b));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + b));
    const __m256i qlo = _mm256_and_si256(vq, mask);
    const __m256i clo = _mm256_and_si256(vc, mask);
    const __m256i qhi = _mm256_and_si256(_mm256_srli_epi16(vq, 4), mask);
    const __m256i chi = _mm256_and_si256(_mm256_srli_epi16(vc, 4), mask);
    const __m256i adlo =
        _mm256_sub_epi8(_mm256_max_epu8(qlo, clo), _mm256_min_epu8(qlo, clo));
    const __m256i adhi =
        _mm256_sub_epi8(_mm256_max_epu8(qhi, chi), _mm256_min_epu8(qhi, chi));
    const __m256i p = _mm256_add_epi16(_mm256_maddubs_epi16(adlo, adlo),
                                       _mm256_maddubs_epi16(adhi, adhi));
    const __m256i part = _mm256_madd_epi16(p, ones);
    acc = _mm_add_epi32(acc, _mm_add_epi32(_mm256_castsi256_si128(part),
                                           _mm256_extracti128_si256(part, 1)));
    b += 32;
  }
  if (b + 16 <= bytes) {
    const __m128i mask = _mm_set1_epi8(0x0F);
    const __m128i ones = _mm_set1_epi16(1);
    const __m128i vq =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + b));
    const __m128i vc =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + b));
    const __m128i qlo = _mm_and_si128(vq, mask);
    const __m128i clo = _mm_and_si128(vc, mask);
    const __m128i qhi = _mm_and_si128(_mm_srli_epi16(vq, 4), mask);
    const __m128i chi = _mm_and_si128(_mm_srli_epi16(vc, 4), mask);
    const __m128i adlo =
        _mm_sub_epi8(_mm_max_epu8(qlo, clo), _mm_min_epu8(qlo, clo));
    const __m128i adhi =
        _mm_sub_epi8(_mm_max_epu8(qhi, chi), _mm_min_epu8(qhi, chi));
    const __m128i p = _mm_add_epi16(_mm_maddubs_epi16(adlo, adlo),
                                    _mm_maddubs_epi16(adhi, adhi));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(p, ones));
    b += 16;
  }
  if (b < bytes) {
    const __mmask16 tail =
        static_cast<__mmask16>((1u << (bytes - b)) - 1u);
    const __m128i mask = _mm_set1_epi8(0x0F);
    const __m128i ones = _mm_set1_epi16(1);
    const __m128i vq = _mm_maskz_loadu_epi8(tail, q + b);
    const __m128i vc = _mm_maskz_loadu_epi8(tail, c + b);
    const __m128i qlo = _mm_and_si128(vq, mask);
    const __m128i clo = _mm_and_si128(vc, mask);
    const __m128i qhi = _mm_and_si128(_mm_srli_epi16(vq, 4), mask);
    const __m128i chi = _mm_and_si128(_mm_srli_epi16(vc, 4), mask);
    const __m128i adlo =
        _mm_sub_epi8(_mm_max_epu8(qlo, clo), _mm_min_epu8(qlo, clo));
    const __m128i adhi =
        _mm_sub_epi8(_mm_max_epu8(qhi, chi), _mm_min_epu8(qhi, chi));
    const __m128i p = _mm_add_epi16(_mm_maddubs_epi16(adlo, adlo),
                                    _mm_maddubs_epi16(adhi, adhi));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(p, ones));
  }
  return HorizontalSumU32(acc);
}

void Avx512Ssd4OneToMany(const uint8_t* qpacked, const uint8_t* packed,
                         size_t rows, size_t d, uint32_t* out) {
  const size_t bytes = (d + 1) / 2;
  if (bytes < 32) {
    Ssd4SmallDim(qpacked, packed, rows, bytes, out);
    return;
  }
  for (size_t r = 0; r < rows; ++r) {
    out[r] = Ssd4Row(qpacked, packed + r * bytes, bytes);
  }
}

// ---------------------------------------------------------------------
// block (many-to-many) family: 4 independent (query, row) accumulator
// chains in flight per step, sharing one query load, to hide the
// vector-add latency the one-to-many kernels serialize on. Each chain
// is the pair kernel's exact op sequence (sequential 4-dim halves of
// each 512-bit product, multiply then add, same tails), so every pair
// stays bit-identical to the one-to-many path; rows are tiled so one
// streamed tile serves the whole query block.

inline void Avx512Dot4Rows(const double* x, const double* y0,
                           const double* y1, const double* y2,
                           const double* y3, size_t d, double* out) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m512d vx = _mm512_loadu_pd(x + i);
    const __m512d p0 = _mm512_mul_pd(vx, _mm512_loadu_pd(y0 + i));
    const __m512d p1 = _mm512_mul_pd(vx, _mm512_loadu_pd(y1 + i));
    const __m512d p2 = _mm512_mul_pd(vx, _mm512_loadu_pd(y2 + i));
    const __m512d p3 = _mm512_mul_pd(vx, _mm512_loadu_pd(y3 + i));
    a0 = _mm256_add_pd(a0, _mm512_castpd512_pd256(p0));
    a0 = _mm256_add_pd(a0, _mm512_extractf64x4_pd(p0, 1));
    a1 = _mm256_add_pd(a1, _mm512_castpd512_pd256(p1));
    a1 = _mm256_add_pd(a1, _mm512_extractf64x4_pd(p1, 1));
    a2 = _mm256_add_pd(a2, _mm512_castpd512_pd256(p2));
    a2 = _mm256_add_pd(a2, _mm512_extractf64x4_pd(p2, 1));
    a3 = _mm256_add_pd(a3, _mm512_castpd512_pd256(p3));
    a3 = _mm256_add_pd(a3, _mm512_extractf64x4_pd(p3, 1));
  }
  if (i + 4 <= d) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(vx, _mm256_loadu_pd(y0 + i)));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(vx, _mm256_loadu_pd(y1 + i)));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(vx, _mm256_loadu_pd(y2 + i)));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(vx, _mm256_loadu_pd(y3 + i)));
    i += 4;
  }
  out[0] = CombineTail(a0, x, y0, i, d, /*squared=*/false);
  out[1] = CombineTail(a1, x, y1, i, d, /*squared=*/false);
  out[2] = CombineTail(a2, x, y2, i, d, /*squared=*/false);
  out[3] = CombineTail(a3, x, y3, i, d, /*squared=*/false);
}

inline void Avx512SquaredL24Rows(const double* x, const double* y0,
                                 const double* y1, const double* y2,
                                 const double* y3, size_t d, double* out) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m512d vx = _mm512_loadu_pd(x + i);
    const __m512d d0 = _mm512_sub_pd(vx, _mm512_loadu_pd(y0 + i));
    const __m512d d1 = _mm512_sub_pd(vx, _mm512_loadu_pd(y1 + i));
    const __m512d d2 = _mm512_sub_pd(vx, _mm512_loadu_pd(y2 + i));
    const __m512d d3 = _mm512_sub_pd(vx, _mm512_loadu_pd(y3 + i));
    const __m512d p0 = _mm512_mul_pd(d0, d0);
    const __m512d p1 = _mm512_mul_pd(d1, d1);
    const __m512d p2 = _mm512_mul_pd(d2, d2);
    const __m512d p3 = _mm512_mul_pd(d3, d3);
    a0 = _mm256_add_pd(a0, _mm512_castpd512_pd256(p0));
    a0 = _mm256_add_pd(a0, _mm512_extractf64x4_pd(p0, 1));
    a1 = _mm256_add_pd(a1, _mm512_castpd512_pd256(p1));
    a1 = _mm256_add_pd(a1, _mm512_extractf64x4_pd(p1, 1));
    a2 = _mm256_add_pd(a2, _mm512_castpd512_pd256(p2));
    a2 = _mm256_add_pd(a2, _mm512_extractf64x4_pd(p2, 1));
    a3 = _mm256_add_pd(a3, _mm512_castpd512_pd256(p3));
    a3 = _mm256_add_pd(a3, _mm512_extractf64x4_pd(p3, 1));
  }
  if (i + 4 <= d) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d d0 = _mm256_sub_pd(vx, _mm256_loadu_pd(y0 + i));
    const __m256d d1 = _mm256_sub_pd(vx, _mm256_loadu_pd(y1 + i));
    const __m256d d2 = _mm256_sub_pd(vx, _mm256_loadu_pd(y2 + i));
    const __m256d d3 = _mm256_sub_pd(vx, _mm256_loadu_pd(y3 + i));
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(d0, d0));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(d1, d1));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(d2, d2));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(d3, d3));
    i += 4;
  }
  out[0] = CombineTail(a0, x, y0, i, d, /*squared=*/true);
  out[1] = CombineTail(a1, x, y1, i, d, /*squared=*/true);
  out[2] = CombineTail(a2, x, y2, i, d, /*squared=*/true);
  out[3] = CombineTail(a3, x, y3, i, d, /*squared=*/true);
}

inline void Avx512DotF324Rows(const float* x, const float* y0,
                              const float* y1, const float* y2,
                              const float* y3, size_t d, float* out) {
  __m128 a0 = _mm_setzero_ps();
  __m128 a1 = _mm_setzero_ps();
  __m128 a2 = _mm_setzero_ps();
  __m128 a3 = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    const __m512 vx = _mm512_loadu_ps(x + i);
    a0 = AddChunksSequential(a0,
                             _mm512_mul_ps(vx, _mm512_loadu_ps(y0 + i)));
    a1 = AddChunksSequential(a1,
                             _mm512_mul_ps(vx, _mm512_loadu_ps(y1 + i)));
    a2 = AddChunksSequential(a2,
                             _mm512_mul_ps(vx, _mm512_loadu_ps(y2 + i)));
    a3 = AddChunksSequential(a3,
                             _mm512_mul_ps(vx, _mm512_loadu_ps(y3 + i)));
  }
  for (; i + 4 <= d; i += 4) {
    const __m128 vx = _mm_loadu_ps(x + i);
    a0 = _mm_add_ps(a0, _mm_mul_ps(vx, _mm_loadu_ps(y0 + i)));
    a1 = _mm_add_ps(a1, _mm_mul_ps(vx, _mm_loadu_ps(y1 + i)));
    a2 = _mm_add_ps(a2, _mm_mul_ps(vx, _mm_loadu_ps(y2 + i)));
    a3 = _mm_add_ps(a3, _mm_mul_ps(vx, _mm_loadu_ps(y3 + i)));
  }
  out[0] = CombineTailF32(a0, x, y0, i, d, /*squared=*/false);
  out[1] = CombineTailF32(a1, x, y1, i, d, /*squared=*/false);
  out[2] = CombineTailF32(a2, x, y2, i, d, /*squared=*/false);
  out[3] = CombineTailF32(a3, x, y3, i, d, /*squared=*/false);
}

constexpr size_t kMtmRowTile = 64;

void Avx512L2DotManyToMany(const double* queries, const double* query_sqs,
                           size_t num_queries, const double* block,
                           const double* norms_sq, size_t rows, size_t d,
                           double* out, size_t out_stride) {
  for (size_t r0 = 0; r0 < rows; r0 += kMtmRowTile) {
    const size_t rend = r0 + std::min(rows - r0, kMtmRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      const double* query = queries + q * d;
      const double query_sq = query_sqs[q];
      double* orow = out + q * out_stride;
      size_t r = r0;
      for (; r + 4 <= rend; r += 4) {
        double dots[4];
        Avx512Dot4Rows(query, block + r * d, block + (r + 1) * d,
                       block + (r + 2) * d, block + (r + 3) * d, d, dots);
        orow[r] = query_sq + norms_sq[r] - 2.0 * dots[0];
        orow[r + 1] = query_sq + norms_sq[r + 1] - 2.0 * dots[1];
        orow[r + 2] = query_sq + norms_sq[r + 2] - 2.0 * dots[2];
        orow[r + 3] = query_sq + norms_sq[r + 3] - 2.0 * dots[3];
      }
      for (; r < rend; ++r) {
        orow[r] = query_sq + norms_sq[r] -
                  2.0 * Avx512DotPair(query, block + r * d, d);
      }
    }
  }
}

void Avx512L2DotF32ManyToMany(const float* queries, const float* query_sqs,
                              size_t num_queries, const float* block,
                              const float* norms_sq, size_t rows, size_t d,
                              float* out, size_t out_stride) {
  for (size_t r0 = 0; r0 < rows; r0 += kMtmRowTile) {
    const size_t rend = r0 + std::min(rows - r0, kMtmRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      const float* query = queries + q * d;
      const float query_sq = query_sqs[q];
      float* orow = out + q * out_stride;
      size_t r = r0;
      for (; r + 4 <= rend; r += 4) {
        float dots[4];
        Avx512DotF324Rows(query, block + r * d, block + (r + 1) * d,
                          block + (r + 2) * d, block + (r + 3) * d, d,
                          dots);
        orow[r] = query_sq + norms_sq[r] - 2.0f * dots[0];
        orow[r + 1] = query_sq + norms_sq[r + 1] - 2.0f * dots[1];
        orow[r + 2] = query_sq + norms_sq[r + 2] - 2.0f * dots[2];
        orow[r + 3] = query_sq + norms_sq[r + 3] - 2.0f * dots[3];
      }
      for (; r < rend; ++r) {
        orow[r] = query_sq + norms_sq[r] -
                  2.0f * Avx512DotPairF32(query, block + r * d, d);
      }
    }
  }
}

void Avx512L2Gather(const double* query, const double* block,
                    const uint32_t* row_indices, size_t n, size_t d,
                    double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    Avx512SquaredL24Rows(
        query, block + static_cast<size_t>(row_indices[i]) * d,
        block + static_cast<size_t>(row_indices[i + 1]) * d,
        block + static_cast<size_t>(row_indices[i + 2]) * d,
        block + static_cast<size_t>(row_indices[i + 3]) * d, d, out + i);
  }
  for (; i < n; ++i) {
    out[i] = Avx512SquaredL2Pair(
        query, block + static_cast<size_t>(row_indices[i]) * d, d);
  }
}

// Integer sums are exact at any order; tile the one-to-many kernels so
// a code tile streamed once serves every query in the block.
void Avx512Ssd8ManyToMany(const uint8_t* qcodes, size_t num_queries,
                          const uint8_t* codes, size_t rows, size_t d,
                          uint32_t* out, size_t out_stride) {
  constexpr size_t kCodeRowTile = 1024;
  for (size_t r0 = 0; r0 < rows; r0 += kCodeRowTile) {
    const size_t tile = std::min(rows - r0, kCodeRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      Avx512Ssd8OneToMany(qcodes + q * d, codes + r0 * d, tile, d,
                          out + q * out_stride + r0);
    }
  }
}

void Avx512Ssd4ManyToMany(const uint8_t* qpacked, size_t num_queries,
                          const uint8_t* packed, size_t rows, size_t d,
                          uint32_t* out, size_t out_stride) {
  const size_t bytes = (d + 1) / 2;
  constexpr size_t kCodeRowTile = 1024;
  for (size_t r0 = 0; r0 < rows; r0 += kCodeRowTile) {
    const size_t tile = std::min(rows - r0, kCodeRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      Avx512Ssd4OneToMany(qpacked + q * bytes, packed + r0 * bytes, tile, d,
                          out + q * out_stride + r0);
    }
  }
}

}  // namespace

const KernelOps& Avx512KernelOps() {
  static const KernelOps ops = {
      "avx512",
      Avx512SquaredL2Pair,
      Avx512DotPair,
      Avx512L2OneToMany,
      Avx512L2DotOneToMany,
      Avx512RowNorms,
      Avx512Ssd8OneToMany,
      Avx512Ssd4OneToMany,
      Avx512L2F32OneToMany,
      Avx512L2DotF32OneToMany,
      Avx512RowNormsF32,
      Avx512L2DotF32F64OneToMany,
      Avx512L2DotManyToMany,
      Avx512L2DotF32ManyToMany,
      Avx512L2Gather,
      Avx512Ssd8ManyToMany,
      Avx512Ssd4ManyToMany,
  };
  return ops;
}

}  // namespace internal
}  // namespace mocemg

#endif  // x86
