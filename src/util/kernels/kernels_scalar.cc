/// \file kernels_scalar.cc
/// \brief Portable reference backend. Compiled with the project's
/// default flags only (no target-specific options), so this TU *is*
/// the "current auto-vectorized build" that the SIMD backends are
/// benchmarked against and bit-compared to.

#include <algorithm>

#include "util/distance_kernels.h"
#include "util/kernels/kernel_backend.h"

namespace mocemg {
namespace internal {
namespace {

double ScalarSquaredL2Pair(const double* x, const double* y, size_t d) {
  return SquaredL2(x, y, d);
}

double ScalarDotPair(const double* x, const double* y, size_t d) {
  return DotProduct(x, y, d);
}

void ScalarL2OneToMany(const double* query, const double* block,
                       size_t rows, size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = SquaredL2(query, block + r * d, d);
  }
}

void ScalarL2DotOneToMany(const double* query, double query_sq,
                          const double* block, const double* norms_sq,
                          size_t rows, size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] =
        query_sq + norms_sq[r] - 2.0 * DotProduct(query, block + r * d, d);
  }
}

void ScalarRowNorms(const double* block, size_t rows, size_t d,
                    double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = SquaredNorm(block + r * d, d);
  }
}

// float32 mirror family: the inline fp32 reference kernels applied per
// row. The dot-form combine is written once here — (query_sq +
// norms_sq[r]) − 2·dot, left to right — and every SIMD backend
// reproduces it literally.

void ScalarL2F32OneToMany(const float* query, const float* block,
                          size_t rows, size_t d, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = SquaredL2F32(query, block + r * d, d);
  }
}

void ScalarL2DotF32OneToMany(const float* query, float query_sq,
                             const float* block, const float* norms_sq,
                             size_t rows, size_t d, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = query_sq + norms_sq[r] -
             2.0f * DotProductF32(query, block + r * d, d);
  }
}

void ScalarRowNormsF32(const float* block, size_t rows, size_t d,
                       float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = SquaredNormF32(block + r * d, d);
  }
}

void ScalarL2DotF32F64OneToMany(const float* query, double query_sq,
                                const float* block,
                                const double* norms_sq, size_t rows,
                                size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = query_sq + norms_sq[r] -
             2.0 * DotProductF32ToF64(query, block + r * d, d);
  }
}

void ScalarSsd8OneToMany(const uint8_t* qcodes, const uint8_t* codes,
                         size_t rows, size_t d, uint32_t* out) {
  // Exact int32 accumulation; the shape (byte loads widened to i16,
  // multiply-accumulated to i32) is what the vectorizer turns into
  // pmaddwd-class code even in this portable TU.
  for (size_t r = 0; r < rows; ++r) {
    const uint8_t* c = codes + r * d;
    uint32_t acc = 0;
    for (size_t j = 0; j < d; ++j) {
      const int32_t diff =
          static_cast<int32_t>(qcodes[j]) - static_cast<int32_t>(c[j]);
      acc += static_cast<uint32_t>(diff * diff);
    }
    out[r] = acc;
  }
}

void ScalarSsd4OneToMany(const uint8_t* qpacked, const uint8_t* packed,
                         size_t rows, size_t d, uint32_t* out) {
  // Nibble-packed codes: dim 2b in the low nibble of byte b, dim 2b+1
  // in the high nibble; when d is odd the final high nibble is 0 in
  // both the query and every row (quant_kernels.h PackNibbleRows), so
  // the uniform per-byte loop contributes 0 for the pad and the sum is
  // exact over the real dims.
  const size_t bytes = (d + 1) / 2;
  for (size_t r = 0; r < rows; ++r) {
    const uint8_t* c = packed + r * bytes;
    uint32_t acc = 0;
    for (size_t b = 0; b < bytes; ++b) {
      const int32_t dlo = static_cast<int32_t>(qpacked[b] & 0x0F) -
                          static_cast<int32_t>(c[b] & 0x0F);
      const int32_t dhi = static_cast<int32_t>(qpacked[b] >> 4) -
                          static_cast<int32_t>(c[b] >> 4);
      acc += static_cast<uint32_t>(dlo * dlo + dhi * dhi);
    }
    out[r] = acc;
  }
}

// Block (many-to-many) family: per pair these are exactly the
// one-to-many entries above, tiled over rows so a row tile streamed
// from memory is reused by every query while L2-resident. Tiling and
// loop order cannot change bits — each pair's accumulation is
// self-contained.

constexpr size_t kScalarRowTile = 64;

void ScalarL2DotManyToMany(const double* queries, const double* query_sqs,
                           size_t num_queries, const double* block,
                           const double* norms_sq, size_t rows, size_t d,
                           double* out, size_t out_stride) {
  for (size_t r0 = 0; r0 < rows; r0 += kScalarRowTile) {
    const size_t rend = r0 + std::min(rows - r0, kScalarRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      const double* query = queries + q * d;
      const double query_sq = query_sqs[q];
      double* orow = out + q * out_stride;
      for (size_t r = r0; r < rend; ++r) {
        orow[r] =
            query_sq + norms_sq[r] - 2.0 * DotProduct(query, block + r * d, d);
      }
    }
  }
}

void ScalarL2DotF32ManyToMany(const float* queries, const float* query_sqs,
                              size_t num_queries, const float* block,
                              const float* norms_sq, size_t rows, size_t d,
                              float* out, size_t out_stride) {
  for (size_t r0 = 0; r0 < rows; r0 += kScalarRowTile) {
    const size_t rend = r0 + std::min(rows - r0, kScalarRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      const float* query = queries + q * d;
      const float query_sq = query_sqs[q];
      float* orow = out + q * out_stride;
      for (size_t r = r0; r < rend; ++r) {
        orow[r] = query_sq + norms_sq[r] -
                  2.0f * DotProductF32(query, block + r * d, d);
      }
    }
  }
}

void ScalarL2Gather(const double* query, const double* block,
                    const uint32_t* row_indices, size_t n, size_t d,
                    double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = SquaredL2(query, block + static_cast<size_t>(row_indices[i]) * d,
                       d);
  }
}

void ScalarSsd8ManyToMany(const uint8_t* qcodes, size_t num_queries,
                          const uint8_t* codes, size_t rows, size_t d,
                          uint32_t* out, size_t out_stride) {
  constexpr size_t kCodeRowTile = 1024;
  for (size_t r0 = 0; r0 < rows; r0 += kCodeRowTile) {
    const size_t tile = std::min(rows - r0, kCodeRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      ScalarSsd8OneToMany(qcodes + q * d, codes + r0 * d, tile, d,
                          out + q * out_stride + r0);
    }
  }
}

void ScalarSsd4ManyToMany(const uint8_t* qpacked, size_t num_queries,
                          const uint8_t* packed, size_t rows, size_t d,
                          uint32_t* out, size_t out_stride) {
  const size_t bytes = (d + 1) / 2;
  constexpr size_t kCodeRowTile = 1024;
  for (size_t r0 = 0; r0 < rows; r0 += kCodeRowTile) {
    const size_t tile = std::min(rows - r0, kCodeRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      ScalarSsd4OneToMany(qpacked + q * bytes, packed + r0 * bytes, tile, d,
                          out + q * out_stride + r0);
    }
  }
}

}  // namespace

const KernelOps& ScalarKernelOps() {
  static const KernelOps ops = {
      "scalar",
      ScalarSquaredL2Pair,
      ScalarDotPair,
      ScalarL2OneToMany,
      ScalarL2DotOneToMany,
      ScalarRowNorms,
      ScalarSsd8OneToMany,
      ScalarSsd4OneToMany,
      ScalarL2F32OneToMany,
      ScalarL2DotF32OneToMany,
      ScalarRowNormsF32,
      ScalarL2DotF32F64OneToMany,
      ScalarL2DotManyToMany,
      ScalarL2DotF32ManyToMany,
      ScalarL2Gather,
      ScalarSsd8ManyToMany,
      ScalarSsd4ManyToMany,
  };
  return ops;
}

}  // namespace internal
}  // namespace mocemg
