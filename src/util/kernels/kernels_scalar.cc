/// \file kernels_scalar.cc
/// \brief Portable reference backend. Compiled with the project's
/// default flags only (no target-specific options), so this TU *is*
/// the "current auto-vectorized build" that the SIMD backends are
/// benchmarked against and bit-compared to.

#include "util/distance_kernels.h"
#include "util/kernels/kernel_backend.h"

namespace mocemg {
namespace internal {
namespace {

double ScalarSquaredL2Pair(const double* x, const double* y, size_t d) {
  return SquaredL2(x, y, d);
}

double ScalarDotPair(const double* x, const double* y, size_t d) {
  return DotProduct(x, y, d);
}

void ScalarL2OneToMany(const double* query, const double* block,
                       size_t rows, size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = SquaredL2(query, block + r * d, d);
  }
}

void ScalarL2DotOneToMany(const double* query, double query_sq,
                          const double* block, const double* norms_sq,
                          size_t rows, size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] =
        query_sq + norms_sq[r] - 2.0 * DotProduct(query, block + r * d, d);
  }
}

void ScalarRowNorms(const double* block, size_t rows, size_t d,
                    double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = SquaredNorm(block + r * d, d);
  }
}

// float32 mirror family: the inline fp32 reference kernels applied per
// row. The dot-form combine is written once here — (query_sq +
// norms_sq[r]) − 2·dot, left to right — and every SIMD backend
// reproduces it literally.

void ScalarL2F32OneToMany(const float* query, const float* block,
                          size_t rows, size_t d, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = SquaredL2F32(query, block + r * d, d);
  }
}

void ScalarL2DotF32OneToMany(const float* query, float query_sq,
                             const float* block, const float* norms_sq,
                             size_t rows, size_t d, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = query_sq + norms_sq[r] -
             2.0f * DotProductF32(query, block + r * d, d);
  }
}

void ScalarRowNormsF32(const float* block, size_t rows, size_t d,
                       float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = SquaredNormF32(block + r * d, d);
  }
}

void ScalarL2DotF32F64OneToMany(const float* query, double query_sq,
                                const float* block,
                                const double* norms_sq, size_t rows,
                                size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = query_sq + norms_sq[r] -
             2.0 * DotProductF32ToF64(query, block + r * d, d);
  }
}

void ScalarSsd8OneToMany(const uint8_t* qcodes, const uint8_t* codes,
                         size_t rows, size_t d, uint32_t* out) {
  // Exact int32 accumulation; the shape (byte loads widened to i16,
  // multiply-accumulated to i32) is what the vectorizer turns into
  // pmaddwd-class code even in this portable TU.
  for (size_t r = 0; r < rows; ++r) {
    const uint8_t* c = codes + r * d;
    uint32_t acc = 0;
    for (size_t j = 0; j < d; ++j) {
      const int32_t diff =
          static_cast<int32_t>(qcodes[j]) - static_cast<int32_t>(c[j]);
      acc += static_cast<uint32_t>(diff * diff);
    }
    out[r] = acc;
  }
}

void ScalarSsd4OneToMany(const uint8_t* qpacked, const uint8_t* packed,
                         size_t rows, size_t d, uint32_t* out) {
  // Nibble-packed codes: dim 2b in the low nibble of byte b, dim 2b+1
  // in the high nibble; when d is odd the final high nibble is 0 in
  // both the query and every row (quant_kernels.h PackNibbleRows), so
  // the uniform per-byte loop contributes 0 for the pad and the sum is
  // exact over the real dims.
  const size_t bytes = (d + 1) / 2;
  for (size_t r = 0; r < rows; ++r) {
    const uint8_t* c = packed + r * bytes;
    uint32_t acc = 0;
    for (size_t b = 0; b < bytes; ++b) {
      const int32_t dlo = static_cast<int32_t>(qpacked[b] & 0x0F) -
                          static_cast<int32_t>(c[b] & 0x0F);
      const int32_t dhi = static_cast<int32_t>(qpacked[b] >> 4) -
                          static_cast<int32_t>(c[b] >> 4);
      acc += static_cast<uint32_t>(dlo * dlo + dhi * dhi);
    }
    out[r] = acc;
  }
}

}  // namespace

const KernelOps& ScalarKernelOps() {
  static const KernelOps ops = {
      "scalar",
      ScalarSquaredL2Pair,
      ScalarDotPair,
      ScalarL2OneToMany,
      ScalarL2DotOneToMany,
      ScalarRowNorms,
      ScalarSsd8OneToMany,
      ScalarSsd4OneToMany,
      ScalarL2F32OneToMany,
      ScalarL2DotF32OneToMany,
      ScalarRowNormsF32,
      ScalarL2DotF32F64OneToMany,
  };
  return ops;
}

}  // namespace internal
}  // namespace mocemg
