/// \file kernels_avx2.cc
/// \brief AVX2 backend. This TU is compiled with `-mavx2
/// -ffp-contract=off` (see src/util/CMakeLists.txt) and must only be
/// reached through runtime dispatch on CPUs with AVX2.
///
/// Bit-exactness strategy (kernel_dispatch.h): the double kernels keep
/// ONE 4-wide ymm accumulator whose lanes are exactly the scalar
/// reference's a0..a3 — each main-loop step is a vector multiply then a
/// vector add (never FMA: fused rounding would change bits), the <= 3
/// remainder dims are handled on the extracted lanes with the scalar
/// code, and the lanes combine as (a0 + a1) + (a2 + a3). Every lane
/// performs the same IEEE ops in the same order as the scalar loop, so
/// the result is bit-identical for every input, NaN/Inf included.
///
/// The integer coarse kernels are exact whatever the evaluation order:
/// |q − c| via max_epu8/min_epu8, widened to i16 and squared pairwise
/// into i32 lanes with pmaddwd (the widening-MAC class; vpdpbusd is
/// unusable here because |q − c| can exceed the signed-byte range), or
/// vpmaddubsw directly on 4-bit nibble diffs (<= 15, so the u8 × s8
/// product is safe). Per-i32-lane sums stay below 2^31 for d up to the
/// index build gate (60000), and the true total is < 2^32, so the
/// uint32 result equals the scalar reference exactly.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>

#include "util/kernels/kernel_backend.h"

namespace mocemg {
namespace internal {
namespace {

// ---------------------------------------------------------------------
// double kernels: 4-lane contract on one ymm accumulator.

inline double CombineTail(__m256d acc, const double* x, const double* y,
                          size_t i, size_t d, bool squared) {
  alignas(32) double a[4];
  _mm256_store_pd(a, acc);
  if (squared) {
    if (i < d) {
      const double d0 = x[i] - y[i];
      a[0] += d0 * d0;
    }
    if (i + 1 < d) {
      const double d1 = x[i + 1] - y[i + 1];
      a[1] += d1 * d1;
    }
    if (i + 2 < d) {
      const double d2 = x[i + 2] - y[i + 2];
      a[2] += d2 * d2;
    }
  } else {
    if (i < d) a[0] += x[i] * y[i];
    if (i + 1 < d) a[1] += x[i + 1] * y[i + 1];
    if (i + 2 < d) a[2] += x[i + 2] * y[i + 2];
  }
  return (a[0] + a[1]) + (a[2] + a[3]);
}

double Avx2SquaredL2Pair(const double* x, const double* y, size_t d) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
  }
  return CombineTail(acc, x, y, i, d, /*squared=*/true);
}

double Avx2DotPair(const double* x, const double* y, size_t d) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  return CombineTail(acc, x, y, i, d, /*squared=*/false);
}

void Avx2L2OneToMany(const double* query, const double* block, size_t rows,
                     size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = Avx2SquaredL2Pair(query, block + r * d, d);
  }
}

void Avx2L2DotOneToMany(const double* query, double query_sq,
                        const double* block, const double* norms_sq,
                        size_t rows, size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] =
        query_sq + norms_sq[r] - 2.0 * Avx2DotPair(query, block + r * d, d);
  }
}

void Avx2RowNorms(const double* block, size_t rows, size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    const double* row = block + r * d;
    out[r] = Avx2DotPair(row, row, d);
  }
}

// ---------------------------------------------------------------------
// float32 mirror kernels: the same ONE-4-wide-accumulator contract at
// fp32. A 256-bit step covers 8 floats; adding its low xmm then its
// high xmm into the accumulator reproduces the scalar loop exactly
// (lane j sums dim i+j, then dim i+4+j) — the trick the AVX-512 double
// kernels use for their 8-dim steps.

inline float CombineTailF32(__m128 acc, const float* x, const float* y,
                            size_t i, size_t d, bool squared) {
  alignas(16) float a[4];
  _mm_store_ps(a, acc);
  if (squared) {
    if (i < d) {
      const float d0 = x[i] - y[i];
      a[0] += d0 * d0;
    }
    if (i + 1 < d) {
      const float d1 = x[i + 1] - y[i + 1];
      a[1] += d1 * d1;
    }
    if (i + 2 < d) {
      const float d2 = x[i + 2] - y[i + 2];
      a[2] += d2 * d2;
    }
  } else {
    if (i < d) a[0] += x[i] * y[i];
    if (i + 1 < d) a[1] += x[i + 1] * y[i + 1];
    if (i + 2 < d) a[2] += x[i + 2] * y[i + 2];
  }
  return (a[0] + a[1]) + (a[2] + a[3]);
}

inline float Avx2SquaredL2PairF32(const float* x, const float* y,
                                  size_t d) {
  __m128 acc = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    const __m256 sq = _mm256_mul_ps(diff, diff);
    acc = _mm_add_ps(acc, _mm256_castps256_ps128(sq));
    acc = _mm_add_ps(acc, _mm256_extractf128_ps(sq, 1));
  }
  if (i + 4 <= d) {
    const __m128 diff =
        _mm_sub_ps(_mm_loadu_ps(x + i), _mm_loadu_ps(y + i));
    acc = _mm_add_ps(acc, _mm_mul_ps(diff, diff));
    i += 4;
  }
  return CombineTailF32(acc, x, y, i, d, /*squared=*/true);
}

inline float Avx2DotPairF32(const float* x, const float* y, size_t d) {
  __m128 acc = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 p =
        _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    acc = _mm_add_ps(acc, _mm256_castps256_ps128(p));
    acc = _mm_add_ps(acc, _mm256_extractf128_ps(p, 1));
  }
  if (i + 4 <= d) {
    acc = _mm_add_ps(acc,
                     _mm_mul_ps(_mm_loadu_ps(x + i), _mm_loadu_ps(y + i)));
    i += 4;
  }
  return CombineTailF32(acc, x, y, i, d, /*squared=*/false);
}

// fp64-accumulate over fp32 inputs: widen 4 floats to 4 doubles
// (exact) and run the double contract.
inline double Avx2DotPairF32ToF64(const float* x, const float* y,
                                  size_t d) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const __m256d vx = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    const __m256d vy = _mm256_cvtps_pd(_mm_loadu_ps(y + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(vx, vy));
  }
  alignas(32) double a[4];
  _mm256_store_pd(a, acc);
  if (i < d) {
    a[0] += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  if (i + 1 < d) {
    a[1] += static_cast<double>(x[i + 1]) * static_cast<double>(y[i + 1]);
  }
  if (i + 2 < d) {
    a[2] += static_cast<double>(x[i + 2]) * static_cast<double>(y[i + 2]);
  }
  return (a[0] + a[1]) + (a[2] + a[3]);
}

void Avx2L2F32OneToMany(const float* query, const float* block,
                        size_t rows, size_t d, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = Avx2SquaredL2PairF32(query, block + r * d, d);
  }
}

void Avx2L2DotF32OneToMany(const float* query, float query_sq,
                           const float* block, const float* norms_sq,
                           size_t rows, size_t d, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = query_sq + norms_sq[r] -
             2.0f * Avx2DotPairF32(query, block + r * d, d);
  }
}

void Avx2RowNormsF32(const float* block, size_t rows, size_t d,
                     float* out) {
  for (size_t r = 0; r < rows; ++r) {
    const float* row = block + r * d;
    out[r] = Avx2DotPairF32(row, row, d);
  }
}

void Avx2L2DotF32F64OneToMany(const float* query, double query_sq,
                              const float* block, const double* norms_sq,
                              size_t rows, size_t d, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = query_sq + norms_sq[r] -
             2.0 * Avx2DotPairF32ToF64(query, block + r * d, d);
  }
}

// ---------------------------------------------------------------------
// int8 coarse kernel.

inline uint32_t HorizontalSumU32(__m128i v) {
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(v));
}

inline uint32_t Ssd8Row(const uint8_t* q, const uint8_t* c, size_t d) {
  const __m256i zero256 = _mm256_setzero_si256();
  __m256i acc256 = zero256;
  size_t j = 0;
  for (; j + 32 <= d; j += 32) {
    const __m256i vq =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + j));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + j));
    const __m256i ad =
        _mm256_sub_epi8(_mm256_max_epu8(vq, vc), _mm256_min_epu8(vq, vc));
    const __m256i lo = _mm256_unpacklo_epi8(ad, zero256);
    const __m256i hi = _mm256_unpackhi_epi8(ad, zero256);
    acc256 = _mm256_add_epi32(acc256, _mm256_madd_epi16(lo, lo));
    acc256 = _mm256_add_epi32(acc256, _mm256_madd_epi16(hi, hi));
  }
  __m128i acc = _mm_add_epi32(_mm256_castsi256_si128(acc256),
                              _mm256_extracti128_si256(acc256, 1));
  if (j + 16 <= d) {
    const __m128i zero = _mm_setzero_si128();
    const __m128i vq =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + j));
    const __m128i vc =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + j));
    const __m128i ad =
        _mm_sub_epi8(_mm_max_epu8(vq, vc), _mm_min_epu8(vq, vc));
    const __m128i lo = _mm_unpacklo_epi8(ad, zero);
    const __m128i hi = _mm_unpackhi_epi8(ad, zero);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(lo, lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(hi, hi));
    j += 16;
  }
  uint32_t sum = HorizontalSumU32(acc);
  for (; j < d; ++j) {
    const int32_t diff =
        static_cast<int32_t>(q[j]) - static_cast<int32_t>(c[j]);
    sum += static_cast<uint32_t>(diff * diff);
  }
  return sum;
}

void Avx2Ssd8OneToMany(const uint8_t* qcodes, const uint8_t* codes,
                       size_t rows, size_t d, uint32_t* out) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = Ssd8Row(qcodes, codes + r * d, d);
  }
}

// ---------------------------------------------------------------------
// int4 (nibble-packed) coarse kernel. `bytes` packed bytes hold 2*bytes
// nibble dims; an odd-d pad nibble is 0 on both sides and adds 0.

inline uint32_t Ssd4Row(const uint8_t* q, const uint8_t* c, size_t bytes) {
  const __m256i mask = _mm256_set1_epi8(0x0F);
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc256 = _mm256_setzero_si256();
  size_t b = 0;
  for (; b + 32 <= bytes; b += 32) {
    const __m256i vq =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + b));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + b));
    const __m256i qlo = _mm256_and_si256(vq, mask);
    const __m256i clo = _mm256_and_si256(vc, mask);
    const __m256i qhi = _mm256_and_si256(_mm256_srli_epi16(vq, 4), mask);
    const __m256i chi = _mm256_and_si256(_mm256_srli_epi16(vc, 4), mask);
    const __m256i adlo =
        _mm256_sub_epi8(_mm256_max_epu8(qlo, clo), _mm256_min_epu8(qlo, clo));
    const __m256i adhi =
        _mm256_sub_epi8(_mm256_max_epu8(qhi, chi), _mm256_min_epu8(qhi, chi));
    // Nibble diffs are <= 15, so vpmaddubsw's u8 x s8 pairwise product
    // (<= 2 * 225 per i16 lane) cannot overflow; summing the lo and hi
    // halves stays <= 900, still exact in i16.
    const __m256i p = _mm256_add_epi16(_mm256_maddubs_epi16(adlo, adlo),
                                       _mm256_maddubs_epi16(adhi, adhi));
    acc256 = _mm256_add_epi32(acc256, _mm256_madd_epi16(p, ones));
  }
  __m128i acc = _mm_add_epi32(_mm256_castsi256_si128(acc256),
                              _mm256_extracti128_si256(acc256, 1));
  if (b + 16 <= bytes) {
    const __m128i mask128 = _mm_set1_epi8(0x0F);
    const __m128i ones128 = _mm_set1_epi16(1);
    const __m128i vq =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + b));
    const __m128i vc =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + b));
    const __m128i qlo = _mm_and_si128(vq, mask128);
    const __m128i clo = _mm_and_si128(vc, mask128);
    const __m128i qhi = _mm_and_si128(_mm_srli_epi16(vq, 4), mask128);
    const __m128i chi = _mm_and_si128(_mm_srli_epi16(vc, 4), mask128);
    const __m128i adlo =
        _mm_sub_epi8(_mm_max_epu8(qlo, clo), _mm_min_epu8(qlo, clo));
    const __m128i adhi =
        _mm_sub_epi8(_mm_max_epu8(qhi, chi), _mm_min_epu8(qhi, chi));
    const __m128i p = _mm_add_epi16(_mm_maddubs_epi16(adlo, adlo),
                                    _mm_maddubs_epi16(adhi, adhi));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(p, ones128));
    b += 16;
  }
  uint32_t sum = HorizontalSumU32(acc);
  for (; b < bytes; ++b) {
    const int32_t dlo = static_cast<int32_t>(q[b] & 0x0F) -
                        static_cast<int32_t>(c[b] & 0x0F);
    const int32_t dhi =
        static_cast<int32_t>(q[b] >> 4) - static_cast<int32_t>(c[b] >> 4);
    sum += static_cast<uint32_t>(dlo * dlo + dhi * dhi);
  }
  return sum;
}

void Avx2Ssd4OneToMany(const uint8_t* qpacked, const uint8_t* packed,
                       size_t rows, size_t d, uint32_t* out) {
  const size_t bytes = (d + 1) / 2;
  for (size_t r = 0; r < rows; ++r) {
    out[r] = Ssd4Row(qpacked, packed + r * bytes, bytes);
  }
}

// ---------------------------------------------------------------------
// block (many-to-many) family. The one-to-many kernels above are
// latency-bound: one accumulator per pair means every 4-dim step waits
// on the previous vector add. Here 4 independent (query, row) pairs are
// kept in flight — 4 accumulator chains sharing one query load — which
// hides the add latency and roughly quadruples kernel throughput. Each
// chain performs the pair kernel's exact op sequence (multiply then
// add, same tail handling), so every pair is bit-identical to the
// one-to-many path whatever the grouping. Rows are tiled so a tile
// streamed from memory stays L2-resident across all queries.

inline void Avx2Dot4Rows(const double* x, const double* y0,
                         const double* y1, const double* y2,
                         const double* y3, size_t d, double* out) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(vx, _mm256_loadu_pd(y0 + i)));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(vx, _mm256_loadu_pd(y1 + i)));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(vx, _mm256_loadu_pd(y2 + i)));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(vx, _mm256_loadu_pd(y3 + i)));
  }
  out[0] = CombineTail(a0, x, y0, i, d, /*squared=*/false);
  out[1] = CombineTail(a1, x, y1, i, d, /*squared=*/false);
  out[2] = CombineTail(a2, x, y2, i, d, /*squared=*/false);
  out[3] = CombineTail(a3, x, y3, i, d, /*squared=*/false);
}

inline void Avx2SquaredL24Rows(const double* x, const double* y0,
                               const double* y1, const double* y2,
                               const double* y3, size_t d, double* out) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d d0 = _mm256_sub_pd(vx, _mm256_loadu_pd(y0 + i));
    const __m256d d1 = _mm256_sub_pd(vx, _mm256_loadu_pd(y1 + i));
    const __m256d d2 = _mm256_sub_pd(vx, _mm256_loadu_pd(y2 + i));
    const __m256d d3 = _mm256_sub_pd(vx, _mm256_loadu_pd(y3 + i));
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(d0, d0));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(d1, d1));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(d2, d2));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(d3, d3));
  }
  out[0] = CombineTail(a0, x, y0, i, d, /*squared=*/true);
  out[1] = CombineTail(a1, x, y1, i, d, /*squared=*/true);
  out[2] = CombineTail(a2, x, y2, i, d, /*squared=*/true);
  out[3] = CombineTail(a3, x, y3, i, d, /*squared=*/true);
}

inline void Avx2DotF324Rows(const float* x, const float* y0,
                            const float* y1, const float* y2,
                            const float* y3, size_t d, float* out) {
  __m128 a0 = _mm_setzero_ps();
  __m128 a1 = _mm_setzero_ps();
  __m128 a2 = _mm_setzero_ps();
  __m128 a3 = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 p0 = _mm256_mul_ps(vx, _mm256_loadu_ps(y0 + i));
    const __m256 p1 = _mm256_mul_ps(vx, _mm256_loadu_ps(y1 + i));
    const __m256 p2 = _mm256_mul_ps(vx, _mm256_loadu_ps(y2 + i));
    const __m256 p3 = _mm256_mul_ps(vx, _mm256_loadu_ps(y3 + i));
    a0 = _mm_add_ps(a0, _mm256_castps256_ps128(p0));
    a0 = _mm_add_ps(a0, _mm256_extractf128_ps(p0, 1));
    a1 = _mm_add_ps(a1, _mm256_castps256_ps128(p1));
    a1 = _mm_add_ps(a1, _mm256_extractf128_ps(p1, 1));
    a2 = _mm_add_ps(a2, _mm256_castps256_ps128(p2));
    a2 = _mm_add_ps(a2, _mm256_extractf128_ps(p2, 1));
    a3 = _mm_add_ps(a3, _mm256_castps256_ps128(p3));
    a3 = _mm_add_ps(a3, _mm256_extractf128_ps(p3, 1));
  }
  if (i + 4 <= d) {
    const __m128 vx = _mm_loadu_ps(x + i);
    a0 = _mm_add_ps(a0, _mm_mul_ps(vx, _mm_loadu_ps(y0 + i)));
    a1 = _mm_add_ps(a1, _mm_mul_ps(vx, _mm_loadu_ps(y1 + i)));
    a2 = _mm_add_ps(a2, _mm_mul_ps(vx, _mm_loadu_ps(y2 + i)));
    a3 = _mm_add_ps(a3, _mm_mul_ps(vx, _mm_loadu_ps(y3 + i)));
    i += 4;
  }
  out[0] = CombineTailF32(a0, x, y0, i, d, /*squared=*/false);
  out[1] = CombineTailF32(a1, x, y1, i, d, /*squared=*/false);
  out[2] = CombineTailF32(a2, x, y2, i, d, /*squared=*/false);
  out[3] = CombineTailF32(a3, x, y3, i, d, /*squared=*/false);
}

constexpr size_t kMtmRowTile = 64;

void Avx2L2DotManyToMany(const double* queries, const double* query_sqs,
                         size_t num_queries, const double* block,
                         const double* norms_sq, size_t rows, size_t d,
                         double* out, size_t out_stride) {
  for (size_t r0 = 0; r0 < rows; r0 += kMtmRowTile) {
    const size_t rend = r0 + std::min(rows - r0, kMtmRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      const double* query = queries + q * d;
      const double query_sq = query_sqs[q];
      double* orow = out + q * out_stride;
      size_t r = r0;
      for (; r + 4 <= rend; r += 4) {
        double dots[4];
        Avx2Dot4Rows(query, block + r * d, block + (r + 1) * d,
                     block + (r + 2) * d, block + (r + 3) * d, d, dots);
        orow[r] = query_sq + norms_sq[r] - 2.0 * dots[0];
        orow[r + 1] = query_sq + norms_sq[r + 1] - 2.0 * dots[1];
        orow[r + 2] = query_sq + norms_sq[r + 2] - 2.0 * dots[2];
        orow[r + 3] = query_sq + norms_sq[r + 3] - 2.0 * dots[3];
      }
      for (; r < rend; ++r) {
        orow[r] = query_sq + norms_sq[r] -
                  2.0 * Avx2DotPair(query, block + r * d, d);
      }
    }
  }
}

void Avx2L2DotF32ManyToMany(const float* queries, const float* query_sqs,
                            size_t num_queries, const float* block,
                            const float* norms_sq, size_t rows, size_t d,
                            float* out, size_t out_stride) {
  for (size_t r0 = 0; r0 < rows; r0 += kMtmRowTile) {
    const size_t rend = r0 + std::min(rows - r0, kMtmRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      const float* query = queries + q * d;
      const float query_sq = query_sqs[q];
      float* orow = out + q * out_stride;
      size_t r = r0;
      for (; r + 4 <= rend; r += 4) {
        float dots[4];
        Avx2DotF324Rows(query, block + r * d, block + (r + 1) * d,
                        block + (r + 2) * d, block + (r + 3) * d, d, dots);
        orow[r] = query_sq + norms_sq[r] - 2.0f * dots[0];
        orow[r + 1] = query_sq + norms_sq[r + 1] - 2.0f * dots[1];
        orow[r + 2] = query_sq + norms_sq[r + 2] - 2.0f * dots[2];
        orow[r + 3] = query_sq + norms_sq[r + 3] - 2.0f * dots[3];
      }
      for (; r < rend; ++r) {
        orow[r] = query_sq + norms_sq[r] -
                  2.0f * Avx2DotPairF32(query, block + r * d, d);
      }
    }
  }
}

void Avx2L2Gather(const double* query, const double* block,
                  const uint32_t* row_indices, size_t n, size_t d,
                  double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    Avx2SquaredL24Rows(query,
                       block + static_cast<size_t>(row_indices[i]) * d,
                       block + static_cast<size_t>(row_indices[i + 1]) * d,
                       block + static_cast<size_t>(row_indices[i + 2]) * d,
                       block + static_cast<size_t>(row_indices[i + 3]) * d,
                       d, out + i);
  }
  for (; i < n; ++i) {
    out[i] = Avx2SquaredL2Pair(
        query, block + static_cast<size_t>(row_indices[i]) * d, d);
  }
}

// Integer sums are exact at any order, so the code-block variants just
// tile the one-to-many kernels for cache residency (64 KiB of codes per
// tile at d = 64), streaming each tile once per query block.
void Avx2Ssd8ManyToMany(const uint8_t* qcodes, size_t num_queries,
                        const uint8_t* codes, size_t rows, size_t d,
                        uint32_t* out, size_t out_stride) {
  constexpr size_t kCodeRowTile = 1024;
  for (size_t r0 = 0; r0 < rows; r0 += kCodeRowTile) {
    const size_t tile = std::min(rows - r0, kCodeRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      Avx2Ssd8OneToMany(qcodes + q * d, codes + r0 * d, tile, d,
                        out + q * out_stride + r0);
    }
  }
}

void Avx2Ssd4ManyToMany(const uint8_t* qpacked, size_t num_queries,
                        const uint8_t* packed, size_t rows, size_t d,
                        uint32_t* out, size_t out_stride) {
  const size_t bytes = (d + 1) / 2;
  constexpr size_t kCodeRowTile = 1024;
  for (size_t r0 = 0; r0 < rows; r0 += kCodeRowTile) {
    const size_t tile = std::min(rows - r0, kCodeRowTile);
    for (size_t q = 0; q < num_queries; ++q) {
      Avx2Ssd4OneToMany(qpacked + q * bytes, packed + r0 * bytes, tile, d,
                        out + q * out_stride + r0);
    }
  }
}

}  // namespace

const KernelOps& Avx2KernelOps() {
  static const KernelOps ops = {
      "avx2",
      Avx2SquaredL2Pair,
      Avx2DotPair,
      Avx2L2OneToMany,
      Avx2L2DotOneToMany,
      Avx2RowNorms,
      Avx2Ssd8OneToMany,
      Avx2Ssd4OneToMany,
      Avx2L2F32OneToMany,
      Avx2L2DotF32OneToMany,
      Avx2RowNormsF32,
      Avx2L2DotF32F64OneToMany,
      Avx2L2DotManyToMany,
      Avx2L2DotF32ManyToMany,
      Avx2L2Gather,
      Avx2Ssd8ManyToMany,
      Avx2Ssd4ManyToMany,
  };
  return ops;
}

}  // namespace internal
}  // namespace mocemg

#endif  // x86
