/// \file csv.h
/// \brief Hand-rolled CSV reader/writer used for motion and EMG exchange
/// files (the paper's lab exported Vicon iQ and Myomonitor captures to
/// delimited text; we keep the same interchange shape).
///
/// Dialect: configurable single-character delimiter (default ','), '#'
/// comment lines, optional header row, RFC-4180-style double-quote
/// escaping for text fields. Numeric tables are parsed strictly — every
/// cell must be a complete number.

#ifndef MOCEMG_UTIL_CSV_H_
#define MOCEMG_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Parsing options for CsvTable reads.
struct CsvOptions {
  char delimiter = ',';
  /// First non-comment line is a header of column names.
  bool has_header = true;
  /// Lines starting with this character (after trimming) are skipped.
  char comment_char = '#';
  /// Allow rows with fewer/more fields than the header (error if false).
  bool allow_ragged_rows = false;
};

/// \brief An in-memory parsed CSV: header plus string cells.
class CsvTable {
 public:
  /// \brief Parses CSV text into a table.
  static Result<CsvTable> FromString(const std::string& text,
                                     const CsvOptions& options = {});

  /// \brief Reads and parses a CSV file.
  static Result<CsvTable> FromFile(const std::string& path,
                                   const CsvOptions& options = {});

  /// \brief Column names (empty when options.has_header was false).
  const std::vector<std::string>& header() const { return header_; }

  /// \brief Parsed rows of string cells.
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const {
    return header_.empty() ? (rows_.empty() ? 0 : rows_[0].size())
                           : header_.size();
  }

  /// \brief Index of the named column, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// \brief Parses every cell as double into a row-major matrix buffer.
  /// Fails on any non-numeric cell or ragged row.
  Result<std::vector<std::vector<double>>> ToNumeric() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Streaming CSV writer with quoting.
class CsvWriter {
 public:
  explicit CsvWriter(char delimiter = ',') : delimiter_(delimiter) {}

  /// \brief Appends one row; cells containing the delimiter, quotes or
  /// newlines are quoted and escaped.
  void WriteRow(const std::vector<std::string>& cells);

  /// \brief Appends one row of doubles with the given precision.
  void WriteNumericRow(const std::vector<double>& cells, int precision = 9);

  /// \brief Appends a comment line.
  void WriteComment(const std::string& text);

  /// \brief The accumulated CSV text.
  const std::string& str() const { return buffer_; }

  /// \brief Writes the accumulated text to a file.
  Status ToFile(const std::string& path) const;

 private:
  char delimiter_;
  std::string buffer_;
};

/// \brief Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Writes a string to a file, replacing any existing content.
Status WriteStringToFile(const std::string& path,
                         const std::string& content);

}  // namespace mocemg

#endif  // MOCEMG_UTIL_CSV_H_
