#include "util/kernel_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "util/kernels/kernel_backend.h"
#include "util/logging.h"

namespace mocemg {
namespace {

// ---------------------------------------------------------------------
// CPU feature probing. __builtin_cpu_supports is available on GCC and
// Clang for x86; aarch64 carries NEON unconditionally (the dotprod
// upgrade inside the NEON TU is a compile-time baseline question, not a
// runtime one).

#if defined(__x86_64__) || defined(__i386__)
// The builtin requires a string literal, so this has to be a macro.
#define MOCEMG_CPU_HAS(feature) (__builtin_cpu_supports(feature) != 0)
#endif

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return MOCEMG_CPU_HAS("avx2");
#else
  return false;
#endif
}

bool CpuSupportsAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return MOCEMG_CPU_HAS("avx512f") && MOCEMG_CPU_HAS("avx512bw") &&
         MOCEMG_CPU_HAS("avx512vl");
#else
  return false;
#endif
}

bool CpuSupportsNeon() {
#if defined(__aarch64__)
  return true;
#else
  return false;
#endif
}

std::string DetectCpuFeatures() {
  std::string features;
  const auto add = [&features](const char* name) {
    if (!features.empty()) features += ',';
    features += name;
  };
#if defined(__x86_64__) || defined(__i386__)
#define MOCEMG_ADD_FEATURE(f) \
  if (MOCEMG_CPU_HAS(f)) add(f)
  MOCEMG_ADD_FEATURE("sse2");
  MOCEMG_ADD_FEATURE("sse4.2");
  MOCEMG_ADD_FEATURE("avx");
  MOCEMG_ADD_FEATURE("fma");
  MOCEMG_ADD_FEATURE("avx2");
  MOCEMG_ADD_FEATURE("avx512f");
  MOCEMG_ADD_FEATURE("avx512bw");
  MOCEMG_ADD_FEATURE("avx512dq");
  MOCEMG_ADD_FEATURE("avx512vl");
  MOCEMG_ADD_FEATURE("avx512vnni");
#undef MOCEMG_ADD_FEATURE
#elif defined(__aarch64__)
  add("neon");
#if defined(__ARM_FEATURE_DOTPROD)
  add("dotprod");
#endif
#endif
  if (features.empty()) features = "none";
  return features;
}

bool BackendCompiled(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return true;
    case KernelBackend::kAvx2:
#if defined(MOCEMG_HAVE_AVX2_BACKEND)
      return true;
#else
      return false;
#endif
    case KernelBackend::kAvx512:
#if defined(MOCEMG_HAVE_AVX512_BACKEND)
      return true;
#else
      return false;
#endif
    case KernelBackend::kNeon:
#if defined(MOCEMG_HAVE_NEON_BACKEND)
      return true;
#else
      return false;
#endif
    case KernelBackend::kAuto:
      return false;
  }
  return false;
}

bool BackendUsable(KernelBackend backend) {
  if (!BackendCompiled(backend)) return false;
  switch (backend) {
    case KernelBackend::kScalar:
      return true;
    case KernelBackend::kAvx2:
      return CpuSupportsAvx2();
    case KernelBackend::kAvx512:
      return CpuSupportsAvx512();
    case KernelBackend::kNeon:
      return CpuSupportsNeon();
    case KernelBackend::kAuto:
      return false;
  }
  return false;
}

const KernelOps* OpsFor(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return &internal::ScalarKernelOps();
    case KernelBackend::kAvx2:
#if defined(MOCEMG_HAVE_AVX2_BACKEND)
      return &internal::Avx2KernelOps();
#else
      return nullptr;
#endif
    case KernelBackend::kAvx512:
#if defined(MOCEMG_HAVE_AVX512_BACKEND)
      return &internal::Avx512KernelOps();
#else
      return nullptr;
#endif
    case KernelBackend::kNeon:
#if defined(MOCEMG_HAVE_NEON_BACKEND)
      return &internal::NeonKernelOps();
#else
      return nullptr;
#endif
    case KernelBackend::kAuto:
      return nullptr;
  }
  return nullptr;
}

KernelBackend WidestUsable() {
  // Preference order: widest vectors first, scalar as the floor.
  for (const KernelBackend b :
       {KernelBackend::kAvx512, KernelBackend::kAvx2, KernelBackend::kNeon}) {
    if (BackendUsable(b)) return b;
  }
  return KernelBackend::kScalar;
}

struct DispatchState {
  std::atomic<const KernelOps*> active{nullptr};
  std::atomic<int> active_backend{static_cast<int>(KernelBackend::kScalar)};
  std::atomic<bool> env_override{false};
  std::once_flag init_once;
};

DispatchState& State() {
  static DispatchState state;
  return state;
}

void Publish(KernelBackend backend) {
  DispatchState& state = State();
  state.active_backend.store(static_cast<int>(backend),
                             std::memory_order_relaxed);
  state.active.store(OpsFor(backend), std::memory_order_release);
}

// Resolves kAuto: MOCEMG_KERNEL env override when set and usable
// (warning + detection otherwise), else the widest usable backend.
KernelBackend ResolveAuto() {
  DispatchState& state = State();
  state.env_override.store(false, std::memory_order_relaxed);
  const char* env = std::getenv("MOCEMG_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    const Result<KernelBackend> parsed = ParseKernelBackend(env);
    if (!parsed.ok()) {
      MOCEMG_LOG(kWarning) << "MOCEMG_KERNEL=" << env
                           << " is not a kernel backend name; using auto "
                              "detection";
    } else if (parsed.ValueOrDie() == KernelBackend::kAuto) {
      // explicit auto: fall through to detection
    } else if (!BackendUsable(parsed.ValueOrDie())) {
      MOCEMG_LOG(kWarning)
          << "MOCEMG_KERNEL=" << env << " requested but the "
          << (BackendCompiled(parsed.ValueOrDie()) ? "CPU lacks the features"
                                              : "backend is not compiled in")
          << "; using auto detection";
    } else {
      state.env_override.store(true, std::memory_order_relaxed);
      return parsed.ValueOrDie();
    }
  }
  return WidestUsable();
}

void EnsureInit() {
  DispatchState& state = State();
  std::call_once(state.init_once, [] { Publish(ResolveAuto()); });
}

std::string JoinNames(const std::vector<KernelBackend>& backends) {
  std::string out;
  for (const KernelBackend b : backends) {
    if (!out.empty()) out += ',';
    out += KernelBackendName(b);
  }
  return out;
}

}  // namespace

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kAuto:
      return "auto";
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kAvx512:
      return "avx512";
    case KernelBackend::kNeon:
      return "neon";
  }
  return "unknown";
}

Result<KernelBackend> ParseKernelBackend(const std::string& name) {
  for (const KernelBackend b :
       {KernelBackend::kAuto, KernelBackend::kScalar, KernelBackend::kAvx2,
        KernelBackend::kAvx512, KernelBackend::kNeon}) {
    if (name == KernelBackendName(b)) return b;
  }
  return Status::InvalidArgument(
      "unknown kernel backend \"" + name +
      "\" (expected auto, scalar, avx2, avx512 or neon)");
}

KernelBackend ActiveKernelBackend() {
  EnsureInit();
  return static_cast<KernelBackend>(
      State().active_backend.load(std::memory_order_relaxed));
}

std::vector<KernelBackend> CompiledKernelBackends() {
  std::vector<KernelBackend> out;
  for (const KernelBackend b :
       {KernelBackend::kScalar, KernelBackend::kAvx2, KernelBackend::kAvx512,
        KernelBackend::kNeon}) {
    if (BackendCompiled(b)) out.push_back(b);
  }
  return out;
}

std::vector<KernelBackend> UsableKernelBackends() {
  std::vector<KernelBackend> out;
  for (const KernelBackend b : CompiledKernelBackends()) {
    if (BackendUsable(b)) out.push_back(b);
  }
  return out;
}

Status SetKernelBackend(KernelBackend backend) {
  EnsureInit();
  if (backend == KernelBackend::kAuto) {
    Publish(ResolveAuto());
    return Status::OK();
  }
  if (!BackendCompiled(backend)) {
    return Status::FailedPrecondition(
        std::string("kernel backend ") + KernelBackendName(backend) +
        " is not compiled into this binary");
  }
  if (!BackendUsable(backend)) {
    return Status::FailedPrecondition(
        std::string("this CPU lacks the features for kernel backend ") +
        KernelBackendName(backend));
  }
  Publish(backend);
  return Status::OK();
}

const KernelOps* GetKernelOps(KernelBackend backend) {
  if (backend == KernelBackend::kAuto) {
    EnsureInit();
    return State().active.load(std::memory_order_acquire);
  }
  if (!BackendUsable(backend)) return nullptr;
  return OpsFor(backend);
}

KernelDispatchInfo GetKernelDispatchInfo() {
  EnsureInit();
  KernelDispatchInfo info;
  info.active = KernelBackendName(ActiveKernelBackend());
  info.compiled = JoinNames(CompiledKernelBackends());
  info.usable = JoinNames(UsableKernelBackends());
  info.cpu_features = DetectCpuFeatures();
  info.env_override = State().env_override.load(std::memory_order_relaxed);
  return info;
}

namespace internal {

const KernelOps& ActiveKernelOps() {
  EnsureInit();
  return *State().active.load(std::memory_order_acquire);
}

}  // namespace internal
}  // namespace mocemg
