/// \file string_util.h
/// \brief Small string helpers shared by the hand-rolled parsers.

#ifndef MOCEMG_UTIL_STRING_UTIL_H_
#define MOCEMG_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// \brief True iff `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief Strict double parser: the whole trimmed token must be consumed.
Result<double> ParseDouble(std::string_view token);

/// \brief Strict integer parser: the whole trimmed token must be consumed.
Result<int64_t> ParseInt(std::string_view token);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// \brief printf-style double formatting with fixed precision.
std::string FormatDouble(double value, int precision = 6);

}  // namespace mocemg

#endif  // MOCEMG_UTIL_STRING_UTIL_H_
