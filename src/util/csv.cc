#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/macros.h"
#include "util/string_util.h"

namespace mocemg {
namespace {

// Splits one physical CSV line into fields, honoring double-quote
// escaping. Quoted fields may contain the delimiter and doubled quotes.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char delim, size_t line_no) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else {
      if (c == '"' && cur.empty()) {
        in_quotes = true;
      } else if (c == delim) {
        fields.push_back(std::move(cur));
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quote on line " +
                              std::to_string(line_no));
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

Result<CsvTable> CsvTable::FromString(const std::string& text,
                                      const CsvOptions& options) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  bool header_done = !options.has_header;
  size_t expected_fields = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == options.comment_char) continue;
    MOCEMG_ASSIGN_OR_RETURN(
        std::vector<std::string> fields,
        SplitCsvLine(line, options.delimiter, line_no));
    if (!header_done) {
      table.header_ = std::move(fields);
      expected_fields = table.header_.size();
      header_done = true;
      continue;
    }
    if (expected_fields == 0) expected_fields = fields.size();
    if (!options.allow_ragged_rows && fields.size() != expected_fields) {
      return Status::ParseError(
          "row on line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(expected_fields));
    }
    table.rows_.push_back(std::move(fields));
  }
  return table;
}

Result<CsvTable> CsvTable::FromFile(const std::string& path,
                                    const CsvOptions& options) {
  MOCEMG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  auto result = FromString(text, options);
  if (!result.ok()) {
    return result.status().WithContext("while parsing '" + path + "'");
  }
  return result;
}

Result<size_t> CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

Result<std::vector<std::vector<double>>> CsvTable::ToNumeric() const {
  std::vector<std::vector<double>> out;
  out.reserve(rows_.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::vector<double> row;
    row.reserve(rows_[r].size());
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      auto v = ParseDouble(rows_[r][c]);
      if (!v.ok()) {
        return v.status().WithContext("row " + std::to_string(r) +
                                      ", column " + std::to_string(c));
      }
      row.push_back(*v);
    }
    out.push_back(std::move(row));
  }
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) buffer_.push_back(delimiter_);
    const std::string& cell = cells[i];
    bool needs_quote =
        cell.find(delimiter_) != std::string::npos ||
        cell.find('"') != std::string::npos ||
        cell.find('\n') != std::string::npos;
    if (needs_quote) {
      buffer_.push_back('"');
      for (char c : cell) {
        if (c == '"') buffer_.push_back('"');
        buffer_.push_back(c);
      }
      buffer_.push_back('"');
    } else {
      buffer_.append(cell);
    }
  }
  buffer_.push_back('\n');
}

void CsvWriter::WriteNumericRow(const std::vector<double>& cells,
                                int precision) {
  std::vector<std::string> strs;
  strs.reserve(cells.size());
  for (double v : cells) strs.push_back(FormatDouble(v, precision));
  WriteRow(strs);
}

void CsvWriter::WriteComment(const std::string& text) {
  buffer_.append("# ");
  buffer_.append(text);
  buffer_.push_back('\n');
}

Status CsvWriter::ToFile(const std::string& path) const {
  return WriteStringToFile(path, buffer_);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure on '" + path + "'");
  return ss.str();
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace mocemg
