/// \file quant_kernels.h
/// \brief Scalar-grid integer quantization kernels for the coarse-scan
/// index tier: per-dimension affine codes over a packed row-major
/// block, exact *integer* coarse distance scans (8-bit and 4-bit
/// nibble-packed codes), and the conservative error slack that makes
/// coarse pruning *provable* (no true neighbor is ever discarded —
/// survivors are re-ranked with the exact kernels).
///
/// Grid: dimension j of a block is coded on the affine grid
/// `value ≈ offset[j] + scale · code`, code ∈ {0..levels}, with
/// `offset[j] = min_r block[r][j]` per dimension and a single
/// per-partition `scale = max_j (max_r − min_r) / levels` (0 when every
/// column is constant, in which case every code is 0 and the decode is
/// exact). `levels` is 255 for the 8-bit tier and 15 for the 4-bit
/// tier; everything else — the integer scan identity
/// `‖q̃ − r̃‖² = scale² · Σ_j (qcode_j − code_j)²`, the measured
/// reconstruction errors, the pruning math — is width-independent, the
/// 4-bit tier just trades a 17× coarser grid (weaker pruning on spread
/// partitions) for half the coarse memory traffic.
///
/// 4-bit codes are nibble-packed two dims per byte: dim 2b in the low
/// nibble of byte b, dim 2b+1 in the high nibble, row stride
/// `PackedNibbleStride(d) = ⌈d/2⌉`. When d is odd the final high
/// nibble is 0 on both the query and every row, so the packed scan's
/// uniform per-byte loop adds exactly 0 for the pad.
///
/// The coarse scans read 1 byte (or half a byte) per dimension instead
/// of 8 and prune via the two-hop triangle inequality
/// `‖q − r‖ ≥ scale·√D − ‖q − q̃‖ − ‖r − r̃‖`, with the few
/// floating-point *scalars* (the query residual, the stored error, the
/// current k-th best) inflated by QuantScanSlack so every rounding
/// difference between the coarse and exact paths is absorbed
/// (derivation in DESIGN.md §11.2); the survivors' reported distances
/// always come from the exact kernels. The integer scans route through
/// the runtime-dispatched SIMD backends (kernel_dispatch.h) and are
/// exact int32 arithmetic on every backend.

#ifndef MOCEMG_UTIL_QUANT_KERNELS_H_
#define MOCEMG_UTIL_QUANT_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace mocemg {

/// \brief Row stride, in bytes, of a nibble-packed rows × d code block.
inline size_t PackedNibbleStride(size_t d) { return (d + 1) / 2; }

/// \brief Fills offsets[j] with the per-dimension column minima and
/// *scale with the uniform grid step (widest column range / levels) of
/// a rows × d packed block. Requires rows >= 1; an all-constant block
/// gets scale 0. `levels` is the top code (255 or 15).
void ComputeQuantGrid(const double* block, size_t rows, size_t d,
                      double* offsets, double* scale,
                      uint32_t levels = 255);

/// \brief Encodes every row of the block on the grid:
/// codes[r*d + j] = round((block[r][j] − offsets[j]) / scale),
/// clamped to [0, levels] (0 when scale == 0). Codes are unpacked — one
/// byte per dim — at every width; pack with PackNibbleRows for 4-bit.
void QuantizeRows(const double* block, size_t rows, size_t d,
                  const double* offsets, double scale, uint8_t* codes,
                  uint32_t levels = 255);

/// \brief Encodes one query vector on a partition's grid, clamped to
/// [0, levels] — unlike block rows the query may fall far outside the
/// partition's bounding box, and the clamp keeps q̃ inside it (the
/// resulting extra ‖q − q̃‖ residual weakens pruning, never
/// correctness).
void QuantizeQuery(const double* query, size_t d, const double* offsets,
                   double scale, uint8_t* qcodes, uint32_t levels = 255);

/// \brief Decodes one *unpacked* coded row: out[j] = offsets[j] +
/// scale · codes[j]. Used at build time to *measure* each row's actual
/// reconstruction error with the exact pair kernel, and at query time
/// to measure the query's own residual ‖q − q̃‖².
void DequantizeRow(const uint8_t* codes, size_t d, const double* offsets,
                   double scale, double* out);

/// \brief Packs rows of unpacked codes (values <= 15) into nibbles,
/// two dims per byte (dim 2b low, dim 2b+1 high, odd-d pad nibble 0).
/// `packed` holds rows × PackedNibbleStride(d) bytes.
void PackNibbleRows(const uint8_t* codes, size_t rows, size_t d,
                    uint8_t* packed);

/// \brief Unpacks one nibble-packed row back to one byte per dim.
void UnpackNibbleRow(const uint8_t* packed, size_t d, uint8_t* codes);

/// \brief 8-bit coarse scan: out[r] = Σ_j (qcodes[j] − codes[r*d+j])²
/// in exact int32 arithmetic. scale² · out[r] equals ‖q̃ − r̃‖² exactly
/// in real arithmetic, so the only rounding in the coarse bound lives
/// in per-partition scalars, not in the per-row loop. Requires
/// d · 255² < 2³² (d ≤ 66049; the index build gates far below that).
void QuantizedSsdOneToMany(const uint8_t* qcodes, const uint8_t* codes,
                           size_t rows, size_t d, uint32_t* out);

/// \brief 4-bit coarse scan over nibble-packed codes (row stride
/// PackedNibbleStride(d)); the query must be packed the same way.
/// Same exactness as the 8-bit scan with max per-dim diff² = 225.
void Quantized4SsdOneToMany(const uint8_t* qpacked, const uint8_t* packed,
                            size_t rows, size_t d, uint32_t* out);

/// \brief Blocked 8-bit coarse scan: out[q * out_stride + r] for
/// q < num_queries, r < rows, row-tiled so a code tile is streamed once
/// per query batch (the integer analogue of SquaredL2ManyToMany, used
/// by batched coarse passes and the kernel benchmarks). Each entry is
/// bit-identical to the one-to-many scan.
void QuantizedSsdManyToMany(const uint8_t* qcodes, size_t num_queries,
                            const uint8_t* codes, size_t rows, size_t d,
                            uint32_t* out, size_t out_stride);

/// \brief Blocked 4-bit coarse scan over nibble-packed codes (query
/// rows packed with stride PackedNibbleStride(d)); the nibble analogue
/// of QuantizedSsdManyToMany, bit-identical per entry to
/// Quantized4SsdOneToMany.
void Quantized4SsdManyToMany(const uint8_t* qpacked, size_t num_queries,
                             const uint8_t* packed, size_t rows, size_t d,
                             uint32_t* out, size_t out_stride);

/// \brief Absolute slack covering the floating-point error of any
/// exact-kernel squared-distance evaluation between vectors drawn from
/// (query, block rows, grid reconstructions):
/// 32 · d · ε · (a_sq + b_sq), ε = 2⁻⁵². Callers pass the two largest
/// squared magnitudes involved (e.g. ‖q‖² and the partition's
/// max-norm/bounding-box bound). The 32 (vs the exact kernels' proven
/// 4) budgets the decode roundings and the grid box exceeding the data
/// box on narrow columns; DESIGN.md §11.2 gives the accounting. The
/// bound is width-independent (it covers the float side, not the
/// integer side, which is exact at both widths).
double QuantScanSlack(size_t d, double a_sq, double b_sq);

}  // namespace mocemg

#endif  // MOCEMG_UTIL_QUANT_KERNELS_H_
