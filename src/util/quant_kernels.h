/// \file quant_kernels.h
/// \brief Scalar (int8) quantization kernels for the coarse-scan index
/// tier: per-dimension affine codes over a packed row-major block, an
/// exact *integer* coarse distance scan, and the conservative error
/// slack that makes coarse pruning *provable* (no true neighbor is
/// ever discarded — survivors are re-ranked with the exact kernels).
///
/// Grid: dimension j of a block is coded on the affine grid
/// `value ≈ offset[j] + scale · code`, code ∈ {0..255}, with
/// `offset[j] = min_r block[r][j]` per dimension and a single
/// per-partition `scale = max_j (max_r − min_r) / 255` (0 when every
/// column is constant, in which case every code is 0 and the decode is
/// exact). The *uniform* scale is what makes the coarse scan integer:
/// with the query quantized onto the same grid,
/// `‖q̃ − r̃‖² = scale² · Σ_j (qcode_j − code_j)²`, and the sum is exact
/// int32 arithmetic — no floating-point error in the hot loop at all,
/// and a loop the compiler vectorizes to many bytes per cycle (roughly
/// 7x the throughput of the full-precision dot-form scan at dim 128).
/// A row's reconstruction error ‖r − r̃‖² is *measured* at build time
/// (not bounded analytically), so heavy-tailed columns cost pruning
/// power, never correctness.
///
/// The coarse scan reads 1 byte per dimension instead of 8 and prunes
/// via the two-hop triangle inequality
/// `‖q − r‖ ≥ scale·√D − ‖q − q̃‖ − ‖r − r̃‖`, with the few
/// floating-point *scalars* (the query residual, the stored error, the
/// current k-th best) inflated by QuantScanSlack so every rounding
/// difference between the coarse and exact paths is absorbed
/// (derivation in DESIGN.md §11.2); the survivors' reported distances
/// always come from the exact kernels.

#ifndef MOCEMG_UTIL_QUANT_KERNELS_H_
#define MOCEMG_UTIL_QUANT_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace mocemg {

/// \brief Fills offsets[j] with the per-dimension column minima and
/// *scale with the uniform grid step (widest column range / 255) of a
/// rows × d packed block. Requires rows >= 1; an all-constant block
/// gets scale 0.
void ComputeQuantGrid(const double* block, size_t rows, size_t d,
                      double* offsets, double* scale);

/// \brief Encodes every row of the block on the grid:
/// codes[r*d + j] = round((block[r][j] − offsets[j]) / scale),
/// clamped to [0, 255] (0 when scale == 0).
void QuantizeRows(const double* block, size_t rows, size_t d,
                  const double* offsets, double scale, uint8_t* codes);

/// \brief Encodes one query vector on a partition's grid, clamped to
/// [0, 255] — unlike block rows the query may fall far outside the
/// partition's bounding box, and the clamp keeps q̃ inside it (the
/// resulting extra ‖q − q̃‖ residual weakens pruning, never
/// correctness).
void QuantizeQuery(const double* query, size_t d, const double* offsets,
                   double scale, uint8_t* qcodes);

/// \brief Decodes one coded row: out[j] = offsets[j] + scale ·
/// codes[j]. Used at build time to *measure* each row's actual
/// reconstruction error with the exact pair kernel, and at query time
/// to measure the query's own residual ‖q − q̃‖².
void DequantizeRow(const uint8_t* codes, size_t d, const double* offsets,
                   double scale, double* out);

/// \brief Coarse scan: out[r] = Σ_j (qcodes[j] − codes[r*d+j])² in
/// exact int32 arithmetic. scale² · out[r] equals ‖q̃ − r̃‖² exactly in
/// real arithmetic, so the only rounding in the coarse bound lives in
/// per-partition scalars, not in the per-row loop. Requires
/// d · 255² < 2³² (d ≤ 66049; the index build gates far below that).
void QuantizedSsdOneToMany(const uint8_t* qcodes, const uint8_t* codes,
                           size_t rows, size_t d, uint32_t* out);

/// \brief Absolute slack covering the floating-point error of any
/// exact-kernel squared-distance evaluation between vectors drawn from
/// (query, block rows, grid reconstructions):
/// 32 · d · ε · (a_sq + b_sq), ε = 2⁻⁵². Callers pass the two largest
/// squared magnitudes involved (e.g. ‖q‖² and the partition's
/// max-norm/bounding-box bound). The 32 (vs the exact kernels' proven
/// 4) budgets the decode roundings and the grid box exceeding the data
/// box on narrow columns; DESIGN.md §11.2 gives the accounting.
double QuantScanSlack(size_t d, double a_sq, double b_sq);

}  // namespace mocemg

#endif  // MOCEMG_UTIL_QUANT_KERNELS_H_
