#include "util/status.h"

namespace mocemg {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "InvalidCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status::FromCode(code(), context + ": " + message());
}

}  // namespace mocemg
