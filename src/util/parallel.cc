#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>

namespace mocemg {
namespace {

// True while this thread is executing chunks of some ParallelFor; a
// nested call then runs inline instead of re-entering the pool (which
// could otherwise deadlock when every worker blocks on a child call).
thread_local bool tls_in_parallel_region = false;

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

// Lazily created shared pool. Worker count is fixed at creation: enough
// for the machine, with a floor of 2 so multi-threaded code paths (and
// TSan) are exercised even on single-core containers, and a cap to keep
// pathological MOCEMG_THREADS values from spawning thousands of threads.
class ThreadPool {
 public:
  static ThreadPool& Shared() {
    static ThreadPool pool;
    return pool;
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

 private:
  ThreadPool() {
    const size_t workers = std::min<size_t>(
        64, std::max<size_t>(2, std::max(DefaultMaxThreads(),
                                         HardwareThreads()) -
                                    1));
    threads_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

// Shared state of one parallel loop; runners decrement `pending` as they
// finish and the issuing thread waits for zero.
struct LoopState {
  const ParallelChunkBody* body = nullptr;
  size_t n = 0;
  size_t num_chunks = 0;
  size_t num_runners = 0;
  std::atomic<bool> cancel{false};
  // One slot per chunk; each slot is written by exactly one runner
  // (static chunk -> runner assignment), so no two threads touch the
  // same slot. Publication to the issuing thread happens-before via the
  // completion mutex.
  std::vector<Status> statuses;

  std::mutex mu;
  std::condition_variable done;
  size_t pending = 0;
};

// Runner r processes chunks r, r+T, r+2T, … in order. On the first
// failure it records the status in the chunk's slot and raises the
// cancellation flag; other runners skip chunks they have not started.
void RunChunks(LoopState* state, size_t runner) {
  const bool was_in_region = tls_in_parallel_region;
  tls_in_parallel_region = true;
  for (size_t c = runner; c < state->num_chunks;
       c += state->num_runners) {
    if (state->cancel.load(std::memory_order_relaxed)) break;
    const auto [begin, end] =
        ParallelChunkBounds(state->n, state->num_chunks, c);
    Status st = (*state->body)(begin, end, c);
    if (!st.ok()) {
      state->statuses[c] = std::move(st);
      state->cancel.store(true, std::memory_order_relaxed);
      break;
    }
  }
  tls_in_parallel_region = was_in_region;
  {
    // Notify while still holding the mutex: LoopState lives on the
    // issuing thread's stack and is destroyed as soon as that thread
    // observes pending == 0. Signalling after unlocking would let the
    // waiter wake, see the count, and destroy the condition variable
    // while this thread is still inside notify_one.
    std::lock_guard<std::mutex> lock(state->mu);
    --state->pending;
    if (state->pending == 0) state->done.notify_one();
  }
}

size_t ParseEnvThreads() {
  const char* v = std::getenv("MOCEMG_THREADS");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || parsed == 0ULL) return 0;  // unset / invalid: auto
  return static_cast<size_t>(std::min<unsigned long long>(parsed, 4096));
}

}  // namespace

size_t DefaultMaxThreads() {
  static const size_t resolved = [] {
    const size_t env = ParseEnvThreads();
    return env > 0 ? env : HardwareThreads();
  }();
  return resolved;
}

size_t ParallelNumChunks(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) {
    // Up to 64 chunks: enough slack for good load balance on any
    // machine this targets while keeping per-chunk scratch and the
    // ordered combine step cheap. Fixed (not thread-derived) by design.
    return std::min<size_t>(n, 64);
  }
  return (n + grain - 1) / grain;
}

std::pair<size_t, size_t> ParallelChunkBounds(size_t n, size_t num_chunks,
                                              size_t chunk) {
  // Balanced split: the first n % num_chunks chunks get one extra item.
  const size_t base = n / num_chunks;
  const size_t extra = n % num_chunks;
  const size_t begin =
      chunk * base + std::min(chunk, extra);
  const size_t length = base + (chunk < extra ? 1 : 0);
  return {begin, begin + length};
}

Status ParallelFor(size_t n, const ParallelChunkBody& body,
                   const ParallelOptions& options) {
  if (n == 0) return Status::OK();
  const size_t num_chunks = ParallelNumChunks(n, options.grain);
  const size_t budget =
      options.max_threads > 0 ? options.max_threads : DefaultMaxThreads();
  const size_t runners = std::min(budget, num_chunks);

  if (runners <= 1 || tls_in_parallel_region) {
    // Inline serial execution over the *same* chunk decomposition, in
    // ascending chunk order — bit-identical to the parallel path for
    // any chunk-local arithmetic and any ordered reduction above it.
    const bool was_in_region = tls_in_parallel_region;
    tls_in_parallel_region = true;
    Status result = Status::OK();
    for (size_t c = 0; c < num_chunks; ++c) {
      const auto [begin, end] = ParallelChunkBounds(n, num_chunks, c);
      Status st = body(begin, end, c);
      if (!st.ok()) {
        result = std::move(st);
        break;
      }
    }
    tls_in_parallel_region = was_in_region;
    return result;
  }

  LoopState state;
  state.body = &body;
  state.n = n;
  state.num_chunks = num_chunks;
  state.num_runners = runners;
  state.statuses.assign(num_chunks, Status::OK());
  state.pending = runners;

  ThreadPool& pool = ThreadPool::Shared();
  for (size_t r = 1; r < runners; ++r) {
    pool.Submit([&state, r] { RunChunks(&state, r); });
  }
  RunChunks(&state, 0);
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done.wait(lock, [&state] { return state.pending == 0; });
  }

  for (size_t c = 0; c < num_chunks; ++c) {
    if (!state.statuses[c].ok()) return std::move(state.statuses[c]);
  }
  return Status::OK();
}

}  // namespace mocemg
