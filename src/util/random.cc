#include "util/random.h"

#include <cassert>
#include <cmath>

namespace mocemg {
namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
  // Guard against the (astronomically unlikely) all-zero state, which is
  // the one fixed point of xoshiro256**.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits → [0, 1) with full double precision.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = (0 - n) % n;
    while (l < t) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace mocemg
