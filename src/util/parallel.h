/// \file parallel.h
/// \brief Shared-pool data parallelism for the library's hot loops:
/// per-window featurization, the FCM E/M steps, batch kNN, and batch
/// classification are all embarrassingly parallel over windows, points,
/// queries, and trials.
///
/// Design contract (what makes results *bit-identical* at any thread
/// count):
///
///  1. The iteration range [0, n) is split into chunks by a pure
///     function of (n, grain) only — never of the thread count
///     (ParallelNumChunks / ParallelChunkBounds). Threads merely decide
///     *who* runs a chunk, not *what* a chunk is.
///  2. ParallelReduce combines per-chunk partial results in ascending
///     chunk order, serially, after all chunks finish. Floating-point
///     sums therefore associate identically whether 1 or 64 threads ran.
///  3. `max_threads == 1` executes the same chunk decomposition inline
///     on the calling thread, chunk 0 first — provably the same
///     arithmetic as the parallel path.
///
/// Error handling is Status-first: the body returns Status per chunk,
/// the first failure (lowest chunk index among chunks that ran) wins and
/// cancels chunks that have not started yet.
///
/// Nested calls are safe: a ParallelFor issued from inside a parallel
/// region runs inline on that worker (no pool re-entry, no deadlock).
///
/// Thread budget resolution: ParallelOptions::max_threads when > 0,
/// else the MOCEMG_THREADS environment variable when set and > 0, else
/// std::thread::hardware_concurrency(). The shared pool is lazily
/// created on first parallel use and torn down at process exit.

#ifndef MOCEMG_UTIL_PARALLEL_H_
#define MOCEMG_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Per-call parallelism knobs. The default (all zeros) means
/// "use the process-wide thread budget with automatic chunking".
struct ParallelOptions {
  /// Worker cap for this call. 0 = auto (MOCEMG_THREADS env override,
  /// else hardware concurrency); 1 = inline serial execution.
  size_t max_threads = 0;
  /// Minimum items per chunk; 0 = auto. Chunking depends only on the
  /// range length and this value, never on max_threads — that is what
  /// keeps reductions bit-identical across thread counts.
  size_t grain = 0;
};

/// \brief The resolved default thread budget: MOCEMG_THREADS when set
/// to a positive integer, otherwise hardware concurrency (>= 1).
/// Read once and cached; changing the env var mid-process has no effect.
size_t DefaultMaxThreads();

/// \brief Number of chunks [0, n) is split into under `grain`. Pure in
/// (n, grain); callers that preallocate per-chunk scratch or partials
/// index them with the `chunk` argument of the body.
size_t ParallelNumChunks(size_t n, size_t grain);

/// \brief Half-open bounds of `chunk` (< ParallelNumChunks(n, grain)).
std::pair<size_t, size_t> ParallelChunkBounds(size_t n, size_t num_chunks,
                                              size_t chunk);

/// \brief Chunk body: process [begin, end), identified by `chunk`.
using ParallelChunkBody =
    std::function<Status(size_t begin, size_t end, size_t chunk)>;

/// \brief Runs `body` over the chunk decomposition of [0, n).
///
/// Chunks are statically assigned to runners (runner r takes chunks
/// r, r+T, r+2T, …) so the work placement is deterministic. Returns OK
/// when every chunk succeeded; otherwise the Status of the failed chunk
/// with the lowest index among those that executed. Chunks not yet
/// started when a failure is observed are skipped.
Status ParallelFor(size_t n, const ParallelChunkBody& body,
                   const ParallelOptions& options = {});

/// \brief Map-reduce over the chunk decomposition of [0, n).
///
/// `map` produces one partial per chunk (Result<T>(begin, end, chunk));
/// `combine` folds partials into the accumulator *in ascending chunk
/// order* on the calling thread (void(T* acc, T&& partial)). The fixed
/// combine order is the bit-identity guarantee for floating-point sums.
template <typename T, typename MapFn, typename CombineFn>
Result<T> ParallelReduce(size_t n, T init, const MapFn& map,
                         const CombineFn& combine,
                         const ParallelOptions& options = {}) {
  const size_t chunks = ParallelNumChunks(n, options.grain);
  std::vector<std::optional<T>> partials(chunks);
  Status st = ParallelFor(
      n,
      [&](size_t begin, size_t end, size_t chunk) -> Status {
        Result<T> partial = map(begin, end, chunk);
        if (!partial.ok()) return partial.status();
        partials[chunk] = std::move(partial).ValueOrDie();
        return Status::OK();
      },
      options);
  if (!st.ok()) return st;
  T acc = std::move(init);
  for (size_t c = 0; c < chunks; ++c) {
    combine(&acc, std::move(*partials[c]));
  }
  return acc;
}

}  // namespace mocemg

#endif  // MOCEMG_UTIL_PARALLEL_H_
