/// \file random.h
/// \brief Deterministic, seedable pseudo-random number generation.
///
/// All stochastic components of the library (synthetic capture rig, FCM
/// initialization, evaluation shuffles) draw from Rng so that every
/// experiment is reproducible from a single printed 64-bit seed. The
/// generator is xoshiro256** seeded through SplitMix64, both hand-rolled
/// so results are identical across standard libraries and platforms
/// (std::mt19937 distributions are not portable across implementations).

#ifndef MOCEMG_UTIL_RANDOM_H_
#define MOCEMG_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mocemg {

/// \brief SplitMix64: stateless mixing function used to expand a user seed
/// into the xoshiro256** state. Also usable as a fast standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// \brief Next 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256** generator with portable distribution helpers.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// \brief Uniform 64-bit value.
  uint64_t NextUint64();

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// \brief Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Standard normal via Box–Muller (cached second deviate).
  double NextGaussian();

  /// \brief Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// \brief Bernoulli trial with success probability p.
  bool NextBool(double p = 0.5);

  /// \brief In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Derives an independent child generator (for per-trial streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mocemg

#endif  // MOCEMG_UTIL_RANDOM_H_
