#include "util/clock.h"

#include <chrono>
#include <thread>

namespace mocemg {
namespace {

class SteadyClock : public Clock {
 public:
  uint64_t NowMicros() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void SleepMicros(uint64_t micros) const override {
    if (micros == 0) return;
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

}  // namespace

const Clock* SystemClock() {
  static const SteadyClock* clock = new SteadyClock();
  return clock;
}

}  // namespace mocemg
