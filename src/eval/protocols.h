/// \file protocols.h
/// \brief Query protocols for the paper's two evaluations: stratified
/// k-fold cross-validation where each fold's motions act as the queries
/// against a classifier trained on the remaining folds. Per query the
/// protocol records (a) whether the 1-NN classification is correct
/// (mis-classification rate, Figures 6–7) and (b) the fraction of the
/// k = 5 nearest database motions sharing the query's class (kNN percent,
/// Figures 8–9).

#ifndef MOCEMG_EVAL_PROTOCOLS_H_
#define MOCEMG_EVAL_PROTOCOLS_H_

#include <vector>

#include "core/classifier.h"
#include "eval/metrics.h"
#include "synth/dataset.h"
#include "util/result.h"

namespace mocemg {

/// \brief Protocol parameters.
struct ProtocolOptions {
  /// Stratified folds; each fold serves once as the query set.
  size_t num_folds = 5;
  /// k of the kNN-percent metric (the paper fixes 5).
  size_t knn_k = 5;
  /// Shuffle seed for fold assignment.
  uint64_t seed = 99;
};

/// \brief Aggregated outcome of one evaluation run.
struct EvaluationResult {
  ConfusionMatrix confusion;  ///< of the 1-NN classifier
  double misclassification_percent = 0.0;
  double knn_percent = 0.0;
  size_t num_queries = 0;

  explicit EvaluationResult(size_t num_classes) : confusion(num_classes) {}
};

/// \brief Adapts generated captures to the classifier's training type.
std::vector<LabeledMotion> ToLabeledMotions(
    std::vector<CapturedMotion> captured);

/// \brief Runs the full cross-validated evaluation. `num_classes` must
/// exceed every label in `motions`.
Result<EvaluationResult> CrossValidate(
    const std::vector<LabeledMotion>& motions, size_t num_classes,
    const ClassifierOptions& classifier_options,
    const ProtocolOptions& protocol_options);

}  // namespace mocemg

#endif  // MOCEMG_EVAL_PROTOCOLS_H_
