#include "eval/sweep.h"

#include "util/macros.h"

namespace mocemg {

Result<std::vector<SweepPoint>> RunParameterSweep(
    const std::vector<LabeledMotion>& motions, size_t num_classes,
    const ClassifierOptions& base, const SweepOptions& sweep,
    const SweepProgress& progress) {
  if (sweep.window_sizes_ms.empty() || sweep.cluster_counts.empty()) {
    return Status::InvalidArgument("empty sweep grid");
  }
  std::vector<SweepPoint> points;
  const size_t total =
      sweep.window_sizes_ms.size() * sweep.cluster_counts.size();
  points.reserve(total);
  for (double window_ms : sweep.window_sizes_ms) {
    for (size_t clusters : sweep.cluster_counts) {
      ClassifierOptions options = base;
      options.features.window_ms = window_ms;
      options.fcm.num_clusters = clusters;
      MOCEMG_ASSIGN_OR_RETURN(
          EvaluationResult result,
          CrossValidate(motions, num_classes, options, sweep.protocol));
      SweepPoint point;
      point.window_ms = window_ms;
      point.clusters = clusters;
      point.misclassification_percent = result.misclassification_percent;
      point.knn_percent = result.knn_percent;
      point.num_queries = result.num_queries;
      points.push_back(point);
      if (progress) progress(points.size(), total, point);
    }
  }
  return points;
}

}  // namespace mocemg
