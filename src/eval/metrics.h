/// \file metrics.h
/// \brief Classification/retrieval metrics reported in the paper's
/// evaluation: average mis-classification rate (Figures 6–7) and the
/// k-NN correctly-classified percentage (Figures 8–9), plus confusion
/// matrices for the examples.

#ifndef MOCEMG_EVAL_METRICS_H_
#define MOCEMG_EVAL_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Square confusion matrix over `num_classes` labels.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(size_t num_classes)
      : num_classes_(num_classes),
        counts_(num_classes * num_classes, 0) {}

  /// \brief Records one (truth, prediction) pair; out-of-range labels
  /// are rejected.
  Status Record(size_t truth, size_t predicted);

  size_t num_classes() const { return num_classes_; }
  size_t count(size_t truth, size_t predicted) const {
    return counts_[truth * num_classes_ + predicted];
  }
  size_t total() const;

  /// \brief Fraction of off-diagonal records, in percent (the paper's
  /// mis-classification rate). Fails when empty.
  Result<double> MisclassificationPercent() const;

  /// \brief Overall accuracy in [0, 1]. Fails when empty.
  Result<double> Accuracy() const;

  /// \brief Per-class recall; classes with no truth records get 0.
  std::vector<double> PerClassRecall() const;

  /// \brief Pretty table with class names (names optional).
  std::string ToString(const std::vector<std::string>& class_names = {}) const;

 private:
  size_t num_classes_;
  std::vector<size_t> counts_;
};

/// \brief Running average of the per-query kNN precision: the fraction of
/// the k retrieved motions belonging to the query's class (the paper's
/// "percentage of returned motions in k which are actually present in the
/// same group of query motion").
class KnnPrecision {
 public:
  /// \brief Records one query's retrieved labels against its truth.
  void Record(size_t truth, const std::vector<size_t>& retrieved_labels);

  size_t num_queries() const { return num_queries_; }

  /// \brief Mean precision in percent; fails with no queries.
  Result<double> Percent() const;

 private:
  double sum_precision_ = 0.0;
  size_t num_queries_ = 0;
};

}  // namespace mocemg

#endif  // MOCEMG_EVAL_METRICS_H_
