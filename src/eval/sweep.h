/// \file sweep.h
/// \brief The parameter-sweep driver behind Figures 6–9: window size ∈
/// {50, 100, 150, 200} ms × clusters ∈ [2, 40], each cell evaluated with
/// the cross-validation protocol. Shared by the figure benches so every
/// figure is regenerated from identical machinery.

#ifndef MOCEMG_EVAL_SWEEP_H_
#define MOCEMG_EVAL_SWEEP_H_

#include <functional>
#include <vector>

#include "eval/protocols.h"
#include "util/result.h"

namespace mocemg {

/// \brief One sweep cell's outcome.
struct SweepPoint {
  double window_ms = 0.0;
  size_t clusters = 0;
  double misclassification_percent = 0.0;
  double knn_percent = 0.0;
  size_t num_queries = 0;
};

/// \brief Sweep configuration; defaults are the paper's grids.
struct SweepOptions {
  std::vector<double> window_sizes_ms = {50.0, 100.0, 150.0, 200.0};
  std::vector<size_t> cluster_counts = {2, 5, 10, 15, 20, 25, 30, 35, 40};
  ProtocolOptions protocol;
};

/// \brief Progress callback: (completed cells, total cells, last point).
using SweepProgress =
    std::function<void(size_t, size_t, const SweepPoint&)>;

/// \brief Runs the full grid. `base` supplies every non-swept pipeline
/// parameter; window_ms and fcm.num_clusters are overwritten per cell.
Result<std::vector<SweepPoint>> RunParameterSweep(
    const std::vector<LabeledMotion>& motions, size_t num_classes,
    const ClassifierOptions& base, const SweepOptions& sweep,
    const SweepProgress& progress = nullptr);

}  // namespace mocemg

#endif  // MOCEMG_EVAL_SWEEP_H_
