#include "eval/metrics.h"

#include <sstream>

#include "util/macros.h"
#include "util/string_util.h"

namespace mocemg {

Status ConfusionMatrix::Record(size_t truth, size_t predicted) {
  if (truth >= num_classes_ || predicted >= num_classes_) {
    return Status::OutOfRange("label outside confusion matrix");
  }
  ++counts_[truth * num_classes_ + predicted];
  return Status::OK();
}

size_t ConfusionMatrix::total() const {
  size_t t = 0;
  for (size_t c : counts_) t += c;
  return t;
}

Result<double> ConfusionMatrix::MisclassificationPercent() const {
  const size_t t = total();
  if (t == 0) return Status::FailedPrecondition("no records");
  size_t correct = 0;
  for (size_t i = 0; i < num_classes_; ++i) correct += count(i, i);
  return 100.0 * static_cast<double>(t - correct) /
         static_cast<double>(t);
}

Result<double> ConfusionMatrix::Accuracy() const {
  MOCEMG_ASSIGN_OR_RETURN(double mis, MisclassificationPercent());
  return 1.0 - mis / 100.0;
}

std::vector<double> ConfusionMatrix::PerClassRecall() const {
  std::vector<double> recall(num_classes_, 0.0);
  for (size_t i = 0; i < num_classes_; ++i) {
    size_t row_total = 0;
    for (size_t j = 0; j < num_classes_; ++j) row_total += count(i, j);
    if (row_total > 0) {
      recall[i] = static_cast<double>(count(i, i)) /
                  static_cast<double>(row_total);
    }
  }
  return recall;
}

std::string ConfusionMatrix::ToString(
    const std::vector<std::string>& class_names) const {
  std::ostringstream os;
  auto name = [&](size_t i) {
    return i < class_names.size() ? class_names[i]
                                  : "class" + std::to_string(i);
  };
  os << "truth \\ predicted";
  for (size_t j = 0; j < num_classes_; ++j) os << "\t" << name(j);
  os << "\n";
  for (size_t i = 0; i < num_classes_; ++i) {
    os << name(i);
    for (size_t j = 0; j < num_classes_; ++j) os << "\t" << count(i, j);
    os << "\n";
  }
  return os.str();
}

void KnnPrecision::Record(size_t truth,
                          const std::vector<size_t>& retrieved_labels) {
  if (retrieved_labels.empty()) return;
  size_t same = 0;
  for (size_t l : retrieved_labels) {
    if (l == truth) ++same;
  }
  sum_precision_ += static_cast<double>(same) /
                    static_cast<double>(retrieved_labels.size());
  ++num_queries_;
}

Result<double> KnnPrecision::Percent() const {
  if (num_queries_ == 0) return Status::FailedPrecondition("no queries");
  return 100.0 * sum_precision_ / static_cast<double>(num_queries_);
}

}  // namespace mocemg
