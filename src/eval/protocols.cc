#include "eval/protocols.h"

#include <algorithm>
#include <map>

#include "util/macros.h"
#include "util/random.h"

namespace mocemg {
namespace {

// Stratified fold assignment: within each class, trials are shuffled and
// dealt round-robin so every fold sees every class.
std::vector<size_t> AssignFolds(const std::vector<LabeledMotion>& motions,
                                size_t num_folds, uint64_t seed) {
  std::map<size_t, std::vector<size_t>> by_class;
  for (size_t i = 0; i < motions.size(); ++i) {
    by_class[motions[i].label].push_back(i);
  }
  std::vector<size_t> fold_of(motions.size(), 0);
  Rng rng(seed);
  for (auto& [label, indices] : by_class) {
    rng.Shuffle(&indices);
    for (size_t j = 0; j < indices.size(); ++j) {
      fold_of[indices[j]] = j % num_folds;
    }
  }
  return fold_of;
}

}  // namespace

std::vector<LabeledMotion> ToLabeledMotions(
    std::vector<CapturedMotion> captured) {
  std::vector<LabeledMotion> out;
  out.reserve(captured.size());
  for (auto& c : captured) {
    LabeledMotion m;
    m.mocap = std::move(c.mocap);
    m.emg = std::move(c.emg_raw);
    m.label = c.class_id;
    m.label_name = std::move(c.class_name);
    out.push_back(std::move(m));
  }
  return out;
}

Result<EvaluationResult> CrossValidate(
    const std::vector<LabeledMotion>& motions, size_t num_classes,
    const ClassifierOptions& classifier_options,
    const ProtocolOptions& protocol_options) {
  if (motions.empty()) {
    return Status::InvalidArgument("no motions to evaluate");
  }
  if (protocol_options.num_folds < 2) {
    return Status::InvalidArgument("need at least 2 folds");
  }
  for (const auto& m : motions) {
    if (m.label >= num_classes) {
      return Status::InvalidArgument("label exceeds num_classes");
    }
  }

  const std::vector<size_t> fold_of = AssignFolds(
      motions, protocol_options.num_folds, protocol_options.seed);

  EvaluationResult result(num_classes);
  KnnPrecision knn;
  for (size_t fold = 0; fold < protocol_options.num_folds; ++fold) {
    std::vector<LabeledMotion> train;
    std::vector<size_t> query_indices;
    for (size_t i = 0; i < motions.size(); ++i) {
      if (fold_of[i] == fold) {
        query_indices.push_back(i);
      } else {
        train.push_back(motions[i]);  // copy; training mutates nothing
      }
    }
    if (train.empty() || query_indices.empty()) continue;

    MOCEMG_ASSIGN_OR_RETURN(MotionClassifier clf,
                            MotionClassifier::Train(train,
                                                    classifier_options));
    for (size_t qi : query_indices) {
      const LabeledMotion& q = motions[qi];
      MOCEMG_ASSIGN_OR_RETURN(std::vector<double> feature,
                              clf.Featurize(q.mocap, q.emg));
      MOCEMG_ASSIGN_OR_RETURN(
          std::vector<MotionMatch> top1,
          clf.NearestNeighbors(feature, 1));
      MOCEMG_RETURN_NOT_OK(result.confusion.Record(q.label, top1[0].label));
      MOCEMG_ASSIGN_OR_RETURN(
          std::vector<MotionMatch> topk,
          clf.NearestNeighbors(feature, protocol_options.knn_k));
      std::vector<size_t> retrieved;
      retrieved.reserve(topk.size());
      for (const MotionMatch& m : topk) retrieved.push_back(m.label);
      knn.Record(q.label, retrieved);
      ++result.num_queries;
    }
  }
  if (result.num_queries == 0) {
    return Status::FailedPrecondition("protocol produced no queries");
  }
  MOCEMG_ASSIGN_OR_RETURN(result.misclassification_percent,
                          result.confusion.MisclassificationPercent());
  MOCEMG_ASSIGN_OR_RETURN(result.knn_percent, knn.Percent());
  return result;
}

}  // namespace mocemg
