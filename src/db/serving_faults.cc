#include "db/serving_faults.h"

#include <fstream>

#include "util/csv.h"
#include "util/macros.h"

namespace mocemg {

const char* ServingFaultTypeName(ServingFaultType type) {
  switch (type) {
    case ServingFaultType::kSlowBatch:
      return "slow_batch";
    case ServingFaultType::kEvalFailure:
      return "eval_failure";
    case ServingFaultType::kClockSkew:
      return "clock_skew";
    case ServingFaultType::kSnapshotBitFlip:
      return "snapshot_bit_flip";
    case ServingFaultType::kSnapshotTruncation:
      return "snapshot_truncation";
  }
  return "invalid";
}

ServingFaultInjector::ServingFaultInjector(const ServingFaultOptions& options,
                                           FakeClock* fake_clock)
    : options_(options), fake_clock_(fake_clock), rng_(options.seed) {}

Status ServingFaultInjector::OnBatchFormed(size_t batch_size) {
  (void)batch_size;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t batch = batches_++;
  // Fixed draw order (stall, failure, skew): three Bernoulli draws per
  // batch regardless of outcome, so the fault tape for a seed is the
  // same no matter which probabilities a test sets to zero.
  const bool stall = rng_.NextBool(options_.slow_batch_probability);
  const bool fail = rng_.NextBool(options_.eval_failure_probability);
  const bool skew = rng_.NextBool(options_.clock_skew_probability);
  if (stall && options_.slow_batch_stall_us > 0) {
    events_.push_back({ServingFaultType::kSlowBatch, batch,
                       options_.slow_batch_stall_us});
    if (fake_clock_ != nullptr) {
      fake_clock_->Advance(options_.slow_batch_stall_us);
    } else {
      SystemClock()->SleepMicros(options_.slow_batch_stall_us);
    }
  }
  if (skew && options_.clock_skew_us > 0 && fake_clock_ != nullptr) {
    events_.push_back(
        {ServingFaultType::kClockSkew, batch, options_.clock_skew_us});
    fake_clock_->Advance(options_.clock_skew_us);
  }
  if (fail) {
    events_.push_back({ServingFaultType::kEvalFailure, batch, 0});
    return Status::Unavailable("injected evaluation failure at batch " +
                               std::to_string(batch));
  }
  return Status::OK();
}

Status ServingFaultInjector::CorruptSnapshotBitFlip(const std::string& path) {
  MOCEMG_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  if (bytes.empty()) {
    return Status::InvalidArgument("cannot bit-flip an empty file: " + path);
  }
  // Skip the 10-byte magic so the flip lands in length/checksum/payload
  // — the detection we want to test, not the version check.
  const size_t lo = bytes.size() > 10 ? 10 : 0;
  uint64_t offset = 0;
  uint64_t bit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    offset = lo + rng_.NextBelow(bytes.size() - lo);
    bit = rng_.NextBelow(8);
    events_.push_back({ServingFaultType::kSnapshotBitFlip, 0, offset});
  }
  bytes[offset] = static_cast<char>(
      static_cast<unsigned char>(bytes[offset]) ^ (1u << bit));
  return WriteStringToFile(path, bytes);
}

Status ServingFaultInjector::CorruptSnapshotTruncate(const std::string& path) {
  MOCEMG_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  const size_t keep = bytes.size() / 2;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back({ServingFaultType::kSnapshotTruncation, 0, keep});
  }
  return WriteStringToFile(path, bytes.substr(0, keep));
}

std::vector<ServingFaultEvent> ServingFaultInjector::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void ServingFaultInjector::ClearEvents() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

}  // namespace mocemg
