/// \file query_server.h
/// \brief Batched query-serving front end over a MotionDatabase and an
/// optional FeatureIndex or ShardedFeatureIndex: the production-facing
/// path for the paper's Section 4 retrieval step.
///
/// Serving mechanisms (DESIGN.md §11.3):
///
///  - **Bounded admission**: Submit* enqueues a request and returns a
///    ticket; once `max_queue` requests are waiting, further submits
///    are rejected with OutOfRange instead of growing the queue
///    without bound. Rejections carry a computed `retry_after_us=N`
///    hint (see RetryAfterMicros) derived from the observed drain
///    rate, so clients back off proportionally to real pressure.
///  - **Deterministic micro-batching**: requests are served in strict
///    admission (FIFO) order, up to `max_batch` at a time. A batch's
///    unique cache-miss queries are evaluated together — through the
///    index's batch path when it is fresh, otherwise through one
///    blocked many-to-many kernel sweep over the database — and
///    duplicate queries inside a batch coalesce onto one evaluation.
///    Batch composition is a pure function of admission order, and the
///    kernels are bit-identical at any thread count, so the same
///    request sequence produces the same results *and the same
///    cache-hit counts* at MOCEMG_THREADS=1/2/8.
///  - **Stage-pipelined scheduling**: with `pipeline_depth` D > 1 a
///    drain forms up to D micro-batches per wave and overlaps their
///    evaluation stages on the thread pool (the formation and commit
///    stages stay serialized under the server lock, in batch order).
///    Every batch's answers are bit-identical to the depth-1 schedule
///    — evaluation is a pure function of the batch contents — but
///    cache-hit counts MAY differ across depths: batches formed in the
///    same wave cannot see each other's not-yet-committed inserts.
///  - **Seeded, shard-aware result cache**: hit lists are cached keyed
///    by (query bytes, k) under a seeded hash, with FIFO eviction at
///    `cache_capacity` entries. Each entry records the database epoch
///    and — when serving through a ShardedFeatureIndex — the per-shard
///    epoch vector and the entry's k-th (worst) hit distance. A lookup
///    after a mutation revalidates the entry per shard: a shard whose
///    epoch moved invalidates the entry only if one of the cached hits
///    lives in it or the shard cannot certify (triangle inequality,
///    ShardAllBeyond) that all its records now lie strictly beyond the
///    k-th distance. A mutation to one shard therefore invalidates
///    only the entries that provably depended on it; everything else
///    stays a hit. Invalid entries are erased on lookup and attributed
///    to the first failing shard in the per-shard counters.
///
/// Robustness mechanisms (DESIGN.md §12):
///
///  - **Deadlines**: every request carries a deadline budget (explicit
///    per submit, or `default_deadline_us`). At each batch formation
///    the queue is swept and overdue requests fail with
///    DeadlineExceeded — a request is answered in full or shed whole,
///    never served a stale answer after its budget elapsed. Time flows
///    through the Clock seam (`options.clock`), so tests drive expiry
///    with a FakeClock instead of racing the scheduler.
///  - **Deterministic graceful degradation**: when the number of
///    waiting requests at batch formation (after the expiry sweep,
///    before extraction) reaches `degrade_watermark`, the batch's
///    cache misses are answered from the index's int8 coarse tier
///    alone, grouped by k and drained through the blocked coarse scan
///    ((Sharded)FeatureIndex::BatchCoarseNearestNeighbors, DESIGN.md
///    §16) — roughly an order of magnitude less full-precision work
///    per query, one many-to-many kernel pass per group instead of a
///    per-query loop — tagged `degraded=true`
///    with a certified error bound on every distance. The trigger is a
///    pure function of queue state, so a replayed request sequence
///    degrades identically at any thread count. Degraded results are
///    never cached; when pressure clears the server falls back to the
///    full exact path on its own.
///  - **Fault injection seam**: `options.faults`, when set, is
///    consulted once per formed batch (under the formation lock, so
///    the fault tape is deterministic) and can stall the worker, skew
///    the clock, or fail the batch with Unavailable (serving_faults.h).
///
/// Exact-mode results are always bit-identical to a fresh exact linear
/// scan: the index tier is exact (feature_index.h), the blocked
/// fallback uses the same kernels and tie-break as MotionDatabase, and
/// cached entries are only ever served for the exact (bytes, k, epoch)
/// they were computed under. Degraded-mode results are approximate but
/// certified: each carries a bound B with |reported − true| <= B.
///
/// Threading: Submit/Take are safe from any thread. Serving happens
/// either inline (Drain/DrainOnce, or lazily inside Take when no
/// worker is running) or on the background worker started with
/// Start(). Replacing the serving index while requests are in flight
/// goes through SwapIndex, which quiesces evaluation (waits for
/// in-flight batches to commit, holds off new batch formation) and
/// swaps the pointer under the server lock — concurrent submitters
/// never observe a torn index. Mutating the database, or mutating an
/// index IN PLACE (ApplyUpdate/Rebuild on an object the server is
/// serving from), is still the caller's to serialize: quiesce the
/// server (Stop or drain) first, or build the replacement aside and
/// SwapIndex it in. The epoch guard turns an unsynchronized mutation
/// into query failures, never corruption.

#ifndef MOCEMG_DB_QUERY_SERVER_H_
#define MOCEMG_DB_QUERY_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/feature_index.h"
#include "db/motion_database.h"
#include "util/clock.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/result.h"

namespace mocemg {

class ServingFaultInjector;
class ShardedFeatureIndex;

/// \brief Serving configuration.
struct QueryServerOptions {
  /// Admission bound: submits beyond this many waiting requests are
  /// rejected with OutOfRange. Must be >= 1.
  size_t max_queue = 1024;
  /// Micro-batch cap: one drain serves at most this many requests.
  /// Must be >= 1.
  size_t max_batch = 64;
  /// Result-cache capacity in entries; 0 disables caching (duplicate
  /// queries inside one batch still coalesce).
  size_t cache_capacity = 4096;
  /// Seed for the cache's byte hash (key layout is stable; the seed
  /// decorrelates bucket placement between server instances).
  uint64_t cache_seed = 0x9E3779B97F4A7C15ULL;
  /// Thread budget for batch evaluation (passed through to the index
  /// batch path / the blocked fallback's per-query selection).
  ParallelOptions parallel;
  /// Time source for deadlines, drain-rate measurement, and backoff.
  /// nullptr = SystemClock(). Must outlive the server.
  const Clock* clock = nullptr;
  /// Deadline budget, in microseconds, applied to submits that do not
  /// carry their own. 0 = requests never expire.
  uint64_t default_deadline_us = 0;
  /// Degraded-mode trigger: when this many requests are waiting at
  /// batch formation, cache misses are answered from the coarse tier
  /// (needs a fresh index with a quantized tier; otherwise the exact
  /// path serves as usual). 0 disables degradation. Must be
  /// <= max_queue — a watermark above the admission bound could never
  /// fire.
  size_t degrade_watermark = 0;
  /// Fault injection seam for tests and the abl10 bench; nullptr in
  /// production. Must outlive the server.
  ServingFaultInjector* faults = nullptr;
  /// Micro-batches formed (and evaluated concurrently) per drain wave.
  /// 1 = the classic one-batch-at-a-time schedule; D > 1 overlaps up
  /// to D batch evaluations on the thread pool. Answers are identical
  /// at every depth; cache-hit counts may differ (batches in one wave
  /// cannot see each other's inserts). Must be >= 1.
  size_t pipeline_depth = 1;
};

/// \brief Per-shard serving counters, kept when the server serves
/// through a ShardedFeatureIndex (empty otherwise). Aggregated in
/// batch-commit order, so the vector is deterministic for a given
/// request sequence at any thread count and pipeline depth.
struct ShardServeStats {
  /// Per-(query, shard) scan tasks executed against this shard
  /// (exact and coarse).
  uint64_t scans = 0;
  /// Exact distance evaluations this shard performed.
  uint64_t distance_computations = 0;
  /// int8 coarse estimates this shard computed.
  uint64_t coarse_computations = 0;
  /// Records skipped by this shard's coarse prefilter.
  uint64_t coarse_pruned = 0;
  /// Cache entries invalidated because this shard's mutation broke
  /// their revalidation certificate (attributed to the first failing
  /// shard).
  uint64_t cache_invalidations = 0;
};

/// \brief Monotonic serving counters (a consistent snapshot via stats()).
struct QueryServerStats {
  uint64_t submitted = 0;    ///< requests admitted to the queue
  /// Submits refused by the admission bound — the load-shedding
  /// counter; each rejection carried a retry_after_us hint.
  uint64_t rejected = 0;
  uint64_t served = 0;       ///< requests fulfilled with an answer
  uint64_t batches = 0;      ///< micro-batches executed
  uint64_t cache_hits = 0;   ///< requests answered from the cache
  uint64_t cache_misses = 0; ///< requests that needed evaluation
  uint64_t coalesced = 0;    ///< duplicate in-batch requests folded away
  uint64_t evictions = 0;    ///< cache entries dropped by the FIFO bound
  /// Requests failed with DeadlineExceeded by the expiry sweep.
  uint64_t expired = 0;
  /// Requests answered from the coarse tier (tagged degraded=true).
  uint64_t degraded = 0;
  /// Micro-batches that ran in degraded mode.
  uint64_t degraded_batches = 0;
  /// Micro-batch size histogram in power-of-two buckets: bucket 0
  /// counts batches of exactly one request, bucket b >= 1 counts
  /// batches of (2^(b-1), 2^b] requests. Sized to the highest
  /// occupied bucket + 1 (empty until the first batch commits).
  /// Together with `batches` this shows how well micro-batching is
  /// amortizing the blocked many-to-many scan (DESIGN.md §16).
  std::vector<uint64_t> batch_size_hist;
  /// Most requests ever waiting at once (updated at admission).
  uint64_t queue_high_water = 0;
  /// Index snapshot loads reported via NoteSnapshotLoad.
  uint64_t snapshot_loads = 0;
  /// Snapshot loads that fell back to a rebuild.
  uint64_t snapshot_fallbacks = 0;
  /// Cache entries kept alive across a shard mutation by the per-shard
  /// revalidation certificate (sharded serving only).
  uint64_t cache_revalidations = 0;
  /// Kernel backend every distance evaluation dispatched to
  /// ("scalar", "avx2", "avx512" or "neon"; kernel_dispatch.h). Filled
  /// at stats() time, so it reflects the backend active right now.
  std::string kernel_backend;
  /// Comma-separated CPU SIMD feature flags detected at startup.
  std::string cpu_features;
  /// Aggregated index statistics over all index-served batches (zero
  /// when serving through the exact fallback).
  IndexQueryStats index_stats;
  /// Per-shard serving counters; sized num_shards when serving through
  /// a ShardedFeatureIndex, empty otherwise.
  std::vector<ShardServeStats> shard_stats;
};

/// \brief A served result with its degradation provenance. Exact
/// answers have degraded=false and error_bound=0; degraded answers
/// carry the certified bound B: every hit's true distance lies within
/// [hit.distance − B, hit.distance + B].
struct ServedAnswer {
  bool degraded = false;
  double error_bound = 0.0;
  /// Filled for kNN requests; empty for classify requests.
  std::vector<QueryHit> hits;
  /// Filled for classify requests.
  size_t label = 0;
};

/// \brief Batched kNN / classification server. Movable, not copyable.
class QueryServer {
 public:
  QueryServer() = default;
  ~QueryServer();
  QueryServer(QueryServer&&) noexcept;
  QueryServer& operator=(QueryServer&&) noexcept;

  /// \brief Creates a server over `database`, serving through `index`
  /// whenever it is non-null and fresh (matching epoch) and falling
  /// back to the exact blocked scan otherwise. Both pointers must
  /// outlive the server.
  static Result<QueryServer> Create(const MotionDatabase* database,
                                    const FeatureIndex* index = nullptr,
                                    const QueryServerOptions& options = {});

  /// \brief Creates a server over `database` that serves scatter-gather
  /// through the sharded index whenever it is non-null and fresh
  /// (applied_epoch matching the database), falling back to the exact
  /// blocked scan otherwise. Both pointers must outlive the server.
  static Result<QueryServer> Create(const MotionDatabase* database,
                                    const ShardedFeatureIndex* index,
                                    const QueryServerOptions& options = {});

  /// \brief Atomically replaces the serving index (nullptr = exact
  /// fallback): waits for in-flight batch evaluations to commit while
  /// holding off new batch formation, swaps the pointer, and resumes.
  /// Safe to call while the worker runs and submits race — no request
  /// ever observes a torn index; each batch serves wholly through the
  /// index installed when it was formed. The new index must be over
  /// the server's database.
  Status SwapIndex(const FeatureIndex* index);
  Status SwapIndex(const ShardedFeatureIndex* index);

  /// \brief Enqueues a kNN request; returns its ticket, or OutOfRange
  /// when the admission queue is full (message carries a
  /// retry_after_us hint). The query is validated here (dimension,
  /// finiteness, 1 <= k <= database size) so serving cannot fail
  /// per-request. `deadline_us`, when non-zero, overrides
  /// options.default_deadline_us as this request's budget from now.
  Result<uint64_t> SubmitNearestNeighbors(std::vector<double> query,
                                          size_t k);
  Result<uint64_t> SubmitNearestNeighbors(std::vector<double> query,
                                          size_t k, uint64_t deadline_us);

  /// \brief Enqueues a classify-by-vote request over the k nearest
  /// neighbours; same admission, validation, and deadline rules.
  Result<uint64_t> SubmitClassify(std::vector<double> query, size_t k);
  Result<uint64_t> SubmitClassify(std::vector<double> query, size_t k,
                                  uint64_t deadline_us);

  /// \brief Serves one wave — up to pipeline_depth micro-batches of up
  /// to max_batch requests, formed in admission order and evaluated
  /// concurrently — and commits them in batch order. `served_out`,
  /// when given, receives the number of requests fulfilled (0 when the
  /// queue was empty; expired requests do not count — they were shed,
  /// not served).
  Status DrainOnce(size_t* served_out = nullptr);

  /// \brief Serves waves until the queue is empty.
  Status Drain();

  /// \brief Blocks until the ticket's kNN result is ready and returns
  /// it (serving inline when no background worker is running). A
  /// ticket can be taken exactly once. Degraded answers are returned
  /// like exact ones — use TakeAnswer to see the tag and bound.
  Result<std::vector<QueryHit>> TakeHits(uint64_t ticket);

  /// \brief Blocks until the ticket's classification is ready.
  Result<size_t> TakeLabel(uint64_t ticket);

  /// \brief Blocks until the ticket is ready and returns the full
  /// answer with its degradation tag and certified error bound.
  /// Works for both kNN and classify tickets.
  Result<ServedAnswer> TakeAnswer(uint64_t ticket);

  /// \brief Synchronous single kNN request through the full admission
  /// → batch → cache path.
  Result<std::vector<QueryHit>> NearestNeighbors(
      const std::vector<double>& query, size_t k);

  /// \brief Synchronous single classification request.
  Result<size_t> Classify(const std::vector<double>& query, size_t k);

  /// \brief Submits the whole set, serves it in deterministic
  /// micro-batches, and returns results in input order. Element i is
  /// bit-identical to database->NearestNeighbors(queries[i], k).
  Result<std::vector<std::vector<QueryHit>>> NearestNeighborsBatch(
      const std::vector<std::vector<double>>& queries, size_t k);

  /// \brief Batched classification: element i is the vote among
  /// queries[i]'s k nearest neighbours.
  Result<std::vector<size_t>> ClassifyBatch(
      const std::vector<std::vector<double>>& queries, size_t k);

  /// \brief Starts the background worker that drains the queue as
  /// requests arrive. Idempotent.
  Status Start();

  /// \brief Stops the worker after it drains the remaining queue.
  /// No-op when not started.
  void Stop();

  /// \brief Records an index-snapshot load attempt in the serving
  /// counters (the boot path calls this with
  /// IndexSnapshotLoadInfo::loaded_from_snapshot).
  void NoteSnapshotLoad(bool loaded_from_snapshot);

  /// \brief Consistent snapshot of the serving counters.
  QueryServerStats stats() const;

 private:
  struct Impl;
  explicit QueryServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// \brief Extracts the `retry_after_us=N` hint from an admission
/// rejection's message; 0 when the status carries none. The hint is
/// (waiting requests + 1) × the EWMA per-request drain time, so it
/// grows monotonically with queue depth and tracks real serving speed.
uint64_t RetryAfterMicros(const Status& status);

/// \brief Client-side backoff policy for SubmitWithBackoff.
struct BackoffOptions {
  /// First retry delay; doubles (×multiplier) per attempt up to max_us.
  uint64_t initial_us = 1000;
  uint64_t max_us = 1000000;
  double multiplier = 2.0;
  /// Uniform jitter fraction: the delay is drawn from
  /// [base·(1−jitter), base·(1+jitter)] with a seeded Rng, so
  /// synchronized clients de-synchronize deterministically.
  double jitter = 0.2;
  uint64_t seed = 1;
  /// Total submit attempts before giving up with the last rejection.
  size_t max_attempts = 8;
};

/// \brief Seeded exponential backoff with uniform jitter. The delay
/// sequence is a pure function of (options, seed) — tests assert it.
class JitteredBackoff {
 public:
  explicit JitteredBackoff(const BackoffOptions& options);

  /// \brief Next delay in microseconds (advances the schedule).
  uint64_t NextDelayUs();

  /// \brief Restarts the schedule (the jitter stream continues).
  void Reset();

 private:
  BackoffOptions opts_;
  Rng rng_;
  uint64_t base_us_ = 0;
};

/// \brief Submits with retry: on an admission rejection, sleeps for
/// max(jittered backoff delay, the server's retry_after_us hint) on
/// `clock` (nullptr = the system clock; tests pass a FakeClock so the
/// loop runs instantly) and tries again, up to
/// backoff.max_attempts. Non-OutOfRange errors propagate immediately.
Result<uint64_t> SubmitWithBackoff(QueryServer* server,
                                   std::vector<double> query, size_t k,
                                   bool classify = false,
                                   const BackoffOptions& backoff = {},
                                   const Clock* clock = nullptr);

}  // namespace mocemg

#endif  // MOCEMG_DB_QUERY_SERVER_H_
