/// \file query_server.h
/// \brief Batched query-serving front end over a MotionDatabase and an
/// optional FeatureIndex: the production-facing path for the paper's
/// Section 4 retrieval step.
///
/// Three mechanisms (DESIGN.md §11.3):
///
///  - **Bounded admission**: Submit* enqueues a request and returns a
///    ticket; once `max_queue` requests are waiting, further submits
///    are rejected with OutOfRange instead of growing the queue
///    without bound.
///  - **Deterministic micro-batching**: requests are served in strict
///    admission (FIFO) order, up to `max_batch` at a time. A batch's
///    unique cache-miss queries are evaluated together — through the
///    index's batch path when it is fresh, otherwise through one
///    blocked many-to-many kernel sweep over the database — and
///    duplicate queries inside a batch coalesce onto one evaluation.
///    Batch composition is a pure function of admission order, and the
///    kernels are bit-identical at any thread count, so the same
///    request sequence produces the same results *and the same
///    cache-hit counts* at MOCEMG_THREADS=1/2/8.
///  - **Seeded, invalidation-correct result cache**: hit lists are
///    cached keyed by (query bytes, k, database epoch) under a seeded
///    hash, with FIFO eviction at `cache_capacity` entries. The epoch
///    in the key makes invalidation structural — after any database
///    mutation the epoch moves and stale entries can never match
///    again; they age out of the FIFO ring.
///
/// Results are always bit-identical to a fresh exact linear scan:
/// the index tier is exact (feature_index.h), the blocked fallback
/// uses the same kernels and tie-break as MotionDatabase, and cached
/// entries are only ever served for the exact (bytes, k, epoch) they
/// were computed under.
///
/// Threading: Submit/Take are safe from any thread. Serving happens
/// either inline (Drain/DrainOnce, or lazily inside Take when no
/// worker is running) or on the background worker started with
/// Start(). Mutating the database or index concurrently with serving
/// is NOT synchronized here — quiesce the server first, as the epoch
/// guard turns unsynchronized mutation into query failures, not
/// corruption.

#ifndef MOCEMG_DB_QUERY_SERVER_H_
#define MOCEMG_DB_QUERY_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "db/feature_index.h"
#include "db/motion_database.h"
#include "util/parallel.h"
#include "util/result.h"

namespace mocemg {

/// \brief Serving configuration.
struct QueryServerOptions {
  /// Admission bound: submits beyond this many waiting requests are
  /// rejected with OutOfRange. Must be >= 1.
  size_t max_queue = 1024;
  /// Micro-batch cap: one drain serves at most this many requests.
  /// Must be >= 1.
  size_t max_batch = 64;
  /// Result-cache capacity in entries; 0 disables caching (duplicate
  /// queries inside one batch still coalesce).
  size_t cache_capacity = 4096;
  /// Seed for the cache's byte hash (key layout is stable; the seed
  /// decorrelates bucket placement between server instances).
  uint64_t cache_seed = 0x9E3779B97F4A7C15ULL;
  /// Thread budget for batch evaluation (passed through to the index
  /// batch path / the blocked fallback's per-query selection).
  ParallelOptions parallel;
};

/// \brief Monotonic serving counters (a consistent snapshot via stats()).
struct QueryServerStats {
  uint64_t submitted = 0;    ///< requests admitted to the queue
  uint64_t rejected = 0;     ///< submits refused by the admission bound
  uint64_t served = 0;       ///< requests fulfilled
  uint64_t batches = 0;      ///< micro-batches executed
  uint64_t cache_hits = 0;   ///< requests answered from the cache
  uint64_t cache_misses = 0; ///< requests that needed evaluation
  uint64_t coalesced = 0;    ///< duplicate in-batch requests folded away
  uint64_t evictions = 0;    ///< cache entries dropped by the FIFO bound
  /// Aggregated index statistics over all index-served batches (zero
  /// when serving through the exact fallback).
  IndexQueryStats index_stats;
};

/// \brief Batched kNN / classification server. Movable, not copyable.
class QueryServer {
 public:
  QueryServer() = default;
  ~QueryServer();
  QueryServer(QueryServer&&) noexcept;
  QueryServer& operator=(QueryServer&&) noexcept;

  /// \brief Creates a server over `database`, serving through `index`
  /// whenever it is non-null and fresh (matching epoch) and falling
  /// back to the exact blocked scan otherwise. Both pointers must
  /// outlive the server.
  static Result<QueryServer> Create(const MotionDatabase* database,
                                    const FeatureIndex* index = nullptr,
                                    const QueryServerOptions& options = {});

  /// \brief Enqueues a kNN request; returns its ticket, or OutOfRange
  /// when the admission queue is full. The query is validated here
  /// (dimension, finiteness, k >= 1) so serving cannot fail per-request.
  Result<uint64_t> SubmitNearestNeighbors(std::vector<double> query,
                                          size_t k);

  /// \brief Enqueues a classify-by-vote request over the k nearest
  /// neighbours; same admission and validation rules.
  Result<uint64_t> SubmitClassify(std::vector<double> query, size_t k);

  /// \brief Serves one micro-batch (up to max_batch requests) in
  /// admission order. `served_out`, when given, receives the number of
  /// requests fulfilled (0 when the queue was empty).
  Status DrainOnce(size_t* served_out = nullptr);

  /// \brief Serves micro-batches until the queue is empty.
  Status Drain();

  /// \brief Blocks until the ticket's kNN result is ready and returns
  /// it (serving inline when no background worker is running). A
  /// ticket can be taken exactly once.
  Result<std::vector<QueryHit>> TakeHits(uint64_t ticket);

  /// \brief Blocks until the ticket's classification is ready.
  Result<size_t> TakeLabel(uint64_t ticket);

  /// \brief Synchronous single kNN request through the full admission
  /// → batch → cache path.
  Result<std::vector<QueryHit>> NearestNeighbors(
      const std::vector<double>& query, size_t k);

  /// \brief Synchronous single classification request.
  Result<size_t> Classify(const std::vector<double>& query, size_t k);

  /// \brief Submits the whole set, serves it in deterministic
  /// micro-batches, and returns results in input order. Element i is
  /// bit-identical to database->NearestNeighbors(queries[i], k).
  Result<std::vector<std::vector<QueryHit>>> NearestNeighborsBatch(
      const std::vector<std::vector<double>>& queries, size_t k);

  /// \brief Batched classification: element i is the vote among
  /// queries[i]'s k nearest neighbours.
  Result<std::vector<size_t>> ClassifyBatch(
      const std::vector<std::vector<double>>& queries, size_t k);

  /// \brief Starts the background worker that drains the queue as
  /// requests arrive. Idempotent.
  Status Start();

  /// \brief Stops the worker after it drains the remaining queue.
  /// No-op when not started.
  void Stop();

  /// \brief Consistent snapshot of the serving counters.
  QueryServerStats stats() const;

 private:
  struct Impl;
  explicit QueryServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace mocemg

#endif  // MOCEMG_DB_QUERY_SERVER_H_
