/// \file feature_index.h
/// \brief Cluster-pruned exact kNN index over final feature vectors — the
/// iDistance-style "indexing technique to prune irrelevant motions" the
/// paper points to for fast searching (its refs [14]/[13]).
///
/// Construction partitions the records with k-means; each partition keeps
/// its reference point (centroid), covering radius, and — since the SoA
/// rework (DESIGN.md §10.3) — a contiguous row-major copy of its member
/// records plus their squared norms, so a query scans one packed block
/// with the dot-product-form distance kernel instead of pointer-chasing
/// record indices into the database. A query visits partitions in
/// ascending distance-to-reference order and prunes any partition whose
/// triangle-inequality lower bound d(q, ref) − radius exceeds the current
/// k-th best distance (evaluated entirely in squared space — no sqrt).
/// Results are exact; the win is the fraction of distance computations
/// avoided (reported for the bench).

#ifndef MOCEMG_DB_FEATURE_INDEX_H_
#define MOCEMG_DB_FEATURE_INDEX_H_

#include <cstdint>
#include <vector>

#include "db/motion_database.h"
#include "linalg/matrix.h"
#include "util/parallel.h"
#include "util/result.h"

namespace mocemg {

/// \brief Index construction parameters.
struct FeatureIndexOptions {
  /// Number of k-means partitions; 0 = auto (≈ √N, at least 1).
  size_t num_partitions = 0;
  uint64_t seed = 17;
  /// Parallelism for Rebuild's per-record distance pass and for
  /// BatchNearestNeighbors. Queries are read-only over the built index,
  /// so results are bit-identical at any thread count.
  ParallelOptions parallel;
};

/// \brief Query-time statistics (filled per query).
struct IndexQueryStats {
  size_t distance_computations = 0;
  size_t partitions_visited = 0;
  size_t partitions_pruned = 0;
};

/// \brief Exact cluster-pruned kNN index. The index copies each
/// partition's features into its own packed block at Build/Rebuild;
/// rebuilding after inserts is the caller's responsibility (Rebuild()).
class FeatureIndex {
 public:
  FeatureIndex() = default;

  /// \brief Builds over the database's current records.
  static Result<FeatureIndex> Build(const MotionDatabase* database,
                                    const FeatureIndexOptions& options = {});

  /// \brief Rebuilds over the database's current records (repacks every
  /// partition block and its norms from the database's packed features).
  Status Rebuild();

  /// \brief Exact kNN; identical results to the database's linear scan.
  ///
  /// The partition scan runs the dot-product-form kernel over the
  /// packed block; candidates inside the kernel's error bound of the
  /// current k-th best are re-checked with the exact difference-form
  /// kernel, so the reported hits (indices and distances) are
  /// bit-identical to the linear scan's. The triangle-inequality prune
  /// is evaluated in squared space, so the only sqrts in a query are
  /// the k reported hit distances.
  Result<std::vector<QueryHit>> NearestNeighbors(
      const std::vector<double>& query, size_t k,
      IndexQueryStats* stats = nullptr) const;

  /// \brief kNN for a batch of queries, parallelized over queries with
  /// the options' ParallelOptions. Element i equals
  /// NearestNeighbors(queries[i], k) exactly; `stats`, when given, is
  /// accumulated per chunk and combined in ascending chunk order, so it
  /// (like the hits) is identical at every thread count.
  Result<std::vector<std::vector<QueryHit>>> BatchNearestNeighbors(
      const std::vector<std::vector<double>>& queries, size_t k,
      IndexQueryStats* stats = nullptr) const;

  size_t num_partitions() const { return partitions_.size(); }

 private:
  struct Partition {
    double radius = 0.0;      ///< covering radius (true distance)
    double radius_sq = 0.0;   ///< radius², for the sqrt-free prune
    double max_norm_sq = 0.0; ///< max ‖record‖² in the block (error bound)
    /// Member records, ascending database order.
    std::vector<size_t> record_indices;
    /// SoA: the members' features packed row-major (size × dim), and
    /// their squared norms for the dot-product-form scan.
    std::vector<double> block;
    std::vector<double> norms_sq;

    size_t size() const { return record_indices.size(); }
  };

  /// Per-query scratch, reused across a batch chunk.
  struct Scratch {
    std::vector<double> ref_sq;   ///< squared distance to each reference
    std::vector<std::pair<double, size_t>> order;
    std::vector<double> dist;     ///< per-partition scan buffer
    std::vector<QueryHit> best;
  };

  Result<std::vector<QueryHit>> NearestNeighborsImpl(
      const std::vector<double>& query, size_t k, IndexQueryStats* stats,
      Scratch* scratch) const;

  const MotionDatabase* database_ = nullptr;
  FeatureIndexOptions options_;
  std::vector<Partition> partitions_;
  /// Partition references packed row-major (num_partitions × dim) so
  /// the visit-order pass is one one-to-many kernel call.
  Matrix references_;
  size_t max_partition_size_ = 0;
};

}  // namespace mocemg

#endif  // MOCEMG_DB_FEATURE_INDEX_H_
