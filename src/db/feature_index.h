/// \file feature_index.h
/// \brief Cluster-pruned exact kNN index over final feature vectors — the
/// iDistance-style "indexing technique to prune irrelevant motions" the
/// paper points to for fast searching (its refs [14]/[13]).
///
/// Construction partitions the records with k-means; each partition keeps
/// its reference point (centroid) and covering radius. A query visits
/// partitions in ascending distance-to-reference order and prunes any
/// partition whose triangle-inequality lower bound d(q, ref) − radius
/// exceeds the current k-th best distance. Results are exact; the win is
/// the fraction of distance computations avoided (reported for the bench).

#ifndef MOCEMG_DB_FEATURE_INDEX_H_
#define MOCEMG_DB_FEATURE_INDEX_H_

#include <cstdint>
#include <vector>

#include "db/motion_database.h"
#include "util/parallel.h"
#include "util/result.h"

namespace mocemg {

/// \brief Index construction parameters.
struct FeatureIndexOptions {
  /// Number of k-means partitions; 0 = auto (≈ √N, at least 1).
  size_t num_partitions = 0;
  uint64_t seed = 17;
  /// Parallelism for Rebuild's per-record distance pass and for
  /// BatchNearestNeighbors. Queries are read-only over the built index,
  /// so results are bit-identical at any thread count.
  ParallelOptions parallel;
};

/// \brief Query-time statistics (filled per query).
struct IndexQueryStats {
  size_t distance_computations = 0;
  size_t partitions_visited = 0;
  size_t partitions_pruned = 0;
};

/// \brief Exact cluster-pruned kNN index. The index references the
/// database it was built from; rebuilding after inserts is the caller's
/// responsibility (Rebuild()).
class FeatureIndex {
 public:
  FeatureIndex() = default;

  /// \brief Builds over the database's current records.
  static Result<FeatureIndex> Build(const MotionDatabase* database,
                                    const FeatureIndexOptions& options = {});

  /// \brief Rebuilds over the database's current records.
  Status Rebuild();

  /// \brief Exact kNN; identical results to the database's linear scan.
  ///
  /// Record distances are compared in squared space (one sqrt per
  /// reported hit instead of one per scanned record); the triangle-
  /// inequality partition prune still operates on true distances.
  Result<std::vector<QueryHit>> NearestNeighbors(
      const std::vector<double>& query, size_t k,
      IndexQueryStats* stats = nullptr) const;

  /// \brief kNN for a batch of queries, parallelized over queries with
  /// the options' ParallelOptions. Element i equals
  /// NearestNeighbors(queries[i], k) exactly; `stats`, when given, is
  /// the sum over all queries. The index is immutable during queries,
  /// so the batch is safe and deterministic at any thread count.
  Result<std::vector<std::vector<QueryHit>>> BatchNearestNeighbors(
      const std::vector<std::vector<double>>& queries, size_t k,
      IndexQueryStats* stats = nullptr) const;

  size_t num_partitions() const { return partitions_.size(); }

 private:
  struct Partition {
    std::vector<double> reference;
    double radius = 0.0;
    std::vector<size_t> record_indices;
  };

  const MotionDatabase* database_ = nullptr;
  FeatureIndexOptions options_;
  std::vector<Partition> partitions_;
};

}  // namespace mocemg

#endif  // MOCEMG_DB_FEATURE_INDEX_H_
