/// \file feature_index.h
/// \brief Cluster-pruned exact kNN index over final feature vectors — the
/// iDistance-style "indexing technique to prune irrelevant motions" the
/// paper points to for fast searching (its refs [14]/[13]).
///
/// Construction partitions the records with k-means; each partition keeps
/// its reference point (centroid), covering radius, a contiguous
/// row-major copy of its member records plus their squared norms
/// (DESIGN.md §10.3), and — since the quantized tier (§11) — int8
/// per-dimension affine codes of the same rows with a measured
/// reconstruction-error bound. A query visits partitions in ascending
/// distance-to-reference order, prunes whole partitions with the
/// triangle-inequality bound d(q, ref) − radius, and inside a surviving
/// partition runs a two-tier scan: an exact-integer coarse pass over
/// the int8 codes (1 byte/dim of memory traffic instead of 8, int32
/// arithmetic instead of doubles) discards every record whose
/// *provable* distance lower bound exceeds the current k-th best, and
/// only the survivors are re-ranked with the exact full-precision
/// kernels. Results are bit-identical to the linear scan — the coarse
/// tier only ever changes how much full-precision work is done, never
/// which hits are reported.
///
/// Since the sharded serving layer (§13) the partition machinery is
/// split in two: ComputeIndexLayout runs the k-means and produces the
/// global partition layout (references + memberships), and
/// IndexPartitionSet packs and scans an arbitrary subset of those
/// partitions. FeatureIndex is the single-set composition;
/// ShardedFeatureIndex (sharded_index.h) distributes the same global
/// layout across N sets. Because every per-record quantity (exact
/// distance, coarse estimate, prune bound) is a pure function of the
/// partition that owns the record, regrouping partitions into shards
/// cannot change any reported hit — that is the §13 bit-identity
/// argument.
///
/// Staleness: the index records the database epoch it was built
/// against; once the database mutates (Insert/UpdateFeature), queries
/// fail with FailedPrecondition until Rebuild().

#ifndef MOCEMG_DB_FEATURE_INDEX_H_
#define MOCEMG_DB_FEATURE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "db/motion_database.h"
#include "linalg/matrix.h"
#include "util/parallel.h"
#include "util/result.h"
#include "util/top_k.h"

namespace mocemg {

/// \brief Storage precision of the exact-scan tier (DESIGN.md §15).
/// f32 packs a float32 mirror of every partition's SoA block next to
/// the double block: the dot-form scan streams 4 bytes/dim instead of
/// 8 and doubles the SIMD lane count, and every candidate within the
/// certified `Float32DotFormErrorBound` margin of the k-th best is
/// re-evaluated through the double kernels — reported hits stay
/// bit-identical to the f64 path (and the linear scan) on every
/// backend, shard count, and thread count. kDefault resolves through
/// the MOCEMG_EXACT_PRECISION env ("f64"/"f32"; unset or invalid →
/// f64, invalid warns once); an explicit option always wins over the
/// env, and the CLI --exact-precision flag wins over both.
enum class ExactPrecision : uint8_t {
  kDefault = 0,  ///< resolve via MOCEMG_EXACT_PRECISION, else f64
  kF64 = 1,      ///< double-only exact scan (the historical behaviour)
  kF32 = 2,      ///< float32 mirror scan + error-bound-gated f64 refine
};

/// \brief Stable lowercase name ("default", "f64", "f32").
const char* ExactPrecisionName(ExactPrecision precision);

/// \brief Parses "f64"/"f32"/"default" (as accepted by the env/CLI).
Result<ExactPrecision> ParseExactPrecision(const std::string& name);

/// \brief Resolves kDefault against MOCEMG_EXACT_PRECISION (read once;
/// unset or unparsable → kF64 with a one-time warning on bad values).
/// Non-default inputs pass through unchanged.
ExactPrecision ResolveExactPrecision(ExactPrecision precision);

/// \brief Index construction parameters.
struct FeatureIndexOptions {
  /// Number of k-means partitions; 0 = auto (≈ √N, at least 1).
  size_t num_partitions = 0;
  uint64_t seed = 17;
  /// Two-tier scan: build int8 codes at Rebuild and use the coarse
  /// pass to prune records before the exact re-rank. Results are
  /// bit-identical either way; OFF skips the codes entirely and scans
  /// with the PR 4 dot-form + refine path alone.
  bool quantized_scan = true;
  /// Coarse-code width: 8 (one byte per dim, 256-level grid) or 4
  /// (nibble-packed two dims per byte, 16-level grid — half the coarse
  /// memory traffic, a 17× coarser grid so spread partitions prune
  /// less). Exact results are bit-identical at either width; only the
  /// coarse pruning power and CoarseNearestNeighbors' certified error
  /// bound change. Any other value fails Build/Pack.
  size_t quant_bits = 8;
  /// Partitions with fewer rows than this are scanned directly with
  /// the dot-form kernel: the coarse pass carries a fixed per-partition
  /// cost (query clamp + encode + residual measurement + threshold
  /// math), and below a few hundred rows that overhead exceeds the
  /// full-precision work it could save — measured on the √N-partition
  /// default layout, where ~100-row partitions ran ~1.3x slower with
  /// codes than without. Pure build-time property, so scan behaviour
  /// stays deterministic.
  size_t quantized_min_rows = 256;
  /// Exact-tier storage precision (see ExactPrecision above). Resolved
  /// (env applied) at Build/Rebuild and stored back, so snapshots and
  /// RefreshPartition see the concrete choice, not kDefault. Results
  /// are bit-identical at either precision; only bandwidth changes.
  ExactPrecision exact_precision = ExactPrecision::kDefault;
  /// Queries per block for the batch entry points' query-block scan
  /// (BatchNearestNeighbors / BatchCoarseNearestNeighbors); 0 = auto
  /// (currently 32). Pure query-time knob: every block size yields
  /// bit-identical hits and stats (DESIGN.md §16), so it is not
  /// serialized into snapshots — a reloaded index uses the default.
  size_t query_block = 0;
  /// Parallelism for Rebuild's per-partition packing pass and for
  /// BatchNearestNeighbors. Queries are read-only over the built index,
  /// so results are bit-identical at any thread count.
  ParallelOptions parallel;
};

/// \brief Query-time statistics (filled per query).
struct IndexQueryStats {
  /// Full-precision distance evaluations (partition references + exact
  /// scans + coarse-survivor re-ranks). The coarse-tier win is this
  /// number shrinking relative to the records visited.
  size_t distance_computations = 0;
  size_t partitions_visited = 0;
  size_t partitions_pruned = 0;
  /// Records scored by the int8 coarse pass (1 byte/dim traffic).
  size_t coarse_computations = 0;
  /// Records the coarse bound discarded without exact evaluation.
  size_t coarse_pruned = 0;
  /// Records scored through the float32 mirror (4 bytes/dim traffic
  /// instead of 8). Zero unless the index packed mirrors (f32 tier).
  size_t f32_scans = 0;
  /// f32-scanned records whose fp32 distance fell within the certified
  /// margin of the k-th best and were re-evaluated in double. The f32
  /// tier's win is f32_refined staying a small fraction of f32_scans.
  size_t f32_refined = 0;
};

class IndexSnapshotCodec;

/// \brief The global partition layout: k-means references plus each
/// partition's member records (ascending database order). Empty
/// partitions are already dropped. Both the single index and every
/// shard pack from the same layout, which is what makes sharded
/// results bit-identical to the single scan.
struct IndexLayout {
  /// Partition references packed row-major (num_partitions × dim).
  Matrix references;
  /// members[i] = the records of partition i, ascending.
  std::vector<std::vector<size_t>> members;
};

/// \brief Runs the seeded k-means over the database's packed features
/// and returns the partition layout. `options.num_partitions` == 0
/// picks ≈ √N; empty partitions (k-means can strand one on tiny
/// databases) are dropped. Deterministic in (database bytes, options).
Result<IndexLayout> ComputeIndexLayout(const MotionDatabase& database,
                                       const FeatureIndexOptions& options);

/// \brief A packed, scannable set of partitions — the storage + scan
/// engine behind FeatureIndex (one set holding every partition) and
/// ShardedFeatureIndex (one set per shard holding a subset). Scans
/// accumulate into a caller-owned BoundedTopK so per-set results can
/// be merged in fixed order with the usual (distance, index)
/// tie-break.
class IndexPartitionSet {
 public:
  struct Partition {
    double radius = 0.0;      ///< covering radius (true distance)
    double radius_sq = 0.0;   ///< radius², for the sqrt-free prune
    double max_norm_sq = 0.0; ///< max ‖record‖² in the block (error bound)
    /// Member records, ascending database order.
    std::vector<size_t> record_indices;
    /// SoA: the members' features packed row-major (size × dim), and
    /// their squared norms for the dot-product-form scan.
    std::vector<double> block;
    std::vector<double> norms_sq;
    /// Quantized tier (empty when disabled or below quantized_min_rows):
    /// per-dimension offsets + uniform scale of the affine grid and the
    /// members' integer codes, plus the partition's worst measured
    /// reconstruction error ‖r − r̃‖² (inflated by the build-side
    /// slack) and the grid bounding box's squared-norm bound — the two
    /// scalars the provable integer prune leans on. `quant_bits` is the
    /// code width: 8 → quant_codes is rows × dim bytes; 4 →
    /// nibble-packed rows × PackedNibbleStride(dim) bytes
    /// (quant_kernels.h).
    std::vector<double> quant_offsets;
    std::vector<uint8_t> quant_codes;
    double quant_scale = 0.0;
    double quant_err_sq = 0.0;
    double quant_box_sq = 0.0;
    uint8_t quant_bits = 8;
    /// float32 mirror of `block` + fp32 row norms (packed only when
    /// the resolved exact_precision is f32): the dot-form scan streams
    /// these at half the bytes/dim, with candidates near the k-th best
    /// re-ranked through `block`. `mirror_max_abs` is the largest
    /// element magnitude in the block, measured at pack time — the
    /// per-dim magnitude bound the float-precision error bound's
    /// subnormal term and the overflow gate lean on.
    std::vector<float> block_f32;
    std::vector<float> norms_f32;
    double mirror_max_abs = 0.0;

    size_t size() const { return record_indices.size(); }
    bool quantized() const { return !quant_codes.empty(); }
    bool mirrored() const { return !block_f32.empty(); }
    /// Top code of the grid (255 or 15).
    double quant_levels() const { return quant_bits == 4 ? 15.0 : 255.0; }
    /// Bytes per coded row (dim or ⌈dim/2⌉).
    size_t code_stride(size_t dim) const {
      return quant_bits == 4 ? (dim + 1) / 2 : dim;
    }
  };

  /// Per-query scratch, reused across a batch chunk.
  struct Scratch {
    std::vector<double> ref_sq;   ///< squared distance to each reference
    std::vector<std::pair<double, size_t>> order;
    std::vector<double> dist;     ///< per-partition scan buffer
    std::vector<double> qclamp;   ///< query clamped into the grid box
    std::vector<uint8_t> qcodes;  ///< query coded on a partition's grid
    std::vector<uint8_t> qpacked; ///< nibble-packed qcodes (4-bit tier)
    std::vector<double> decoded;  ///< q̃, for the residual measurement
    std::vector<uint32_t> ssd;    ///< integer coarse distances
    std::vector<float> query_f32; ///< fp32 copy of the query (f32 tier)
    std::vector<float> dist_f32;  ///< fp32 dot-form scan buffer
    std::vector<uint32_t> ridx;   ///< refine-survivor row indices
    std::vector<double> cand;     ///< survivors' dot-form distances
    std::vector<double> cand_sort;///< order-statistic buffer (§16.3)
    std::vector<double> rdist;    ///< gathered exact refine distances
    BoundedTopK top;
    std::vector<TopKEntry> entries;
  };

  /// Per-(query, partition) scalars of the coarse tier's provable
  /// prune, produced by the shared prep pass (clamp, encode, residual
  /// measurement) so the per-query and query-block paths compute them
  /// through literally the same code.
  struct CoarsePrep {
    double out_sq = 0.0;  ///< certified out-of-box energy ‖q − q'‖²
    double q_res = 0.0;   ///< √(‖q' − q̃‖² + slack)
    double err = 0.0;     ///< √quant_err_sq (build-side inflated)
    double slack = 0.0;   ///< §11.2 float slack for this (q, partition)
  };

  /// Per-query-block scratch for the blocked scans (DESIGN.md §16),
  /// reused across the blocks of a batch chunk. Group buffers hold one
  /// partition-visit group's kernel inputs/outputs; per-query state
  /// (fp32 mirrors, survivor lists) spans the whole block.
  struct BlockScratch {
    std::vector<double> queries;    ///< block queries packed row-major
    std::vector<double> query_sqs;  ///< their squared norms
    std::vector<double> ref_sq;     ///< B × p reference distances
    std::vector<std::pair<double, size_t>> order;  ///< B visit orders
    std::vector<size_t> cursor;     ///< per-query position in its order
    std::vector<uint8_t> active;    ///< per-query not-finished flag
    /// One round's (partition, query) visit selections.
    std::vector<std::pair<size_t, size_t>> visits;
    /// The current visit group's member queries, split per tier.
    std::vector<size_t> group_members;
    std::vector<size_t> group_members_f64;
    /// Group-shared kernel inputs/outputs (one partition, g queries).
    std::vector<double> group_q;        ///< gathered f64 queries
    std::vector<double> group_qsq;
    std::vector<double> group_dist;     ///< g × slab dot-form distances
    std::vector<float> group_qf32;      ///< gathered fp32 queries
    std::vector<float> group_qsq32;
    std::vector<float> group_dist32;
    std::vector<uint8_t> group_qcodes;  ///< g coded queries (row-major)
    std::vector<uint32_t> group_ssd;    ///< g × slab integer distances
    std::vector<CoarsePrep> group_prep;
    std::vector<double> group_worst;    ///< per-member entry-time k-th
    std::vector<double> group_margin;
    std::vector<uint8_t> group_full;
    /// Per-member refine-survivor lists (absolute row indices) and
    /// their dot-form distances (the §16.3 self-gate's inputs).
    std::vector<std::vector<uint32_t>> group_ridx;
    std::vector<std::vector<double>> group_cand;
    /// Per-query fp32 query mirrors, filled lazily on the query's
    /// first f32-tier visit (exactly like the per-query path).
    std::vector<float> query_f32;       ///< B × dim
    std::vector<float> q_sq_f32;
    std::vector<uint8_t> qf32_ready;
    /// Per-visit scalar scratch (coarse prep buffers, refine gather,
    /// heap extraction) shared with the per-query path's code.
    Scratch solo;
  };

  /// \brief Query-block exact scan: `num_queries` packed row-major
  /// queries (with their squared norms) advance through the partition
  /// order in lockstep rounds; each round's visits are grouped by
  /// partition so one blocked many-to-many kernel call serves every
  /// query visiting that partition (DESIGN.md §16). Each query's
  /// decision chain (visit order, prunes, pushes, stat counts) is
  /// self-contained, so its hits and stats are bit-identical to
  /// ScanExact on that query alone — at any block size. `tops[q]` must
  /// be Reset by the caller; stats are accumulated (+=) with the
  /// block's totals.
  void ScanExactBlock(const double* queries, const double* query_sqs,
                      size_t num_queries, size_t dim, BoundedTopK* tops,
                      BlockScratch* scratch, IndexQueryStats* stats) const;

  /// \brief Query-block coarse scan; per query bit-identical to
  /// ScanCoarse (the coarse tier has no cross-row decision state, so
  /// blocking only groups kernel calls). `bounds[q]` is raised (max)
  /// per query; the caller seeds each with 0.
  void ScanCoarseBlock(const double* queries, const double* query_sqs,
                       size_t num_queries, size_t dim, BoundedTopK* tops,
                       double* bounds, BlockScratch* scratch,
                       IndexQueryStats* stats) const;

  /// \brief Packs the given partitions from the database's current
  /// packed features: per-partition radius, SoA block, squared norms,
  /// and (when options allow) the int8 quantized tier. `references`
  /// row i and `members[i]` describe partition i; every member list
  /// must be non-empty and ascending. Partitions pack independently in
  /// parallel; every stored quantity is a pure function of the
  /// partition's own rows, so the packed bytes are identical at any
  /// thread count.
  Status Pack(const MotionDatabase& database, const Matrix& references,
              const std::vector<std::vector<size_t>>& members,
              const FeatureIndexOptions& options);

  /// \brief Re-derives one partition's block, norms, radius, and codes
  /// from the database's *current* rows (membership unchanged) — the
  /// O(partition) refresh behind ShardedFeatureIndex::ApplyUpdate.
  Status RefreshPartition(const MotionDatabase& database, size_t partition,
                          const FeatureIndexOptions& options);

  /// \brief Exact scan of every partition in the set into `top`
  /// (squared-distance space). Visits partitions in ascending
  /// distance-to-reference order with the triangle-inequality prune;
  /// the caller owns Reset()ing the heap. Stats are accumulated (+=).
  void ScanExact(const std::vector<double>& query, double q_sq,
                 BoundedTopK* top, Scratch* scratch,
                 IndexQueryStats* stats) const;

  /// \brief Coarse-tier scan of every partition in the set into `top`
  /// (true-distance estimates, DESIGN.md §12.2). `bound` is raised
  /// (max) to cover every estimate pushed here; the caller seeds it
  /// with 0 and takes the max across sets. Stats are accumulated (+=).
  void ScanCoarse(const std::vector<double>& query, double q_sq,
                  BoundedTopK* top, double* bound,
                  IndexQueryStats* stats) const;

  /// \brief True when *every* partition in the set provably contains
  /// no record closer than `kth` (true-distance space) to the query —
  /// the same sqrt-free triangle-inequality test the exact scan
  /// prunes with, evaluated with a conservative inflation of kth so
  /// rounding can only weaken the claim, never fake it. Used by the
  /// serving cache to revalidate entries against a mutated shard.
  bool AllBeyond(const std::vector<double>& query, double kth) const;

  size_t num_partitions() const { return partitions_.size(); }
  /// Total records across the set's partitions.
  size_t num_rows() const { return num_rows_; }
  size_t max_partition_size() const { return max_partition_size_; }
  bool has_quantized_tier() const {
    for (const Partition& p : partitions_) {
      if (p.quantized()) return true;
    }
    return false;
  }
  const Matrix& references() const { return references_; }
  const std::vector<Partition>& partitions() const { return partitions_; }

 private:
  /// The snapshot codec (db/index_snapshot.cc) serializes and restores
  /// the private representation verbatim.
  friend class IndexSnapshotCodec;

  /// Fills everything but record_indices (already set) for one
  /// partition from the database's packed rows.
  void FillPartition(const double* packed, size_t dim,
                     const double* reference,
                     const FeatureIndexOptions& options, Partition* part);
  /// Recomputes num_rows_ / max_partition_size_ after (re)packing.
  void RefreshDerived();

  // Shared per-(query, partition) building blocks of the exact scan —
  // the per-query and query-block paths call the same functions, which
  // is how the bit-identity between them is kept by construction.

  /// Clamp + encode + residual measurement for the coarse tier; leaves
  /// the coded query in scratch->qcodes (unpacked, one byte per dim).
  CoarsePrep PrepCoarse(const double* query, double q_sq, size_t dim,
                        const Partition& part, Scratch* scratch) const;
  /// The coarse tier's evolving-threshold decision loop over rows
  /// [row_begin, row_end); ssd[j − row_begin] is row j's integer
  /// distance. Survivors are exact-evaluated and pushed.
  void SelectCoarse(const double* query, size_t dim, const Partition& part,
                    size_t row_begin, size_t row_end, const uint32_t* ssd,
                    const CoarsePrep& prep, BoundedTopK* top,
                    IndexQueryStats* stats) const;
  /// One full coarse-tier partition visit for one query (seed + prep +
  /// integer scan + SelectCoarse) — the per-query path's quantized
  /// branch, also used by the block path for queries whose heap is not
  /// yet full at partition entry.
  void VisitCoarse(const double* query, double q_sq, size_t dim,
                   const Partition& part, BoundedTopK* top,
                   Scratch* scratch, IndexQueryStats* stats) const;
  /// Gather-refines the survivor rows (one blocked fp32→f64 /
  /// dot-form→difference-form kernel call) and pushes them in row
  /// order. Push order cannot change the final top-k set (top_k.h).
  void RefinePush(const double* query, size_t dim, const Partition& part,
                  const std::vector<uint32_t>& ridx,
                  std::vector<double>* rdist, BoundedTopK* top) const;

  std::vector<Partition> partitions_;
  /// Partition references packed row-major (num_partitions × dim) so
  /// the visit-order pass is one one-to-many kernel call.
  Matrix references_;
  size_t max_partition_size_ = 0;
  size_t num_rows_ = 0;
};

/// \brief Exact cluster-pruned kNN index. The index copies each
/// partition's features into its own packed block at Build/Rebuild;
/// rebuilding after inserts is the caller's responsibility (Rebuild()).
class FeatureIndex {
 public:
  FeatureIndex() = default;

  /// \brief Builds over the database's current records.
  static Result<FeatureIndex> Build(const MotionDatabase* database,
                                    const FeatureIndexOptions& options = {});

  /// \brief Rebuilds over the database's current records (repacks every
  /// partition block, its norms, and its quantized codes from the
  /// database's packed features) and adopts the database's current
  /// epoch.
  Status Rebuild();

  /// \brief Exact kNN; identical results to the database's linear scan.
  ///
  /// The coarse int8 pass (when enabled) prunes records whose
  /// triangle-inequality lower bound — inflated by the §11.2 error
  /// slack — provably exceeds the current k-th best; every survivor is
  /// evaluated with the exact kernels, so the reported hits (indices
  /// and distances, ties broken toward the smaller record index) are
  /// bit-identical to the linear scan's. Fails with FailedPrecondition
  /// when the database has mutated since the last Rebuild.
  Result<std::vector<QueryHit>> NearestNeighbors(
      const std::vector<double>& query, size_t k,
      IndexQueryStats* stats = nullptr) const;

  /// \brief kNN for a batch of queries, processed as query blocks of
  /// options().query_block queries (0 = auto) through the blocked
  /// many-to-many scan (DESIGN.md §16) and parallelized over blocks.
  /// Element i equals NearestNeighbors(queries[i], k) exactly — hits
  /// *and* per-query stat contributions are bit-identical to the
  /// per-query path at any block size. `stats`, when given, is
  /// accumulated per chunk and combined in ascending chunk order, so
  /// it (like the hits) is identical at every thread count.
  /// `parallel_override`, when non-null, replaces the build options'
  /// ParallelOptions for this call (the query server passes its own
  /// budget through here).
  Result<std::vector<std::vector<QueryHit>>> BatchNearestNeighbors(
      const std::vector<std::vector<double>>& queries, size_t k,
      IndexQueryStats* stats = nullptr,
      const ParallelOptions* parallel_override = nullptr) const;

  /// \brief Approximate kNN answered from the int8 coarse tier alone —
  /// the query server's degraded mode under overload (DESIGN.md §12.2).
  ///
  /// Quantized partitions are scored with the integer code distance
  /// only (1 byte/dim of traffic, no exact re-rank); a hit's reported
  /// distance is the estimate `out + scale·√D` (out = the query's
  /// certified out-of-box energy for that partition's grid). Partitions
  /// without codes (below quantized_min_rows) are scanned with the
  /// cheap dot-form kernel instead. `error_bound`, when non-null,
  /// receives a certified absolute bound B such that every reported
  /// hit's true distance lies within [estimate − B, estimate + B]
  /// (derivation in DESIGN.md §12.2; B includes the §11.2 float slack).
  /// Deterministic: partitions are visited in index order with the
  /// usual (distance, index) tie-break, so the same query yields the
  /// same degraded answer on every replay. Fails with
  /// FailedPrecondition when the index is stale, exactly like the
  /// exact path.
  Result<std::vector<QueryHit>> CoarseNearestNeighbors(
      const std::vector<double>& query, size_t k,
      double* error_bound = nullptr,
      IndexQueryStats* stats = nullptr) const;

  /// \brief Degraded-mode kNN for a batch of queries through the
  /// query-block coarse scan. Element i (and error_bounds[i], when
  /// given) equals CoarseNearestNeighbors(queries[i], k) exactly at
  /// any block size and thread count; stats follow the same fixed
  /// ascending-chunk combine as BatchNearestNeighbors.
  Result<std::vector<std::vector<QueryHit>>> BatchCoarseNearestNeighbors(
      const std::vector<std::vector<double>>& queries, size_t k,
      std::vector<double>* error_bounds = nullptr,
      IndexQueryStats* stats = nullptr,
      const ParallelOptions* parallel_override = nullptr) const;

  size_t num_partitions() const { return set_.num_partitions(); }

  /// \brief True when at least one partition carries int8 codes — the
  /// precondition for CoarseNearestNeighbors giving any speedup and
  /// for the query server's degraded mode.
  bool has_quantized_tier() const { return set_.has_quantized_tier(); }

  /// \brief The database epoch this index was built against; queries
  /// require database->epoch() to still equal it.
  uint64_t built_epoch() const { return built_epoch_; }

  /// \brief The options the index was built with (snapshots persist
  /// them so a reloaded index rebuilds identically).
  const FeatureIndexOptions& options() const { return options_; }

 private:
  /// The snapshot codec (db/index_snapshot.cc) serializes and restores
  /// the private representation verbatim.
  friend class IndexSnapshotCodec;

  using Scratch = IndexPartitionSet::Scratch;
  using BlockScratch = IndexPartitionSet::BlockScratch;

  /// The exact path's preconditions (built, fresh epoch, dimension,
  /// k >= 1, finite query) with its exact status messages — shared by
  /// the per-query and batch entry points so an invalid query fails
  /// identically through either.
  Status ValidateQuery(const std::vector<double>& query, size_t k) const;

  Result<std::vector<QueryHit>> NearestNeighborsImpl(
      const std::vector<double>& query, size_t k, IndexQueryStats* stats,
      Scratch* scratch) const;

  const MotionDatabase* database_ = nullptr;
  FeatureIndexOptions options_;
  IndexPartitionSet set_;
  uint64_t built_epoch_ = 0;
};

}  // namespace mocemg

#endif  // MOCEMG_DB_FEATURE_INDEX_H_
