/// \file feature_index.h
/// \brief Cluster-pruned exact kNN index over final feature vectors — the
/// iDistance-style "indexing technique to prune irrelevant motions" the
/// paper points to for fast searching (its refs [14]/[13]).
///
/// Construction partitions the records with k-means; each partition keeps
/// its reference point (centroid), covering radius, a contiguous
/// row-major copy of its member records plus their squared norms
/// (DESIGN.md §10.3), and — since the quantized tier (§11) — int8
/// per-dimension affine codes of the same rows with a measured
/// reconstruction-error bound. A query visits partitions in ascending
/// distance-to-reference order, prunes whole partitions with the
/// triangle-inequality bound d(q, ref) − radius, and inside a surviving
/// partition runs a two-tier scan: an exact-integer coarse pass over
/// the int8 codes (1 byte/dim of memory traffic instead of 8, int32
/// arithmetic instead of doubles) discards every record whose
/// *provable* distance lower bound exceeds the current k-th best, and
/// only the survivors are re-ranked with the exact full-precision
/// kernels. Results are bit-identical to the linear scan — the coarse
/// tier only ever changes how much full-precision work is done, never
/// which hits are reported.
///
/// Staleness: the index records the database epoch it was built
/// against; once the database mutates (Insert/UpdateFeature), queries
/// fail with FailedPrecondition until Rebuild().

#ifndef MOCEMG_DB_FEATURE_INDEX_H_
#define MOCEMG_DB_FEATURE_INDEX_H_

#include <cstdint>
#include <vector>

#include "db/motion_database.h"
#include "linalg/matrix.h"
#include "util/parallel.h"
#include "util/result.h"
#include "util/top_k.h"

namespace mocemg {

/// \brief Index construction parameters.
struct FeatureIndexOptions {
  /// Number of k-means partitions; 0 = auto (≈ √N, at least 1).
  size_t num_partitions = 0;
  uint64_t seed = 17;
  /// Two-tier scan: build int8 codes at Rebuild and use the coarse
  /// pass to prune records before the exact re-rank. Results are
  /// bit-identical either way; OFF skips the codes entirely and scans
  /// with the PR 4 dot-form + refine path alone.
  bool quantized_scan = true;
  /// Partitions with fewer rows than this are scanned directly with
  /// the dot-form kernel: the coarse pass carries a fixed per-partition
  /// cost (query clamp + encode + residual measurement + threshold
  /// math), and below a few hundred rows that overhead exceeds the
  /// full-precision work it could save — measured on the √N-partition
  /// default layout, where ~100-row partitions ran ~1.3x slower with
  /// codes than without. Pure build-time property, so scan behaviour
  /// stays deterministic.
  size_t quantized_min_rows = 256;
  /// Parallelism for Rebuild's per-record distance pass and for
  /// BatchNearestNeighbors. Queries are read-only over the built index,
  /// so results are bit-identical at any thread count.
  ParallelOptions parallel;
};

/// \brief Query-time statistics (filled per query).
struct IndexQueryStats {
  /// Full-precision distance evaluations (partition references + exact
  /// scans + coarse-survivor re-ranks). The coarse-tier win is this
  /// number shrinking relative to the records visited.
  size_t distance_computations = 0;
  size_t partitions_visited = 0;
  size_t partitions_pruned = 0;
  /// Records scored by the int8 coarse pass (1 byte/dim traffic).
  size_t coarse_computations = 0;
  /// Records the coarse bound discarded without exact evaluation.
  size_t coarse_pruned = 0;
};

class IndexSnapshotCodec;

/// \brief Exact cluster-pruned kNN index. The index copies each
/// partition's features into its own packed block at Build/Rebuild;
/// rebuilding after inserts is the caller's responsibility (Rebuild()).
class FeatureIndex {
 public:
  FeatureIndex() = default;

  /// \brief Builds over the database's current records.
  static Result<FeatureIndex> Build(const MotionDatabase* database,
                                    const FeatureIndexOptions& options = {});

  /// \brief Rebuilds over the database's current records (repacks every
  /// partition block, its norms, and its quantized codes from the
  /// database's packed features) and adopts the database's current
  /// epoch.
  Status Rebuild();

  /// \brief Exact kNN; identical results to the database's linear scan.
  ///
  /// The coarse int8 pass (when enabled) prunes records whose
  /// triangle-inequality lower bound — inflated by the §11.2 error
  /// slack — provably exceeds the current k-th best; every survivor is
  /// evaluated with the exact kernels, so the reported hits (indices
  /// and distances, ties broken toward the smaller record index) are
  /// bit-identical to the linear scan's. Fails with FailedPrecondition
  /// when the database has mutated since the last Rebuild.
  Result<std::vector<QueryHit>> NearestNeighbors(
      const std::vector<double>& query, size_t k,
      IndexQueryStats* stats = nullptr) const;

  /// \brief kNN for a batch of queries, parallelized over queries.
  /// Element i equals NearestNeighbors(queries[i], k) exactly;
  /// `stats`, when given, is accumulated per chunk and combined in
  /// ascending chunk order, so it (like the hits) is identical at
  /// every thread count. `parallel_override`, when non-null, replaces
  /// the build options' ParallelOptions for this call (the query
  /// server passes its own budget through here).
  Result<std::vector<std::vector<QueryHit>>> BatchNearestNeighbors(
      const std::vector<std::vector<double>>& queries, size_t k,
      IndexQueryStats* stats = nullptr,
      const ParallelOptions* parallel_override = nullptr) const;

  /// \brief Approximate kNN answered from the int8 coarse tier alone —
  /// the query server's degraded mode under overload (DESIGN.md §12.2).
  ///
  /// Quantized partitions are scored with the integer code distance
  /// only (1 byte/dim of traffic, no exact re-rank); a hit's reported
  /// distance is the estimate `out + scale·√D` (out = the query's
  /// certified out-of-box energy for that partition's grid). Partitions
  /// without codes (below quantized_min_rows) are scanned with the
  /// cheap dot-form kernel instead. `error_bound`, when non-null,
  /// receives a certified absolute bound B such that every reported
  /// hit's true distance lies within [estimate − B, estimate + B]
  /// (derivation in DESIGN.md §12.2; B includes the §11.2 float slack).
  /// Deterministic: partitions are visited in index order with the
  /// usual (distance, index) tie-break, so the same query yields the
  /// same degraded answer on every replay. Fails with
  /// FailedPrecondition when the index is stale, exactly like the
  /// exact path.
  Result<std::vector<QueryHit>> CoarseNearestNeighbors(
      const std::vector<double>& query, size_t k,
      double* error_bound = nullptr,
      IndexQueryStats* stats = nullptr) const;

  size_t num_partitions() const { return partitions_.size(); }

  /// \brief True when at least one partition carries int8 codes — the
  /// precondition for CoarseNearestNeighbors giving any speedup and
  /// for the query server's degraded mode.
  bool has_quantized_tier() const {
    for (const Partition& p : partitions_) {
      if (p.quantized()) return true;
    }
    return false;
  }

  /// \brief The database epoch this index was built against; queries
  /// require database->epoch() to still equal it.
  uint64_t built_epoch() const { return built_epoch_; }

  /// \brief The options the index was built with (snapshots persist
  /// them so a reloaded index rebuilds identically).
  const FeatureIndexOptions& options() const { return options_; }

 private:
  /// The snapshot codec (db/index_snapshot.cc) serializes and restores
  /// the private representation verbatim.
  friend class IndexSnapshotCodec;

  struct Partition {
    double radius = 0.0;      ///< covering radius (true distance)
    double radius_sq = 0.0;   ///< radius², for the sqrt-free prune
    double max_norm_sq = 0.0; ///< max ‖record‖² in the block (error bound)
    /// Member records, ascending database order.
    std::vector<size_t> record_indices;
    /// SoA: the members' features packed row-major (size × dim), and
    /// their squared norms for the dot-product-form scan.
    std::vector<double> block;
    std::vector<double> norms_sq;
    /// Quantized tier (empty when disabled or below quantized_min_rows):
    /// per-dimension offsets + uniform scale of the affine grid and the
    /// members' int8 codes, plus the partition's worst measured
    /// reconstruction error ‖r − r̃‖² (inflated by the build-side
    /// slack) and the grid bounding box's squared-norm bound — the two
    /// scalars the provable integer prune leans on.
    std::vector<double> quant_offsets;
    std::vector<uint8_t> quant_codes;
    double quant_scale = 0.0;
    double quant_err_sq = 0.0;
    double quant_box_sq = 0.0;

    size_t size() const { return record_indices.size(); }
    bool quantized() const { return !quant_codes.empty(); }
  };

  /// Per-query scratch, reused across a batch chunk.
  struct Scratch {
    std::vector<double> ref_sq;   ///< squared distance to each reference
    std::vector<std::pair<double, size_t>> order;
    std::vector<double> dist;     ///< per-partition scan buffer
    std::vector<double> qclamp;   ///< query clamped into the grid box
    std::vector<uint8_t> qcodes;  ///< query coded on a partition's grid
    std::vector<double> decoded;  ///< q̃, for the residual measurement
    std::vector<uint32_t> ssd;    ///< integer coarse distances
    BoundedTopK top;
    std::vector<TopKEntry> entries;
  };

  Result<std::vector<QueryHit>> NearestNeighborsImpl(
      const std::vector<double>& query, size_t k, IndexQueryStats* stats,
      Scratch* scratch) const;

  const MotionDatabase* database_ = nullptr;
  FeatureIndexOptions options_;
  std::vector<Partition> partitions_;
  /// Partition references packed row-major (num_partitions × dim) so
  /// the visit-order pass is one one-to-many kernel call.
  Matrix references_;
  size_t max_partition_size_ = 0;
  uint64_t built_epoch_ = 0;
};

}  // namespace mocemg

#endif  // MOCEMG_DB_FEATURE_INDEX_H_
