#include "db/motion_database.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "linalg/vector_ops.h"
#include "util/csv.h"
#include "util/distance_kernels.h"
#include "util/macros.h"
#include "util/string_util.h"
#include "util/top_k.h"

namespace mocemg {

Status MotionDatabase::Insert(MotionRecord record) {
  if (record.feature.empty()) {
    return Status::InvalidArgument("record has empty feature vector");
  }
  for (double v : record.feature) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "record '" + record.name +
          "' has a non-finite feature value; a NaN in the index makes "
          "every later distance comparison undefined");
    }
  }
  if (records_.empty()) {
    dimension_ = record.feature.size();
  } else if (record.feature.size() != dimension_) {
    return Status::InvalidArgument(
        "feature dimension " + std::to_string(record.feature.size()) +
        " does not match database dimension " +
        std::to_string(dimension_));
  }
  packed_.insert(packed_.end(), record.feature.begin(),
                 record.feature.end());
  records_.push_back(std::move(record));
  ++epoch_;
  return Status::OK();
}

Status MotionDatabase::UpdateFeature(size_t index,
                                     const std::vector<double>& feature) {
  if (index >= records_.size()) {
    return Status::OutOfRange("record index " + std::to_string(index) +
                              " out of range (database has " +
                              std::to_string(records_.size()) +
                              " records)");
  }
  if (feature.size() != dimension_) {
    return Status::InvalidArgument(
        "feature dimension " + std::to_string(feature.size()) +
        " does not match database dimension " +
        std::to_string(dimension_));
  }
  for (double v : feature) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "updated feature for record '" + records_[index].name +
          "' has a non-finite value");
    }
  }
  records_[index].feature = feature;
  std::copy(feature.begin(), feature.end(),
            packed_.begin() + static_cast<ptrdiff_t>(index * dimension_));
  ++epoch_;
  return Status::OK();
}

Result<std::vector<QueryHit>> MotionDatabase::NearestNeighbors(
    const std::vector<double>& query, size_t k) const {
  if (empty()) return Status::FailedPrecondition("database is empty");
  if (query.size() != dimension_) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  for (double v : query) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "query feature contains a non-finite value");
    }
  }
  // One pass of the packed one-to-many kernel over the SoA block, then
  // select in squared space (sqrt is monotone, so the order is the
  // same) with a bounded k-entry max-heap — O(n log k) and k live
  // entries instead of materializing and partially sorting all n.
  // Ties resolve toward the smaller record index (top_k.h), the same
  // rule as every other kNN path. sqrt only for the k reported hits.
  std::vector<double> sq(records_.size());
  SquaredL2OneToMany(query.data(), packed_.data(), records_.size(),
                     dimension_, sq.data());
  BoundedTopK top(std::min(k, records_.size()));
  for (size_t i = 0; i < records_.size(); ++i) {
    top.Push(sq[i], i);
  }
  std::vector<TopKEntry> entries;
  top.ExtractSorted(&entries);
  std::vector<QueryHit> hits(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    hits[i].record_index = entries[i].second;
    hits[i].distance = std::sqrt(entries[i].first);
  }
  return hits;
}

Result<size_t> MotionDatabase::ClassifyByVote(
    const std::vector<double>& query, size_t k) const {
  MOCEMG_ASSIGN_OR_RETURN(std::vector<QueryHit> hits,
                          NearestNeighbors(query, k));
  return VoteAmongHits(hits);
}

Result<size_t> MotionDatabase::VoteAmongHits(
    const std::vector<QueryHit>& hits) const {
  if (hits.empty()) {
    return Status::InvalidArgument("no hits to vote among");
  }
  for (const QueryHit& h : hits) {
    if (h.record_index >= records_.size()) {
      return Status::OutOfRange("hit record index out of range");
    }
  }
  std::map<size_t, size_t> votes;
  for (const QueryHit& h : hits) {
    ++votes[records_[h.record_index].label];
  }
  size_t best_label = records_[hits[0].record_index].label;
  size_t best_votes = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    } else if (count == best_votes && best_label != label) {
      // Tie: prefer the label of the closest neighbour among the tied.
      for (const QueryHit& h : hits) {
        const size_t l = records_[h.record_index].label;
        if (l == label || l == best_label) {
          best_label = l;
          break;
        }
      }
    }
  }
  return best_label;
}

Status MotionDatabase::SaveCsv(const std::string& path) const {
  CsvWriter w;
  std::vector<std::string> header = {"name", "label", "label_name"};
  for (size_t j = 0; j < dimension_; ++j) {
    std::string col = "f";
    col += std::to_string(j);
    header.push_back(std::move(col));
  }
  w.WriteRow(header);
  for (const MotionRecord& r : records_) {
    std::vector<std::string> row = {r.name, std::to_string(r.label),
                                    r.label_name};
    for (double v : r.feature) row.push_back(FormatDouble(v, 10));
    w.WriteRow(row);
  }
  return w.ToFile(path);
}

Result<MotionDatabase> MotionDatabase::LoadCsv(const std::string& path) {
  MOCEMG_ASSIGN_OR_RETURN(CsvTable table, CsvTable::FromFile(path));
  if (table.header().size() < 4) {
    return Status::ParseError(
        "database CSV needs name,label,label_name,f0,... columns");
  }
  MotionDatabase db;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const auto& row = table.rows()[i];
    if (row.size() != table.header().size()) {
      return Status::ParseError("ragged row " + std::to_string(i));
    }
    MotionRecord rec;
    rec.name = row[0];
    MOCEMG_ASSIGN_OR_RETURN(int64_t label, ParseInt(row[1]));
    rec.label = static_cast<size_t>(label);
    rec.label_name = row[2];
    rec.feature.reserve(row.size() - 3);
    for (size_t j = 3; j < row.size(); ++j) {
      MOCEMG_ASSIGN_OR_RETURN(double v, ParseDouble(row[j]));
      rec.feature.push_back(v);
    }
    MOCEMG_RETURN_NOT_OK(db.Insert(std::move(rec)));
  }
  return db;
}

}  // namespace mocemg
