/// \file motion_database.h
/// \brief The motion database of the paper's Section 4: labelled final
/// feature vectors supporting content-based retrieval (kNN) of motions.
/// Linear scan is exact and adequate at lab scale; feature_index.h adds
/// the pruned index the paper alludes to ("our extracted feature vectors
/// can be applied to any indexing technique to prune irrelevant
/// motions").

#ifndef MOCEMG_DB_MOTION_DATABASE_H_
#define MOCEMG_DB_MOTION_DATABASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace mocemg {

/// \brief One database entry.
struct MotionRecord {
  std::string name;         ///< free-form ("raise_arm/trial3")
  size_t label = 0;         ///< class id
  std::string label_name;   ///< class name
  std::vector<double> feature;  ///< final feature vector
};

/// \brief A kNN query hit.
struct QueryHit {
  size_t record_index = 0;
  double distance = 0.0;
};

/// \brief In-memory feature database with exact linear kNN and CSV
/// persistence.
class MotionDatabase {
 public:
  MotionDatabase() = default;

  /// \brief Appends a record; the first insert fixes the feature
  /// dimension, later mismatches fail.
  Status Insert(MotionRecord record);

  /// \brief Replaces record `index`'s feature vector, keeping the
  /// packed mirror in sync (both are written under one epoch bump, so
  /// the mirror can never go stale relative to the records). Same
  /// validation as Insert: finite values, matching dimension.
  Status UpdateFeature(size_t index, const std::vector<double>& feature);

  /// \brief Mutation epoch: incremented by every Insert and
  /// UpdateFeature. Derived structures (FeatureIndex, QueryServer
  /// cache entries) record the epoch they were built against and treat
  /// any mismatch as staleness — the index fails queries with a
  /// Status until Rebuild, the cache simply stops hitting.
  uint64_t epoch() const { return epoch_; }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  size_t feature_dimension() const { return dimension_; }
  const MotionRecord& record(size_t i) const { return records_[i]; }
  const std::vector<MotionRecord>& records() const { return records_; }

  /// \brief All features as one contiguous row-major block (size() ×
  /// feature_dimension(), record order). Maintained on Insert so the
  /// linear scan and index builds run the packed distance kernels
  /// instead of pointer-chasing per-record vectors.
  const std::vector<double>& packed_features() const { return packed_; }

  /// \brief Pointer to record i's feature row inside the packed block.
  const double* packed_row(size_t i) const {
    return packed_.data() + i * dimension_;
  }

  /// \brief Exact k nearest neighbours by Euclidean distance in
  /// final-feature space, ascending.
  Result<std::vector<QueryHit>> NearestNeighbors(
      const std::vector<double>& query, size_t k) const;

  /// \brief Majority label among the k nearest neighbours (ties resolved
  /// toward the closer neighbour's label).
  Result<size_t> ClassifyByVote(const std::vector<double>& query,
                                size_t k) const;

  /// \brief The vote half of ClassifyByVote over already-computed
  /// hits (ascending by distance): majority label, ties resolved
  /// toward the closer neighbour's label. Shared with the query
  /// server so a cached hit list classifies identically to a fresh
  /// scan. `hits` must be non-empty with valid record indices.
  Result<size_t> VoteAmongHits(const std::vector<QueryHit>& hits) const;

  /// \brief CSV persistence: name,label,label_name,f0,f1,…
  Status SaveCsv(const std::string& path) const;
  static Result<MotionDatabase> LoadCsv(const std::string& path);

 private:
  std::vector<MotionRecord> records_;
  /// Row-major SoA mirror of the records' features (records_ stays the
  /// source of truth for names/labels; features are duplicated here so
  /// scans stream one contiguous block).
  std::vector<double> packed_;
  size_t dimension_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace mocemg

#endif  // MOCEMG_DB_MOTION_DATABASE_H_
