#include "db/index_snapshot.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/logging.h"
#include "util/macros.h"

namespace mocemg {
namespace {

// Snapshot header: magic+version tag, payload byte count (detects
// truncation), FNV-1a64 checksum of the payload (detects corruption).
// The newline in the magic catches CRLF-mangling transfers early, the
// trailing "1" is the format version.
constexpr char kMagic[] = "MOCEMGIX1\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

// --- little-endian primitive encoding -------------------------------

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutDoubles(std::string* out, const std::vector<double>& v) {
  PutU64(out, v.size());
  for (double d : v) PutDouble(out, d);
}

void PutIndices(std::string* out, const std::vector<size_t>& v) {
  PutU64(out, v.size());
  for (size_t i : v) PutU64(out, i);
}

void PutBytes(std::string* out, const std::vector<uint8_t>& v) {
  PutU64(out, v.size());
  out->append(reinterpret_cast<const char*>(v.data()), v.size());
}

/// Bounds-checked cursor over the payload; every read fails with
/// ParseError instead of walking off the end, so a payload that lies
/// about its internal sizes (yet passes the checksum because it was
/// *written* that way) still cannot crash the loader.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  Result<uint64_t> U64() {
    if (size_ - pos_ < 8) {
      return Status::ParseError("index snapshot payload ended mid-field");
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<double> Double() {
    MOCEMG_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::vector<double>> Doubles(uint64_t max_elems) {
    MOCEMG_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > max_elems || size_ - pos_ < n * 8) {
      return Status::ParseError("index snapshot double array overruns payload");
    }
    std::vector<double> v(n);
    for (uint64_t i = 0; i < n; ++i) {
      MOCEMG_ASSIGN_OR_RETURN(v[i], Double());
    }
    return v;
  }

  Result<std::vector<size_t>> Indices(uint64_t max_elems) {
    MOCEMG_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > max_elems || size_ - pos_ < n * 8) {
      return Status::ParseError("index snapshot index array overruns payload");
    }
    std::vector<size_t> v(n);
    for (uint64_t i = 0; i < n; ++i) {
      MOCEMG_ASSIGN_OR_RETURN(uint64_t x, U64());
      v[i] = static_cast<size_t>(x);
    }
    return v;
  }

  Result<std::vector<uint8_t>> Bytes(uint64_t max_elems) {
    MOCEMG_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > max_elems || size_ - pos_ < n) {
      return Status::ParseError("index snapshot byte array overruns payload");
    }
    std::vector<uint8_t> v(n);
    std::memcpy(v.data(), data_ + pos_, n);
    pos_ += n;
    return v;
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

/// Friend of FeatureIndex: reads and writes the private representation
/// field-for-field so a restored index is bit-identical to the saved
/// one (same partitions, same blocks, same quantized grids, same
/// epoch).
class IndexSnapshotCodec {
 public:
  static std::string Serialize(const FeatureIndex& index) {
    std::string p;
    PutU64(&p, index.built_epoch_);
    PutU64(&p, index.database_ ? index.database_->feature_dimension() : 0);
    PutU64(&p, index.max_partition_size_);
    // Build options, so a reloaded index Rebuild()s identically.
    PutU64(&p, index.options_.num_partitions);
    PutU64(&p, index.options_.seed);
    PutU64(&p, index.options_.quantized_scan ? 1 : 0);
    PutU64(&p, index.options_.quantized_min_rows);
    PutU64(&p, index.options_.parallel.max_threads);
    PutU64(&p, index.options_.parallel.grain);
    // Packed references.
    PutU64(&p, index.references_.rows());
    PutU64(&p, index.references_.cols());
    PutDoubles(&p, index.references_.data());
    // Partitions, in index order.
    PutU64(&p, index.partitions_.size());
    for (const FeatureIndex::Partition& part : index.partitions_) {
      PutDouble(&p, part.radius);
      PutDouble(&p, part.radius_sq);
      PutDouble(&p, part.max_norm_sq);
      PutDouble(&p, part.quant_scale);
      PutDouble(&p, part.quant_err_sq);
      PutDouble(&p, part.quant_box_sq);
      PutIndices(&p, part.record_indices);
      PutDoubles(&p, part.block);
      PutDoubles(&p, part.norms_sq);
      PutDoubles(&p, part.quant_offsets);
      PutBytes(&p, part.quant_codes);
    }
    return p;
  }

  static Result<FeatureIndex> Deserialize(const char* payload, size_t size,
                                          const MotionDatabase* database) {
    Reader r(payload, size);
    FeatureIndex index;
    index.database_ = database;
    MOCEMG_ASSIGN_OR_RETURN(uint64_t epoch, r.U64());
    index.built_epoch_ = epoch;
    MOCEMG_ASSIGN_OR_RETURN(uint64_t dim, r.U64());
    if (dim != database->feature_dimension()) {
      return Status::ParseError(
          "index snapshot dimension " + std::to_string(dim) +
          " does not match database dimension " +
          std::to_string(database->feature_dimension()));
    }
    MOCEMG_ASSIGN_OR_RETURN(uint64_t max_part, r.U64());
    index.max_partition_size_ = static_cast<size_t>(max_part);
    MOCEMG_ASSIGN_OR_RETURN(uint64_t num_parts_opt, r.U64());
    index.options_.num_partitions = static_cast<size_t>(num_parts_opt);
    MOCEMG_ASSIGN_OR_RETURN(index.options_.seed, r.U64());
    MOCEMG_ASSIGN_OR_RETURN(uint64_t qscan, r.U64());
    index.options_.quantized_scan = qscan != 0;
    MOCEMG_ASSIGN_OR_RETURN(uint64_t qmin, r.U64());
    index.options_.quantized_min_rows = static_cast<size_t>(qmin);
    MOCEMG_ASSIGN_OR_RETURN(uint64_t threads, r.U64());
    index.options_.parallel.max_threads = static_cast<size_t>(threads);
    MOCEMG_ASSIGN_OR_RETURN(uint64_t grain, r.U64());
    index.options_.parallel.grain = static_cast<size_t>(grain);

    MOCEMG_ASSIGN_OR_RETURN(uint64_t ref_rows, r.U64());
    MOCEMG_ASSIGN_OR_RETURN(uint64_t ref_cols, r.U64());
    // Every count below is sanity-capped against what the database and
    // dimension admit, so a crafted-size payload is rejected rather
    // than allocating unbounded memory.
    const uint64_t n_records = database->size();
    if (ref_cols != dim || ref_rows > n_records + 1) {
      return Status::ParseError("index snapshot references shape invalid");
    }
    MOCEMG_ASSIGN_OR_RETURN(std::vector<double> refs,
                            r.Doubles(ref_rows * ref_cols));
    if (refs.size() != ref_rows * ref_cols) {
      return Status::ParseError("index snapshot references size mismatch");
    }
    index.references_ = Matrix(static_cast<size_t>(ref_rows),
                               static_cast<size_t>(ref_cols));
    index.references_.mutable_data() = std::move(refs);

    MOCEMG_ASSIGN_OR_RETURN(uint64_t num_partitions, r.U64());
    if (num_partitions != ref_rows) {
      return Status::ParseError(
          "index snapshot partition count does not match references");
    }
    index.partitions_.resize(static_cast<size_t>(num_partitions));
    for (FeatureIndex::Partition& part : index.partitions_) {
      MOCEMG_ASSIGN_OR_RETURN(part.radius, r.Double());
      MOCEMG_ASSIGN_OR_RETURN(part.radius_sq, r.Double());
      MOCEMG_ASSIGN_OR_RETURN(part.max_norm_sq, r.Double());
      MOCEMG_ASSIGN_OR_RETURN(part.quant_scale, r.Double());
      MOCEMG_ASSIGN_OR_RETURN(part.quant_err_sq, r.Double());
      MOCEMG_ASSIGN_OR_RETURN(part.quant_box_sq, r.Double());
      MOCEMG_ASSIGN_OR_RETURN(part.record_indices, r.Indices(n_records));
      const uint64_t n = part.record_indices.size();
      for (size_t idx : part.record_indices) {
        if (idx >= n_records) {
          return Status::ParseError(
              "index snapshot record index " + std::to_string(idx) +
              " out of range for database of size " +
              std::to_string(n_records));
        }
      }
      MOCEMG_ASSIGN_OR_RETURN(part.block, r.Doubles(n * dim));
      if (part.block.size() != n * dim) {
        return Status::ParseError("index snapshot block size mismatch");
      }
      MOCEMG_ASSIGN_OR_RETURN(part.norms_sq, r.Doubles(n));
      if (part.norms_sq.size() != n) {
        return Status::ParseError("index snapshot norms size mismatch");
      }
      MOCEMG_ASSIGN_OR_RETURN(part.quant_offsets, r.Doubles(dim));
      MOCEMG_ASSIGN_OR_RETURN(part.quant_codes, r.Bytes(n * dim));
      if (!part.quant_codes.empty() &&
          (part.quant_codes.size() != n * dim ||
           part.quant_offsets.size() != dim)) {
        return Status::ParseError("index snapshot quantized tier malformed");
      }
    }
    if (!r.exhausted()) {
      return Status::ParseError("index snapshot has trailing bytes");
    }
    return index;
  }
};

Result<std::string> SerializeFeatureIndex(const FeatureIndex& index) {
  if (index.num_partitions() == 0) {
    return Status::FailedPrecondition(
        "cannot snapshot an index that has not been built");
  }
  std::string payload = IndexSnapshotCodec::Serialize(index);
  std::string out;
  out.reserve(kMagicLen + 16 + payload.size());
  out.append(kMagic, kMagicLen);
  PutU64(&out, payload.size());
  PutU64(&out, Fnv1a64(payload.data(), payload.size()));
  out += payload;
  return out;
}

Result<FeatureIndex> DeserializeFeatureIndex(
    const std::string& bytes, const MotionDatabase* database) {
  if (database == nullptr) {
    return Status::InvalidArgument("database must not be null");
  }
  if (bytes.size() < kMagicLen + 16) {
    return Status::ParseError("index snapshot shorter than its header");
  }
  if (bytes.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return Status::ParseError(
        "index snapshot magic/version mismatch (expected MOCEMGIX1)");
  }
  Reader header(bytes.data() + kMagicLen, 16);
  MOCEMG_ASSIGN_OR_RETURN(uint64_t payload_size, header.U64());
  MOCEMG_ASSIGN_OR_RETURN(uint64_t checksum, header.U64());
  const size_t have = bytes.size() - kMagicLen - 16;
  if (have != payload_size) {
    return Status::ParseError(
        "index snapshot truncated: header promises " +
        std::to_string(payload_size) + " payload bytes, file has " +
        std::to_string(have));
  }
  const char* payload = bytes.data() + kMagicLen + 16;
  const uint64_t actual = Fnv1a64(payload, payload_size);
  if (actual != checksum) {
    return Status::ParseError(
        "index snapshot checksum mismatch (stored " +
        std::to_string(checksum) + ", computed " + std::to_string(actual) +
        "): file is corrupted");
  }
  return IndexSnapshotCodec::Deserialize(payload, payload_size, database);
}

Status SaveFeatureIndex(const FeatureIndex& index, const std::string& path) {
  MOCEMG_ASSIGN_OR_RETURN(std::string bytes, SerializeFeatureIndex(index));
  // Write-then-rename: the incomplete state only ever exists under the
  // temporary name, so a crash between the two steps leaves the
  // previous snapshot at `path` untouched.
  const std::string tmp = path + ".tmp";
  MOCEMG_RETURN_NOT_OK(WriteStringToFile(tmp, bytes));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("failed to rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<FeatureIndex> LoadFeatureIndex(const std::string& path,
                                      const MotionDatabase* database) {
  MOCEMG_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  Result<FeatureIndex> index = DeserializeFeatureIndex(bytes, database);
  if (!index.ok()) {
    return index.status().WithContext("loading index snapshot " + path);
  }
  return index;
}

Result<FeatureIndex> LoadOrRebuildFeatureIndex(
    const std::string& path, const MotionDatabase* database,
    const FeatureIndexOptions& rebuild_options,
    IndexSnapshotLoadInfo* info) {
  if (database == nullptr) {
    return Status::InvalidArgument("database must not be null");
  }
  IndexSnapshotLoadInfo local;
  IndexSnapshotLoadInfo* out = info ? info : &local;
  *out = IndexSnapshotLoadInfo{};

  Result<FeatureIndex> loaded = LoadFeatureIndex(path, database);
  if (loaded.ok()) {
    if (loaded->built_epoch() == database->epoch()) {
      out->loaded_from_snapshot = true;
      return loaded;
    }
    out->fallback_reason =
        "snapshot built at epoch " + std::to_string(loaded->built_epoch()) +
        " but database is at epoch " + std::to_string(database->epoch());
  } else {
    out->fallback_reason = loaded.status().ToString();
  }
  MOCEMG_LOG(kWarning) << "index snapshot " << path
                       << " unusable, rebuilding from database: "
                       << out->fallback_reason;
  MOCEMG_ASSIGN_OR_RETURN(FeatureIndex rebuilt,
                          FeatureIndex::Build(database, rebuild_options));
  out->rebuilt = true;
  return rebuilt;
}

}  // namespace mocemg
