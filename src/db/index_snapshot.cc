#include "db/index_snapshot.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/quant_kernels.h"

namespace mocemg {
namespace {

// Snapshot header: magic+version tag, payload byte count (detects
// truncation), FNV-1a64 checksum of the payload (detects corruption).
// The newline in the magic catches CRLF-mangling transfers early, the
// digit at offset 8 is the format version. Version 2 added the
// quantized code width (8- or 4-bit packed) to the options block and
// to every partition. Version 3 added the resolved exact-scan
// precision to the options block and the fp32 mirror (float block,
// float row norms, max |element|) to every partition; version-2 files
// are still read (their partitions simply carry no mirror and load
// with exact_precision=f64), version-1 files are rejected with the
// detected version named. Writers always emit version 3.
constexpr char kMagic[] = "MOCEMGIX3\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;
// Sharded snapshots: one manifest + one file per shard, same
// header discipline per file.
constexpr char kManifestMagic[] = "MOCEMGSM3\n";
constexpr char kShardMagic[] = "MOCEMGSH3\n";
constexpr size_t kShardMagicLen = sizeof(kShardMagic) - 1;
constexpr size_t kManifestMagicLen = sizeof(kManifestMagic) - 1;
// 8-byte family prefixes (magic minus version digit and newline), for
// version-aware unframing.
constexpr char kMagicPrefix[] = "MOCEMGIX";
constexpr char kManifestPrefix[] = "MOCEMGSM";
constexpr char kShardPrefix[] = "MOCEMGSH";
constexpr size_t kPrefixLen = 8;
constexpr int kMinReadVersion = 2;
constexpr int kWriteVersion = 3;

uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

// --- little-endian primitive encoding -------------------------------

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutDoubles(std::string* out, const std::vector<double>& v) {
  PutU64(out, v.size());
  for (double d : v) PutDouble(out, d);
}

void PutIndices(std::string* out, const std::vector<size_t>& v) {
  PutU64(out, v.size());
  for (size_t i : v) PutU64(out, i);
}

void PutBytes(std::string* out, const std::vector<uint8_t>& v) {
  PutU64(out, v.size());
  out->append(reinterpret_cast<const char*>(v.data()), v.size());
}

void PutFloats(std::string* out, const std::vector<float>& v) {
  PutU64(out, v.size());
  for (float f : v) {
    uint32_t bits = 0;
    std::memcpy(&bits, &f, sizeof(bits));
    for (int i = 0; i < 4; ++i) {
      out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
    }
  }
}

/// Bounds-checked cursor over the payload; every read fails with
/// ParseError instead of walking off the end, so a payload that lies
/// about its internal sizes (yet passes the checksum because it was
/// *written* that way) still cannot crash the loader.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  Result<uint64_t> U64() {
    if (size_ - pos_ < 8) {
      return Status::ParseError("index snapshot payload ended mid-field");
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<double> Double() {
    MOCEMG_ASSIGN_OR_RETURN(uint64_t bits, U64());
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::vector<double>> Doubles(uint64_t max_elems) {
    MOCEMG_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > max_elems || size_ - pos_ < n * 8) {
      return Status::ParseError("index snapshot double array overruns payload");
    }
    std::vector<double> v(n);
    for (uint64_t i = 0; i < n; ++i) {
      MOCEMG_ASSIGN_OR_RETURN(v[i], Double());
    }
    return v;
  }

  Result<std::vector<size_t>> Indices(uint64_t max_elems) {
    MOCEMG_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > max_elems || size_ - pos_ < n * 8) {
      return Status::ParseError("index snapshot index array overruns payload");
    }
    std::vector<size_t> v(n);
    for (uint64_t i = 0; i < n; ++i) {
      MOCEMG_ASSIGN_OR_RETURN(uint64_t x, U64());
      v[i] = static_cast<size_t>(x);
    }
    return v;
  }

  Result<std::vector<float>> Floats(uint64_t max_elems) {
    MOCEMG_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > max_elems || size_ - pos_ < n * 4) {
      return Status::ParseError(
          "index snapshot float array overruns payload");
    }
    std::vector<float> v(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t bits = 0;
      for (int b = 0; b < 4; ++b) {
        bits |= static_cast<uint32_t>(
                    static_cast<unsigned char>(data_[pos_ + b]))
                << (8 * b);
      }
      pos_ += 4;
      std::memcpy(&v[i], &bits, sizeof(bits));
    }
    return v;
  }

  Result<std::vector<uint8_t>> Bytes(uint64_t max_elems) {
    MOCEMG_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > max_elems || size_ - pos_ < n) {
      return Status::ParseError("index snapshot byte array overruns payload");
    }
    std::vector<uint8_t> v(n);
    if (n > 0) {
      // An empty vector's data() may be null, which memcpy's nonnull
      // contract forbids even at length 0.
      std::memcpy(v.data(), data_ + pos_, n);
    }
    pos_ += n;
    return v;
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Wraps a payload in the standard header: magic, payload length,
/// FNV-1a64 checksum.
std::string FrameSnapshot(const char* magic, size_t magic_len,
                          const std::string& payload) {
  std::string out;
  out.reserve(magic_len + 16 + payload.size());
  out.append(magic, magic_len);
  PutU64(&out, payload.size());
  PutU64(&out, Fnv1a64(payload.data(), payload.size()));
  out += payload;
  return out;
}

/// A validated snapshot frame: the format version the file declared
/// plus its checksummed payload window.
struct FramedPayload {
  int version = 0;
  const char* payload = nullptr;
  uint64_t size = 0;
};

/// Validates the header of `bytes` against the 8-byte family `prefix`
/// and returns the declared version plus the payload window. The
/// version digit is parsed even on rejection, so an old or future file
/// fails with its *detected* version named (and a regeneration hint)
/// instead of an opaque magic mismatch. `what` names the file kind in
/// error messages.
Result<FramedPayload> UnframeSnapshot(const std::string& bytes,
                                      const char* prefix,
                                      const char* what) {
  if (bytes.size() < kMagicLen + 16) {
    return Status::ParseError(std::string(what) +
                              " shorter than its header");
  }
  if (bytes.compare(0, kPrefixLen, prefix, kPrefixLen) != 0 ||
      bytes[kPrefixLen + 1] != '\n') {
    return Status::ParseError(std::string(what) +
                              " magic/version mismatch (expected " +
                              std::string(prefix) +
                              static_cast<char>('0' + kWriteVersion) +
                              ")");
  }
  const char version_digit = bytes[kPrefixLen];
  if (version_digit < '0' || version_digit > '9') {
    return Status::ParseError(std::string(what) +
                              " magic/version mismatch (expected " +
                              std::string(prefix) +
                              static_cast<char>('0' + kWriteVersion) +
                              ")");
  }
  const int version = version_digit - '0';
  if (version < kMinReadVersion || version > kWriteVersion) {
    return Status::ParseError(
        std::string(what) + " is container version " +
        std::to_string(version) + "; this reader supports versions " +
        std::to_string(kMinReadVersion) + ".." +
        std::to_string(kWriteVersion) +
        " — regenerate the snapshot by re-saving the index");
  }
  Reader header(bytes.data() + kMagicLen, 16);
  MOCEMG_ASSIGN_OR_RETURN(uint64_t payload_size, header.U64());
  MOCEMG_ASSIGN_OR_RETURN(uint64_t checksum, header.U64());
  const size_t have = bytes.size() - kMagicLen - 16;
  if (have != payload_size) {
    return Status::ParseError(
        std::string(what) + " truncated: header promises " +
        std::to_string(payload_size) + " payload bytes, file has " +
        std::to_string(have));
  }
  const char* payload = bytes.data() + kMagicLen + 16;
  const uint64_t actual = Fnv1a64(payload, payload_size);
  if (actual != checksum) {
    return Status::ParseError(
        std::string(what) + " checksum mismatch (stored " +
        std::to_string(checksum) + ", computed " + std::to_string(actual) +
        "): file is corrupted");
  }
  FramedPayload out;
  out.version = version;
  out.payload = payload;
  out.size = payload_size;
  return out;
}

/// Atomic write: temporary sibling + rename, the SaveFeatureIndex
/// protocol shared by every snapshot file.
Status WriteSnapshotFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  MOCEMG_RETURN_NOT_OK(WriteStringToFile(tmp, bytes));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("failed to rename " + tmp + " to " + path);
  }
  return Status::OK();
}

std::string ShardFilePath(const std::string& path, size_t shard) {
  return path + ".shard" + std::to_string(shard);
}

/// The manifest's parsed contents — everything needed to validate
/// shard files against this save generation or repack a lost shard
/// without re-running k-means.
struct ShardedManifest {
  uint64_t applied_epoch = 0;
  uint64_t dim = 0;
  uint64_t n_records = 0;
  uint64_t num_shards = 0;
  uint64_t num_partitions = 0;
  ShardedIndexOptions options;
  std::vector<uint64_t> shard_epochs;
  Matrix references;
  std::vector<uint32_t> record_to_partition;
  /// Per shard: (payload size, payload checksum) the shard file must
  /// match.
  std::vector<std::pair<uint64_t, uint64_t>> digests;
};

}  // namespace

/// Friend of FeatureIndex: reads and writes the private representation
/// field-for-field so a restored index is bit-identical to the saved
/// one (same partitions, same blocks, same quantized grids, same
/// epoch).
class IndexSnapshotCodec {
 public:
  static void PutPartition(std::string* p,
                           const IndexPartitionSet::Partition& part) {
    PutDouble(p, part.radius);
    PutDouble(p, part.radius_sq);
    PutDouble(p, part.max_norm_sq);
    PutDouble(p, part.quant_scale);
    PutDouble(p, part.quant_err_sq);
    PutDouble(p, part.quant_box_sq);
    PutU64(p, part.quant_bits);
    PutIndices(p, part.record_indices);
    PutDoubles(p, part.block);
    PutDoubles(p, part.norms_sq);
    PutDoubles(p, part.quant_offsets);
    PutBytes(p, part.quant_codes);
    // Version 3: the fp32 mirror (empty when the partition is coded,
    // the precision is f64, or the norm gate rejected it).
    PutDouble(p, part.mirror_max_abs);
    PutFloats(p, part.block_f32);
    PutFloats(p, part.norms_f32);
  }

  static Status ReadPartition(Reader* r, int version, uint64_t n_records,
                              uint64_t dim,
                              IndexPartitionSet::Partition* part) {
    MOCEMG_ASSIGN_OR_RETURN(part->radius, r->Double());
    MOCEMG_ASSIGN_OR_RETURN(part->radius_sq, r->Double());
    MOCEMG_ASSIGN_OR_RETURN(part->max_norm_sq, r->Double());
    MOCEMG_ASSIGN_OR_RETURN(part->quant_scale, r->Double());
    MOCEMG_ASSIGN_OR_RETURN(part->quant_err_sq, r->Double());
    MOCEMG_ASSIGN_OR_RETURN(part->quant_box_sq, r->Double());
    MOCEMG_ASSIGN_OR_RETURN(uint64_t quant_bits, r->U64());
    if (quant_bits != 8 && quant_bits != 4) {
      return Status::ParseError(
          "index snapshot partition carries quantized code width " +
          std::to_string(quant_bits) + " bits; this reader supports 8 or 4");
    }
    part->quant_bits = static_cast<uint8_t>(quant_bits);
    MOCEMG_ASSIGN_OR_RETURN(part->record_indices, r->Indices(n_records));
    const uint64_t n = part->record_indices.size();
    for (size_t idx : part->record_indices) {
      if (idx >= n_records) {
        return Status::ParseError(
            "index snapshot record index " + std::to_string(idx) +
            " out of range for database of size " +
            std::to_string(n_records));
      }
    }
    MOCEMG_ASSIGN_OR_RETURN(part->block, r->Doubles(n * dim));
    if (part->block.size() != n * dim) {
      return Status::ParseError("index snapshot block size mismatch");
    }
    MOCEMG_ASSIGN_OR_RETURN(part->norms_sq, r->Doubles(n));
    if (part->norms_sq.size() != n) {
      return Status::ParseError("index snapshot norms size mismatch");
    }
    MOCEMG_ASSIGN_OR_RETURN(part->quant_offsets, r->Doubles(dim));
    MOCEMG_ASSIGN_OR_RETURN(part->quant_codes, r->Bytes(n * dim));
    // The code array must match the declared width exactly: n*dim bytes
    // at 8 bits, n*ceil(dim/2) nibble-packed bytes at 4 bits. A payload
    // whose width field and code bytes disagree is rejected here rather
    // than mis-scanned later.
    const uint64_t expect_codes =
        part->quant_bits == 4 ? n * PackedNibbleStride(static_cast<size_t>(dim))
                              : n * dim;
    if (!part->quant_codes.empty() &&
        (part->quant_codes.size() != expect_codes ||
         part->quant_offsets.size() != dim)) {
      return Status::ParseError(
          "index snapshot quantized tier malformed: " +
          std::to_string(part->quant_codes.size()) + " code bytes but " +
          std::to_string(quant_bits) + "-bit width implies " +
          std::to_string(expect_codes));
    }
    // Version-2 partitions predate the fp32 mirror; leave it empty
    // (the loaded index behaves exactly like an f64 build).
    part->mirror_max_abs = 0.0;
    part->block_f32.clear();
    part->norms_f32.clear();
    if (version >= 3) {
      MOCEMG_ASSIGN_OR_RETURN(part->mirror_max_abs, r->Double());
      MOCEMG_ASSIGN_OR_RETURN(part->block_f32, r->Floats(n * dim));
      MOCEMG_ASSIGN_OR_RETURN(part->norms_f32, r->Floats(n));
      // The mirror is all-or-nothing per partition: a float block of
      // any size other than rows×dim (or a norms array that disagrees)
      // would mis-index the fp32 scan, so reject it here.
      if (part->block_f32.empty() ? !part->norms_f32.empty()
                                  : (part->block_f32.size() != n * dim ||
                                     part->norms_f32.size() != n)) {
        return Status::ParseError(
            "index snapshot fp32 mirror malformed: " +
            std::to_string(part->block_f32.size()) + " floats and " +
            std::to_string(part->norms_f32.size()) + " norms for " +
            std::to_string(n) + " rows of dimension " +
            std::to_string(dim));
      }
    }
    return Status::OK();
  }

  static std::string Serialize(const FeatureIndex& index) {
    std::string p;
    PutU64(&p, index.built_epoch_);
    PutU64(&p, index.database_ ? index.database_->feature_dimension() : 0);
    PutU64(&p, index.set_.max_partition_size_);
    // Build options, so a reloaded index Rebuild()s identically.
    PutU64(&p, index.options_.num_partitions);
    PutU64(&p, index.options_.seed);
    PutU64(&p, index.options_.quantized_scan ? 1 : 0);
    PutU64(&p, index.options_.quantized_min_rows);
    PutU64(&p, index.options_.quant_bits);
    // Version 3: the *resolved* exact-scan precision (Rebuild stores a
    // concrete f64/f32 back into the options before packing).
    PutU64(&p, static_cast<uint64_t>(index.options_.exact_precision));
    PutU64(&p, index.options_.parallel.max_threads);
    PutU64(&p, index.options_.parallel.grain);
    // Packed references.
    PutU64(&p, index.set_.references_.rows());
    PutU64(&p, index.set_.references_.cols());
    PutDoubles(&p, index.set_.references_.data());
    // Partitions, in index order.
    PutU64(&p, index.set_.partitions_.size());
    for (const IndexPartitionSet::Partition& part : index.set_.partitions_) {
      PutPartition(&p, part);
    }
    return p;
  }

  static Result<FeatureIndex> Deserialize(const char* payload, size_t size,
                                          int version,
                                          const MotionDatabase* database) {
    Reader r(payload, size);
    FeatureIndex index;
    index.database_ = database;
    MOCEMG_ASSIGN_OR_RETURN(uint64_t epoch, r.U64());
    index.built_epoch_ = epoch;
    MOCEMG_ASSIGN_OR_RETURN(uint64_t dim, r.U64());
    if (dim != database->feature_dimension()) {
      return Status::ParseError(
          "index snapshot dimension " + std::to_string(dim) +
          " does not match database dimension " +
          std::to_string(database->feature_dimension()));
    }
    MOCEMG_ASSIGN_OR_RETURN(uint64_t max_part, r.U64());
    index.set_.max_partition_size_ = static_cast<size_t>(max_part);
    MOCEMG_ASSIGN_OR_RETURN(uint64_t num_parts_opt, r.U64());
    index.options_.num_partitions = static_cast<size_t>(num_parts_opt);
    MOCEMG_ASSIGN_OR_RETURN(index.options_.seed, r.U64());
    MOCEMG_ASSIGN_OR_RETURN(uint64_t qscan, r.U64());
    index.options_.quantized_scan = qscan != 0;
    MOCEMG_ASSIGN_OR_RETURN(uint64_t qmin, r.U64());
    index.options_.quantized_min_rows = static_cast<size_t>(qmin);
    MOCEMG_ASSIGN_OR_RETURN(uint64_t qbits, r.U64());
    if (qbits != 8 && qbits != 4) {
      return Status::ParseError(
          "index snapshot options carry quantized code width " +
          std::to_string(qbits) + " bits; this reader supports 8 or 4");
    }
    index.options_.quant_bits = static_cast<size_t>(qbits);
    if (version >= 3) {
      MOCEMG_ASSIGN_OR_RETURN(uint64_t precision, r.U64());
      if (precision != static_cast<uint64_t>(ExactPrecision::kF64) &&
          precision != static_cast<uint64_t>(ExactPrecision::kF32)) {
        return Status::ParseError(
            "index snapshot options carry exact precision tag " +
            std::to_string(precision) + "; this reader supports f64 (1) "
            "or f32 (2)");
      }
      index.options_.exact_precision =
          static_cast<ExactPrecision>(precision);
    } else {
      // Version-2 snapshots predate the fp32 tier and carry no
      // mirrors: they load as concrete f64 regardless of the
      // environment, so behavior is a property of the file, not of
      // where it is opened.
      index.options_.exact_precision = ExactPrecision::kF64;
    }
    MOCEMG_ASSIGN_OR_RETURN(uint64_t threads, r.U64());
    index.options_.parallel.max_threads = static_cast<size_t>(threads);
    MOCEMG_ASSIGN_OR_RETURN(uint64_t grain, r.U64());
    index.options_.parallel.grain = static_cast<size_t>(grain);

    MOCEMG_ASSIGN_OR_RETURN(uint64_t ref_rows, r.U64());
    MOCEMG_ASSIGN_OR_RETURN(uint64_t ref_cols, r.U64());
    // Every count below is sanity-capped against what the database and
    // dimension admit, so a crafted-size payload is rejected rather
    // than allocating unbounded memory.
    const uint64_t n_records = database->size();
    if (ref_cols != dim || ref_rows > n_records + 1) {
      return Status::ParseError("index snapshot references shape invalid");
    }
    MOCEMG_ASSIGN_OR_RETURN(std::vector<double> refs,
                            r.Doubles(ref_rows * ref_cols));
    if (refs.size() != ref_rows * ref_cols) {
      return Status::ParseError("index snapshot references size mismatch");
    }
    index.set_.references_ = Matrix(static_cast<size_t>(ref_rows),
                                    static_cast<size_t>(ref_cols));
    index.set_.references_.mutable_data() = std::move(refs);

    MOCEMG_ASSIGN_OR_RETURN(uint64_t num_partitions, r.U64());
    if (num_partitions != ref_rows) {
      return Status::ParseError(
          "index snapshot partition count does not match references");
    }
    index.set_.partitions_.resize(static_cast<size_t>(num_partitions));
    for (IndexPartitionSet::Partition& part : index.set_.partitions_) {
      MOCEMG_RETURN_NOT_OK(
          ReadPartition(&r, version, n_records, dim, &part));
    }
    if (!r.exhausted()) {
      return Status::ParseError("index snapshot has trailing bytes");
    }
    // num_rows_ / max_partition_size_ are derivable; recompute instead
    // of trusting the payload (the stored max_partition_size field is
    // kept for format stability).
    index.set_.RefreshDerived();
    return index;
  }

  // --- sharded snapshots --------------------------------------------

  static std::string SerializeShard(const ShardedFeatureIndex& index,
                                    size_t shard) {
    std::string p;
    PutU64(&p, shard);
    PutU64(&p, index.shard_epochs_[shard]);
    const IndexPartitionSet& set = index.shards_[shard];
    PutU64(&p, set.partitions_.size());
    for (const IndexPartitionSet::Partition& part : set.partitions_) {
      PutPartition(&p, part);
    }
    return p;
  }

  static std::string SerializeManifest(
      const ShardedFeatureIndex& index,
      const std::vector<std::pair<uint64_t, uint64_t>>& digests) {
    std::string p;
    PutU64(&p, index.applied_epoch_);
    PutU64(&p, index.database_->feature_dimension());
    PutU64(&p, index.record_to_partition_.size());
    PutU64(&p, index.shards_.size());
    // Build options, so a fallback rebuild reproduces the same index.
    PutU64(&p, index.options_.index.num_partitions);
    PutU64(&p, index.options_.index.seed);
    PutU64(&p, index.options_.index.quantized_scan ? 1 : 0);
    PutU64(&p, index.options_.index.quantized_min_rows);
    PutU64(&p, index.options_.index.quant_bits);
    PutU64(&p,
           static_cast<uint64_t>(index.options_.index.exact_precision));
    PutU64(&p, index.options_.index.parallel.max_threads);
    PutU64(&p, index.options_.index.parallel.grain);
    PutU64(&p, index.options_.num_shards);
    for (uint64_t e : index.shard_epochs_) PutU64(&p, e);
    // The global layout: references in global partition order plus
    // every record's owning partition — enough to repack any shard
    // without re-running k-means (shard ownership is p mod N).
    PutU64(&p, index.global_references_.rows());
    PutU64(&p, index.global_references_.cols());
    PutDoubles(&p, index.global_references_.data());
    PutU64(&p, index.record_to_partition_.size());
    for (uint32_t v : index.record_to_partition_) PutU64(&p, v);
    for (const auto& [size, checksum] : digests) {
      PutU64(&p, size);
      PutU64(&p, checksum);
    }
    return p;
  }

  static Result<ShardedManifest> ParseManifest(
      const char* payload, size_t size, int version,
      const MotionDatabase* database) {
    Reader r(payload, size);
    ShardedManifest m;
    MOCEMG_ASSIGN_OR_RETURN(m.applied_epoch, r.U64());
    MOCEMG_ASSIGN_OR_RETURN(m.dim, r.U64());
    MOCEMG_ASSIGN_OR_RETURN(m.n_records, r.U64());
    MOCEMG_ASSIGN_OR_RETURN(m.num_shards, r.U64());
    if (m.dim != database->feature_dimension()) {
      return Status::ParseError(
          "sharded index manifest dimension " + std::to_string(m.dim) +
          " does not match database dimension " +
          std::to_string(database->feature_dimension()));
    }
    if (m.n_records != database->size()) {
      return Status::ParseError(
          "sharded index manifest covers " + std::to_string(m.n_records) +
          " records but the database has " +
          std::to_string(database->size()));
    }
    if (m.num_shards == 0 || m.num_shards > 65536) {
      return Status::ParseError("sharded index manifest shard count invalid");
    }
    MOCEMG_ASSIGN_OR_RETURN(uint64_t num_parts_opt, r.U64());
    m.options.index.num_partitions = static_cast<size_t>(num_parts_opt);
    MOCEMG_ASSIGN_OR_RETURN(m.options.index.seed, r.U64());
    MOCEMG_ASSIGN_OR_RETURN(uint64_t qscan, r.U64());
    m.options.index.quantized_scan = qscan != 0;
    MOCEMG_ASSIGN_OR_RETURN(uint64_t qmin, r.U64());
    m.options.index.quantized_min_rows = static_cast<size_t>(qmin);
    MOCEMG_ASSIGN_OR_RETURN(uint64_t qbits, r.U64());
    if (qbits != 8 && qbits != 4) {
      return Status::ParseError(
          "sharded index manifest carries quantized code width " +
          std::to_string(qbits) + " bits; this reader supports 8 or 4");
    }
    m.options.index.quant_bits = static_cast<size_t>(qbits);
    if (version >= 3) {
      MOCEMG_ASSIGN_OR_RETURN(uint64_t precision, r.U64());
      if (precision != static_cast<uint64_t>(ExactPrecision::kF64) &&
          precision != static_cast<uint64_t>(ExactPrecision::kF32)) {
        return Status::ParseError(
            "sharded index manifest carries exact precision tag " +
            std::to_string(precision) + "; this reader supports f64 (1) "
            "or f32 (2)");
      }
      m.options.index.exact_precision =
          static_cast<ExactPrecision>(precision);
    } else {
      m.options.index.exact_precision = ExactPrecision::kF64;
    }
    MOCEMG_ASSIGN_OR_RETURN(uint64_t threads, r.U64());
    m.options.index.parallel.max_threads = static_cast<size_t>(threads);
    MOCEMG_ASSIGN_OR_RETURN(uint64_t grain, r.U64());
    m.options.index.parallel.grain = static_cast<size_t>(grain);
    MOCEMG_ASSIGN_OR_RETURN(uint64_t shards_opt, r.U64());
    m.options.num_shards = static_cast<size_t>(shards_opt);
    m.shard_epochs.resize(m.num_shards);
    for (uint64_t& e : m.shard_epochs) {
      MOCEMG_ASSIGN_OR_RETURN(e, r.U64());
    }
    MOCEMG_ASSIGN_OR_RETURN(uint64_t ref_rows, r.U64());
    MOCEMG_ASSIGN_OR_RETURN(uint64_t ref_cols, r.U64());
    if (ref_cols != m.dim || ref_rows > m.n_records) {
      return Status::ParseError(
          "sharded index manifest references shape invalid");
    }
    m.num_partitions = ref_rows;
    MOCEMG_ASSIGN_OR_RETURN(std::vector<double> refs,
                            r.Doubles(ref_rows * ref_cols));
    if (refs.size() != ref_rows * ref_cols) {
      return Status::ParseError(
          "sharded index manifest references size mismatch");
    }
    m.references = Matrix(static_cast<size_t>(ref_rows),
                          static_cast<size_t>(ref_cols));
    m.references.mutable_data() = std::move(refs);
    MOCEMG_ASSIGN_OR_RETURN(uint64_t map_len, r.U64());
    if (map_len != m.n_records) {
      return Status::ParseError(
          "sharded index manifest record map length mismatch");
    }
    m.record_to_partition.resize(static_cast<size_t>(map_len));
    for (uint32_t& v : m.record_to_partition) {
      MOCEMG_ASSIGN_OR_RETURN(uint64_t x, r.U64());
      if (x >= m.num_partitions) {
        return Status::ParseError(
            "sharded index manifest record maps to a partition out of "
            "range");
      }
      v = static_cast<uint32_t>(x);
    }
    m.digests.resize(m.num_shards);
    for (auto& [dsize, dsum] : m.digests) {
      MOCEMG_ASSIGN_OR_RETURN(dsize, r.U64());
      MOCEMG_ASSIGN_OR_RETURN(dsum, r.U64());
    }
    if (!r.exhausted()) {
      return Status::ParseError(
          "sharded index manifest has trailing bytes");
    }
    return m;
  }

  /// Loads and validates one shard file against the manifest — magic,
  /// length, checksum, the manifest's recorded digest (a shard file
  /// from another save generation fails here), the shard id, its
  /// epoch, and the exact membership the manifest's record map
  /// derives. On success installs the partitions into `set`.
  static Status LoadShardInto(
      const std::string& path, size_t shard, const ShardedManifest& m,
      const Matrix& shard_refs,
      const std::vector<std::vector<size_t>>& shard_members,
      IndexPartitionSet* set) {
    MOCEMG_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
    MOCEMG_ASSIGN_OR_RETURN(
        FramedPayload window,
        UnframeSnapshot(bytes, kShardPrefix, "shard snapshot"));
    // The digest covers the payload bytes, mirror blocks included — a
    // shard file from another save generation (or another container
    // version) fails here before any of its fields are trusted.
    if (window.size != m.digests[shard].first ||
        Fnv1a64(window.payload, window.size) != m.digests[shard].second) {
      return Status::ParseError(
          "shard snapshot does not match the manifest's digest (stale "
          "or cross-generation file)");
    }
    Reader r(window.payload, window.size);
    MOCEMG_ASSIGN_OR_RETURN(uint64_t id, r.U64());
    if (id != shard) {
      return Status::ParseError("shard snapshot carries the wrong shard id");
    }
    MOCEMG_ASSIGN_OR_RETURN(uint64_t epoch, r.U64());
    if (epoch != m.shard_epochs[shard]) {
      return Status::ParseError(
          "shard snapshot epoch does not match the manifest");
    }
    MOCEMG_ASSIGN_OR_RETURN(uint64_t num_local, r.U64());
    if (num_local != shard_members.size()) {
      return Status::ParseError(
          "shard snapshot partition count does not match the manifest "
          "layout");
    }
    std::vector<IndexPartitionSet::Partition> parts(
        static_cast<size_t>(num_local));
    for (size_t i = 0; i < parts.size(); ++i) {
      MOCEMG_RETURN_NOT_OK(
          ReadPartition(&r, window.version, m.n_records, m.dim,
                        &parts[i]));
      if (parts[i].record_indices != shard_members[i]) {
        return Status::ParseError(
            "shard snapshot membership does not match the manifest "
            "layout");
      }
    }
    if (!r.exhausted()) {
      return Status::ParseError("shard snapshot has trailing bytes");
    }
    set->references_ = shard_refs;
    set->partitions_ = std::move(parts);
    set->RefreshDerived();
    return Status::OK();
  }

  /// Builds a ShardedFeatureIndex from a parsed manifest, loading each
  /// shard file and — when `allow_repack` and the manifest is fresh —
  /// repacking any shard that fails validation from the manifest's
  /// layout (bit-identical to the lost shard, since packing is a pure
  /// function of layout + database rows).
  static Result<ShardedFeatureIndex> AssembleSharded(
      const ShardedManifest& m, const MotionDatabase* database,
      const std::string& path, bool allow_repack,
      ShardedSnapshotLoadInfo* info) {
    // Derive every partition's membership from the record map once.
    std::vector<std::vector<size_t>> members(
        static_cast<size_t>(m.num_partitions));
    for (size_t rec = 0; rec < m.record_to_partition.size(); ++rec) {
      members[m.record_to_partition[rec]].push_back(rec);
    }
    for (size_t p = 0; p < members.size(); ++p) {
      if (members[p].empty()) {
        return Status::ParseError(
            "sharded index manifest has an empty partition");
      }
    }
    ShardedFeatureIndex index;
    index.database_ = database;
    index.options_ = m.options;
    index.applied_epoch_ = m.applied_epoch;
    index.shard_epochs_ = m.shard_epochs;
    index.record_to_partition_ = m.record_to_partition;
    index.global_references_ = m.references;
    index.shards_.assign(static_cast<size_t>(m.num_shards),
                         IndexPartitionSet{});
    for (size_t s = 0; s < index.shards_.size(); ++s) {
      Matrix refs(0, static_cast<size_t>(m.dim));
      std::vector<std::vector<size_t>> shard_members;
      for (size_t p = s; p < members.size(); p += index.shards_.size()) {
        MOCEMG_RETURN_NOT_OK(
            refs.AppendRows(m.references.RowSlice(p, p + 1)));
        shard_members.push_back(members[p]);
      }
      Status st = LoadShardInto(ShardFilePath(path, s), s, m, refs,
                                shard_members, &index.shards_[s]);
      if (st.ok()) continue;
      if (!allow_repack) {
        return st.WithContext("loading shard " + std::to_string(s) +
                              " of " + path);
      }
      // Partial recovery: the manifest is fresh (the caller checked
      // the applied epoch against the database), so repacking from the
      // database's current rows reproduces exactly the bytes the lost
      // shard file held.
      MOCEMG_LOG(kWarning)
          << "shard " << s << " of " << path
          << " unusable, repacking from the manifest layout: "
          << st.ToString();
      MOCEMG_RETURN_NOT_OK(index.shards_[s].Pack(*database, refs,
                                                 shard_members,
                                                 m.options.index));
      if (info != nullptr) {
        info->rebuilt_shards.push_back(s);
        if (info->fallback_reason.empty()) {
          info->fallback_reason = "shard " + std::to_string(s) + ": " +
                                  st.ToString();
        }
      }
    }
    return index;
  }
};

Result<std::string> SerializeFeatureIndex(const FeatureIndex& index) {
  if (index.num_partitions() == 0) {
    return Status::FailedPrecondition(
        "cannot snapshot an index that has not been built");
  }
  std::string payload = IndexSnapshotCodec::Serialize(index);
  std::string out;
  out.reserve(kMagicLen + 16 + payload.size());
  out.append(kMagic, kMagicLen);
  PutU64(&out, payload.size());
  PutU64(&out, Fnv1a64(payload.data(), payload.size()));
  out += payload;
  return out;
}

namespace {

/// Shared by DeserializeFeatureIndex and LoadFeatureIndex: unframe,
/// deserialize, and report the container version the file declared so
/// path-aware callers can log the v2→v3 regeneration hint.
Result<FeatureIndex> DeserializeFeatureIndexDetecting(
    const std::string& bytes, const MotionDatabase* database,
    int* detected_version) {
  if (database == nullptr) {
    return Status::InvalidArgument("database must not be null");
  }
  MOCEMG_ASSIGN_OR_RETURN(
      FramedPayload window,
      UnframeSnapshot(bytes, kMagicPrefix, "index snapshot"));
  if (detected_version != nullptr) *detected_version = window.version;
  return IndexSnapshotCodec::Deserialize(window.payload, window.size,
                                         window.version, database);
}

}  // namespace

Result<FeatureIndex> DeserializeFeatureIndex(
    const std::string& bytes, const MotionDatabase* database) {
  return DeserializeFeatureIndexDetecting(bytes, database, nullptr);
}

Status SaveFeatureIndex(const FeatureIndex& index, const std::string& path) {
  MOCEMG_ASSIGN_OR_RETURN(std::string bytes, SerializeFeatureIndex(index));
  // Write-then-rename: the incomplete state only ever exists under the
  // temporary name, so a crash between the two steps leaves the
  // previous snapshot at `path` untouched.
  const std::string tmp = path + ".tmp";
  MOCEMG_RETURN_NOT_OK(WriteStringToFile(tmp, bytes));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("failed to rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<FeatureIndex> LoadFeatureIndex(const std::string& path,
                                      const MotionDatabase* database) {
  MOCEMG_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  int version = 0;
  Result<FeatureIndex> index =
      DeserializeFeatureIndexDetecting(bytes, database, &version);
  if (!index.ok()) {
    return index.status().WithContext("loading index snapshot " + path);
  }
  if (version < kWriteVersion) {
    MOCEMG_LOG(kWarning)
        << "index snapshot " << path << " is container version "
        << version << " (pre-fp32-mirror); loaded with "
        << "exact_precision=f64 — re-save it to regenerate a version-"
        << kWriteVersion << " snapshot and enable the fp32 exact tier";
  }
  return index;
}

Result<FeatureIndex> LoadOrRebuildFeatureIndex(
    const std::string& path, const MotionDatabase* database,
    const FeatureIndexOptions& rebuild_options,
    IndexSnapshotLoadInfo* info) {
  if (database == nullptr) {
    return Status::InvalidArgument("database must not be null");
  }
  IndexSnapshotLoadInfo local;
  IndexSnapshotLoadInfo* out = info ? info : &local;
  *out = IndexSnapshotLoadInfo{};

  Result<FeatureIndex> loaded = LoadFeatureIndex(path, database);
  if (loaded.ok()) {
    if (loaded->built_epoch() == database->epoch()) {
      out->loaded_from_snapshot = true;
      return loaded;
    }
    out->fallback_reason =
        "snapshot built at epoch " + std::to_string(loaded->built_epoch()) +
        " but database is at epoch " + std::to_string(database->epoch());
  } else {
    out->fallback_reason = loaded.status().ToString();
  }
  MOCEMG_LOG(kWarning) << "index snapshot " << path
                       << " unusable, rebuilding from database: "
                       << out->fallback_reason;
  MOCEMG_ASSIGN_OR_RETURN(FeatureIndex rebuilt,
                          FeatureIndex::Build(database, rebuild_options));
  out->rebuilt = true;
  return rebuilt;
}

Status SaveShardedFeatureIndex(const ShardedFeatureIndex& index,
                               const std::string& path) {
  if (index.num_shards() == 0 || index.num_partitions() == 0) {
    return Status::FailedPrecondition(
        "cannot snapshot a sharded index that has not been built");
  }
  // Shard files first, manifest last: a crash mid-save leaves the old
  // manifest in charge, and any shard file it no longer matches fails
  // its digest check at load and repacks.
  std::vector<std::pair<uint64_t, uint64_t>> digests;
  digests.reserve(index.num_shards());
  for (size_t s = 0; s < index.num_shards(); ++s) {
    const std::string payload = IndexSnapshotCodec::SerializeShard(index, s);
    digests.emplace_back(payload.size(),
                         Fnv1a64(payload.data(), payload.size()));
    MOCEMG_RETURN_NOT_OK(WriteSnapshotFile(
        ShardFilePath(path, s),
        FrameSnapshot(kShardMagic, kShardMagicLen, payload)));
  }
  const std::string manifest =
      IndexSnapshotCodec::SerializeManifest(index, digests);
  return WriteSnapshotFile(
      path, FrameSnapshot(kManifestMagic, kManifestMagicLen, manifest));
}

Result<ShardedFeatureIndex> LoadShardedFeatureIndex(
    const std::string& path, const MotionDatabase* database) {
  if (database == nullptr) {
    return Status::InvalidArgument("database must not be null");
  }
  MOCEMG_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  auto window =
      UnframeSnapshot(bytes, kManifestPrefix, "sharded index manifest");
  if (!window.ok()) {
    return window.status().WithContext("loading sharded index manifest " +
                                       path);
  }
  if (window->version < kWriteVersion) {
    MOCEMG_LOG(kWarning)
        << "sharded index manifest " << path << " is container version "
        << window->version << " (pre-fp32-mirror); loaded with "
        << "exact_precision=f64 — re-save it to regenerate version-"
        << kWriteVersion << " files and enable the fp32 exact tier";
  }
  auto manifest = IndexSnapshotCodec::ParseManifest(
      window->payload, window->size, window->version, database);
  if (!manifest.ok()) {
    return manifest.status().WithContext("loading sharded index manifest " +
                                         path);
  }
  return IndexSnapshotCodec::AssembleSharded(*manifest, database, path,
                                             /*allow_repack=*/false,
                                             nullptr);
}

Result<ShardedFeatureIndex> LoadOrRebuildShardedFeatureIndex(
    const std::string& path, const MotionDatabase* database,
    const ShardedIndexOptions& rebuild_options,
    ShardedSnapshotLoadInfo* info) {
  if (database == nullptr) {
    return Status::InvalidArgument("database must not be null");
  }
  ShardedSnapshotLoadInfo local;
  ShardedSnapshotLoadInfo* out = info ? info : &local;
  *out = ShardedSnapshotLoadInfo{};

  // The manifest must be readable, valid, and *fresh* (applied epoch ==
  // database epoch) for the per-shard recovery path to be sound — a
  // repacked shard takes its bytes from the database's current rows.
  Result<ShardedFeatureIndex> attempt = [&]() -> Result<ShardedFeatureIndex> {
    MOCEMG_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
    MOCEMG_ASSIGN_OR_RETURN(
        FramedPayload window,
        UnframeSnapshot(bytes, kManifestPrefix,
                        "sharded index manifest"));
    if (window.version < kWriteVersion) {
      MOCEMG_LOG(kWarning)
          << "sharded index manifest " << path
          << " is container version " << window.version
          << " (pre-fp32-mirror); loaded with exact_precision=f64 — "
          << "re-save it to regenerate version-" << kWriteVersion
          << " files and enable the fp32 exact tier";
    }
    MOCEMG_ASSIGN_OR_RETURN(
        ShardedManifest manifest,
        IndexSnapshotCodec::ParseManifest(window.payload, window.size,
                                          window.version, database));
    if (manifest.applied_epoch != database->epoch()) {
      return Status::FailedPrecondition(
          "manifest applied epoch " +
          std::to_string(manifest.applied_epoch) +
          " but database is at epoch " +
          std::to_string(database->epoch()));
    }
    return IndexSnapshotCodec::AssembleSharded(manifest, database, path,
                                               /*allow_repack=*/true, out);
  }();
  if (attempt.ok()) {
    out->loaded_from_snapshot = out->rebuilt_shards.empty();
    return attempt;
  }
  out->rebuilt_shards.clear();
  out->fallback_reason = attempt.status().ToString();
  MOCEMG_LOG(kWarning) << "sharded index snapshot " << path
                       << " unusable, rebuilding from database: "
                       << out->fallback_reason;
  MOCEMG_ASSIGN_OR_RETURN(
      ShardedFeatureIndex rebuilt,
      ShardedFeatureIndex::Build(database, rebuild_options));
  out->rebuilt = true;
  return rebuilt;
}

}  // namespace mocemg
