#include "db/feature_index.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>

#include "cluster/kmeans.h"
#include "util/distance_kernels.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/quant_kernels.h"

namespace mocemg {
namespace {

// fp32 overflow gate for the mirror tier (DESIGN.md §15.3): a
// partition is mirrored only when its max ‖r‖² stays below this, and a
// query uses a partition's mirror only when q² + max ‖r‖² does too.
// Element magnitudes are then < 1e15 (f64→f32 conversion stays finite
// and defined) and every fp32 partial sum stays below ~5e29 ≪ FLT_MAX,
// so the mirror scan can produce no Inf and — NaN-free inputs being
// guaranteed upstream — no NaN.
constexpr double kF32TierNormGate = 1e30;

// Query-block scan knobs (DESIGN.md §16). kDefaultQueryBlock is the
// auto block size for the batch entry points; kBlockRowSlab caps one
// visit group's per-tier kernel output at g × slab entries, so block
// scratch stays bounded on huge partitions. Both are pure performance
// knobs: every per-(query, row) quantity is bit-identical at any
// value, because each pair's kernel accumulation is self-contained and
// every gate either evolves per-row within one query (coarse) or is
// frozen at partition entry (dot-form tiers).
constexpr size_t kDefaultQueryBlock = 32;
constexpr size_t kBlockRowSlab = 4096;

// Second prune stage for the dot-form tiers' frozen-gate survivors
// (DESIGN.md §16.3). With |dist − true| <= margin for every scored
// row, at least k candidates have a true distance no greater than
// kthC + margin, where kthC is the k-th smallest candidate dot-form
// distance — and they all reach the same heap as any other candidate
// from this partition. A candidate with dist > kthC + 2·margin
// therefore provably cannot make the final top k, no matter what the
// heap held at partition entry; without this stage an entry-time gate
// alone refines the entire first partition of every query (empty
// heap → infinite threshold). The threshold is a pure function of the
// candidate distances, so the solo and block scans shrink identical
// survivor sets. NaN distances are kept — they must reach the exact
// re-check — and sit out of the order statistic.
void SelfGateCandidates(size_t k, double margin,
                        std::vector<uint32_t>* ridx,
                        std::vector<double>* cand,
                        std::vector<double>* sort_tmp) {
  if (k == 0 || ridx->size() <= k) return;
  sort_tmp->clear();
  for (const double d : *cand) {
    if (!std::isnan(d)) sort_tmp->push_back(d);
  }
  if (sort_tmp->size() < k) return;
  std::nth_element(sort_tmp->begin(), sort_tmp->begin() + (k - 1),
                   sort_tmp->end());
  const double thresh = (*sort_tmp)[k - 1] + 2.0 * margin;
  size_t w = 0;
  for (size_t i = 0; i < ridx->size(); ++i) {
    if (!((*cand)[i] > thresh)) {
      (*ridx)[w] = (*ridx)[i];
      (*cand)[w] = (*cand)[i];
      ++w;
    }
  }
  ridx->resize(w);
  cand->resize(w);
}

// MOCEMG_EXACT_PRECISION, read once at first resolution.
ExactPrecision EnvExactPrecision() {
  static const ExactPrecision value = [] {
    const char* env = std::getenv("MOCEMG_EXACT_PRECISION");
    if (env == nullptr || env[0] == '\0') return ExactPrecision::kF64;
    const Result<ExactPrecision> parsed = ParseExactPrecision(env);
    if (!parsed.ok() ||
        parsed.ValueOrDie() == ExactPrecision::kDefault) {
      MOCEMG_LOG(kWarning)
          << "MOCEMG_EXACT_PRECISION=" << env
          << " is not f64/f32; using f64";
      return ExactPrecision::kF64;
    }
    return parsed.ValueOrDie();
  }();
  return value;
}

}  // namespace

const char* ExactPrecisionName(ExactPrecision precision) {
  switch (precision) {
    case ExactPrecision::kDefault:
      return "default";
    case ExactPrecision::kF64:
      return "f64";
    case ExactPrecision::kF32:
      return "f32";
  }
  return "unknown";
}

Result<ExactPrecision> ParseExactPrecision(const std::string& name) {
  if (name == "default") return ExactPrecision::kDefault;
  if (name == "f64" || name == "double") return ExactPrecision::kF64;
  if (name == "f32" || name == "float") return ExactPrecision::kF32;
  return Status::InvalidArgument(
      "unknown exact precision \"" + name + "\" (want f64 or f32)");
}

ExactPrecision ResolveExactPrecision(ExactPrecision precision) {
  return precision == ExactPrecision::kDefault ? EnvExactPrecision()
                                               : precision;
}

Result<IndexLayout> ComputeIndexLayout(const MotionDatabase& database,
                                       const FeatureIndexOptions& options) {
  if (database.empty()) {
    return Status::FailedPrecondition("database is empty");
  }
  const size_t n = database.size();
  const size_t d = database.feature_dimension();
  size_t p = options.num_partitions;
  if (p == 0) {
    p = std::max<size_t>(
        1, static_cast<size_t>(std::lround(std::sqrt(
               static_cast<double>(n)))));
  }
  p = std::min(p, n);

  // The database's packed block is already the row-major points layout
  // k-means wants; copy it wholesale instead of row by row.
  Matrix points(n, d);
  points.mutable_data() = database.packed_features();
  KmeansOptions km;
  km.num_clusters = p;
  km.seed = options.seed;
  MOCEMG_ASSIGN_OR_RETURN(KmeansModel model, FitKmeans(points, km));

  std::vector<std::vector<size_t>> members(p);
  for (size_t k = 0; k < n; ++k) {
    members[model.assignments[k]].push_back(k);
  }
  // Drop empty partitions (k-means can strand one on tiny databases),
  // keeping the references aligned with the survivors.
  IndexLayout layout;
  layout.references = Matrix(0, d);
  layout.members.reserve(p);
  for (size_t i = 0; i < p; ++i) {
    if (members[i].empty()) continue;
    MOCEMG_RETURN_NOT_OK(
        layout.references.AppendRows(model.centers.RowSlice(i, i + 1)));
    layout.members.push_back(std::move(members[i]));
  }
  return layout;
}

void IndexPartitionSet::FillPartition(const double* packed, size_t dim,
                                      const double* reference,
                                      const FeatureIndexOptions& options,
                                      Partition* part) {
  const size_t rows = part->size();
  part->radius_sq = 0.0;
  part->max_norm_sq = 0.0;
  part->block.resize(rows * dim);
  part->norms_sq.resize(rows);
  for (size_t j = 0; j < rows; ++j) {
    const size_t rec = part->record_indices[j];
    const double* row = packed + rec * dim;
    part->radius_sq =
        std::max(part->radius_sq, SquaredL2Dispatched(row, reference, dim));
    const double norm_sq = SquaredNorm(row, dim);
    part->max_norm_sq = std::max(part->max_norm_sq, norm_sq);
    std::memcpy(part->block.data() + j * dim, row, dim * sizeof(double));
    part->norms_sq[j] = norm_sq;
  }
  part->radius = std::sqrt(part->radius_sq);
  // fp32 mirror tier (DESIGN.md §15): partitions the quantized tier
  // will *not* code get a float32 copy of the block plus fp32 row
  // norms, so the exact scan can run the cheaper fp32 dot-form kernel
  // and re-evaluate in double only the rows inside the certified fp32
  // error bound. The pack-time norm gate keeps every f64→f32
  // conversion finite (and defined behaviour); mirror_max_abs feeds
  // the subnormal term of Float32DotFormErrorBound.
  part->block_f32.clear();
  part->norms_f32.clear();
  part->mirror_max_abs = 0.0;
  const bool coded = options.quantized_scan && dim <= 60000 &&
                     rows > 0 && rows >= options.quantized_min_rows;
  if (!coded && rows > 0 &&
      ResolveExactPrecision(options.exact_precision) ==
          ExactPrecision::kF32 &&
      part->max_norm_sq < kF32TierNormGate) {
    double max_abs = 0.0;
    for (size_t j = 0; j < rows * dim; ++j) {
      max_abs = std::max(max_abs, std::fabs(part->block[j]));
    }
    part->mirror_max_abs = max_abs;
    part->block_f32.resize(rows * dim);
    for (size_t j = 0; j < rows * dim; ++j) {
      part->block_f32[j] = static_cast<float>(part->block[j]);
    }
    part->norms_f32.resize(rows);
    RowSquaredNormsF32(part->block_f32.data(), rows, dim,
                       part->norms_f32.data());
  }
  // Quantized tier: code the partition on its own integer grid (8-bit
  // or nibble-packed 4-bit per options.quant_bits) and *measure* the
  // worst reconstruction error — the provable prune leans on this
  // number, not on an analytic half-step bound, so heavy-tailed
  // columns can only cost pruning power, not correctness. The integer
  // coarse distance Σ(qc − c)² must fit uint32: d · 255² < 2³² (the
  // 4-bit grid's 15² bound is even further from the gate). Any
  // realistic feature width is far below it.
  part->quant_offsets.clear();
  part->quant_codes.clear();
  part->quant_scale = 0.0;
  part->quant_err_sq = 0.0;
  part->quant_box_sq = 0.0;
  part->quant_bits = static_cast<uint8_t>(options.quant_bits);
  const bool quantizable = options.quantized_scan && dim <= 60000;
  if (!quantizable || rows == 0 || rows < options.quantized_min_rows) {
    return;
  }
  const uint32_t levels = part->quant_bits == 4 ? 15u : 255u;
  part->quant_offsets.resize(dim);
  ComputeQuantGrid(part->block.data(), rows, dim,
                   part->quant_offsets.data(), &part->quant_scale, levels);
  // Codes are produced unpacked (one byte per dim) for the error
  // measurement, then nibble-packed for storage when 4-bit.
  std::vector<uint8_t> unpacked(rows * dim);
  QuantizeRows(part->block.data(), rows, dim, part->quant_offsets.data(),
               part->quant_scale, unpacked.data(), levels);
  // Squared-norm bound over the whole grid bounding box (any
  // reconstruction — of a row or of a clamped query — lies inside
  // it); feeds the slack's magnitude argument.
  double box_sq = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    const double lo = part->quant_offsets[j];
    const double hi =
        lo + static_cast<double>(levels) * part->quant_scale;
    box_sq += std::max(lo * lo, hi * hi);
  }
  part->quant_box_sq = box_sq;
  std::vector<double> decoded(dim);
  double max_err = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    DequantizeRow(unpacked.data() + r * dim, dim,
                  part->quant_offsets.data(), part->quant_scale,
                  decoded.data());
    max_err = std::max(max_err,
                       SquaredL2Dispatched(part->block.data() + r * dim,
                                           decoded.data(), dim));
  }
  // Inflate the measured error by the build-side accumulation slack so
  // ‖r − r̃‖² (exact real value) is provably covered.
  part->quant_err_sq =
      max_err + QuantScanSlack(dim, part->max_norm_sq, box_sq);
  if (part->quant_bits == 4) {
    part->quant_codes.resize(rows * PackedNibbleStride(dim));
    PackNibbleRows(unpacked.data(), rows, dim, part->quant_codes.data());
  } else {
    part->quant_codes = std::move(unpacked);
  }
}

void IndexPartitionSet::RefreshDerived() {
  max_partition_size_ = 0;
  num_rows_ = 0;
  for (const Partition& part : partitions_) {
    max_partition_size_ = std::max(max_partition_size_, part.size());
    num_rows_ += part.size();
  }
}

Status IndexPartitionSet::Pack(const MotionDatabase& database,
                               const Matrix& references,
                               const std::vector<std::vector<size_t>>& members,
                               const FeatureIndexOptions& options) {
  const size_t n = database.size();
  const size_t d = database.feature_dimension();
  if (options.quant_bits != 8 && options.quant_bits != 4) {
    return Status::InvalidArgument(
        "quant_bits must be 8 or 4, got " +
        std::to_string(options.quant_bits));
  }
  if (references.rows() != members.size() ||
      (members.size() > 0 && references.cols() != d)) {
    return Status::InvalidArgument("layout shape mismatch");
  }
  for (const auto& list : members) {
    if (list.empty()) {
      return Status::InvalidArgument("empty partition in layout");
    }
    for (size_t j = 0; j < list.size(); ++j) {
      if (list[j] >= n || (j > 0 && list[j] <= list[j - 1])) {
        return Status::InvalidArgument(
            "partition members must be ascending record indices");
      }
    }
  }
  references_ = references;
  partitions_.assign(members.size(), Partition{});
  for (size_t i = 0; i < members.size(); ++i) {
    partitions_[i].record_indices = members[i];
  }
  // Partitions fill independently (radius, block, norms, codes are pure
  // functions of the partition's own rows), so the packing pass
  // parallelizes per partition with bit-identical results at any
  // thread count.
  const double* packed = database.packed_features().data();
  ParallelOptions per_partition = options.parallel;
  per_partition.grain = 1;
  Status st = ParallelFor(
      partitions_.size(),
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        for (size_t i = begin; i < end; ++i) {
          FillPartition(packed, d, references_.RowPtr(i), options,
                        &partitions_[i]);
        }
        return Status::OK();
      },
      per_partition);
  MOCEMG_RETURN_NOT_OK(st);
  RefreshDerived();
  return Status::OK();
}

Status IndexPartitionSet::RefreshPartition(const MotionDatabase& database,
                                           size_t partition,
                                           const FeatureIndexOptions& options) {
  if (partition >= partitions_.size()) {
    return Status::InvalidArgument("partition out of range");
  }
  const size_t d = database.feature_dimension();
  Partition& part = partitions_[partition];
  if (!part.record_indices.empty() &&
      part.record_indices.back() >= database.size()) {
    return Status::FailedPrecondition(
        "partition references records beyond the database");
  }
  FillPartition(database.packed_features().data(), d,
                references_.RowPtr(partition), options, &part);
  RefreshDerived();
  return Status::OK();
}

IndexPartitionSet::CoarsePrep IndexPartitionSet::PrepCoarse(
    const double* query, double q_sq, size_t dim, const Partition& part,
    Scratch* scratch) const {
  // Clamp the query onto the partition's grid box, dimension by
  // dimension. For an out-of-box dimension the box edge q'_j lies
  // between q_j and every row value, so
  //   (q_j − r_j)² >= (q_j − q'_j)² + (q'_j − r_j)²
  // and summing gives ‖q − r‖² >= out² + ‖q' − r‖²: the out-of-box
  // energy is a certified additive term common to every row, and the
  // integer bound only has to separate the in-box part — where the
  // grid residual ‖q' − q̃‖ is at most half a step per dimension
  // instead of the full clamp distance.
  scratch->qclamp.resize(dim);
  scratch->qcodes.resize(dim);
  scratch->decoded.resize(dim);
  const double s = part.quant_scale;
  const double levels = part.quant_levels();
  for (size_t j = 0; j < dim; ++j) {
    const double lo = part.quant_offsets[j];
    const double hi = lo + levels * s;
    scratch->qclamp[j] = std::clamp(query[j], lo, hi);
  }
  CoarsePrep prep;
  prep.out_sq = SquaredL2Dispatched(query, scratch->qclamp.data(), dim);
  QuantizeQuery(scratch->qclamp.data(), dim, part.quant_offsets.data(), s,
                scratch->qcodes.data(), static_cast<uint32_t>(levels));
  DequantizeRow(scratch->qcodes.data(), dim, part.quant_offsets.data(), s,
                scratch->decoded.data());
  const double q_res_sq = SquaredL2Dispatched(scratch->qclamp.data(),
                                              scratch->decoded.data(), dim);
  prep.slack = QuantScanSlack(
      dim, q_sq, std::max(part.max_norm_sq, part.quant_box_sq));
  prep.q_res = std::sqrt(q_res_sq + prep.slack);
  prep.err = std::sqrt(part.quant_err_sq);
  return prep;
}

void IndexPartitionSet::SelectCoarse(const double* query, size_t dim,
                                     const Partition& part,
                                     size_t row_begin, size_t row_end,
                                     const uint32_t* ssd,
                                     const CoarsePrep& prep,
                                     BoundedTopK* top,
                                     IndexQueryStats* stats) const {
  // Integer prune threshold, recomputed only when the k-th best
  // moves: with t_rem = √max(0, kth + 2·slack − out²) the remaining
  // in-box budget, prune iff scale·√D − q_res − err > t_rem, i.e.
  // D > T. The 1e-9 relative inflation dominates every ε-level
  // rounding in computing T itself (the slack terms already cover the
  // kernel-evaluated quantities' accumulation error). The threshold
  // cache resets per call, but T is a pure function of (worst,
  // partition scalars), so splitting a partition's rows across calls
  // (the query-block path scans in row slabs) changes no decision.
  const double s = part.quant_scale;
  double last_worst = -1.0;
  double threshold = -1.0;
  for (size_t j = row_begin; j < row_end; ++j) {
    const double worst = top->worst();
    if (worst != last_worst) {
      last_worst = worst;
      if (s > 0.0) {
        const double t_rem = std::sqrt(
            std::max(0.0, worst + 2.0 * prep.slack - prep.out_sq));
        const double rhs = t_rem + prep.q_res + prep.err;
        threshold = (rhs / s) * (rhs / s) * (1.0 + 1e-9);
      } else {
        threshold = std::numeric_limits<double>::infinity();
      }
    }
    if (static_cast<double>(ssd[j - row_begin]) > threshold) {
      ++stats->coarse_pruned;
      continue;
    }
    const double sq =
        SquaredL2Dispatched(query, part.block.data() + j * dim, dim);
    ++stats->distance_computations;
    top->Push(sq, part.record_indices[j]);
  }
}

void IndexPartitionSet::VisitCoarse(const double* query, double q_sq,
                                    size_t dim, const Partition& part,
                                    BoundedTopK* top, Scratch* scratch,
                                    IndexQueryStats* stats) const {
  // Coarse tier. The prune needs a k-th best to compare against, so
  // first seed the heap with exact evaluations (only the very first
  // visited partition ever does this), then score the remaining rows
  // with the exact-integer code distance D = Σ(qc − c)² and discard
  // rows provably outside the k-th best via the two-hop triangle
  // inequality
  //   ‖q − r‖ ≥ scale·√D − ‖q − q̃‖ − ‖r − r̃‖
  // (q̃, r̃ the grid reconstructions; scale·√D = ‖q̃ − r̃‖ exactly in
  // real arithmetic since the grid step is uniform). All
  // floating-point roundings live in per-partition *scalars*: the
  // residual and the k-th best are inflated by the §11.2 slack, the
  // stored error was inflated at build, and the integer threshold T
  // gets a final relative margin — so the per-row test `D > T` can
  // only under-prune, never drop a row the exact kernels might still
  // rank into the top k.
  const size_t rows = part.size();
  size_t start = 0;
  while (!top->full() && start < rows) {
    const double sq =
        SquaredL2Dispatched(query, part.block.data() + start * dim, dim);
    ++stats->distance_computations;
    top->Push(sq, part.record_indices[start]);
    ++start;
  }
  if (start >= rows) return;
  const CoarsePrep prep = PrepCoarse(query, q_sq, dim, part, scratch);
  scratch->ssd.resize(max_partition_size_);
  if (part.quant_bits == 4) {
    const size_t stride = part.code_stride(dim);
    scratch->qpacked.resize(stride);
    PackNibbleRows(scratch->qcodes.data(), 1, dim, scratch->qpacked.data());
    Quantized4SsdOneToMany(scratch->qpacked.data(),
                           part.quant_codes.data() + start * stride,
                           rows - start, dim, scratch->ssd.data());
  } else {
    QuantizedSsdOneToMany(scratch->qcodes.data(),
                          part.quant_codes.data() + start * dim,
                          rows - start, dim, scratch->ssd.data());
  }
  stats->coarse_computations += rows - start;
  SelectCoarse(query, dim, part, start, rows, scratch->ssd.data(), prep,
               top, stats);
}

void IndexPartitionSet::RefinePush(const double* query, size_t dim,
                                   const Partition& part,
                                   const std::vector<uint32_t>& ridx,
                                   std::vector<double>* rdist,
                                   BoundedTopK* top) const {
  const size_t n = ridx.size();
  if (n == 0) return;
  rdist->resize(n);
  SquaredL2Gather(query, part.block.data(), ridx.data(), n, dim,
                  rdist->data());
  for (size_t i = 0; i < n; ++i) {
    top->Push((*rdist)[i], part.record_indices[ridx[i]]);
  }
}

void IndexPartitionSet::ScanExact(const std::vector<double>& query,
                                  double q_sq, BoundedTopK* top,
                                  Scratch* scratch,
                                  IndexQueryStats* stats) const {
  const size_t dim = query.size();
  const size_t p = partitions_.size();
  if (p == 0) return;
  IndexQueryStats& local = *stats;

  // Squared distance to each partition reference; visit closest-first
  // (the squared ordering equals the true-distance ordering). One
  // packed kernel call over the reference block, zero sqrts.
  scratch->ref_sq.resize(p);
  SquaredL2OneToMany(query.data(), references_.RowPtr(0), p, dim,
                     scratch->ref_sq.data());
  local.distance_computations += p;
  scratch->order.resize(p);
  for (size_t i = 0; i < p; ++i) {
    scratch->order[i] = {scratch->ref_sq[i], i};
  }
  std::sort(scratch->order.begin(), scratch->order.end());

  scratch->dist.resize(max_partition_size_);
  // The fp32 query copy is refilled lazily per ScanExact call — the
  // scratch is reused across the queries of a batch chunk, so a
  // size-based check would wrongly keep the previous query's floats.
  bool qf32_ready = false;
  float q_sq_f32 = 0.0f;
  // Candidates are kept and compared in *squared* distance space — the
  // per-record sqrt of the scan is deferred to the k reported hits.
  // The heap breaks distance ties toward the smaller record index,
  // the same rule as the linear scan (top_k.h).
  for (const auto& [ref_sq_dist, pi] : scratch->order) {
    const Partition& part = partitions_[pi];
    // Triangle inequality: every record r in the partition satisfies
    // d(q, r) >= d(q, ref) − radius. Evaluated sqrt-free by squaring
    // twice with sign handling: with b = d²(q, ref), r² = radius²,
    // t² = kth, the prune condition √b − r > t (t, r >= 0) is
    // equivalent to  b − r² − t² > 0  ∧  (b − r² − t²)² > 4·r²·t².
    const double kth = top->worst();
    const double inf = std::numeric_limits<double>::infinity();
    if (kth < inf) {
      const double gap = ref_sq_dist - part.radius_sq - kth;
      if (gap > 0.0 && gap * gap > 4.0 * part.radius_sq * kth) {
        ++local.partitions_pruned;
        continue;
      }
    }
    ++local.partitions_visited;
    const size_t rows = part.size();
    if (part.quantized()) {
      VisitCoarse(query.data(), q_sq, dim, part, top, scratch, &local);
      continue;
    }
    if (part.mirrored() && q_sq + part.max_norm_sq < kF32TierNormGate) {
      // fp32 tier: scan the float mirror with the fp32 dot-form
      // kernel, then re-evaluate through the double kernels every row
      // within the certified bound of the k-th best *at partition
      // entry*. The entry-time worst can only shrink while the
      // partition's rows are processed, so gating on it is a
      // conservative superset of gating on the evolving worst: a
      // pruned row provably cannot belong to the final top k (the
      // margin covers |ssd_f32 − ssd_f64| plus the f64 dot-form
      // error, §15.2) and reported hits stay bit-identical to the f64
      // path. Freezing the gate makes the survivor set independent of
      // push order, which lets the refine run as one blocked gather
      // kernel call here and in the query-block scan — with identical
      // survivor sets (and so identical f32_refined counts) in both;
      // the §16.3 self-gate then shrinks the survivors using the
      // partition's own k-th smallest score, which recovers the
      // evolving gate's refine economy (the entry gate alone refines
      // the whole first partition of every query). A NaN fp32 score
      // compares false against both thresholds and falls through to
      // the double re-check, which is always safe.
      if (!qf32_ready) {
        scratch->query_f32.resize(dim);
        for (size_t j = 0; j < dim; ++j) {
          scratch->query_f32[j] = static_cast<float>(query[j]);
        }
        q_sq_f32 = SquaredNormF32(scratch->query_f32.data(), dim);
        qf32_ready = true;
      }
      scratch->dist_f32.resize(max_partition_size_);
      SquaredL2DotF32OneToMany(scratch->query_f32.data(), q_sq_f32,
                               part.block_f32.data(),
                               part.norms_f32.data(), rows, dim,
                               scratch->dist_f32.data());
      local.f32_scans += rows;
      const double margin = Float32DotFormErrorBound(
          dim, q_sq, part.max_norm_sq, part.mirror_max_abs);
      const bool entry_full = top->full();
      const double entry_worst = top->worst();
      scratch->ridx.clear();
      scratch->cand.clear();
      for (size_t j = 0; j < rows; ++j) {
        const double dj = static_cast<double>(scratch->dist_f32[j]);
        if (entry_full && dj > entry_worst + margin) {
          continue;
        }
        scratch->ridx.push_back(static_cast<uint32_t>(j));
        scratch->cand.push_back(dj);
      }
      SelfGateCandidates(top->k(), margin, &scratch->ridx,
                         &scratch->cand, &scratch->cand_sort);
      local.f32_refined += scratch->ridx.size();
      local.distance_computations += scratch->ridx.size();
      RefinePush(query.data(), dim, part, scratch->ridx, &scratch->rdist,
                 top);
      continue;
    }
    // Dot-form scan of the packed block: ~2/3 of the difference form's
    // inner-loop work thanks to the precomputed row norms. The form is
    // approximate, so any row within the kernel error bound of the
    // k-th best at partition entry is re-checked with the exact
    // kernels (same frozen-gate argument as the fp32 tier above) —
    // reported hits are bit-identical to the linear scan.
    SquaredL2DotOneToMany(query.data(), q_sq, part.block.data(),
                          part.norms_sq.data(), rows, dim,
                          scratch->dist.data());
    local.distance_computations += rows;
    const double margin = DotFormErrorBound(dim, q_sq, part.max_norm_sq);
    const bool entry_full = top->full();
    const double entry_worst = top->worst();
    scratch->ridx.clear();
    scratch->cand.clear();
    for (size_t j = 0; j < rows; ++j) {
      if (entry_full && scratch->dist[j] > entry_worst + margin) {
        continue;
      }
      scratch->ridx.push_back(static_cast<uint32_t>(j));
      scratch->cand.push_back(scratch->dist[j]);
    }
    SelfGateCandidates(top->k(), margin, &scratch->ridx, &scratch->cand,
                       &scratch->cand_sort);
    RefinePush(query.data(), dim, part, scratch->ridx, &scratch->rdist,
               top);
  }
}

void IndexPartitionSet::ScanCoarse(const std::vector<double>& query,
                                   double q_sq, BoundedTopK* top,
                                   double* bound,
                                   IndexQueryStats* stats) const {
  const size_t dim = query.size();
  IndexQueryStats& local = *stats;

  // Degraded mode trades the exact re-rank for bounded error: every
  // quantized partition is scored with the integer code distance only.
  // For a reported estimate est = out + s·√D the true distance obeys
  //   true ≤ ‖q − q'‖ + ‖q' − q̃‖ + ‖q̃ − r̃‖ + ‖r̃ − r‖
  //        ≤ out + q_res + s·√D + err            = est + (q_res + err)
  //   true ≥ ‖q' − r‖ ≥ ‖q̃ − r̃‖ − ‖q' − q̃‖ − ‖r − r̃‖
  //        ≥ s·√D − q_res − err                  = est − out − (q_res + err)
  // so |est − true| ≤ out + q_res + err, and the per-query certified
  // bound is the max of that scalar over the quantized partitions
  // visited (q_res and err already carry the §11.2 slack inflation).
  // Unquantized partitions are scanned with the dot-form kernel, whose
  // squared-space error margin adds √margin to the bound. Every
  // quantity here is a pure function of the partition that owns the
  // rows, so scanning the same partitions split across sets (shards)
  // pushes the same estimates and raises the same bound.
  std::vector<double> qclamp(dim), decoded(dim), dist;
  std::vector<uint8_t> qcodes(dim), qpacked;
  std::vector<uint32_t> ssd;
  for (size_t pi = 0; pi < partitions_.size(); ++pi) {
    const Partition& part = partitions_[pi];
    const size_t rows = part.size();
    ++local.partitions_visited;
    if (part.quantized() && part.quant_scale > 0.0) {
      const double s = part.quant_scale;
      const double levels = part.quant_levels();
      for (size_t j = 0; j < dim; ++j) {
        const double lo = part.quant_offsets[j];
        const double hi = lo + levels * s;
        qclamp[j] = std::clamp(query[j], lo, hi);
      }
      const double out_sq =
          SquaredL2Dispatched(query.data(), qclamp.data(), dim);
      QuantizeQuery(qclamp.data(), dim, part.quant_offsets.data(), s,
                    qcodes.data(), static_cast<uint32_t>(levels));
      DequantizeRow(qcodes.data(), dim, part.quant_offsets.data(), s,
                    decoded.data());
      const double q_res_sq =
          SquaredL2Dispatched(qclamp.data(), decoded.data(), dim);
      const double slack = QuantScanSlack(
          dim, q_sq, std::max(part.max_norm_sq, part.quant_box_sq));
      const double q_res = std::sqrt(q_res_sq + slack);
      const double err = std::sqrt(part.quant_err_sq);
      const double out = std::sqrt(out_sq);
      ssd.resize(rows);
      if (part.quant_bits == 4) {
        qpacked.resize(part.code_stride(dim));
        PackNibbleRows(qcodes.data(), 1, dim, qpacked.data());
        Quantized4SsdOneToMany(qpacked.data(), part.quant_codes.data(),
                               rows, dim, ssd.data());
      } else {
        QuantizedSsdOneToMany(qcodes.data(), part.quant_codes.data(), rows,
                              dim, ssd.data());
      }
      local.coarse_computations += rows;
      for (size_t j = 0; j < rows; ++j) {
        const double est =
            out + s * std::sqrt(static_cast<double>(ssd[j]));
        top->Push(est, part.record_indices[j]);
      }
      *bound = std::max(*bound, out + q_res + err);
    } else {
      // Small/unquantized partition: dot-form scan, no exact re-check.
      dist.resize(rows);
      SquaredL2DotOneToMany(query.data(), q_sq, part.block.data(),
                            part.norms_sq.data(), rows, dim, dist.data());
      local.distance_computations += rows;
      const double margin =
          DotFormErrorBound(dim, q_sq, part.max_norm_sq);
      for (size_t j = 0; j < rows; ++j) {
        top->Push(std::sqrt(std::max(0.0, dist[j])),
                  part.record_indices[j]);
      }
      *bound = std::max(*bound, std::sqrt(margin));
    }
  }
}

void IndexPartitionSet::ScanExactBlock(const double* queries,
                                       const double* query_sqs,
                                       size_t num_queries, size_t dim,
                                       BoundedTopK* tops,
                                       BlockScratch* bs,
                                       IndexQueryStats* stats) const {
  const size_t p = partitions_.size();
  const size_t b = num_queries;
  if (p == 0 || b == 0) return;
  IndexQueryStats& local = *stats;

  // Reference pass for the whole block: one blocked many-to-many call
  // instead of b one-to-many calls; per-pair bits are identical by the
  // kernel contract, so each query's visit order matches ScanExact's.
  bs->ref_sq.resize(b * p);
  SquaredL2ManyToMany(queries, b, references_.RowPtr(0), p, dim,
                      bs->ref_sq.data(), p);
  local.distance_computations += b * p;
  bs->order.resize(b * p);
  for (size_t q = 0; q < b; ++q) {
    auto* ord = bs->order.data() + q * p;
    for (size_t i = 0; i < p; ++i) ord[i] = {bs->ref_sq[q * p + i], i};
    std::sort(ord, ord + p);
  }
  bs->cursor.assign(b, 0);
  bs->active.assign(b, 1);
  // fp32 query mirrors are refilled lazily per call, exactly like the
  // per-query path's scratch (the block scratch is reused across the
  // blocks of a batch chunk).
  bs->qf32_ready.assign(b, 0);
  bs->query_f32.resize(b * dim);
  bs->q_sq_f32.resize(b);
  if (bs->group_ridx.size() < b) bs->group_ridx.resize(b);
  if (bs->group_cand.size() < b) bs->group_cand.resize(b);

  // Lockstep rounds (DESIGN.md §16.1): each round, every still-active
  // query walks its own partition order — applying the same
  // triangle-inequality prune as ScanExact against its own current
  // k-th best — until it either selects one partition to visit or
  // exhausts the order. The round's visits are then grouped by
  // partition so one many-to-many kernel call per tier serves every
  // query visiting that partition. Because a query's prune decisions
  // and pushes depend only on its own heap, and that heap sees exactly
  // the ScanExact sequence of partition visits and row pushes, every
  // query's hits and stat contributions are bit-identical to scanning
  // it alone — at any block size and group composition.
  const double inf = std::numeric_limits<double>::infinity();
  while (true) {
    bs->visits.clear();
    for (size_t q = 0; q < b; ++q) {
      if (!bs->active[q]) continue;
      BoundedTopK* top = &tops[q];
      bool selected = false;
      while (bs->cursor[q] < p) {
        const auto& step = bs->order[q * p + bs->cursor[q]];
        const double ref_sq_dist = step.first;
        const size_t pi = step.second;
        const double kth = top->worst();
        if (kth < inf) {
          const Partition& part = partitions_[pi];
          const double gap = ref_sq_dist - part.radius_sq - kth;
          if (gap > 0.0 && gap * gap > 4.0 * part.radius_sq * kth) {
            ++local.partitions_pruned;
            ++bs->cursor[q];
            continue;
          }
        }
        ++local.partitions_visited;
        bs->visits.emplace_back(pi, q);
        ++bs->cursor[q];
        selected = true;
        break;
      }
      if (!selected) bs->active[q] = 0;
    }
    if (bs->visits.empty()) break;
    // Visits were produced in ascending q; regroup as (partition, q)
    // runs. The grouping order is irrelevant to results (queries have
    // independent heaps) but kept deterministic anyway.
    std::sort(bs->visits.begin(), bs->visits.end());
    size_t v0 = 0;
    while (v0 < bs->visits.size()) {
      const size_t pi = bs->visits[v0].first;
      size_t v1 = v0;
      while (v1 < bs->visits.size() && bs->visits[v1].first == pi) ++v1;
      const Partition& part = partitions_[pi];
      const size_t rows = part.size();
      if (part.quantized()) {
        // Coarse tier. A query whose heap is not yet full at entry
        // needs the seed loop, whose pushes interleave with its own
        // integer scan — run the per-query visit for those (at most
        // the block's first visited partitions); full-heap queries
        // share one blocked integer scan over all rows and then run
        // the same evolving-threshold decision loop on their own ssd
        // rows.
        bs->group_members.clear();
        for (size_t v = v0; v < v1; ++v) {
          const size_t q = bs->visits[v].second;
          if (!tops[q].full()) {
            VisitCoarse(queries + q * dim, query_sqs[q], dim, part,
                        &tops[q], &bs->solo, &local);
          } else {
            bs->group_members.push_back(q);
          }
        }
        const size_t g = bs->group_members.size();
        if (g > 0) {
          const size_t stride = part.code_stride(dim);
          bs->group_qcodes.resize(g * stride);
          bs->group_prep.resize(g);
          for (size_t m = 0; m < g; ++m) {
            const size_t q = bs->group_members[m];
            bs->group_prep[m] = PrepCoarse(queries + q * dim,
                                           query_sqs[q], dim, part,
                                           &bs->solo);
            if (part.quant_bits == 4) {
              PackNibbleRows(bs->solo.qcodes.data(), 1, dim,
                             bs->group_qcodes.data() + m * stride);
            } else {
              std::memcpy(bs->group_qcodes.data() + m * stride,
                          bs->solo.qcodes.data(), dim);
            }
            local.coarse_computations += rows;
          }
          bs->group_ssd.resize(g * kBlockRowSlab);
          for (size_t r0 = 0; r0 < rows; r0 += kBlockRowSlab) {
            const size_t slab = std::min(rows - r0, kBlockRowSlab);
            if (part.quant_bits == 4) {
              Quantized4SsdManyToMany(
                  bs->group_qcodes.data(), g,
                  part.quant_codes.data() + r0 * stride, slab, dim,
                  bs->group_ssd.data(), kBlockRowSlab);
            } else {
              QuantizedSsdManyToMany(
                  bs->group_qcodes.data(), g,
                  part.quant_codes.data() + r0 * dim, slab, dim,
                  bs->group_ssd.data(), kBlockRowSlab);
            }
            for (size_t m = 0; m < g; ++m) {
              const size_t q = bs->group_members[m];
              SelectCoarse(queries + q * dim, dim, part, r0, r0 + slab,
                           bs->group_ssd.data() + m * kBlockRowSlab,
                           bs->group_prep[m], &tops[q], &local);
            }
          }
        }
        v0 = v1;
        continue;
      }
      // Dot-form tiers. The fp32 norm gate is per query, so a mirrored
      // partition's group can split between the fp32 and f64 scans.
      bs->group_members.clear();
      bs->group_members_f64.clear();
      for (size_t v = v0; v < v1; ++v) {
        const size_t q = bs->visits[v].second;
        if (part.mirrored() &&
            query_sqs[q] + part.max_norm_sq < kF32TierNormGate) {
          bs->group_members.push_back(q);
        } else {
          bs->group_members_f64.push_back(q);
        }
      }
      const size_t g32 = bs->group_members.size();
      if (g32 > 0) {
        // fp32 tier: frozen entry gates (captured per member before
        // any of the group's pushes — each member's heap is untouched
        // by the others, so this equals ScanExact's entry state),
        // survivors collected per member across row slabs, shrunk by
        // the §16.3 self-gate (a pure function of the candidate
        // distances, so the set matches ScanExact's exactly), then
        // one blocked gather refine per member.
        bs->group_qf32.resize(g32 * dim);
        bs->group_qsq32.resize(g32);
        bs->group_margin.resize(g32);
        bs->group_worst.resize(g32);
        bs->group_full.resize(g32);
        for (size_t m = 0; m < g32; ++m) {
          const size_t q = bs->group_members[m];
          if (!bs->qf32_ready[q]) {
            float* qf = bs->query_f32.data() + q * dim;
            const double* qd = queries + q * dim;
            for (size_t j = 0; j < dim; ++j) {
              qf[j] = static_cast<float>(qd[j]);
            }
            bs->q_sq_f32[q] = SquaredNormF32(qf, dim);
            bs->qf32_ready[q] = 1;
          }
          std::memcpy(bs->group_qf32.data() + m * dim,
                      bs->query_f32.data() + q * dim,
                      dim * sizeof(float));
          bs->group_qsq32[m] = bs->q_sq_f32[q];
          bs->group_margin[m] = Float32DotFormErrorBound(
              dim, query_sqs[q], part.max_norm_sq, part.mirror_max_abs);
          bs->group_full[m] = tops[q].full() ? 1 : 0;
          bs->group_worst[m] = tops[q].worst();
          bs->group_ridx[m].clear();
          bs->group_cand[m].clear();
        }
        bs->group_dist32.resize(g32 * kBlockRowSlab);
        for (size_t r0 = 0; r0 < rows; r0 += kBlockRowSlab) {
          const size_t slab = std::min(rows - r0, kBlockRowSlab);
          SquaredL2DotF32ManyToMany(
              bs->group_qf32.data(), bs->group_qsq32.data(), g32,
              part.block_f32.data() + r0 * dim,
              part.norms_f32.data() + r0, slab, dim,
              bs->group_dist32.data(), kBlockRowSlab);
          for (size_t m = 0; m < g32; ++m) {
            const float* row = bs->group_dist32.data() + m * kBlockRowSlab;
            for (size_t j = 0; j < slab; ++j) {
              const double dj = static_cast<double>(row[j]);
              if (bs->group_full[m] &&
                  dj > bs->group_worst[m] + bs->group_margin[m]) {
                continue;
              }
              bs->group_ridx[m].push_back(
                  static_cast<uint32_t>(r0 + j));
              bs->group_cand[m].push_back(dj);
            }
          }
        }
        for (size_t m = 0; m < g32; ++m) {
          const size_t q = bs->group_members[m];
          SelfGateCandidates(tops[q].k(), bs->group_margin[m],
                             &bs->group_ridx[m], &bs->group_cand[m],
                             &bs->solo.cand_sort);
          local.f32_scans += rows;
          local.f32_refined += bs->group_ridx[m].size();
          local.distance_computations += bs->group_ridx[m].size();
          RefinePush(queries + q * dim, dim, part, bs->group_ridx[m],
                     &bs->solo.rdist, &tops[q]);
        }
      }
      const size_t g64 = bs->group_members_f64.size();
      if (g64 > 0) {
        // f64 dot-form tier: same frozen-gate + self-gate + gather
        // shape at full precision.
        bs->group_q.resize(g64 * dim);
        bs->group_qsq.resize(g64);
        bs->group_margin.resize(g64);
        bs->group_worst.resize(g64);
        bs->group_full.resize(g64);
        for (size_t m = 0; m < g64; ++m) {
          const size_t q = bs->group_members_f64[m];
          std::memcpy(bs->group_q.data() + m * dim, queries + q * dim,
                      dim * sizeof(double));
          bs->group_qsq[m] = query_sqs[q];
          bs->group_margin[m] =
              DotFormErrorBound(dim, query_sqs[q], part.max_norm_sq);
          bs->group_full[m] = tops[q].full() ? 1 : 0;
          bs->group_worst[m] = tops[q].worst();
          bs->group_ridx[m].clear();
          bs->group_cand[m].clear();
        }
        bs->group_dist.resize(g64 * kBlockRowSlab);
        for (size_t r0 = 0; r0 < rows; r0 += kBlockRowSlab) {
          const size_t slab = std::min(rows - r0, kBlockRowSlab);
          SquaredL2DotManyToMany(
              bs->group_q.data(), bs->group_qsq.data(), g64,
              part.block.data() + r0 * dim, part.norms_sq.data() + r0,
              slab, dim, bs->group_dist.data(), kBlockRowSlab);
          for (size_t m = 0; m < g64; ++m) {
            const double* row = bs->group_dist.data() + m * kBlockRowSlab;
            for (size_t j = 0; j < slab; ++j) {
              if (bs->group_full[m] &&
                  row[j] > bs->group_worst[m] + bs->group_margin[m]) {
                continue;
              }
              bs->group_ridx[m].push_back(
                  static_cast<uint32_t>(r0 + j));
              bs->group_cand[m].push_back(row[j]);
            }
          }
        }
        for (size_t m = 0; m < g64; ++m) {
          const size_t q = bs->group_members_f64[m];
          SelfGateCandidates(tops[q].k(), bs->group_margin[m],
                             &bs->group_ridx[m], &bs->group_cand[m],
                             &bs->solo.cand_sort);
          local.distance_computations += rows;
          RefinePush(queries + q * dim, dim, part, bs->group_ridx[m],
                     &bs->solo.rdist, &tops[q]);
        }
      }
      v0 = v1;
    }
  }
}

void IndexPartitionSet::ScanCoarseBlock(const double* queries,
                                        const double* query_sqs,
                                        size_t num_queries, size_t dim,
                                        BoundedTopK* tops, double* bounds,
                                        BlockScratch* bs,
                                        IndexQueryStats* stats) const {
  const size_t b = num_queries;
  if (b == 0) return;
  IndexQueryStats& local = *stats;
  // The coarse scan has no cross-row decision state (every row of
  // every partition is scored and pushed unconditionally), so blocking
  // is pure kernel grouping: per partition, prep each query once, run
  // the blocked integer (or dot-form) scan over row slabs, and push
  // each query's estimates in row order — value-for-value what
  // ScanCoarse pushes, so hits, bounds, and stats match it exactly.
  for (size_t pi = 0; pi < partitions_.size(); ++pi) {
    const Partition& part = partitions_[pi];
    const size_t rows = part.size();
    local.partitions_visited += b;
    if (part.quantized() && part.quant_scale > 0.0) {
      const double s = part.quant_scale;
      const size_t stride = part.code_stride(dim);
      bs->group_qcodes.resize(b * stride);
      bs->group_prep.resize(b);
      for (size_t q = 0; q < b; ++q) {
        bs->group_prep[q] = PrepCoarse(queries + q * dim, query_sqs[q],
                                       dim, part, &bs->solo);
        if (part.quant_bits == 4) {
          PackNibbleRows(bs->solo.qcodes.data(), 1, dim,
                         bs->group_qcodes.data() + q * stride);
        } else {
          std::memcpy(bs->group_qcodes.data() + q * stride,
                      bs->solo.qcodes.data(), dim);
        }
      }
      bs->group_ssd.resize(b * kBlockRowSlab);
      for (size_t r0 = 0; r0 < rows; r0 += kBlockRowSlab) {
        const size_t slab = std::min(rows - r0, kBlockRowSlab);
        if (part.quant_bits == 4) {
          Quantized4SsdManyToMany(bs->group_qcodes.data(), b,
                                  part.quant_codes.data() + r0 * stride,
                                  slab, dim, bs->group_ssd.data(),
                                  kBlockRowSlab);
        } else {
          QuantizedSsdManyToMany(bs->group_qcodes.data(), b,
                                 part.quant_codes.data() + r0 * dim,
                                 slab, dim, bs->group_ssd.data(),
                                 kBlockRowSlab);
        }
        for (size_t q = 0; q < b; ++q) {
          const double out = std::sqrt(bs->group_prep[q].out_sq);
          const uint32_t* row = bs->group_ssd.data() + q * kBlockRowSlab;
          for (size_t j = 0; j < slab; ++j) {
            const double est =
                out + s * std::sqrt(static_cast<double>(row[j]));
            tops[q].Push(est, part.record_indices[r0 + j]);
          }
        }
      }
      for (size_t q = 0; q < b; ++q) {
        const CoarsePrep& prep = bs->group_prep[q];
        bounds[q] = std::max(
            bounds[q], std::sqrt(prep.out_sq) + prep.q_res + prep.err);
        local.coarse_computations += rows;
      }
    } else {
      // Small/unquantized partition: blocked dot-form scan, no exact
      // re-check. The block's queries are already packed row-major, so
      // the kernel consumes them directly.
      bs->group_dist.resize(b * kBlockRowSlab);
      for (size_t r0 = 0; r0 < rows; r0 += kBlockRowSlab) {
        const size_t slab = std::min(rows - r0, kBlockRowSlab);
        SquaredL2DotManyToMany(queries, query_sqs, b,
                               part.block.data() + r0 * dim,
                               part.norms_sq.data() + r0, slab, dim,
                               bs->group_dist.data(), kBlockRowSlab);
        for (size_t q = 0; q < b; ++q) {
          const double* row = bs->group_dist.data() + q * kBlockRowSlab;
          for (size_t j = 0; j < slab; ++j) {
            tops[q].Push(std::sqrt(std::max(0.0, row[j])),
                         part.record_indices[r0 + j]);
          }
        }
      }
      for (size_t q = 0; q < b; ++q) {
        const double margin =
            DotFormErrorBound(dim, query_sqs[q], part.max_norm_sq);
        bounds[q] = std::max(bounds[q], std::sqrt(margin));
        local.distance_computations += rows;
      }
    }
  }
}

bool IndexPartitionSet::AllBeyond(const std::vector<double>& query,
                                  double kth) const {
  if (!(kth >= 0.0) || !std::isfinite(kth)) return false;
  const size_t dim = query.size();
  // Inflate kth² so floating-point rounding in the sqrt'd cached
  // distance can only make the test *harder* to pass — a false "all
  // beyond" would serve a wrong cached answer, a false "not beyond"
  // only costs a cache miss.
  const double kth_sq = kth * kth * (1.0 + 1e-9);
  for (size_t pi = 0; pi < partitions_.size(); ++pi) {
    const Partition& part = partitions_[pi];
    const double ref_sq_dist =
        SquaredL2Dispatched(query.data(), references_.RowPtr(pi), dim);
    const double gap = ref_sq_dist - part.radius_sq - kth_sq;
    if (!(gap > 0.0 && gap * gap > 4.0 * part.radius_sq * kth_sq)) {
      return false;
    }
  }
  return true;
}

Result<FeatureIndex> FeatureIndex::Build(
    const MotionDatabase* database, const FeatureIndexOptions& options) {
  if (database == nullptr) {
    return Status::InvalidArgument("null database");
  }
  FeatureIndex index;
  index.database_ = database;
  index.options_ = options;
  MOCEMG_RETURN_NOT_OK(index.Rebuild());
  return index;
}

Status FeatureIndex::Rebuild() {
  if (database_ == nullptr || database_->empty()) {
    return Status::FailedPrecondition("database is empty");
  }
  // Resolve the precision once per build and store the concrete value
  // back, so snapshots and later refreshes see f64/f32, never
  // "default" (env precedence: env < options < CLI, DESIGN.md §15.4).
  options_.exact_precision = ResolveExactPrecision(options_.exact_precision);
  MOCEMG_ASSIGN_OR_RETURN(IndexLayout layout,
                          ComputeIndexLayout(*database_, options_));
  MOCEMG_RETURN_NOT_OK(
      set_.Pack(*database_, layout.references, layout.members, options_));
  built_epoch_ = database_->epoch();
  return Status::OK();
}

Result<std::vector<QueryHit>> FeatureIndex::NearestNeighbors(
    const std::vector<double>& query, size_t k,
    IndexQueryStats* stats) const {
  Scratch scratch;
  return NearestNeighborsImpl(query, k, stats, &scratch);
}

Status FeatureIndex::ValidateQuery(const std::vector<double>& query,
                                   size_t k) const {
  if (database_ == nullptr || set_.num_partitions() == 0) {
    return Status::FailedPrecondition("index is not built");
  }
  if (database_->epoch() != built_epoch_) {
    return Status::FailedPrecondition(
        "index is stale: the database mutated (epoch " +
        std::to_string(database_->epoch()) + ") after the index was "
        "built (epoch " + std::to_string(built_epoch_) +
        "); call Rebuild()");
  }
  if (query.size() != database_->feature_dimension()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  for (double v : query) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "query feature contains a non-finite value");
    }
  }
  return Status::OK();
}

Result<std::vector<QueryHit>> FeatureIndex::NearestNeighborsImpl(
    const std::vector<double>& query, size_t k, IndexQueryStats* stats,
    Scratch* scratch) const {
  MOCEMG_RETURN_NOT_OK(ValidateQuery(query, k));
  IndexQueryStats local;
  const double q_sq = SquaredNorm(query.data(), query.size());
  BoundedTopK& top = scratch->top;
  top.Reset(std::min(k, database_->size()));
  set_.ScanExact(query, q_sq, &top, scratch, &local);
  top.ExtractSorted(&scratch->entries);
  std::vector<QueryHit> out(scratch->entries.size());
  for (size_t i = 0; i < scratch->entries.size(); ++i) {
    out[i].record_index = scratch->entries[i].second;
    out[i].distance = std::sqrt(scratch->entries[i].first);
  }
  if (stats != nullptr) *stats = local;
  return out;
}

Result<std::vector<QueryHit>> FeatureIndex::CoarseNearestNeighbors(
    const std::vector<double>& query, size_t k, double* error_bound,
    IndexQueryStats* stats) const {
  MOCEMG_RETURN_NOT_OK(ValidateQuery(query, k));
  IndexQueryStats local;
  const double q_sq = SquaredNorm(query.data(), query.size());
  double bound = 0.0;
  BoundedTopK top(std::min(k, database_->size()));
  set_.ScanCoarse(query, q_sq, &top, &bound, &local);
  std::vector<TopKEntry> entries;
  top.ExtractSorted(&entries);
  std::vector<QueryHit> out(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    out[i].record_index = entries[i].second;
    out[i].distance = entries[i].first;  // already in distance space
  }
  if (error_bound != nullptr) *error_bound = bound;
  if (stats != nullptr) *stats = local;
  return out;
}

namespace {

void AccumulateStats(const IndexQueryStats& from, IndexQueryStats* into) {
  into->distance_computations += from.distance_computations;
  into->partitions_visited += from.partitions_visited;
  into->partitions_pruned += from.partitions_pruned;
  into->coarse_computations += from.coarse_computations;
  into->coarse_pruned += from.coarse_pruned;
  into->f32_scans += from.f32_scans;
  into->f32_refined += from.f32_refined;
}

}  // namespace

Result<std::vector<std::vector<QueryHit>>>
FeatureIndex::BatchNearestNeighbors(
    const std::vector<std::vector<double>>& queries, size_t k,
    IndexQueryStats* stats,
    const ParallelOptions* parallel_override) const {
  std::vector<std::vector<QueryHit>> results(queries.size());
  if (queries.empty()) {
    if (stats != nullptr) *stats = IndexQueryStats{};
    return results;
  }
  // Validate up front, so an invalid query is reported identically at
  // every thread count and block size (the lowest offending query
  // index wins, matching the per-query path's ascending order).
  for (size_t q = 0; q < queries.size(); ++q) {
    Status st = ValidateQuery(queries[q], k);
    if (!st.ok()) {
      return st.WithContext("while answering batch query " +
                            std::to_string(q));
    }
  }
  const ParallelOptions& parallel =
      parallel_override != nullptr ? *parallel_override
                                   : options_.parallel;
  const size_t dim = database_->feature_dimension();
  const size_t heap_k = std::min(k, database_->size());
  // The batch is cut into fixed consecutive query blocks — a pure
  // function of (query count, query_block), independent of the thread
  // chunking — and each block runs the lockstep many-to-many scan.
  size_t qb = options_.query_block != 0 ? options_.query_block
                                        : kDefaultQueryBlock;
  qb = std::max<size_t>(1, std::min(qb, queries.size()));
  const size_t num_blocks = (queries.size() + qb - 1) / qb;
  // Threads chunk over blocks (grain 1: one block already bundles qb
  // queries of work). Stats are accumulated per chunk (scratch is also
  // per chunk) and combined in ascending chunk order afterwards — the
  // same fixed-order combine contract as every other parallel
  // reduction (DESIGN.md §8.1); block totals are integer sums, so the
  // grouping cannot change the result.
  ParallelOptions block_parallel = parallel;
  block_parallel.grain = 1;
  const size_t num_chunks = ParallelNumChunks(num_blocks, 1);
  std::vector<IndexQueryStats> per_chunk(
      stats != nullptr ? num_chunks : 0);
  Status st = ParallelFor(
      num_blocks,
      [&](size_t begin, size_t end, size_t chunk) -> Status {
        BlockScratch bs;
        std::vector<BoundedTopK> tops(qb);
        IndexQueryStats chunk_stats;
        for (size_t blk = begin; blk < end; ++blk) {
          const size_t q0 = blk * qb;
          const size_t bq = std::min(qb, queries.size() - q0);
          bs.queries.resize(bq * dim);
          bs.query_sqs.resize(bq);
          for (size_t i = 0; i < bq; ++i) {
            std::memcpy(bs.queries.data() + i * dim,
                        queries[q0 + i].data(), dim * sizeof(double));
            bs.query_sqs[i] = SquaredNorm(queries[q0 + i].data(), dim);
            tops[i].Reset(heap_k);
          }
          set_.ScanExactBlock(bs.queries.data(), bs.query_sqs.data(), bq,
                              dim, tops.data(), &bs, &chunk_stats);
          for (size_t i = 0; i < bq; ++i) {
            tops[i].ExtractSorted(&bs.solo.entries);
            std::vector<QueryHit>& out = results[q0 + i];
            out.resize(bs.solo.entries.size());
            for (size_t h = 0; h < out.size(); ++h) {
              out[h].record_index = bs.solo.entries[h].second;
              out[h].distance = std::sqrt(bs.solo.entries[h].first);
            }
          }
        }
        if (stats != nullptr) per_chunk[chunk] = chunk_stats;
        return Status::OK();
      },
      block_parallel);
  MOCEMG_RETURN_NOT_OK(st);
  if (stats != nullptr) {
    IndexQueryStats total;
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      AccumulateStats(per_chunk[chunk], &total);
    }
    *stats = total;
  }
  return results;
}

Result<std::vector<std::vector<QueryHit>>>
FeatureIndex::BatchCoarseNearestNeighbors(
    const std::vector<std::vector<double>>& queries, size_t k,
    std::vector<double>* error_bounds, IndexQueryStats* stats,
    const ParallelOptions* parallel_override) const {
  std::vector<std::vector<QueryHit>> results(queries.size());
  if (error_bounds != nullptr) {
    error_bounds->assign(queries.size(), 0.0);
  }
  if (queries.empty()) {
    if (stats != nullptr) *stats = IndexQueryStats{};
    return results;
  }
  // Same preconditions (and messages) as CoarseNearestNeighbors, with
  // the batch-query context the exact batch path adds.
  for (size_t q = 0; q < queries.size(); ++q) {
    Status st = ValidateQuery(queries[q], k);
    if (!st.ok()) {
      return st.WithContext("while answering batch query " +
                            std::to_string(q));
    }
  }
  const ParallelOptions& parallel =
      parallel_override != nullptr ? *parallel_override
                                   : options_.parallel;
  const size_t dim = database_->feature_dimension();
  const size_t heap_k = std::min(k, database_->size());
  size_t qb = options_.query_block != 0 ? options_.query_block
                                        : kDefaultQueryBlock;
  qb = std::max<size_t>(1, std::min(qb, queries.size()));
  const size_t num_blocks = (queries.size() + qb - 1) / qb;
  ParallelOptions block_parallel = parallel;
  block_parallel.grain = 1;
  const size_t num_chunks = ParallelNumChunks(num_blocks, 1);
  std::vector<IndexQueryStats> per_chunk(
      stats != nullptr ? num_chunks : 0);
  std::vector<double> bounds(queries.size(), 0.0);
  Status st = ParallelFor(
      num_blocks,
      [&](size_t begin, size_t end, size_t chunk) -> Status {
        BlockScratch bs;
        std::vector<BoundedTopK> tops(qb);
        IndexQueryStats chunk_stats;
        for (size_t blk = begin; blk < end; ++blk) {
          const size_t q0 = blk * qb;
          const size_t bq = std::min(qb, queries.size() - q0);
          bs.queries.resize(bq * dim);
          bs.query_sqs.resize(bq);
          for (size_t i = 0; i < bq; ++i) {
            std::memcpy(bs.queries.data() + i * dim,
                        queries[q0 + i].data(), dim * sizeof(double));
            bs.query_sqs[i] = SquaredNorm(queries[q0 + i].data(), dim);
            tops[i].Reset(heap_k);
          }
          set_.ScanCoarseBlock(bs.queries.data(), bs.query_sqs.data(), bq,
                               dim, tops.data(), bounds.data() + q0, &bs,
                               &chunk_stats);
          for (size_t i = 0; i < bq; ++i) {
            tops[i].ExtractSorted(&bs.solo.entries);
            std::vector<QueryHit>& out = results[q0 + i];
            out.resize(bs.solo.entries.size());
            for (size_t h = 0; h < out.size(); ++h) {
              out[h].record_index = bs.solo.entries[h].second;
              // Coarse estimates are already in distance space.
              out[h].distance = bs.solo.entries[h].first;
            }
          }
        }
        if (stats != nullptr) per_chunk[chunk] = chunk_stats;
        return Status::OK();
      },
      block_parallel);
  MOCEMG_RETURN_NOT_OK(st);
  if (stats != nullptr) {
    IndexQueryStats total;
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      AccumulateStats(per_chunk[chunk], &total);
    }
    *stats = total;
  }
  if (error_bounds != nullptr) *error_bounds = std::move(bounds);
  return results;
}

}  // namespace mocemg
