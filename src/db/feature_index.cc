#include "db/feature_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "cluster/kmeans.h"
#include "util/distance_kernels.h"
#include "util/macros.h"

namespace mocemg {

Result<FeatureIndex> FeatureIndex::Build(
    const MotionDatabase* database, const FeatureIndexOptions& options) {
  if (database == nullptr) {
    return Status::InvalidArgument("null database");
  }
  FeatureIndex index;
  index.database_ = database;
  index.options_ = options;
  MOCEMG_RETURN_NOT_OK(index.Rebuild());
  return index;
}

Status FeatureIndex::Rebuild() {
  if (database_ == nullptr || database_->empty()) {
    return Status::FailedPrecondition("database is empty");
  }
  const size_t n = database_->size();
  const size_t d = database_->feature_dimension();
  size_t p = options_.num_partitions;
  if (p == 0) {
    p = std::max<size_t>(
        1, static_cast<size_t>(std::lround(std::sqrt(
               static_cast<double>(n)))));
  }
  p = std::min(p, n);

  // The database's packed block is already the row-major points layout
  // k-means wants; copy it wholesale instead of row by row.
  Matrix points(n, d);
  points.mutable_data() = database_->packed_features();
  KmeansOptions km;
  km.num_clusters = p;
  km.seed = options_.seed;
  MOCEMG_ASSIGN_OR_RETURN(KmeansModel model, FitKmeans(points, km));

  partitions_.assign(p, Partition{});
  references_ = std::move(model.centers);
  // Record→reference distances (the expensive part of the rebuild) and
  // record norms, in parallel — independent per record. Assignment
  // bookkeeping and SoA packing run serially afterwards so each
  // partition's rows stay in ascending record order regardless of
  // thread count.
  const double* packed = database_->packed_features().data();
  std::vector<double> ref_sq(n, 0.0);
  std::vector<double> norm_sq(n, 0.0);
  Status st = ParallelFor(
      n,
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        for (size_t k = begin; k < end; ++k) {
          const double* row = packed + k * d;
          ref_sq[k] =
              SquaredL2(row, references_.RowPtr(model.assignments[k]), d);
          norm_sq[k] = SquaredNorm(row, d);
        }
        return Status::OK();
      },
      options_.parallel);
  MOCEMG_RETURN_NOT_OK(st);
  for (size_t k = 0; k < n; ++k) {
    Partition& part = partitions_[model.assignments[k]];
    part.record_indices.push_back(k);
    part.radius_sq = std::max(part.radius_sq, ref_sq[k]);
    part.max_norm_sq = std::max(part.max_norm_sq, norm_sq[k]);
  }
  // Pack each partition's SoA block (and norms) in member order.
  for (size_t i = 0; i < p; ++i) {
    Partition& part = partitions_[i];
    part.radius = std::sqrt(part.radius_sq);
    part.block.resize(part.size() * d);
    part.norms_sq.resize(part.size());
    for (size_t j = 0; j < part.size(); ++j) {
      const size_t rec = part.record_indices[j];
      std::memcpy(part.block.data() + j * d, packed + rec * d,
                  d * sizeof(double));
      part.norms_sq[j] = norm_sq[rec];
    }
  }
  // Drop empty partitions (k-means can strand one on tiny databases),
  // keeping references_ aligned with the survivors.
  Matrix kept_refs(0, d);
  std::vector<Partition> kept;
  kept.reserve(p);
  max_partition_size_ = 0;
  for (size_t i = 0; i < p; ++i) {
    if (partitions_[i].record_indices.empty()) continue;
    MOCEMG_RETURN_NOT_OK(kept_refs.AppendRows(references_.RowSlice(i, i + 1)));
    max_partition_size_ =
        std::max(max_partition_size_, partitions_[i].size());
    kept.push_back(std::move(partitions_[i]));
  }
  partitions_ = std::move(kept);
  references_ = std::move(kept_refs);
  return Status::OK();
}

Result<std::vector<QueryHit>> FeatureIndex::NearestNeighbors(
    const std::vector<double>& query, size_t k,
    IndexQueryStats* stats) const {
  Scratch scratch;
  return NearestNeighborsImpl(query, k, stats, &scratch);
}

Result<std::vector<QueryHit>> FeatureIndex::NearestNeighborsImpl(
    const std::vector<double>& query, size_t k, IndexQueryStats* stats,
    Scratch* scratch) const {
  if (database_ == nullptr || partitions_.empty()) {
    return Status::FailedPrecondition("index is not built");
  }
  if (query.size() != database_->feature_dimension()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  const size_t dim = query.size();
  const size_t p = partitions_.size();
  IndexQueryStats local;

  // Squared distance to each partition reference; visit closest-first
  // (the squared ordering equals the true-distance ordering). One
  // packed kernel call over the reference block, zero sqrts.
  scratch->ref_sq.resize(p);
  SquaredL2OneToMany(query.data(), references_.RowPtr(0), p, dim,
                     scratch->ref_sq.data());
  local.distance_computations += p;
  scratch->order.resize(p);
  for (size_t i = 0; i < p; ++i) {
    scratch->order[i] = {scratch->ref_sq[i], i};
  }
  std::sort(scratch->order.begin(), scratch->order.end());

  const double q_sq = SquaredNorm(query.data(), dim);
  scratch->dist.resize(max_partition_size_);
  // Candidates are kept and compared in *squared* distance space — the
  // per-record sqrt of the scan is deferred to the k reported hits.
  std::vector<QueryHit>& best = scratch->best;  // sorted asc, size <= k
  best.clear();
  best.reserve(k + 1);
  const double inf = std::numeric_limits<double>::infinity();
  auto kth_sq = [&]() { return best.size() < k ? inf : best.back().distance; };
  for (const auto& [ref_sq_dist, pi] : scratch->order) {
    const Partition& part = partitions_[pi];
    // Triangle inequality: every record r in the partition satisfies
    // d(q, r) >= d(q, ref) − radius. Evaluated sqrt-free by squaring
    // twice with sign handling: with b = d²(q, ref), r² = radius²,
    // t² = kth, the prune condition √b − r > t (t, r >= 0) is
    // equivalent to  b − r² − t² > 0  ∧  (b − r² − t²)² > 4·r²·t².
    const double kth = kth_sq();
    if (kth < inf) {
      const double gap = ref_sq_dist - part.radius_sq - kth;
      if (gap > 0.0 && gap * gap > 4.0 * part.radius_sq * kth) {
        ++local.partitions_pruned;
        continue;
      }
    }
    ++local.partitions_visited;
    // Dot-form scan of the packed block: ~2/3 of the difference form's
    // inner-loop work thanks to the precomputed row norms. The form is
    // approximate, so any row within the kernel error bound of the
    // current k-th best is re-checked with the exact pair kernel —
    // reported hits are bit-identical to the linear scan.
    const size_t rows = part.size();
    SquaredL2DotOneToMany(query.data(), q_sq, part.block.data(),
                          part.norms_sq.data(), rows, dim,
                          scratch->dist.data());
    local.distance_computations += rows;
    const double margin = DotFormErrorBound(dim, q_sq, part.max_norm_sq);
    for (size_t j = 0; j < rows; ++j) {
      if (best.size() >= k && scratch->dist[j] > kth_sq() + margin) {
        continue;
      }
      const double sq =
          SquaredL2(query.data(), part.block.data() + j * dim, dim);
      if (sq < kth_sq() || best.size() < k) {
        QueryHit hit{part.record_indices[j], sq};
        auto pos = std::upper_bound(
            best.begin(), best.end(), hit,
            [](const QueryHit& a, const QueryHit& b) {
              return a.distance < b.distance;
            });
        best.insert(pos, hit);
        if (best.size() > k) best.pop_back();
      }
    }
  }
  std::vector<QueryHit> out(best.begin(), best.end());
  for (QueryHit& hit : out) hit.distance = std::sqrt(hit.distance);
  if (stats != nullptr) *stats = local;
  return out;
}

Result<std::vector<std::vector<QueryHit>>>
FeatureIndex::BatchNearestNeighbors(
    const std::vector<std::vector<double>>& queries, size_t k,
    IndexQueryStats* stats) const {
  std::vector<std::vector<QueryHit>> results(queries.size());
  // Stats are accumulated per chunk (scratch is also per chunk) and
  // combined in ascending chunk order afterwards — the same fixed-order
  // combine contract as every other parallel reduction (DESIGN.md §8.1).
  const size_t num_chunks =
      ParallelNumChunks(queries.size(), options_.parallel.grain);
  std::vector<IndexQueryStats> per_chunk(
      stats != nullptr ? num_chunks : 0);
  Status st = ParallelFor(
      queries.size(),
      [&](size_t begin, size_t end, size_t chunk) -> Status {
        Scratch scratch;
        IndexQueryStats chunk_stats;
        for (size_t q = begin; q < end; ++q) {
          IndexQueryStats query_stats;
          auto hits = NearestNeighborsImpl(
              queries[q], k, stats != nullptr ? &query_stats : nullptr,
              &scratch);
          if (!hits.ok()) {
            return hits.status().WithContext(
                "while answering batch query " + std::to_string(q));
          }
          results[q] = std::move(*hits);
          if (stats != nullptr) {
            chunk_stats.distance_computations +=
                query_stats.distance_computations;
            chunk_stats.partitions_visited += query_stats.partitions_visited;
            chunk_stats.partitions_pruned += query_stats.partitions_pruned;
          }
        }
        if (stats != nullptr) per_chunk[chunk] = chunk_stats;
        return Status::OK();
      },
      options_.parallel);
  MOCEMG_RETURN_NOT_OK(st);
  if (stats != nullptr) {
    IndexQueryStats total;
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      total.distance_computations += per_chunk[chunk].distance_computations;
      total.partitions_visited += per_chunk[chunk].partitions_visited;
      total.partitions_pruned += per_chunk[chunk].partitions_pruned;
    }
    *stats = total;
  }
  return results;
}

}  // namespace mocemg
