#include "db/feature_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "cluster/kmeans.h"
#include "linalg/vector_ops.h"
#include "util/macros.h"

namespace mocemg {

Result<FeatureIndex> FeatureIndex::Build(
    const MotionDatabase* database, const FeatureIndexOptions& options) {
  if (database == nullptr) {
    return Status::InvalidArgument("null database");
  }
  FeatureIndex index;
  index.database_ = database;
  index.options_ = options;
  MOCEMG_RETURN_NOT_OK(index.Rebuild());
  return index;
}

Status FeatureIndex::Rebuild() {
  if (database_ == nullptr || database_->empty()) {
    return Status::FailedPrecondition("database is empty");
  }
  const size_t n = database_->size();
  const size_t d = database_->feature_dimension();
  size_t p = options_.num_partitions;
  if (p == 0) {
    p = std::max<size_t>(
        1, static_cast<size_t>(std::lround(std::sqrt(
               static_cast<double>(n)))));
  }
  p = std::min(p, n);

  Matrix points(n, d);
  for (size_t i = 0; i < n; ++i) {
    points.SetRow(i, database_->record(i).feature);
  }
  KmeansOptions km;
  km.num_clusters = p;
  km.seed = options_.seed;
  MOCEMG_ASSIGN_OR_RETURN(KmeansModel model, FitKmeans(points, km));

  partitions_.assign(p, Partition{});
  for (size_t i = 0; i < p; ++i) {
    partitions_[i].reference = model.centers.Row(i);
  }
  for (size_t k = 0; k < n; ++k) {
    Partition& part = partitions_[model.assignments[k]];
    part.record_indices.push_back(k);
    part.radius =
        std::max(part.radius,
                 EuclideanDistance(database_->record(k).feature,
                                   part.reference));
  }
  // Drop empty partitions (k-means can strand one on tiny databases).
  partitions_.erase(
      std::remove_if(partitions_.begin(), partitions_.end(),
                     [](const Partition& part) {
                       return part.record_indices.empty();
                     }),
      partitions_.end());
  return Status::OK();
}

Result<std::vector<QueryHit>> FeatureIndex::NearestNeighbors(
    const std::vector<double>& query, size_t k,
    IndexQueryStats* stats) const {
  if (database_ == nullptr || partitions_.empty()) {
    return Status::FailedPrecondition("index is not built");
  }
  if (query.size() != database_->feature_dimension()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  IndexQueryStats local;

  // Distance to each partition reference; visit closest-first.
  std::vector<std::pair<double, size_t>> order(partitions_.size());
  for (size_t i = 0; i < partitions_.size(); ++i) {
    order[i] = {EuclideanDistance(query, partitions_[i].reference), i};
    ++local.distance_computations;
  }
  std::sort(order.begin(), order.end());

  std::vector<QueryHit> best;  // kept sorted ascending, size <= k
  auto kth_distance = [&]() {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.back().distance;
  };
  for (const auto& [ref_dist, pi] : order) {
    const Partition& part = partitions_[pi];
    // Triangle inequality: every record r in the partition satisfies
    // d(q, r) >= d(q, ref) − radius.
    if (ref_dist - part.radius > kth_distance()) {
      ++local.partitions_pruned;
      continue;
    }
    ++local.partitions_visited;
    for (size_t idx : part.record_indices) {
      const double dist =
          EuclideanDistance(query, database_->record(idx).feature);
      ++local.distance_computations;
      if (dist < kth_distance() || best.size() < k) {
        QueryHit hit{idx, dist};
        auto pos = std::upper_bound(
            best.begin(), best.end(), hit,
            [](const QueryHit& a, const QueryHit& b) {
              return a.distance < b.distance;
            });
        best.insert(pos, hit);
        if (best.size() > k) best.pop_back();
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return best;
}

}  // namespace mocemg
