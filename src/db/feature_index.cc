#include "db/feature_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "cluster/kmeans.h"
#include "linalg/vector_ops.h"
#include "util/macros.h"

namespace mocemg {

Result<FeatureIndex> FeatureIndex::Build(
    const MotionDatabase* database, const FeatureIndexOptions& options) {
  if (database == nullptr) {
    return Status::InvalidArgument("null database");
  }
  FeatureIndex index;
  index.database_ = database;
  index.options_ = options;
  MOCEMG_RETURN_NOT_OK(index.Rebuild());
  return index;
}

Status FeatureIndex::Rebuild() {
  if (database_ == nullptr || database_->empty()) {
    return Status::FailedPrecondition("database is empty");
  }
  const size_t n = database_->size();
  const size_t d = database_->feature_dimension();
  size_t p = options_.num_partitions;
  if (p == 0) {
    p = std::max<size_t>(
        1, static_cast<size_t>(std::lround(std::sqrt(
               static_cast<double>(n)))));
  }
  p = std::min(p, n);

  Matrix points(n, d);
  for (size_t i = 0; i < n; ++i) {
    points.SetRow(i, database_->record(i).feature);
  }
  KmeansOptions km;
  km.num_clusters = p;
  km.seed = options_.seed;
  MOCEMG_ASSIGN_OR_RETURN(KmeansModel model, FitKmeans(points, km));

  partitions_.assign(p, Partition{});
  for (size_t i = 0; i < p; ++i) {
    partitions_[i].reference = model.centers.Row(i);
  }
  // Record→reference distances are the expensive part of the rebuild;
  // compute them in parallel (independent per record), then do the
  // cheap assignment bookkeeping serially so record_indices stay in
  // ascending record order regardless of thread count.
  std::vector<double> ref_dist(n, 0.0);
  Status st = ParallelFor(
      n,
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        for (size_t k = begin; k < end; ++k) {
          const Partition& part = partitions_[model.assignments[k]];
          ref_dist[k] = EuclideanDistance(
              database_->record(k).feature.data(), part.reference.data(),
              d);
        }
        return Status::OK();
      },
      options_.parallel);
  MOCEMG_RETURN_NOT_OK(st);
  for (size_t k = 0; k < n; ++k) {
    Partition& part = partitions_[model.assignments[k]];
    part.record_indices.push_back(k);
    part.radius = std::max(part.radius, ref_dist[k]);
  }
  // Drop empty partitions (k-means can strand one on tiny databases).
  partitions_.erase(
      std::remove_if(partitions_.begin(), partitions_.end(),
                     [](const Partition& part) {
                       return part.record_indices.empty();
                     }),
      partitions_.end());
  return Status::OK();
}

Result<std::vector<QueryHit>> FeatureIndex::NearestNeighbors(
    const std::vector<double>& query, size_t k,
    IndexQueryStats* stats) const {
  if (database_ == nullptr || partitions_.empty()) {
    return Status::FailedPrecondition("index is not built");
  }
  if (query.size() != database_->feature_dimension()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  const size_t dim = query.size();
  IndexQueryStats local;

  // Distance to each partition reference; visit closest-first. The
  // triangle-inequality prune needs true distances here, so these few
  // sqrts stay.
  std::vector<std::pair<double, size_t>> order(partitions_.size());
  for (size_t i = 0; i < partitions_.size(); ++i) {
    order[i] = {
        EuclideanDistance(query.data(), partitions_[i].reference.data(),
                          dim),
        i};
    ++local.distance_computations;
  }
  std::sort(order.begin(), order.end());

  // Candidates are kept and compared in *squared* distance space — the
  // per-record sqrt of the scan is deferred to the k reported hits.
  std::vector<QueryHit> best;  // kept sorted ascending, size <= k
  best.reserve(k + 1);
  const double inf = std::numeric_limits<double>::infinity();
  auto kth_sq = [&]() { return best.size() < k ? inf : best.back().distance; };
  for (const auto& [ref_dist, pi] : order) {
    const Partition& part = partitions_[pi];
    // Triangle inequality: every record r in the partition satisfies
    // d(q, r) >= d(q, ref) − radius (true distances; compare against
    // the k-th best via one sqrt per partition, not per record).
    const double kth = kth_sq();
    if (kth < inf && ref_dist - part.radius > std::sqrt(kth)) {
      ++local.partitions_pruned;
      continue;
    }
    ++local.partitions_visited;
    for (size_t idx : part.record_indices) {
      const double sq = SquaredDistance(
          query.data(), database_->record(idx).feature.data(), dim);
      ++local.distance_computations;
      if (sq < kth_sq() || best.size() < k) {
        QueryHit hit{idx, sq};
        auto pos = std::upper_bound(
            best.begin(), best.end(), hit,
            [](const QueryHit& a, const QueryHit& b) {
              return a.distance < b.distance;
            });
        best.insert(pos, hit);
        if (best.size() > k) best.pop_back();
      }
    }
  }
  for (QueryHit& hit : best) hit.distance = std::sqrt(hit.distance);
  if (stats != nullptr) *stats = local;
  return best;
}

Result<std::vector<std::vector<QueryHit>>>
FeatureIndex::BatchNearestNeighbors(
    const std::vector<std::vector<double>>& queries, size_t k,
    IndexQueryStats* stats) const {
  std::vector<std::vector<QueryHit>> results(queries.size());
  std::vector<IndexQueryStats> per_query(
      stats != nullptr ? queries.size() : 0);
  Status st = ParallelFor(
      queries.size(),
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        for (size_t q = begin; q < end; ++q) {
          auto hits = NearestNeighbors(
              queries[q], k,
              stats != nullptr ? &per_query[q] : nullptr);
          if (!hits.ok()) {
            return hits.status().WithContext(
                "while answering batch query " + std::to_string(q));
          }
          results[q] = std::move(*hits);
        }
        return Status::OK();
      },
      options_.parallel);
  MOCEMG_RETURN_NOT_OK(st);
  if (stats != nullptr) {
    IndexQueryStats total;
    for (const IndexQueryStats& s : per_query) {
      total.distance_computations += s.distance_computations;
      total.partitions_visited += s.partitions_visited;
      total.partitions_pruned += s.partitions_pruned;
    }
    *stats = total;
  }
  return results;
}

}  // namespace mocemg
