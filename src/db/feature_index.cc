#include "db/feature_index.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>

#include "cluster/kmeans.h"
#include "util/distance_kernels.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/quant_kernels.h"

namespace mocemg {
namespace {

// fp32 overflow gate for the mirror tier (DESIGN.md §15.3): a
// partition is mirrored only when its max ‖r‖² stays below this, and a
// query uses a partition's mirror only when q² + max ‖r‖² does too.
// Element magnitudes are then < 1e15 (f64→f32 conversion stays finite
// and defined) and every fp32 partial sum stays below ~5e29 ≪ FLT_MAX,
// so the mirror scan can produce no Inf and — NaN-free inputs being
// guaranteed upstream — no NaN.
constexpr double kF32TierNormGate = 1e30;

// MOCEMG_EXACT_PRECISION, read once at first resolution.
ExactPrecision EnvExactPrecision() {
  static const ExactPrecision value = [] {
    const char* env = std::getenv("MOCEMG_EXACT_PRECISION");
    if (env == nullptr || env[0] == '\0') return ExactPrecision::kF64;
    const Result<ExactPrecision> parsed = ParseExactPrecision(env);
    if (!parsed.ok() ||
        parsed.ValueOrDie() == ExactPrecision::kDefault) {
      MOCEMG_LOG(kWarning)
          << "MOCEMG_EXACT_PRECISION=" << env
          << " is not f64/f32; using f64";
      return ExactPrecision::kF64;
    }
    return parsed.ValueOrDie();
  }();
  return value;
}

}  // namespace

const char* ExactPrecisionName(ExactPrecision precision) {
  switch (precision) {
    case ExactPrecision::kDefault:
      return "default";
    case ExactPrecision::kF64:
      return "f64";
    case ExactPrecision::kF32:
      return "f32";
  }
  return "unknown";
}

Result<ExactPrecision> ParseExactPrecision(const std::string& name) {
  if (name == "default") return ExactPrecision::kDefault;
  if (name == "f64" || name == "double") return ExactPrecision::kF64;
  if (name == "f32" || name == "float") return ExactPrecision::kF32;
  return Status::InvalidArgument(
      "unknown exact precision \"" + name + "\" (want f64 or f32)");
}

ExactPrecision ResolveExactPrecision(ExactPrecision precision) {
  return precision == ExactPrecision::kDefault ? EnvExactPrecision()
                                               : precision;
}

Result<IndexLayout> ComputeIndexLayout(const MotionDatabase& database,
                                       const FeatureIndexOptions& options) {
  if (database.empty()) {
    return Status::FailedPrecondition("database is empty");
  }
  const size_t n = database.size();
  const size_t d = database.feature_dimension();
  size_t p = options.num_partitions;
  if (p == 0) {
    p = std::max<size_t>(
        1, static_cast<size_t>(std::lround(std::sqrt(
               static_cast<double>(n)))));
  }
  p = std::min(p, n);

  // The database's packed block is already the row-major points layout
  // k-means wants; copy it wholesale instead of row by row.
  Matrix points(n, d);
  points.mutable_data() = database.packed_features();
  KmeansOptions km;
  km.num_clusters = p;
  km.seed = options.seed;
  MOCEMG_ASSIGN_OR_RETURN(KmeansModel model, FitKmeans(points, km));

  std::vector<std::vector<size_t>> members(p);
  for (size_t k = 0; k < n; ++k) {
    members[model.assignments[k]].push_back(k);
  }
  // Drop empty partitions (k-means can strand one on tiny databases),
  // keeping the references aligned with the survivors.
  IndexLayout layout;
  layout.references = Matrix(0, d);
  layout.members.reserve(p);
  for (size_t i = 0; i < p; ++i) {
    if (members[i].empty()) continue;
    MOCEMG_RETURN_NOT_OK(
        layout.references.AppendRows(model.centers.RowSlice(i, i + 1)));
    layout.members.push_back(std::move(members[i]));
  }
  return layout;
}

void IndexPartitionSet::FillPartition(const double* packed, size_t dim,
                                      const double* reference,
                                      const FeatureIndexOptions& options,
                                      Partition* part) {
  const size_t rows = part->size();
  part->radius_sq = 0.0;
  part->max_norm_sq = 0.0;
  part->block.resize(rows * dim);
  part->norms_sq.resize(rows);
  for (size_t j = 0; j < rows; ++j) {
    const size_t rec = part->record_indices[j];
    const double* row = packed + rec * dim;
    part->radius_sq =
        std::max(part->radius_sq, SquaredL2Dispatched(row, reference, dim));
    const double norm_sq = SquaredNorm(row, dim);
    part->max_norm_sq = std::max(part->max_norm_sq, norm_sq);
    std::memcpy(part->block.data() + j * dim, row, dim * sizeof(double));
    part->norms_sq[j] = norm_sq;
  }
  part->radius = std::sqrt(part->radius_sq);
  // fp32 mirror tier (DESIGN.md §15): partitions the quantized tier
  // will *not* code get a float32 copy of the block plus fp32 row
  // norms, so the exact scan can run the cheaper fp32 dot-form kernel
  // and re-evaluate in double only the rows inside the certified fp32
  // error bound. The pack-time norm gate keeps every f64→f32
  // conversion finite (and defined behaviour); mirror_max_abs feeds
  // the subnormal term of Float32DotFormErrorBound.
  part->block_f32.clear();
  part->norms_f32.clear();
  part->mirror_max_abs = 0.0;
  const bool coded = options.quantized_scan && dim <= 60000 &&
                     rows > 0 && rows >= options.quantized_min_rows;
  if (!coded && rows > 0 &&
      ResolveExactPrecision(options.exact_precision) ==
          ExactPrecision::kF32 &&
      part->max_norm_sq < kF32TierNormGate) {
    double max_abs = 0.0;
    for (size_t j = 0; j < rows * dim; ++j) {
      max_abs = std::max(max_abs, std::fabs(part->block[j]));
    }
    part->mirror_max_abs = max_abs;
    part->block_f32.resize(rows * dim);
    for (size_t j = 0; j < rows * dim; ++j) {
      part->block_f32[j] = static_cast<float>(part->block[j]);
    }
    part->norms_f32.resize(rows);
    RowSquaredNormsF32(part->block_f32.data(), rows, dim,
                       part->norms_f32.data());
  }
  // Quantized tier: code the partition on its own integer grid (8-bit
  // or nibble-packed 4-bit per options.quant_bits) and *measure* the
  // worst reconstruction error — the provable prune leans on this
  // number, not on an analytic half-step bound, so heavy-tailed
  // columns can only cost pruning power, not correctness. The integer
  // coarse distance Σ(qc − c)² must fit uint32: d · 255² < 2³² (the
  // 4-bit grid's 15² bound is even further from the gate). Any
  // realistic feature width is far below it.
  part->quant_offsets.clear();
  part->quant_codes.clear();
  part->quant_scale = 0.0;
  part->quant_err_sq = 0.0;
  part->quant_box_sq = 0.0;
  part->quant_bits = static_cast<uint8_t>(options.quant_bits);
  const bool quantizable = options.quantized_scan && dim <= 60000;
  if (!quantizable || rows == 0 || rows < options.quantized_min_rows) {
    return;
  }
  const uint32_t levels = part->quant_bits == 4 ? 15u : 255u;
  part->quant_offsets.resize(dim);
  ComputeQuantGrid(part->block.data(), rows, dim,
                   part->quant_offsets.data(), &part->quant_scale, levels);
  // Codes are produced unpacked (one byte per dim) for the error
  // measurement, then nibble-packed for storage when 4-bit.
  std::vector<uint8_t> unpacked(rows * dim);
  QuantizeRows(part->block.data(), rows, dim, part->quant_offsets.data(),
               part->quant_scale, unpacked.data(), levels);
  // Squared-norm bound over the whole grid bounding box (any
  // reconstruction — of a row or of a clamped query — lies inside
  // it); feeds the slack's magnitude argument.
  double box_sq = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    const double lo = part->quant_offsets[j];
    const double hi =
        lo + static_cast<double>(levels) * part->quant_scale;
    box_sq += std::max(lo * lo, hi * hi);
  }
  part->quant_box_sq = box_sq;
  std::vector<double> decoded(dim);
  double max_err = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    DequantizeRow(unpacked.data() + r * dim, dim,
                  part->quant_offsets.data(), part->quant_scale,
                  decoded.data());
    max_err = std::max(max_err,
                       SquaredL2Dispatched(part->block.data() + r * dim,
                                           decoded.data(), dim));
  }
  // Inflate the measured error by the build-side accumulation slack so
  // ‖r − r̃‖² (exact real value) is provably covered.
  part->quant_err_sq =
      max_err + QuantScanSlack(dim, part->max_norm_sq, box_sq);
  if (part->quant_bits == 4) {
    part->quant_codes.resize(rows * PackedNibbleStride(dim));
    PackNibbleRows(unpacked.data(), rows, dim, part->quant_codes.data());
  } else {
    part->quant_codes = std::move(unpacked);
  }
}

void IndexPartitionSet::RefreshDerived() {
  max_partition_size_ = 0;
  num_rows_ = 0;
  for (const Partition& part : partitions_) {
    max_partition_size_ = std::max(max_partition_size_, part.size());
    num_rows_ += part.size();
  }
}

Status IndexPartitionSet::Pack(const MotionDatabase& database,
                               const Matrix& references,
                               const std::vector<std::vector<size_t>>& members,
                               const FeatureIndexOptions& options) {
  const size_t n = database.size();
  const size_t d = database.feature_dimension();
  if (options.quant_bits != 8 && options.quant_bits != 4) {
    return Status::InvalidArgument(
        "quant_bits must be 8 or 4, got " +
        std::to_string(options.quant_bits));
  }
  if (references.rows() != members.size() ||
      (members.size() > 0 && references.cols() != d)) {
    return Status::InvalidArgument("layout shape mismatch");
  }
  for (const auto& list : members) {
    if (list.empty()) {
      return Status::InvalidArgument("empty partition in layout");
    }
    for (size_t j = 0; j < list.size(); ++j) {
      if (list[j] >= n || (j > 0 && list[j] <= list[j - 1])) {
        return Status::InvalidArgument(
            "partition members must be ascending record indices");
      }
    }
  }
  references_ = references;
  partitions_.assign(members.size(), Partition{});
  for (size_t i = 0; i < members.size(); ++i) {
    partitions_[i].record_indices = members[i];
  }
  // Partitions fill independently (radius, block, norms, codes are pure
  // functions of the partition's own rows), so the packing pass
  // parallelizes per partition with bit-identical results at any
  // thread count.
  const double* packed = database.packed_features().data();
  ParallelOptions per_partition = options.parallel;
  per_partition.grain = 1;
  Status st = ParallelFor(
      partitions_.size(),
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        for (size_t i = begin; i < end; ++i) {
          FillPartition(packed, d, references_.RowPtr(i), options,
                        &partitions_[i]);
        }
        return Status::OK();
      },
      per_partition);
  MOCEMG_RETURN_NOT_OK(st);
  RefreshDerived();
  return Status::OK();
}

Status IndexPartitionSet::RefreshPartition(const MotionDatabase& database,
                                           size_t partition,
                                           const FeatureIndexOptions& options) {
  if (partition >= partitions_.size()) {
    return Status::InvalidArgument("partition out of range");
  }
  const size_t d = database.feature_dimension();
  Partition& part = partitions_[partition];
  if (!part.record_indices.empty() &&
      part.record_indices.back() >= database.size()) {
    return Status::FailedPrecondition(
        "partition references records beyond the database");
  }
  FillPartition(database.packed_features().data(), d,
                references_.RowPtr(partition), options, &part);
  RefreshDerived();
  return Status::OK();
}

void IndexPartitionSet::ScanExact(const std::vector<double>& query,
                                  double q_sq, BoundedTopK* top,
                                  Scratch* scratch,
                                  IndexQueryStats* stats) const {
  const size_t dim = query.size();
  const size_t p = partitions_.size();
  if (p == 0) return;
  IndexQueryStats& local = *stats;

  // Squared distance to each partition reference; visit closest-first
  // (the squared ordering equals the true-distance ordering). One
  // packed kernel call over the reference block, zero sqrts.
  scratch->ref_sq.resize(p);
  SquaredL2OneToMany(query.data(), references_.RowPtr(0), p, dim,
                     scratch->ref_sq.data());
  local.distance_computations += p;
  scratch->order.resize(p);
  for (size_t i = 0; i < p; ++i) {
    scratch->order[i] = {scratch->ref_sq[i], i};
  }
  std::sort(scratch->order.begin(), scratch->order.end());

  scratch->dist.resize(max_partition_size_);
  // The fp32 query copy is refilled lazily per ScanExact call — the
  // scratch is reused across the queries of a batch chunk, so a
  // size-based check would wrongly keep the previous query's floats.
  bool qf32_ready = false;
  float q_sq_f32 = 0.0f;
  // Candidates are kept and compared in *squared* distance space — the
  // per-record sqrt of the scan is deferred to the k reported hits.
  // The heap breaks distance ties toward the smaller record index,
  // the same rule as the linear scan (top_k.h).
  for (const auto& [ref_sq_dist, pi] : scratch->order) {
    const Partition& part = partitions_[pi];
    // Triangle inequality: every record r in the partition satisfies
    // d(q, r) >= d(q, ref) − radius. Evaluated sqrt-free by squaring
    // twice with sign handling: with b = d²(q, ref), r² = radius²,
    // t² = kth, the prune condition √b − r > t (t, r >= 0) is
    // equivalent to  b − r² − t² > 0  ∧  (b − r² − t²)² > 4·r²·t².
    const double kth = top->worst();
    const double inf = std::numeric_limits<double>::infinity();
    if (kth < inf) {
      const double gap = ref_sq_dist - part.radius_sq - kth;
      if (gap > 0.0 && gap * gap > 4.0 * part.radius_sq * kth) {
        ++local.partitions_pruned;
        continue;
      }
    }
    ++local.partitions_visited;
    const size_t rows = part.size();
    if (part.quantized()) {
      // Coarse tier. The prune needs a k-th best to compare against,
      // so first seed the heap with exact evaluations (only the very
      // first visited partition ever does this), then score the
      // remaining rows with the exact-integer code distance
      // D = Σ(qc − c)² and discard rows provably outside the k-th
      // best via the two-hop triangle inequality
      //   ‖q − r‖ ≥ scale·√D − ‖q − q̃‖ − ‖r − r̃‖
      // (q̃, r̃ the grid reconstructions; scale·√D = ‖q̃ − r̃‖ exactly
      // in real arithmetic since the grid step is uniform). All
      // floating-point roundings live in per-partition *scalars*:
      // the residual and the k-th best are inflated by the §11.2
      // slack, the stored error was inflated at build, and the
      // integer threshold T gets a final relative margin — so the
      // per-row test `D > T` can only under-prune, never drop a row
      // the exact kernels might still rank into the top k.
      size_t start = 0;
      while (!top->full() && start < rows) {
        const double sq = SquaredL2Dispatched(
            query.data(), part.block.data() + start * dim, dim);
        ++local.distance_computations;
        top->Push(sq, part.record_indices[start]);
        ++start;
      }
      if (start >= rows) continue;
      // Clamp the query onto the partition's grid box, dimension by
      // dimension. For an out-of-box dimension the box edge q'_j lies
      // between q_j and every row value, so
      //   (q_j − r_j)² >= (q_j − q'_j)² + (q'_j − r_j)²
      // and summing gives ‖q − r‖² >= out² + ‖q' − r‖²: the out-of-box
      // energy is a certified additive term common to every row, and
      // the integer bound only has to separate the in-box part —
      // where the grid residual ‖q' − q̃‖ is at most half a step per
      // dimension instead of the full clamp distance.
      scratch->qclamp.resize(dim);
      scratch->qcodes.resize(dim);
      scratch->decoded.resize(dim);
      const double s = part.quant_scale;
      const double levels = part.quant_levels();
      for (size_t j = 0; j < dim; ++j) {
        const double lo = part.quant_offsets[j];
        const double hi = lo + levels * s;
        scratch->qclamp[j] = std::clamp(query[j], lo, hi);
      }
      const double out_sq =
          SquaredL2Dispatched(query.data(), scratch->qclamp.data(), dim);
      QuantizeQuery(scratch->qclamp.data(), dim,
                    part.quant_offsets.data(), s, scratch->qcodes.data(),
                    static_cast<uint32_t>(levels));
      DequantizeRow(scratch->qcodes.data(), dim,
                    part.quant_offsets.data(), s,
                    scratch->decoded.data());
      const double q_res_sq = SquaredL2Dispatched(
          scratch->qclamp.data(), scratch->decoded.data(), dim);
      const double slack =
          QuantScanSlack(dim, q_sq, std::max(part.max_norm_sq,
                                             part.quant_box_sq));
      const double q_res = std::sqrt(q_res_sq + slack);
      const double err = std::sqrt(part.quant_err_sq);
      scratch->ssd.resize(max_partition_size_);
      if (part.quant_bits == 4) {
        const size_t stride = part.code_stride(dim);
        scratch->qpacked.resize(stride);
        PackNibbleRows(scratch->qcodes.data(), 1, dim,
                       scratch->qpacked.data());
        Quantized4SsdOneToMany(scratch->qpacked.data(),
                               part.quant_codes.data() + start * stride,
                               rows - start, dim, scratch->ssd.data());
      } else {
        QuantizedSsdOneToMany(scratch->qcodes.data(),
                              part.quant_codes.data() + start * dim,
                              rows - start, dim, scratch->ssd.data());
      }
      local.coarse_computations += rows - start;
      // Integer prune threshold, recomputed only when the k-th best
      // moves: with t_rem = √max(0, kth + 2·slack − out²) the
      // remaining in-box budget, prune iff
      // scale·√D − q_res − err > t_rem, i.e. D > T. The 1e-9 relative
      // inflation dominates every ε-level rounding in computing T
      // itself (the slack terms already cover the kernel-evaluated
      // quantities' accumulation error).
      double last_worst = -1.0;
      double threshold = -1.0;
      for (size_t j = start; j < rows; ++j) {
        const double worst = top->worst();
        if (worst != last_worst) {
          last_worst = worst;
          if (s > 0.0) {
            const double t_rem = std::sqrt(
                std::max(0.0, worst + 2.0 * slack - out_sq));
            const double rhs = t_rem + q_res + err;
            threshold = (rhs / s) * (rhs / s) * (1.0 + 1e-9);
          } else {
            threshold = std::numeric_limits<double>::infinity();
          }
        }
        if (static_cast<double>(scratch->ssd[j - start]) > threshold) {
          ++local.coarse_pruned;
          continue;
        }
        const double sq = SquaredL2Dispatched(
            query.data(), part.block.data() + j * dim, dim);
        ++local.distance_computations;
        top->Push(sq, part.record_indices[j]);
      }
      continue;
    }
    if (part.mirrored() && q_sq + part.max_norm_sq < kF32TierNormGate) {
      // fp32 tier: scan the float mirror with the fp32 dot-form
      // kernel, then re-evaluate through the double pair kernel every
      // row within the certified bound of the current k-th best. The
      // margin covers |ssd_f32 − ssd_f64| plus the f64 dot-form error,
      // so a pruned row provably cannot belong to the final top k —
      // reported hits stay bit-identical to the f64 path (§15.2). A
      // NaN fp32 score compares false against the threshold and falls
      // through to the double re-check, which is always safe.
      if (!qf32_ready) {
        scratch->query_f32.resize(dim);
        for (size_t j = 0; j < dim; ++j) {
          scratch->query_f32[j] = static_cast<float>(query[j]);
        }
        q_sq_f32 = SquaredNormF32(scratch->query_f32.data(), dim);
        qf32_ready = true;
      }
      scratch->dist_f32.resize(max_partition_size_);
      SquaredL2DotF32OneToMany(scratch->query_f32.data(), q_sq_f32,
                               part.block_f32.data(),
                               part.norms_f32.data(), rows, dim,
                               scratch->dist_f32.data());
      local.f32_scans += rows;
      const double margin = Float32DotFormErrorBound(
          dim, q_sq, part.max_norm_sq, part.mirror_max_abs);
      for (size_t j = 0; j < rows; ++j) {
        if (top->full() &&
            static_cast<double>(scratch->dist_f32[j]) >
                top->worst() + margin) {
          continue;
        }
        const double sq = SquaredL2Dispatched(
            query.data(), part.block.data() + j * dim, dim);
        ++local.f32_refined;
        ++local.distance_computations;
        top->Push(sq, part.record_indices[j]);
      }
      continue;
    }
    // Dot-form scan of the packed block: ~2/3 of the difference form's
    // inner-loop work thanks to the precomputed row norms. The form is
    // approximate, so any row within the kernel error bound of the
    // current k-th best is re-checked with the exact pair kernel —
    // reported hits are bit-identical to the linear scan.
    SquaredL2DotOneToMany(query.data(), q_sq, part.block.data(),
                          part.norms_sq.data(), rows, dim,
                          scratch->dist.data());
    local.distance_computations += rows;
    const double margin = DotFormErrorBound(dim, q_sq, part.max_norm_sq);
    for (size_t j = 0; j < rows; ++j) {
      if (top->full() && scratch->dist[j] > top->worst() + margin) {
        continue;
      }
      const double sq = SquaredL2Dispatched(
          query.data(), part.block.data() + j * dim, dim);
      top->Push(sq, part.record_indices[j]);
    }
  }
}

void IndexPartitionSet::ScanCoarse(const std::vector<double>& query,
                                   double q_sq, BoundedTopK* top,
                                   double* bound,
                                   IndexQueryStats* stats) const {
  const size_t dim = query.size();
  IndexQueryStats& local = *stats;

  // Degraded mode trades the exact re-rank for bounded error: every
  // quantized partition is scored with the integer code distance only.
  // For a reported estimate est = out + s·√D the true distance obeys
  //   true ≤ ‖q − q'‖ + ‖q' − q̃‖ + ‖q̃ − r̃‖ + ‖r̃ − r‖
  //        ≤ out + q_res + s·√D + err            = est + (q_res + err)
  //   true ≥ ‖q' − r‖ ≥ ‖q̃ − r̃‖ − ‖q' − q̃‖ − ‖r − r̃‖
  //        ≥ s·√D − q_res − err                  = est − out − (q_res + err)
  // so |est − true| ≤ out + q_res + err, and the per-query certified
  // bound is the max of that scalar over the quantized partitions
  // visited (q_res and err already carry the §11.2 slack inflation).
  // Unquantized partitions are scanned with the dot-form kernel, whose
  // squared-space error margin adds √margin to the bound. Every
  // quantity here is a pure function of the partition that owns the
  // rows, so scanning the same partitions split across sets (shards)
  // pushes the same estimates and raises the same bound.
  std::vector<double> qclamp(dim), decoded(dim), dist;
  std::vector<uint8_t> qcodes(dim), qpacked;
  std::vector<uint32_t> ssd;
  for (size_t pi = 0; pi < partitions_.size(); ++pi) {
    const Partition& part = partitions_[pi];
    const size_t rows = part.size();
    ++local.partitions_visited;
    if (part.quantized() && part.quant_scale > 0.0) {
      const double s = part.quant_scale;
      const double levels = part.quant_levels();
      for (size_t j = 0; j < dim; ++j) {
        const double lo = part.quant_offsets[j];
        const double hi = lo + levels * s;
        qclamp[j] = std::clamp(query[j], lo, hi);
      }
      const double out_sq =
          SquaredL2Dispatched(query.data(), qclamp.data(), dim);
      QuantizeQuery(qclamp.data(), dim, part.quant_offsets.data(), s,
                    qcodes.data(), static_cast<uint32_t>(levels));
      DequantizeRow(qcodes.data(), dim, part.quant_offsets.data(), s,
                    decoded.data());
      const double q_res_sq =
          SquaredL2Dispatched(qclamp.data(), decoded.data(), dim);
      const double slack = QuantScanSlack(
          dim, q_sq, std::max(part.max_norm_sq, part.quant_box_sq));
      const double q_res = std::sqrt(q_res_sq + slack);
      const double err = std::sqrt(part.quant_err_sq);
      const double out = std::sqrt(out_sq);
      ssd.resize(rows);
      if (part.quant_bits == 4) {
        qpacked.resize(part.code_stride(dim));
        PackNibbleRows(qcodes.data(), 1, dim, qpacked.data());
        Quantized4SsdOneToMany(qpacked.data(), part.quant_codes.data(),
                               rows, dim, ssd.data());
      } else {
        QuantizedSsdOneToMany(qcodes.data(), part.quant_codes.data(), rows,
                              dim, ssd.data());
      }
      local.coarse_computations += rows;
      for (size_t j = 0; j < rows; ++j) {
        const double est =
            out + s * std::sqrt(static_cast<double>(ssd[j]));
        top->Push(est, part.record_indices[j]);
      }
      *bound = std::max(*bound, out + q_res + err);
    } else {
      // Small/unquantized partition: dot-form scan, no exact re-check.
      dist.resize(rows);
      SquaredL2DotOneToMany(query.data(), q_sq, part.block.data(),
                            part.norms_sq.data(), rows, dim, dist.data());
      local.distance_computations += rows;
      const double margin =
          DotFormErrorBound(dim, q_sq, part.max_norm_sq);
      for (size_t j = 0; j < rows; ++j) {
        top->Push(std::sqrt(std::max(0.0, dist[j])),
                  part.record_indices[j]);
      }
      *bound = std::max(*bound, std::sqrt(margin));
    }
  }
}

bool IndexPartitionSet::AllBeyond(const std::vector<double>& query,
                                  double kth) const {
  if (!(kth >= 0.0) || !std::isfinite(kth)) return false;
  const size_t dim = query.size();
  // Inflate kth² so floating-point rounding in the sqrt'd cached
  // distance can only make the test *harder* to pass — a false "all
  // beyond" would serve a wrong cached answer, a false "not beyond"
  // only costs a cache miss.
  const double kth_sq = kth * kth * (1.0 + 1e-9);
  for (size_t pi = 0; pi < partitions_.size(); ++pi) {
    const Partition& part = partitions_[pi];
    const double ref_sq_dist =
        SquaredL2Dispatched(query.data(), references_.RowPtr(pi), dim);
    const double gap = ref_sq_dist - part.radius_sq - kth_sq;
    if (!(gap > 0.0 && gap * gap > 4.0 * part.radius_sq * kth_sq)) {
      return false;
    }
  }
  return true;
}

Result<FeatureIndex> FeatureIndex::Build(
    const MotionDatabase* database, const FeatureIndexOptions& options) {
  if (database == nullptr) {
    return Status::InvalidArgument("null database");
  }
  FeatureIndex index;
  index.database_ = database;
  index.options_ = options;
  MOCEMG_RETURN_NOT_OK(index.Rebuild());
  return index;
}

Status FeatureIndex::Rebuild() {
  if (database_ == nullptr || database_->empty()) {
    return Status::FailedPrecondition("database is empty");
  }
  // Resolve the precision once per build and store the concrete value
  // back, so snapshots and later refreshes see f64/f32, never
  // "default" (env precedence: env < options < CLI, DESIGN.md §15.4).
  options_.exact_precision = ResolveExactPrecision(options_.exact_precision);
  MOCEMG_ASSIGN_OR_RETURN(IndexLayout layout,
                          ComputeIndexLayout(*database_, options_));
  MOCEMG_RETURN_NOT_OK(
      set_.Pack(*database_, layout.references, layout.members, options_));
  built_epoch_ = database_->epoch();
  return Status::OK();
}

Result<std::vector<QueryHit>> FeatureIndex::NearestNeighbors(
    const std::vector<double>& query, size_t k,
    IndexQueryStats* stats) const {
  Scratch scratch;
  return NearestNeighborsImpl(query, k, stats, &scratch);
}

Result<std::vector<QueryHit>> FeatureIndex::NearestNeighborsImpl(
    const std::vector<double>& query, size_t k, IndexQueryStats* stats,
    Scratch* scratch) const {
  if (database_ == nullptr || set_.num_partitions() == 0) {
    return Status::FailedPrecondition("index is not built");
  }
  if (database_->epoch() != built_epoch_) {
    return Status::FailedPrecondition(
        "index is stale: the database mutated (epoch " +
        std::to_string(database_->epoch()) + ") after the index was "
        "built (epoch " + std::to_string(built_epoch_) +
        "); call Rebuild()");
  }
  if (query.size() != database_->feature_dimension()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  for (double v : query) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "query feature contains a non-finite value");
    }
  }
  IndexQueryStats local;
  const double q_sq = SquaredNorm(query.data(), query.size());
  BoundedTopK& top = scratch->top;
  top.Reset(std::min(k, database_->size()));
  set_.ScanExact(query, q_sq, &top, scratch, &local);
  top.ExtractSorted(&scratch->entries);
  std::vector<QueryHit> out(scratch->entries.size());
  for (size_t i = 0; i < scratch->entries.size(); ++i) {
    out[i].record_index = scratch->entries[i].second;
    out[i].distance = std::sqrt(scratch->entries[i].first);
  }
  if (stats != nullptr) *stats = local;
  return out;
}

Result<std::vector<QueryHit>> FeatureIndex::CoarseNearestNeighbors(
    const std::vector<double>& query, size_t k, double* error_bound,
    IndexQueryStats* stats) const {
  if (database_ == nullptr || set_.num_partitions() == 0) {
    return Status::FailedPrecondition("index is not built");
  }
  if (database_->epoch() != built_epoch_) {
    return Status::FailedPrecondition(
        "index is stale: the database mutated after the index was "
        "built; call Rebuild()");
  }
  if (query.size() != database_->feature_dimension()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  for (double v : query) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "query feature contains a non-finite value");
    }
  }
  IndexQueryStats local;
  const double q_sq = SquaredNorm(query.data(), query.size());
  double bound = 0.0;
  BoundedTopK top(std::min(k, database_->size()));
  set_.ScanCoarse(query, q_sq, &top, &bound, &local);
  std::vector<TopKEntry> entries;
  top.ExtractSorted(&entries);
  std::vector<QueryHit> out(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    out[i].record_index = entries[i].second;
    out[i].distance = entries[i].first;  // already in distance space
  }
  if (error_bound != nullptr) *error_bound = bound;
  if (stats != nullptr) *stats = local;
  return out;
}

Result<std::vector<std::vector<QueryHit>>>
FeatureIndex::BatchNearestNeighbors(
    const std::vector<std::vector<double>>& queries, size_t k,
    IndexQueryStats* stats,
    const ParallelOptions* parallel_override) const {
  std::vector<std::vector<QueryHit>> results(queries.size());
  const ParallelOptions& parallel =
      parallel_override != nullptr ? *parallel_override
                                   : options_.parallel;
  // Stats are accumulated per chunk (scratch is also per chunk) and
  // combined in ascending chunk order afterwards — the same fixed-order
  // combine contract as every other parallel reduction (DESIGN.md §8.1).
  const size_t num_chunks =
      ParallelNumChunks(queries.size(), parallel.grain);
  std::vector<IndexQueryStats> per_chunk(
      stats != nullptr ? num_chunks : 0);
  Status st = ParallelFor(
      queries.size(),
      [&](size_t begin, size_t end, size_t chunk) -> Status {
        Scratch scratch;
        IndexQueryStats chunk_stats;
        for (size_t q = begin; q < end; ++q) {
          IndexQueryStats query_stats;
          auto hits = NearestNeighborsImpl(
              queries[q], k, stats != nullptr ? &query_stats : nullptr,
              &scratch);
          if (!hits.ok()) {
            return hits.status().WithContext(
                "while answering batch query " + std::to_string(q));
          }
          results[q] = std::move(*hits);
          if (stats != nullptr) {
            chunk_stats.distance_computations +=
                query_stats.distance_computations;
            chunk_stats.partitions_visited += query_stats.partitions_visited;
            chunk_stats.partitions_pruned += query_stats.partitions_pruned;
            chunk_stats.coarse_computations +=
                query_stats.coarse_computations;
            chunk_stats.coarse_pruned += query_stats.coarse_pruned;
            chunk_stats.f32_scans += query_stats.f32_scans;
            chunk_stats.f32_refined += query_stats.f32_refined;
          }
        }
        if (stats != nullptr) per_chunk[chunk] = chunk_stats;
        return Status::OK();
      },
      parallel);
  MOCEMG_RETURN_NOT_OK(st);
  if (stats != nullptr) {
    IndexQueryStats total;
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      total.distance_computations += per_chunk[chunk].distance_computations;
      total.partitions_visited += per_chunk[chunk].partitions_visited;
      total.partitions_pruned += per_chunk[chunk].partitions_pruned;
      total.coarse_computations += per_chunk[chunk].coarse_computations;
      total.coarse_pruned += per_chunk[chunk].coarse_pruned;
      total.f32_scans += per_chunk[chunk].f32_scans;
      total.f32_refined += per_chunk[chunk].f32_refined;
    }
    *stats = total;
  }
  return results;
}

}  // namespace mocemg
