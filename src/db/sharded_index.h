/// \file sharded_index.h
/// \brief Sharded scatter-gather composition of the cluster-pruned kNN
/// index (DESIGN.md §13).
///
/// A ShardedFeatureIndex computes the SAME global k-means partition
/// layout as FeatureIndex (same seed → same partitions, same quantized
/// grids) and distributes whole partitions across N shards round-robin
/// (partition p → shard p mod N). Each shard owns an IndexPartitionSet
/// — its own SoA blocks, squared norms, int8 coarse tier — plus a
/// per-shard epoch. kNN is scatter-gather: every shard scans into its
/// own bounded top-k heap and the per-shard sorted lists are merged in
/// fixed shard order with the usual (distance, index) tie-break.
///
/// Bit-identity argument: every per-record quantity the scans produce
/// (exact distance, coarse estimate `out + s·√D`, the per-partition
/// error-bound scalar) is a pure function of the partition that owns
/// the record — never of which other partitions share its set. The
/// exact top-k is in turn a pure function of the candidate set under
/// the (distance, index) order. Regrouping partitions into shards
/// therefore changes only *where* candidates are scored, not any
/// score, so merged results are bit-identical to the single-set scan
/// for BOTH the exact and the degraded coarse path, at any shard
/// count and any thread count. N = 1 is literally FeatureIndex's scan.
///
/// Mutation model: the database epoch still advances on every
/// mutation, but a ShardedFeatureIndex can absorb an UpdateFeature
/// without a global rebuild: ApplyUpdate(record) repacks only the
/// partition owning the record (O(partition) work: block row, norms,
/// radius, re-quantize) and bumps only the owning shard's epoch. The
/// serving cache keys validity on the shard-epoch vector, so a
/// mutation invalidates only entries that provably depended on the
/// mutated shard (query_server.h). Inserts/removals change the record
/// set and still require a full Rebuild().
///
/// Thread safety: queries are const and safe to run concurrently;
/// ApplyUpdate/Rebuild mutate and require the caller to quiesce
/// readers first (the query server's SwapIndex does this for index
/// replacement; for in-place ApplyUpdate, stop the worker or drain
/// first).

#ifndef MOCEMG_DB_SHARDED_INDEX_H_
#define MOCEMG_DB_SHARDED_INDEX_H_

#include <cstdint>
#include <vector>

#include "db/feature_index.h"
#include "db/motion_database.h"
#include "util/parallel.h"
#include "util/result.h"

namespace mocemg {

/// \brief Sharded index construction parameters.
struct ShardedIndexOptions {
  /// Layout/quantization/parallel knobs, shared with FeatureIndex so
  /// the same options produce the same global partition layout.
  FeatureIndexOptions index;
  /// Number of shards; 0 = auto (min(4, partition count)). More shards
  /// than partitions is allowed — the excess shards are empty and
  /// contribute nothing.
  size_t num_shards = 0;
};

/// \brief N-shard scatter-gather kNN index; results bit-identical to
/// FeatureIndex / the linear scan at any (shard count × thread count).
class ShardedFeatureIndex {
 public:
  ShardedFeatureIndex() = default;

  /// \brief Builds over the database's current records.
  static Result<ShardedFeatureIndex> Build(
      const MotionDatabase* database, const ShardedIndexOptions& options = {});

  /// \brief Full rebuild: re-runs the k-means layout, repacks every
  /// shard, resets every shard epoch to the database's current epoch.
  Status Rebuild();

  /// \brief Absorbs exactly one UpdateFeature mutation without a
  /// rebuild: repacks the partition owning `record_index` and bumps
  /// only the owning shard's epoch. Must be called once, in order,
  /// after each database UpdateFeature (the database epoch must be
  /// exactly one past the last applied epoch); a record-count change
  /// (Insert) fails with FailedPrecondition and requires Rebuild().
  /// Quiesce concurrent readers first.
  Status ApplyUpdate(size_t record_index);

  /// \brief Exact kNN, scatter-gather across shards (serial shard
  /// loop); bit-identical to the database's linear scan. `per_shard`,
  /// when given, is resized to num_shards() and receives each shard's
  /// scan stats.
  Result<std::vector<QueryHit>> NearestNeighbors(
      const std::vector<double>& query, size_t k,
      IndexQueryStats* stats = nullptr,
      std::vector<IndexQueryStats>* per_shard = nullptr) const;

  /// \brief Batch kNN parallelized over the (query-block × shard) task
  /// grid: the batch is cut into fixed consecutive query blocks of
  /// options().index.query_block queries (0 = auto) and each cell runs
  /// one shard's lockstep many-to-many block scan (DESIGN.md §16).
  /// Cells of different blocks/shards overlap freely, and the
  /// per-shard lists are merged per query in fixed shard order, so
  /// results and stats are identical at every thread count and block
  /// size. Element i equals NearestNeighbors(queries[i], k) exactly.
  Result<std::vector<std::vector<QueryHit>>> BatchNearestNeighbors(
      const std::vector<std::vector<double>>& queries, size_t k,
      IndexQueryStats* stats = nullptr,
      std::vector<IndexQueryStats>* per_shard = nullptr,
      const ParallelOptions* parallel_override = nullptr) const;

  /// \brief Degraded-mode kNN from the coarse tier (DESIGN.md §12.2),
  /// scatter-gather: per-shard coarse scans merged in shard order, the
  /// certified |est − true| bound maxed across shards. Bit-identical
  /// to FeatureIndex::CoarseNearestNeighbors over the same layout at
  /// any shard count.
  Result<std::vector<QueryHit>> CoarseNearestNeighbors(
      const std::vector<double>& query, size_t k,
      double* error_bound = nullptr, IndexQueryStats* stats = nullptr,
      std::vector<IndexQueryStats>* per_shard = nullptr) const;

  /// \brief Degraded-mode kNN for a batch of queries over the same
  /// (query-block × shard) grid as BatchNearestNeighbors, using the
  /// blocked coarse scan. Element i (and error_bounds[i]) equals
  /// CoarseNearestNeighbors(queries[i], k) exactly at any shard count,
  /// thread count, and block size.
  Result<std::vector<std::vector<QueryHit>>> BatchCoarseNearestNeighbors(
      const std::vector<std::vector<double>>& queries, size_t k,
      std::vector<double>* error_bounds = nullptr,
      IndexQueryStats* stats = nullptr,
      std::vector<IndexQueryStats>* per_shard = nullptr,
      const ParallelOptions* parallel_override = nullptr) const;

  /// \brief The shard owning `record_index` (valid for records present
  /// at the last Rebuild).
  Result<size_t> ShardOfRecord(size_t record_index) const;

  /// \brief True when every record in shard `shard` is provably
  /// farther than `kth` (true distance) from `query` — the
  /// triangle-inequality certificate the serving cache uses to keep an
  /// entry alive across a mutation to a shard none of its hits touch.
  /// Conservative: false negatives only cost a cache miss.
  bool ShardAllBeyond(size_t shard, const std::vector<double>& query,
                      double kth) const;

  size_t num_shards() const { return shards_.size(); }
  size_t num_partitions() const;
  bool has_quantized_tier() const;

  /// \brief The database epoch the index has fully absorbed (build or
  /// ApplyUpdate); queries require database->epoch() to equal it.
  uint64_t applied_epoch() const { return applied_epoch_; }

  /// \brief Per-shard epochs: shard s's value is the database epoch of
  /// the last mutation applied to it (or the build epoch). The serving
  /// cache snapshots this vector into every entry it stores.
  const std::vector<uint64_t>& shard_epochs() const { return shard_epochs_; }

  const ShardedIndexOptions& options() const { return options_; }
  const MotionDatabase* database() const { return database_; }

 private:
  /// The snapshot codec (db/index_snapshot.cc) serializes and restores
  /// the private representation verbatim.
  friend class IndexSnapshotCodec;

  Status ValidateQuery(const std::vector<double>& query, size_t k) const;

  const MotionDatabase* database_ = nullptr;
  ShardedIndexOptions options_;
  /// Shard s owns global partitions {p : p mod N == s}, in ascending
  /// global order (local index p / N).
  std::vector<IndexPartitionSet> shards_;
  std::vector<uint64_t> shard_epochs_;
  uint64_t applied_epoch_ = 0;
  /// Global layout bookkeeping: every record's owning global partition
  /// and the full reference matrix in global partition order — the
  /// snapshot manifest persists these so a lost shard can be repacked
  /// without re-running k-means.
  std::vector<uint32_t> record_to_partition_;
  Matrix global_references_;
};

}  // namespace mocemg

#endif  // MOCEMG_DB_SHARDED_INDEX_H_
