/// \file serving_faults.h
/// \brief Seeded fault injection for the serving path (DESIGN.md §12.4).
///
/// The robustness machinery in query_server.h — deadline sweeps,
/// load shedding, degraded mode, snapshot recovery — only earns trust
/// if it is exercised under the failures it exists for. This injector
/// manufactures those failures deterministically: slow batches (the
/// worker stalls mid-evaluation, driving queue depth up and deadlines
/// past), transient evaluation errors (a batch fails with Unavailable
/// and every request in it sees the error), clock skew (time jumps
/// forward between batches), and snapshot file corruption (targeted
/// bit-flips and truncation for the recovery tests).
///
/// Determinism contract: all draws come from one seeded Rng guarded by
/// a mutex, and the query server calls OnBatchFormed under its batch-
/// formation lock — so draw order equals batch order, which is itself
/// deterministic (FIFO formation). The same seed therefore produces
/// the same fault sequence at every thread count, which is what lets
/// the abl10 stress test assert identical shed/degraded/served counts
/// across runs. Mirrors the dataset-side synth/fault_injector.h idiom:
/// options in, event log out.

#ifndef MOCEMG_DB_SERVING_FAULTS_H_
#define MOCEMG_DB_SERVING_FAULTS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"

namespace mocemg {

/// \brief Kinds of serving faults the injector can produce.
enum class ServingFaultType : int {
  /// The worker stalls for slow_batch_stall_us before evaluating.
  kSlowBatch = 0,
  /// Batch evaluation fails; every request in it gets Unavailable.
  kEvalFailure = 1,
  /// The clock jumps forward by clock_skew_us before the batch runs.
  kClockSkew = 2,
  /// A snapshot file had one bit flipped (explicit call, not drawn).
  kSnapshotBitFlip = 3,
  /// A snapshot file was truncated (explicit call, not drawn).
  kSnapshotTruncation = 4,
};

/// \brief Stable human-readable name for a fault type.
const char* ServingFaultTypeName(ServingFaultType type);

/// \brief One injected fault, recorded in draw order.
struct ServingFaultEvent {
  ServingFaultType type = ServingFaultType::kSlowBatch;
  /// Batch ordinal for drawn faults (0-based), 0 for file corruption.
  uint64_t batch = 0;
  /// Stall/skew magnitude in microseconds; byte offset for bit flips;
  /// resulting size for truncation.
  uint64_t magnitude = 0;
};

/// \brief Injection probabilities and magnitudes. Probabilities are
/// evaluated independently per batch, in the fixed order slow-batch,
/// eval-failure, clock-skew, so one seed fully determines the fault
/// tape regardless of which probabilities are zero.
struct ServingFaultOptions {
  uint64_t seed = 99;
  double slow_batch_probability = 0.0;
  uint64_t slow_batch_stall_us = 0;
  double eval_failure_probability = 0.0;
  double clock_skew_probability = 0.0;
  uint64_t clock_skew_us = 0;
};

/// \brief Deterministic serving-fault source. Thread-safe; the query
/// server calls OnBatchFormed under its formation lock so the draw
/// sequence is the batch sequence.
class ServingFaultInjector {
 public:
  /// `fake_clock`, when given, absorbs stalls and skew as Advance()
  /// calls instead of real sleeps — the stress tests simulate seconds
  /// of overload in microseconds of wall time. When null, stalls are
  /// real SleepMicros on the system clock (skew is skipped: real time
  /// cannot be skipped forward).
  explicit ServingFaultInjector(const ServingFaultOptions& options,
                                FakeClock* fake_clock = nullptr);

  /// \brief Called by the server once per formed batch, under the
  /// formation lock. Applies stall/skew side effects, then returns
  /// OK or Unavailable (the injected evaluation failure).
  Status OnBatchFormed(size_t batch_size);

  /// \brief Flips one pseudo-randomly chosen bit in the file at
  /// `path` (never inside the magic, so the checksum — not the
  /// version check — is what must catch it).
  Status CorruptSnapshotBitFlip(const std::string& path);

  /// \brief Truncates the file at `path` to half its size.
  Status CorruptSnapshotTruncate(const std::string& path);

  /// \brief Every fault injected so far, in draw order.
  std::vector<ServingFaultEvent> events() const;
  void ClearEvents();

 private:
  ServingFaultOptions options_;
  FakeClock* fake_clock_;
  mutable std::mutex mu_;
  Rng rng_;
  uint64_t batches_ = 0;
  std::vector<ServingFaultEvent> events_;
};

}  // namespace mocemg

#endif  // MOCEMG_DB_SERVING_FAULTS_H_
