/// \file index_snapshot.h
/// \brief Crash-safe persistence for a built FeatureIndex.
///
/// A FeatureIndex over millions of records takes seconds to minutes to
/// rebuild (k-means + SoA packing + quantization); losing it to a
/// process restart turns every crash into a cold-start storm. This
/// module serializes the full index representation — SoA partition
/// blocks, norms, the quantized tier (int8 or 4-bit nibble-packed,
/// with its code width recorded per partition), references, build
/// options, and the database epoch it was built against — to a
/// versioned, checksummed binary snapshot, and restores it
/// bit-identically: a loaded index answers every query with exactly
/// the bytes the saved one would have produced.
///
/// Format ("MOCEMGIX2", little-endian, DESIGN.md §12.3): a fixed
/// header carrying the magic, the payload byte count, and an FNV-1a64
/// checksum of the payload, then the payload itself. Truncation is
/// caught by the length check, any in-place corruption by the
/// checksum, format drift by the magic/version — each with a distinct
/// ParseError so operators can tell a half-written file from a
/// bit-rotted one. SaveFeatureIndex writes to a temporary sibling and
/// commits with an atomic rename, so a crash mid-save can never leave
/// a torn file at the target path (the model_io convention, hardened).
///
/// LoadOrRebuildFeatureIndex is the recovery entry point servers use
/// at boot: it tries the snapshot, validates it against the database
/// (dimension, record indices, epoch), and on ANY failure logs the
/// reason and falls back to a clean Build — corrupted state degrades
/// to a slow start, never to wrong answers.

#ifndef MOCEMG_DB_INDEX_SNAPSHOT_H_
#define MOCEMG_DB_INDEX_SNAPSHOT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "db/feature_index.h"
#include "db/motion_database.h"
#include "db/sharded_index.h"
#include "util/result.h"

namespace mocemg {

/// \brief How a LoadOrRebuildFeatureIndex call obtained its index.
struct IndexSnapshotLoadInfo {
  /// True when the snapshot loaded and validated cleanly.
  bool loaded_from_snapshot = false;
  /// True when the index was rebuilt from the database instead.
  bool rebuilt = false;
  /// Human-readable reason for the fallback (empty on a clean load).
  std::string fallback_reason;
};

/// \brief Serializes a built index to the snapshot byte format.
/// Fails with FailedPrecondition when the index is not built.
Result<std::string> SerializeFeatureIndex(const FeatureIndex& index);

/// \brief Reconstructs an index over `database` from snapshot bytes.
/// Validates magic/version, length (truncation), checksum (corruption),
/// and shape against the database (dimension, record indices in
/// range). The loaded index keeps the snapshot's built_epoch; if the
/// database has mutated past it, queries fail with FailedPrecondition
/// exactly as after any other mutation — staleness is not hidden by
/// the load. `database` must outlive the returned index.
Result<FeatureIndex> DeserializeFeatureIndex(
    const std::string& bytes, const MotionDatabase* database);

/// \brief Writes the snapshot atomically: serialize, write to
/// `path + ".tmp"`, flush, then rename onto `path`. Readers of `path`
/// therefore see either the old complete snapshot or the new complete
/// snapshot, never a torn intermediate.
Status SaveFeatureIndex(const FeatureIndex& index,
                        const std::string& path);

/// \brief Reads and validates a snapshot file.
Result<FeatureIndex> LoadFeatureIndex(const std::string& path,
                                      const MotionDatabase* database);

/// \brief Boot-time recovery: load the snapshot at `path`, or — when
/// the file is missing, truncated, corrupted, shape-invalid, or stale
/// relative to the database epoch — log the reason and rebuild from
/// the database with `rebuild_options`. `info`, when given, reports
/// which path was taken and why (the serve CLI and the server's
/// snapshot counters consume it).
Result<FeatureIndex> LoadOrRebuildFeatureIndex(
    const std::string& path, const MotionDatabase* database,
    const FeatureIndexOptions& rebuild_options = {},
    IndexSnapshotLoadInfo* info = nullptr);

// --- sharded snapshots (DESIGN.md §13.4) ----------------------------
//
// A ShardedFeatureIndex persists as a checksummed *manifest* at `path`
// ("MOCEMGSM2") plus one checksummed file per shard at
// `path + ".shard<i>"` ("MOCEMGSH2"). The manifest carries everything
// needed to repack any shard without re-running k-means: the applied
// and per-shard epochs, the build options, the global partition
// references, every record's owning partition, and each shard file's
// expected (size, checksum) digest — so a shard file from a different
// save generation is rejected exactly like a corrupted one. Saves
// write the shard files first and commit the manifest last, each with
// the atomic tmp+rename protocol: a crash mid-save leaves the old
// manifest in charge, and any shard files it no longer matches fail
// digest validation and repack at load.

/// \brief How a LoadOrRebuildShardedFeatureIndex call obtained its
/// index.
struct ShardedSnapshotLoadInfo {
  /// True when the manifest and every shard loaded and validated.
  bool loaded_from_snapshot = false;
  /// True when the whole index was rebuilt from the database (manifest
  /// unusable, shape mismatch, or stale epoch).
  bool rebuilt = false;
  /// Shards that failed validation and were repacked from the
  /// manifest's layout (k-means NOT re-run; empty on a clean load).
  std::vector<size_t> rebuilt_shards;
  /// Human-readable reason for the first fallback taken (empty on a
  /// clean load).
  std::string fallback_reason;
};

/// \brief Writes the manifest + per-shard files atomically (shards
/// first, manifest last). Fails with FailedPrecondition when the index
/// is not built.
Status SaveShardedFeatureIndex(const ShardedFeatureIndex& index,
                               const std::string& path);

/// \brief Strict load: the manifest and every shard file must
/// validate (magic, length, checksum, manifest digest, epochs,
/// membership). The loaded index keeps the snapshot's epochs; if the
/// database has mutated past them, queries fail with
/// FailedPrecondition exactly as after any other mutation.
Result<ShardedFeatureIndex> LoadShardedFeatureIndex(
    const std::string& path, const MotionDatabase* database);

/// \brief Boot-time recovery with *partial* rebuild: a valid, fresh
/// manifest with some corrupted/missing shard files repacks only the
/// failing shards from the manifest's layout (identical bytes to the
/// lost shards, since packing is a pure function of the layout and
/// the database rows). An unusable or stale manifest falls back to a
/// full Build with `rebuild_options`.
Result<ShardedFeatureIndex> LoadOrRebuildShardedFeatureIndex(
    const std::string& path, const MotionDatabase* database,
    const ShardedIndexOptions& rebuild_options = {},
    ShardedSnapshotLoadInfo* info = nullptr);

}  // namespace mocemg

#endif  // MOCEMG_DB_INDEX_SNAPSHOT_H_
