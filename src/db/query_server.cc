#include "db/query_server.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/distance_kernels.h"
#include "util/macros.h"
#include "util/top_k.h"

namespace mocemg {
namespace {

/// Seeded FNV-1a-style hash over the key bytes: the query's doubles
/// (verbatim bit patterns), then k, then the epoch. The seed replaces
/// the offset basis so two servers with different seeds place the same
/// keys in different buckets.
uint64_t HashKey(uint64_t seed, const std::vector<double>& query, size_t k,
                 uint64_t epoch) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  for (double d : query) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
  mix(static_cast<uint64_t>(k));
  mix(epoch);
  return h;
}

void AccumulateIndexStats(IndexQueryStats* acc, const IndexQueryStats& s) {
  acc->distance_computations += s.distance_computations;
  acc->partitions_visited += s.partitions_visited;
  acc->partitions_pruned += s.partitions_pruned;
  acc->coarse_computations += s.coarse_computations;
  acc->coarse_pruned += s.coarse_pruned;
}

}  // namespace

struct QueryServer::Impl {
  const MotionDatabase* db = nullptr;
  const FeatureIndex* index = nullptr;
  QueryServerOptions opts;

  mutable std::mutex mu;
  std::condition_variable cv_work;  ///< queue became non-empty / stopping
  std::condition_variable cv_done;  ///< some outcomes became ready

  struct Request {
    bool classify = false;
    std::vector<double> query;
    size_t k = 1;
    uint64_t ticket = 0;
  };
  struct Outcome {
    bool ready = false;
    bool classify = false;
    Status status;
    std::vector<QueryHit> hits;
    size_t label = 0;
  };
  struct CacheEntry {
    uint64_t hash = 0;
    uint64_t epoch = 0;
    size_t k = 0;
    std::vector<double> query;
    std::vector<QueryHit> hits;
  };

  std::deque<Request> queue;
  std::unordered_map<uint64_t, Outcome> outcomes;
  uint64_t next_ticket = 1;
  QueryServerStats counters;

  /// FIFO cache: list front = oldest entry; the multimap resolves a
  /// seeded hash to its entries (full key compared on lookup, so a
  /// hash collision can never serve the wrong result).
  std::list<CacheEntry> cache_fifo;
  std::unordered_multimap<uint64_t, std::list<CacheEntry>::iterator>
      cache_map;

  std::thread worker;
  bool running = false;
  bool stopping = false;

  Result<uint64_t> Submit(bool classify, std::vector<double> query,
                          size_t k);
  Status ServeBatch(size_t* served_out);
  Status ExactBatch(const std::vector<const std::vector<double>*>& queries,
                    size_t k,
                    std::vector<std::vector<QueryHit>*> hit_sinks) const;
  const CacheEntry* FindCached(uint64_t hash,
                               const std::vector<double>& query, size_t k,
                               uint64_t epoch) const;
  void InsertCached(CacheEntry entry);
  Result<Outcome> Take(uint64_t ticket, bool classify);
  void WorkerLoop();
};

Result<uint64_t> QueryServer::Impl::Submit(bool classify,
                                           std::vector<double> query,
                                           size_t k) {
  if (query.size() != db->feature_dimension()) {
    return Status::InvalidArgument(
        "query dimension " + std::to_string(query.size()) +
        " does not match database dimension " +
        std::to_string(db->feature_dimension()));
  }
  for (double v : query) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "query feature contains a non-finite value");
    }
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  std::unique_lock<std::mutex> lock(mu);
  if (queue.size() >= opts.max_queue) {
    ++counters.rejected;
    return Status::OutOfRange(
        "admission queue full (" + std::to_string(opts.max_queue) +
        " requests waiting); retry after draining");
  }
  const uint64_t ticket = next_ticket++;
  Request req;
  req.classify = classify;
  req.query = std::move(query);
  req.k = k;
  req.ticket = ticket;
  queue.push_back(std::move(req));
  Outcome& out = outcomes[ticket];
  out.classify = classify;
  ++counters.submitted;
  lock.unlock();
  cv_work.notify_one();
  return ticket;
}

const QueryServer::Impl::CacheEntry* QueryServer::Impl::FindCached(
    uint64_t hash, const std::vector<double>& query, size_t k,
    uint64_t epoch) const {
  auto [begin, end] = cache_map.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    const CacheEntry& e = *it->second;
    if (e.epoch == epoch && e.k == k && e.query == query) return &e;
  }
  return nullptr;
}

void QueryServer::Impl::InsertCached(CacheEntry entry) {
  while (cache_fifo.size() >= opts.cache_capacity) {
    const CacheEntry& oldest = cache_fifo.front();
    auto [begin, end] = cache_map.equal_range(oldest.hash);
    for (auto it = begin; it != end; ++it) {
      if (it->second == cache_fifo.begin()) {
        cache_map.erase(it);
        break;
      }
    }
    cache_fifo.pop_front();
    ++counters.evictions;
  }
  cache_fifo.push_back(std::move(entry));
  auto it = std::prev(cache_fifo.end());
  cache_map.emplace(it->hash, it);
}

Status QueryServer::Impl::ExactBatch(
    const std::vector<const std::vector<double>*>& queries, size_t k,
    std::vector<std::vector<QueryHit>*> hit_sinks) const {
  // Blocked many-to-many sweep over the database's packed mirror: the
  // whole micro-batch streams each block tile once (distance_kernels
  // §10), then a per-query bounded top-k selection in squared space.
  // Per-pair bits equal the pair kernel's, and the (distance, index)
  // tie-break matches the linear scan, so element i is bit-identical
  // to db->NearestNeighbors(*queries[i], k).
  const size_t nq = queries.size();
  const size_t n = db->size();
  const size_t d = db->feature_dimension();
  const size_t kk = std::min(k, n);
  std::vector<double> qbuf(nq * d);
  for (size_t i = 0; i < nq; ++i) {
    std::memcpy(qbuf.data() + i * d, queries[i]->data(),
                d * sizeof(double));
  }
  std::vector<double> sq(nq * n);
  SquaredL2ManyToMany(qbuf.data(), nq, db->packed_features().data(), n, d,
                      sq.data(), n);
  return ParallelFor(
      nq,
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        BoundedTopK top;
        std::vector<TopKEntry> entries;
        for (size_t q = begin; q < end; ++q) {
          const double* row = sq.data() + q * n;
          top.Reset(kk);
          for (size_t i = 0; i < n; ++i) top.Push(row[i], i);
          top.ExtractSorted(&entries);
          std::vector<QueryHit>& hits = *hit_sinks[q];
          hits.resize(entries.size());
          for (size_t i = 0; i < entries.size(); ++i) {
            hits[i].record_index = entries[i].second;
            hits[i].distance = std::sqrt(entries[i].first);
          }
        }
        return Status::OK();
      },
      opts.parallel);
}

Status QueryServer::Impl::ServeBatch(size_t* served_out) {
  // --- batch formation + cache lookups, under the lock -------------
  std::vector<Request> batch;
  const size_t nb_cap = opts.max_batch;
  const uint64_t epoch = db->epoch();
  struct Plan {
    uint64_t hash = 0;
    bool from_cache = false;
    std::vector<QueryHit> cached;  ///< filled when from_cache
    size_t eval_slot = 0;          ///< index into uniq when !from_cache
  };
  std::vector<Plan> plan;
  std::vector<size_t> uniq;  ///< batch positions evaluated (first of dupes)
  uint64_t n_hits = 0, n_miss = 0, n_coal = 0;
  {
    std::unique_lock<std::mutex> lock(mu);
    while (!queue.empty() && batch.size() < nb_cap) {
      batch.push_back(std::move(queue.front()));
      queue.pop_front();
    }
    if (batch.empty()) {
      if (served_out != nullptr) *served_out = 0;
      return Status::OK();
    }
    plan.resize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const Request& req = batch[i];
      Plan& pl = plan[i];
      pl.hash = HashKey(opts.cache_seed, req.query, req.k, epoch);
      if (opts.cache_capacity > 0) {
        const CacheEntry* hit =
            FindCached(pl.hash, req.query, req.k, epoch);
        if (hit != nullptr) {
          pl.from_cache = true;
          pl.cached = hit->hits;
          ++n_hits;
          continue;
        }
      }
      ++n_miss;
      // Coalesce duplicates inside the batch onto one evaluation.
      bool coalesced = false;
      for (size_t u = 0; u < uniq.size(); ++u) {
        const Request& first = batch[uniq[u]];
        if (first.k == req.k && first.query == req.query) {
          pl.eval_slot = u;
          coalesced = true;
          ++n_coal;
          break;
        }
      }
      if (!coalesced) {
        pl.eval_slot = uniq.size();
        uniq.push_back(i);
      }
    }
  }

  // --- evaluation, outside the lock --------------------------------
  const bool use_index = index != nullptr && index->num_partitions() > 0 &&
                         index->built_epoch() == epoch;
  std::vector<std::vector<QueryHit>> eval_hits(uniq.size());
  IndexQueryStats agg;
  Status eval_status = Status::OK();
  if (!uniq.empty()) {
    // Requests may carry different k; group the unique evaluations by
    // k so each group is one batched kernel call. std::map keeps the
    // group order deterministic.
    std::map<size_t, std::vector<size_t>> by_k;
    for (size_t u = 0; u < uniq.size(); ++u) {
      by_k[batch[uniq[u]].k].push_back(u);
    }
    for (const auto& [k, slots] : by_k) {
      if (use_index) {
        std::vector<std::vector<double>> queries(slots.size());
        for (size_t s = 0; s < slots.size(); ++s) {
          queries[s] = batch[uniq[slots[s]]].query;
        }
        IndexQueryStats st;
        auto hits = index->BatchNearestNeighbors(queries, k, &st,
                                                 &opts.parallel);
        if (!hits.ok()) {
          eval_status = hits.status().WithContext("query server batch");
          break;
        }
        AccumulateIndexStats(&agg, st);
        for (size_t s = 0; s < slots.size(); ++s) {
          eval_hits[slots[s]] = std::move((*hits)[s]);
        }
      } else {
        std::vector<const std::vector<double>*> queries(slots.size());
        std::vector<std::vector<QueryHit>*> sinks(slots.size());
        for (size_t s = 0; s < slots.size(); ++s) {
          queries[s] = &batch[uniq[slots[s]]].query;
          sinks[s] = &eval_hits[slots[s]];
        }
        Status st = ExactBatch(queries, k, std::move(sinks));
        if (!st.ok()) {
          eval_status = st.WithContext("query server batch");
          break;
        }
      }
    }
  }

  // --- commit: cache inserts + outcome fulfilment, under the lock --
  {
    std::unique_lock<std::mutex> lock(mu);
    counters.served += batch.size();
    ++counters.batches;
    counters.cache_hits += n_hits;
    counters.cache_misses += n_miss;
    counters.coalesced += n_coal;
    if (use_index) AccumulateIndexStats(&counters.index_stats, agg);
    if (eval_status.ok() && opts.cache_capacity > 0) {
      for (size_t u = 0; u < uniq.size(); ++u) {
        const Request& req = batch[uniq[u]];
        CacheEntry entry;
        entry.hash = plan[uniq[u]].hash;
        entry.epoch = epoch;
        entry.k = req.k;
        entry.query = req.query;
        entry.hits = eval_hits[u];
        InsertCached(std::move(entry));
      }
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      auto it = outcomes.find(batch[i].ticket);
      if (it == outcomes.end()) continue;  // ticket abandoned
      Outcome& out = it->second;
      if (!eval_status.ok() && !plan[i].from_cache) {
        out.status = eval_status;
      } else {
        const std::vector<QueryHit>& hits =
            plan[i].from_cache ? plan[i].cached
                               : eval_hits[plan[i].eval_slot];
        if (out.classify) {
          auto label = db->VoteAmongHits(hits);
          if (!label.ok()) {
            out.status = label.status();
          } else {
            out.label = *label;
          }
        } else {
          out.hits = hits;
        }
      }
      out.ready = true;
    }
  }
  cv_done.notify_all();
  if (served_out != nullptr) *served_out = batch.size();
  return eval_status;
}

Result<QueryServer::Impl::Outcome> QueryServer::Impl::Take(uint64_t ticket,
                                                           bool classify) {
  std::unique_lock<std::mutex> lock(mu);
  auto it = outcomes.find(ticket);
  if (it == outcomes.end()) {
    return Status::NotFound("unknown or already-taken ticket " +
                            std::to_string(ticket));
  }
  if (it->second.classify != classify) {
    return Status::InvalidArgument(
        classify ? "ticket belongs to a kNN request"
                 : "ticket belongs to a classify request");
  }
  while (!it->second.ready) {
    if (running) {
      cv_done.wait(lock);
    } else {
      // No worker: serve inline until this ticket's batch has run.
      lock.unlock();
      size_t served = 0;
      Status st = ServeBatch(&served);
      lock.lock();
      it = outcomes.find(ticket);
      if (it == outcomes.end()) {
        return Status::NotFound("ticket lost while serving inline");
      }
      if (!st.ok() && !it->second.ready) return st;
      if (served == 0 && !it->second.ready) {
        return Status::Unknown(
            "ticket never served: queue drained without it");
      }
    }
    it = outcomes.find(ticket);
    if (it == outcomes.end()) {
      return Status::NotFound("ticket taken concurrently");
    }
  }
  Outcome out = std::move(it->second);
  outcomes.erase(it);
  if (!out.status.ok()) return out.status;
  return out;
}

void QueryServer::Impl::WorkerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv_work.wait(lock, [&] { return stopping || !queue.empty(); });
      if (queue.empty() && stopping) return;
    }
    // Per-request failures are recorded in the outcomes; the worker
    // itself keeps serving.
    size_t served = 0;
    (void)ServeBatch(&served);
  }
}

QueryServer::QueryServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
QueryServer::QueryServer(QueryServer&&) noexcept = default;
QueryServer& QueryServer::operator=(QueryServer&&) noexcept = default;

QueryServer::~QueryServer() {
  if (impl_ != nullptr) Stop();
}

Result<QueryServer> QueryServer::Create(const MotionDatabase* database,
                                        const FeatureIndex* index,
                                        const QueryServerOptions& options) {
  if (database == nullptr) {
    return Status::InvalidArgument("null database");
  }
  if (database->empty()) {
    return Status::FailedPrecondition("database is empty");
  }
  if (options.max_queue == 0) {
    return Status::InvalidArgument("max_queue must be >= 1");
  }
  if (options.max_batch == 0) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  auto impl = std::make_unique<Impl>();
  impl->db = database;
  impl->index = index;
  impl->opts = options;
  return QueryServer(std::move(impl));
}

Result<uint64_t> QueryServer::SubmitNearestNeighbors(
    std::vector<double> query, size_t k) {
  return impl_->Submit(false, std::move(query), k);
}

Result<uint64_t> QueryServer::SubmitClassify(std::vector<double> query,
                                             size_t k) {
  return impl_->Submit(true, std::move(query), k);
}

Status QueryServer::DrainOnce(size_t* served_out) {
  return impl_->ServeBatch(served_out);
}

Status QueryServer::Drain() {
  size_t served = 0;
  do {
    MOCEMG_RETURN_NOT_OK(impl_->ServeBatch(&served));
  } while (served > 0);
  return Status::OK();
}

Result<std::vector<QueryHit>> QueryServer::TakeHits(uint64_t ticket) {
  MOCEMG_ASSIGN_OR_RETURN(Impl::Outcome out, impl_->Take(ticket, false));
  return std::move(out.hits);
}

Result<size_t> QueryServer::TakeLabel(uint64_t ticket) {
  MOCEMG_ASSIGN_OR_RETURN(Impl::Outcome out, impl_->Take(ticket, true));
  return out.label;
}

Result<std::vector<QueryHit>> QueryServer::NearestNeighbors(
    const std::vector<double>& query, size_t k) {
  MOCEMG_ASSIGN_OR_RETURN(uint64_t ticket,
                          SubmitNearestNeighbors(query, k));
  return TakeHits(ticket);
}

Result<size_t> QueryServer::Classify(const std::vector<double>& query,
                                     size_t k) {
  MOCEMG_ASSIGN_OR_RETURN(uint64_t ticket, SubmitClassify(query, k));
  return TakeLabel(ticket);
}

namespace {

/// Shared submit-all / take-all pump for the batch conveniences:
/// admission rejections are handled with backpressure — take the
/// oldest outstanding result (which blocks until its batch is served,
/// freeing queue space) and retry.
template <typename SubmitFn, typename TakeFn, typename ResultT>
Status PumpBatch(size_t n, const SubmitFn& submit, const TakeFn& take,
                 std::vector<ResultT>* results) {
  std::vector<uint64_t> tickets(n, 0);
  results->resize(n);
  size_t taken = 0;
  for (size_t i = 0; i < n; ++i) {
    for (;;) {
      auto ticket = submit(i);
      if (ticket.ok()) {
        tickets[i] = *ticket;
        break;
      }
      if (ticket.status().code() != StatusCode::kOutOfRange ||
          taken >= i) {
        return ticket.status();
      }
      MOCEMG_ASSIGN_OR_RETURN((*results)[taken], take(tickets[taken]));
      ++taken;
    }
  }
  for (; taken < n; ++taken) {
    MOCEMG_ASSIGN_OR_RETURN((*results)[taken], take(tickets[taken]));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<QueryHit>>>
QueryServer::NearestNeighborsBatch(
    const std::vector<std::vector<double>>& queries, size_t k) {
  std::vector<std::vector<QueryHit>> results;
  MOCEMG_RETURN_NOT_OK(PumpBatch(
      queries.size(),
      [&](size_t i) { return SubmitNearestNeighbors(queries[i], k); },
      [&](uint64_t t) { return TakeHits(t); }, &results));
  return results;
}

Result<std::vector<size_t>> QueryServer::ClassifyBatch(
    const std::vector<std::vector<double>>& queries, size_t k) {
  std::vector<size_t> results;
  MOCEMG_RETURN_NOT_OK(PumpBatch(
      queries.size(),
      [&](size_t i) { return SubmitClassify(queries[i], k); },
      [&](uint64_t t) { return TakeLabel(t); }, &results));
  return results;
}

Status QueryServer::Start() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  if (impl_->running) return Status::OK();
  impl_->stopping = false;
  impl_->running = true;
  impl_->worker = std::thread([impl = impl_.get()] { impl->WorkerLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    if (!impl_->running) return;
    impl_->stopping = true;
  }
  impl_->cv_work.notify_all();
  impl_->worker.join();
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->running = false;
    impl_->stopping = false;
  }
}

QueryServerStats QueryServer::stats() const {
  std::unique_lock<std::mutex> lock(impl_->mu);
  return impl_->counters;
}

}  // namespace mocemg
