#include "db/query_server.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "db/serving_faults.h"
#include "util/distance_kernels.h"
#include "util/macros.h"
#include "util/top_k.h"

namespace mocemg {
namespace {

/// Seeded FNV-1a-style hash over the key bytes: the query's doubles
/// (verbatim bit patterns), then k, then the epoch. The seed replaces
/// the offset basis so two servers with different seeds place the same
/// keys in different buckets.
uint64_t HashKey(uint64_t seed, const std::vector<double>& query, size_t k,
                 uint64_t epoch) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  for (double d : query) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
  mix(static_cast<uint64_t>(k));
  mix(epoch);
  return h;
}

void AccumulateIndexStats(IndexQueryStats* acc, const IndexQueryStats& s) {
  acc->distance_computations += s.distance_computations;
  acc->partitions_visited += s.partitions_visited;
  acc->partitions_pruned += s.partitions_pruned;
  acc->coarse_computations += s.coarse_computations;
  acc->coarse_pruned += s.coarse_pruned;
}

}  // namespace

struct QueryServer::Impl {
  const MotionDatabase* db = nullptr;
  const FeatureIndex* index = nullptr;
  QueryServerOptions opts;

  mutable std::mutex mu;
  std::condition_variable cv_work;  ///< queue became non-empty / stopping
  std::condition_variable cv_done;  ///< some outcomes became ready

  /// Resolved time source (opts.clock or the system clock).
  const Clock* clock = nullptr;
  /// EWMA of per-request drain time in microseconds (integer, α=1/2);
  /// feeds the retry_after_us hint. 0 until the first batch commits.
  uint64_t drain_ewma_us = 0;

  struct Request {
    bool classify = false;
    std::vector<double> query;
    size_t k = 1;
    uint64_t ticket = 0;
    /// Absolute expiry on the server clock; 0 = never expires.
    uint64_t deadline_at_us = 0;
  };
  struct Outcome {
    bool ready = false;
    bool classify = false;
    bool degraded = false;
    double error_bound = 0.0;
    Status status;
    std::vector<QueryHit> hits;
    size_t label = 0;
  };
  struct CacheEntry {
    uint64_t hash = 0;
    uint64_t epoch = 0;
    size_t k = 0;
    std::vector<double> query;
    std::vector<QueryHit> hits;
  };

  std::deque<Request> queue;
  std::unordered_map<uint64_t, Outcome> outcomes;
  uint64_t next_ticket = 1;
  QueryServerStats counters;

  /// FIFO cache: list front = oldest entry; the multimap resolves a
  /// seeded hash to its entries (full key compared on lookup, so a
  /// hash collision can never serve the wrong result).
  std::list<CacheEntry> cache_fifo;
  std::unordered_multimap<uint64_t, std::list<CacheEntry>::iterator>
      cache_map;

  std::thread worker;
  bool running = false;
  bool stopping = false;

  Result<uint64_t> Submit(bool classify, std::vector<double> query,
                          size_t k, uint64_t deadline_us);
  Status ServeBatch(size_t* served_out);
  Status ExactBatch(const std::vector<const std::vector<double>*>& queries,
                    size_t k,
                    std::vector<std::vector<QueryHit>*> hit_sinks) const;
  const CacheEntry* FindCached(uint64_t hash,
                               const std::vector<double>& query, size_t k,
                               uint64_t epoch) const;
  void InsertCached(CacheEntry entry);
  /// expect: 0 = kNN ticket, 1 = classify ticket, -1 = either kind.
  Result<Outcome> Take(uint64_t ticket, int expect);
  void WorkerLoop();
};

Result<uint64_t> QueryServer::Impl::Submit(bool classify,
                                           std::vector<double> query,
                                           size_t k, uint64_t deadline_us) {
  if (query.size() != db->feature_dimension()) {
    return Status::InvalidArgument(
        "query dimension " + std::to_string(query.size()) +
        " does not match database dimension " +
        std::to_string(db->feature_dimension()));
  }
  for (double v : query) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "query feature contains a non-finite value");
    }
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (k > db->size()) {
    return Status::InvalidArgument(
        "k=" + std::to_string(k) + " exceeds database size " +
        std::to_string(db->size()));
  }
  if (deadline_us == 0) deadline_us = opts.default_deadline_us;
  std::unique_lock<std::mutex> lock(mu);
  if (queue.size() >= opts.max_queue) {
    ++counters.rejected;
    // Shed with a hint: with `queue.size()` requests ahead and the
    // EWMA per-request drain time, a slot should free after roughly
    // (depth + 1) × ewma — monotone in depth, tracks serving speed.
    const uint64_t per_req = drain_ewma_us > 0 ? drain_ewma_us : 1;
    const uint64_t hint = (queue.size() + 1) * per_req;
    return Status::OutOfRange(
        "admission queue full (" + std::to_string(opts.max_queue) +
        " requests waiting); retry_after_us=" + std::to_string(hint));
  }
  const uint64_t ticket = next_ticket++;
  Request req;
  req.classify = classify;
  req.query = std::move(query);
  req.k = k;
  req.ticket = ticket;
  if (deadline_us > 0) {
    req.deadline_at_us = clock->NowMicros() + deadline_us;
  }
  queue.push_back(std::move(req));
  Outcome& out = outcomes[ticket];
  out.classify = classify;
  ++counters.submitted;
  if (queue.size() > counters.queue_high_water) {
    counters.queue_high_water = queue.size();
  }
  lock.unlock();
  cv_work.notify_one();
  return ticket;
}

const QueryServer::Impl::CacheEntry* QueryServer::Impl::FindCached(
    uint64_t hash, const std::vector<double>& query, size_t k,
    uint64_t epoch) const {
  auto [begin, end] = cache_map.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    const CacheEntry& e = *it->second;
    if (e.epoch == epoch && e.k == k && e.query == query) return &e;
  }
  return nullptr;
}

void QueryServer::Impl::InsertCached(CacheEntry entry) {
  while (cache_fifo.size() >= opts.cache_capacity) {
    const CacheEntry& oldest = cache_fifo.front();
    auto [begin, end] = cache_map.equal_range(oldest.hash);
    for (auto it = begin; it != end; ++it) {
      if (it->second == cache_fifo.begin()) {
        cache_map.erase(it);
        break;
      }
    }
    cache_fifo.pop_front();
    ++counters.evictions;
  }
  cache_fifo.push_back(std::move(entry));
  auto it = std::prev(cache_fifo.end());
  cache_map.emplace(it->hash, it);
}

Status QueryServer::Impl::ExactBatch(
    const std::vector<const std::vector<double>*>& queries, size_t k,
    std::vector<std::vector<QueryHit>*> hit_sinks) const {
  // Blocked many-to-many sweep over the database's packed mirror: the
  // whole micro-batch streams each block tile once (distance_kernels
  // §10), then a per-query bounded top-k selection in squared space.
  // Per-pair bits equal the pair kernel's, and the (distance, index)
  // tie-break matches the linear scan, so element i is bit-identical
  // to db->NearestNeighbors(*queries[i], k).
  const size_t nq = queries.size();
  const size_t n = db->size();
  const size_t d = db->feature_dimension();
  const size_t kk = std::min(k, n);
  std::vector<double> qbuf(nq * d);
  for (size_t i = 0; i < nq; ++i) {
    std::memcpy(qbuf.data() + i * d, queries[i]->data(),
                d * sizeof(double));
  }
  std::vector<double> sq(nq * n);
  SquaredL2ManyToMany(qbuf.data(), nq, db->packed_features().data(), n, d,
                      sq.data(), n);
  return ParallelFor(
      nq,
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        BoundedTopK top;
        std::vector<TopKEntry> entries;
        for (size_t q = begin; q < end; ++q) {
          const double* row = sq.data() + q * n;
          top.Reset(kk);
          for (size_t i = 0; i < n; ++i) top.Push(row[i], i);
          top.ExtractSorted(&entries);
          std::vector<QueryHit>& hits = *hit_sinks[q];
          hits.resize(entries.size());
          for (size_t i = 0; i < entries.size(); ++i) {
            hits[i].record_index = entries[i].second;
            hits[i].distance = std::sqrt(entries[i].first);
          }
        }
        return Status::OK();
      },
      opts.parallel);
}

Status QueryServer::Impl::ServeBatch(size_t* served_out) {
  // --- expiry sweep + batch formation + cache lookups, under lock --
  std::vector<Request> batch;
  const size_t nb_cap = opts.max_batch;
  const uint64_t epoch = db->epoch();
  struct Plan {
    uint64_t hash = 0;
    bool from_cache = false;
    std::vector<QueryHit> cached;  ///< filled when from_cache
    size_t eval_slot = 0;          ///< index into uniq when !from_cache
  };
  std::vector<Plan> plan;
  std::vector<size_t> uniq;  ///< batch positions evaluated (first of dupes)
  uint64_t n_hits = 0, n_miss = 0, n_coal = 0, n_expired = 0;
  bool degraded_batch = false;
  Status fault_status = Status::OK();
  // Degradation needs a fresh index carrying the int8 tier; without
  // one the exact path serves under any load.
  const bool coarse_capable = index != nullptr &&
                              index->num_partitions() > 0 &&
                              index->built_epoch() == epoch &&
                              index->has_quantized_tier();
  {
    std::unique_lock<std::mutex> lock(mu);
    // Expiry sweep: fail every overdue request wherever it sits in the
    // queue. An expired request is shed whole — it never occupies a
    // batch slot and is never answered with work done past its budget.
    if (!queue.empty()) {
      const uint64_t now = clock->NowMicros();
      std::deque<Request> keep;
      for (Request& req : queue) {
        if (req.deadline_at_us != 0 && now >= req.deadline_at_us) {
          auto it = outcomes.find(req.ticket);
          if (it != outcomes.end()) {
            it->second.status = Status::DeadlineExceeded(
                "request deadline elapsed while waiting (ticket " +
                std::to_string(req.ticket) + ")");
            it->second.ready = true;
          }
          ++n_expired;
        } else {
          keep.push_back(std::move(req));
        }
      }
      queue.swap(keep);
      counters.expired += n_expired;
    }
    // Degradation trigger: a pure function of post-sweep queue depth,
    // so a replayed request sequence degrades identically at any
    // thread count (DESIGN.md §12.2).
    degraded_batch = coarse_capable && opts.degrade_watermark > 0 &&
                     queue.size() >= opts.degrade_watermark;
    while (!queue.empty() && batch.size() < nb_cap) {
      batch.push_back(std::move(queue.front()));
      queue.pop_front();
    }
    if (batch.empty()) {
      if (served_out != nullptr) *served_out = 0;
      lock.unlock();
      if (n_expired > 0) cv_done.notify_all();
      return Status::OK();
    }
    // Fault draws happen under the formation lock: draw order equals
    // batch order, so one seed fixes the whole fault tape.
    if (opts.faults != nullptr) {
      fault_status = opts.faults->OnBatchFormed(batch.size());
    }
    plan.resize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const Request& req = batch[i];
      Plan& pl = plan[i];
      pl.hash = HashKey(opts.cache_seed, req.query, req.k, epoch);
      if (opts.cache_capacity > 0) {
        const CacheEntry* hit =
            FindCached(pl.hash, req.query, req.k, epoch);
        if (hit != nullptr) {
          pl.from_cache = true;
          pl.cached = hit->hits;
          ++n_hits;
          continue;
        }
      }
      ++n_miss;
      // Coalesce duplicates inside the batch onto one evaluation.
      bool coalesced = false;
      for (size_t u = 0; u < uniq.size(); ++u) {
        const Request& first = batch[uniq[u]];
        if (first.k == req.k && first.query == req.query) {
          pl.eval_slot = u;
          coalesced = true;
          ++n_coal;
          break;
        }
      }
      if (!coalesced) {
        pl.eval_slot = uniq.size();
        uniq.push_back(i);
      }
    }
  }

  // --- evaluation, outside the lock --------------------------------
  const bool use_index = index != nullptr && index->num_partitions() > 0 &&
                         index->built_epoch() == epoch;
  std::vector<std::vector<QueryHit>> eval_hits(uniq.size());
  std::vector<double> eval_bounds(uniq.size(), 0.0);
  IndexQueryStats agg;
  Status eval_status = fault_status;
  const uint64_t t0 = clock->NowMicros();
  if (!uniq.empty() && eval_status.ok() && degraded_batch) {
    // Degraded mode: answer from the coarse tier alone, one query at a
    // time in slot order (deterministic, and already ~an order of
    // magnitude cheaper than the exact path it replaces).
    for (size_t u = 0; u < uniq.size(); ++u) {
      const Request& req = batch[uniq[u]];
      IndexQueryStats st;
      auto hits = index->CoarseNearestNeighbors(req.query, req.k,
                                                &eval_bounds[u], &st);
      if (!hits.ok()) {
        eval_status = hits.status().WithContext("query server degraded batch");
        break;
      }
      AccumulateIndexStats(&agg, st);
      eval_hits[u] = std::move(*hits);
    }
  } else if (!uniq.empty() && eval_status.ok()) {
    // Requests may carry different k; group the unique evaluations by
    // k so each group is one batched kernel call. std::map keeps the
    // group order deterministic.
    std::map<size_t, std::vector<size_t>> by_k;
    for (size_t u = 0; u < uniq.size(); ++u) {
      by_k[batch[uniq[u]].k].push_back(u);
    }
    for (const auto& [k, slots] : by_k) {
      if (use_index) {
        std::vector<std::vector<double>> queries(slots.size());
        for (size_t s = 0; s < slots.size(); ++s) {
          queries[s] = batch[uniq[slots[s]]].query;
        }
        IndexQueryStats st;
        auto hits = index->BatchNearestNeighbors(queries, k, &st,
                                                 &opts.parallel);
        if (!hits.ok()) {
          eval_status = hits.status().WithContext("query server batch");
          break;
        }
        AccumulateIndexStats(&agg, st);
        for (size_t s = 0; s < slots.size(); ++s) {
          eval_hits[slots[s]] = std::move((*hits)[s]);
        }
      } else {
        std::vector<const std::vector<double>*> queries(slots.size());
        std::vector<std::vector<QueryHit>*> sinks(slots.size());
        for (size_t s = 0; s < slots.size(); ++s) {
          queries[s] = &batch[uniq[slots[s]]].query;
          sinks[s] = &eval_hits[slots[s]];
        }
        Status st = ExactBatch(queries, k, std::move(sinks));
        if (!st.ok()) {
          eval_status = st.WithContext("query server batch");
          break;
        }
      }
    }
  }

  // --- commit: cache inserts + outcome fulfilment, under the lock --
  {
    std::unique_lock<std::mutex> lock(mu);
    counters.served += batch.size();
    ++counters.batches;
    counters.cache_hits += n_hits;
    counters.cache_misses += n_miss;
    counters.coalesced += n_coal;
    if (degraded_batch) ++counters.degraded_batches;
    if (use_index || degraded_batch) {
      AccumulateIndexStats(&counters.index_stats, agg);
    }
    // Drain-rate EWMA (integer, α=1/2): feeds the retry_after hint.
    const uint64_t t1 = clock->NowMicros();
    const uint64_t per_req =
        std::max<uint64_t>(1, (t1 - t0) / batch.size());
    drain_ewma_us =
        drain_ewma_us == 0 ? per_req : (drain_ewma_us + per_req) / 2;
    // Degraded answers are never cached: a later cache hit would serve
    // the approximation after pressure cleared.
    if (eval_status.ok() && opts.cache_capacity > 0 && !degraded_batch) {
      for (size_t u = 0; u < uniq.size(); ++u) {
        const Request& req = batch[uniq[u]];
        CacheEntry entry;
        entry.hash = plan[uniq[u]].hash;
        entry.epoch = epoch;
        entry.k = req.k;
        entry.query = req.query;
        entry.hits = eval_hits[u];
        InsertCached(std::move(entry));
      }
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      auto it = outcomes.find(batch[i].ticket);
      if (it == outcomes.end()) continue;  // ticket abandoned
      Outcome& out = it->second;
      if (!eval_status.ok() && !plan[i].from_cache) {
        out.status = eval_status;
      } else {
        const std::vector<QueryHit>& hits =
            plan[i].from_cache ? plan[i].cached
                               : eval_hits[plan[i].eval_slot];
        // Cache hits are exact answers even inside a degraded batch.
        if (!plan[i].from_cache && degraded_batch) {
          out.degraded = true;
          out.error_bound = eval_bounds[plan[i].eval_slot];
          ++counters.degraded;
        }
        if (out.classify) {
          auto label = db->VoteAmongHits(hits);
          if (!label.ok()) {
            out.status = label.status();
          } else {
            out.label = *label;
          }
        } else {
          out.hits = hits;
        }
      }
      out.ready = true;
    }
  }
  cv_done.notify_all();
  if (served_out != nullptr) *served_out = batch.size();
  return eval_status;
}

Result<QueryServer::Impl::Outcome> QueryServer::Impl::Take(uint64_t ticket,
                                                           int expect) {
  std::unique_lock<std::mutex> lock(mu);
  auto it = outcomes.find(ticket);
  if (it == outcomes.end()) {
    return Status::NotFound("unknown or already-taken ticket " +
                            std::to_string(ticket));
  }
  if (expect >= 0 && it->second.classify != (expect == 1)) {
    return Status::InvalidArgument(
        expect == 1 ? "ticket belongs to a kNN request"
                    : "ticket belongs to a classify request");
  }
  while (!it->second.ready) {
    if (running) {
      cv_done.wait(lock);
    } else {
      // No worker: serve inline until this ticket's batch has run.
      lock.unlock();
      size_t served = 0;
      Status st = ServeBatch(&served);
      lock.lock();
      it = outcomes.find(ticket);
      if (it == outcomes.end()) {
        return Status::NotFound("ticket lost while serving inline");
      }
      if (!st.ok() && !it->second.ready) return st;
      if (served == 0 && !it->second.ready) {
        return Status::Unknown(
            "ticket never served: queue drained without it");
      }
    }
    it = outcomes.find(ticket);
    if (it == outcomes.end()) {
      return Status::NotFound("ticket taken concurrently");
    }
  }
  Outcome out = std::move(it->second);
  outcomes.erase(it);
  if (!out.status.ok()) return out.status;
  return out;
}

void QueryServer::Impl::WorkerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv_work.wait(lock, [&] { return stopping || !queue.empty(); });
      if (queue.empty() && stopping) return;
    }
    // Per-request failures are recorded in the outcomes; the worker
    // itself keeps serving.
    size_t served = 0;
    (void)ServeBatch(&served);
  }
}

QueryServer::QueryServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
QueryServer::QueryServer(QueryServer&&) noexcept = default;
QueryServer& QueryServer::operator=(QueryServer&&) noexcept = default;

QueryServer::~QueryServer() {
  if (impl_ != nullptr) Stop();
}

Result<QueryServer> QueryServer::Create(const MotionDatabase* database,
                                        const FeatureIndex* index,
                                        const QueryServerOptions& options) {
  if (database == nullptr) {
    return Status::InvalidArgument("null database");
  }
  if (database->empty()) {
    return Status::FailedPrecondition("database is empty");
  }
  if (options.max_queue == 0) {
    return Status::InvalidArgument("max_queue must be >= 1");
  }
  if (options.max_batch == 0) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (options.degrade_watermark > options.max_queue) {
    return Status::InvalidArgument(
        "degrade_watermark (" + std::to_string(options.degrade_watermark) +
        ") exceeds max_queue (" + std::to_string(options.max_queue) +
        "); it could never fire");
  }
  auto impl = std::make_unique<Impl>();
  impl->db = database;
  impl->index = index;
  impl->opts = options;
  impl->clock = options.clock != nullptr ? options.clock : SystemClock();
  return QueryServer(std::move(impl));
}

Result<uint64_t> QueryServer::SubmitNearestNeighbors(
    std::vector<double> query, size_t k) {
  return impl_->Submit(false, std::move(query), k, 0);
}

Result<uint64_t> QueryServer::SubmitNearestNeighbors(
    std::vector<double> query, size_t k, uint64_t deadline_us) {
  return impl_->Submit(false, std::move(query), k, deadline_us);
}

Result<uint64_t> QueryServer::SubmitClassify(std::vector<double> query,
                                             size_t k) {
  return impl_->Submit(true, std::move(query), k, 0);
}

Result<uint64_t> QueryServer::SubmitClassify(std::vector<double> query,
                                             size_t k,
                                             uint64_t deadline_us) {
  return impl_->Submit(true, std::move(query), k, deadline_us);
}

Status QueryServer::DrainOnce(size_t* served_out) {
  return impl_->ServeBatch(served_out);
}

Status QueryServer::Drain() {
  size_t served = 0;
  do {
    MOCEMG_RETURN_NOT_OK(impl_->ServeBatch(&served));
  } while (served > 0);
  return Status::OK();
}

Result<std::vector<QueryHit>> QueryServer::TakeHits(uint64_t ticket) {
  MOCEMG_ASSIGN_OR_RETURN(Impl::Outcome out, impl_->Take(ticket, 0));
  return std::move(out.hits);
}

Result<size_t> QueryServer::TakeLabel(uint64_t ticket) {
  MOCEMG_ASSIGN_OR_RETURN(Impl::Outcome out, impl_->Take(ticket, 1));
  return out.label;
}

Result<ServedAnswer> QueryServer::TakeAnswer(uint64_t ticket) {
  MOCEMG_ASSIGN_OR_RETURN(Impl::Outcome out, impl_->Take(ticket, -1));
  ServedAnswer answer;
  answer.degraded = out.degraded;
  answer.error_bound = out.error_bound;
  answer.hits = std::move(out.hits);
  answer.label = out.label;
  return answer;
}

Result<std::vector<QueryHit>> QueryServer::NearestNeighbors(
    const std::vector<double>& query, size_t k) {
  MOCEMG_ASSIGN_OR_RETURN(uint64_t ticket,
                          SubmitNearestNeighbors(query, k));
  return TakeHits(ticket);
}

Result<size_t> QueryServer::Classify(const std::vector<double>& query,
                                     size_t k) {
  MOCEMG_ASSIGN_OR_RETURN(uint64_t ticket, SubmitClassify(query, k));
  return TakeLabel(ticket);
}

namespace {

/// Shared submit-all / take-all pump for the batch conveniences:
/// admission rejections are handled with backpressure — take the
/// oldest outstanding result (which blocks until its batch is served,
/// freeing queue space) and retry.
template <typename SubmitFn, typename TakeFn, typename ResultT>
Status PumpBatch(size_t n, const SubmitFn& submit, const TakeFn& take,
                 std::vector<ResultT>* results) {
  std::vector<uint64_t> tickets(n, 0);
  results->resize(n);
  size_t taken = 0;
  for (size_t i = 0; i < n; ++i) {
    for (;;) {
      auto ticket = submit(i);
      if (ticket.ok()) {
        tickets[i] = *ticket;
        break;
      }
      if (ticket.status().code() != StatusCode::kOutOfRange ||
          taken >= i) {
        return ticket.status();
      }
      MOCEMG_ASSIGN_OR_RETURN((*results)[taken], take(tickets[taken]));
      ++taken;
    }
  }
  for (; taken < n; ++taken) {
    MOCEMG_ASSIGN_OR_RETURN((*results)[taken], take(tickets[taken]));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<QueryHit>>>
QueryServer::NearestNeighborsBatch(
    const std::vector<std::vector<double>>& queries, size_t k) {
  std::vector<std::vector<QueryHit>> results;
  MOCEMG_RETURN_NOT_OK(PumpBatch(
      queries.size(),
      [&](size_t i) { return SubmitNearestNeighbors(queries[i], k); },
      [&](uint64_t t) { return TakeHits(t); }, &results));
  return results;
}

Result<std::vector<size_t>> QueryServer::ClassifyBatch(
    const std::vector<std::vector<double>>& queries, size_t k) {
  std::vector<size_t> results;
  MOCEMG_RETURN_NOT_OK(PumpBatch(
      queries.size(),
      [&](size_t i) { return SubmitClassify(queries[i], k); },
      [&](uint64_t t) { return TakeLabel(t); }, &results));
  return results;
}

Status QueryServer::Start() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  if (impl_->running) return Status::OK();
  impl_->stopping = false;
  impl_->running = true;
  impl_->worker = std::thread([impl = impl_.get()] { impl->WorkerLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    if (!impl_->running) return;
    impl_->stopping = true;
  }
  impl_->cv_work.notify_all();
  impl_->worker.join();
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->running = false;
    impl_->stopping = false;
  }
}

void QueryServer::NoteSnapshotLoad(bool loaded_from_snapshot) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  ++impl_->counters.snapshot_loads;
  if (!loaded_from_snapshot) ++impl_->counters.snapshot_fallbacks;
}

QueryServerStats QueryServer::stats() const {
  std::unique_lock<std::mutex> lock(impl_->mu);
  return impl_->counters;
}

uint64_t RetryAfterMicros(const Status& status) {
  static const char kTag[] = "retry_after_us=";
  const std::string& msg = status.message();
  const size_t at = msg.find(kTag);
  if (at == std::string::npos) return 0;
  uint64_t value = 0;
  for (size_t i = at + sizeof(kTag) - 1; i < msg.size(); ++i) {
    const char c = msg[i];
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

JitteredBackoff::JitteredBackoff(const BackoffOptions& options)
    : opts_(options), rng_(options.seed), base_us_(options.initial_us) {}

uint64_t JitteredBackoff::NextDelayUs() {
  const double base = static_cast<double>(base_us_);
  const double jitter = opts_.jitter;
  // Uniform in [base·(1−j), base·(1+j)], at least 1µs so a sleep
  // always happens and the schedule stays strictly ordered.
  const double lo = base * (1.0 - jitter);
  const double hi = base * (1.0 + jitter);
  const double drawn = jitter > 0.0 ? rng_.Uniform(lo, hi) : base;
  const double next = base * opts_.multiplier;
  base_us_ = next >= static_cast<double>(opts_.max_us)
                 ? opts_.max_us
                 : static_cast<uint64_t>(next);
  const double clamped = std::min(
      std::max(drawn, 1.0), static_cast<double>(opts_.max_us));
  return static_cast<uint64_t>(clamped);
}

void JitteredBackoff::Reset() { base_us_ = opts_.initial_us; }

Result<uint64_t> SubmitWithBackoff(QueryServer* server,
                                   std::vector<double> query, size_t k,
                                   bool classify,
                                   const BackoffOptions& backoff,
                                   const Clock* clock) {
  if (server == nullptr) {
    return Status::InvalidArgument("null server");
  }
  if (clock == nullptr) clock = SystemClock();
  JitteredBackoff schedule(backoff);
  Status last = Status::OK();
  const size_t attempts = std::max<size_t>(1, backoff.max_attempts);
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    Result<uint64_t> ticket =
        classify ? server->SubmitClassify(query, k)
                 : server->SubmitNearestNeighbors(query, k);
    if (ticket.ok()) return ticket;
    if (!ticket.status().IsOutOfRange()) return ticket.status();
    last = ticket.status();
    if (attempt + 1 == attempts) break;
    // Honour whichever is larger: the client's own schedule or the
    // server's observed-drain-rate hint.
    const uint64_t delay =
        std::max(schedule.NextDelayUs(), RetryAfterMicros(last));
    clock->SleepMicros(delay);
  }
  return last;
}

}  // namespace mocemg
