#include "db/query_server.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "db/serving_faults.h"
#include "db/sharded_index.h"
#include "util/distance_kernels.h"
#include "util/kernel_dispatch.h"
#include "util/macros.h"
#include "util/top_k.h"

namespace mocemg {
namespace {

/// Seeded FNV-1a-style hash over the key bytes: the query's doubles
/// (verbatim bit patterns), then k. The seed replaces the offset basis
/// so two servers with different seeds place the same keys in
/// different buckets. Validity under mutation is NOT part of the key —
/// each entry carries the epochs it was computed under and is
/// revalidated (or erased) at lookup.
uint64_t HashKey(uint64_t seed, const std::vector<double>& query,
                 size_t k) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  for (double d : query) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
  mix(static_cast<uint64_t>(k));
  return h;
}

void AccumulateIndexStats(IndexQueryStats* acc, const IndexQueryStats& s) {
  acc->distance_computations += s.distance_computations;
  acc->partitions_visited += s.partitions_visited;
  acc->partitions_pruned += s.partitions_pruned;
  acc->coarse_computations += s.coarse_computations;
  acc->coarse_pruned += s.coarse_pruned;
  acc->f32_scans += s.f32_scans;
  acc->f32_refined += s.f32_refined;
}

}  // namespace

struct QueryServer::Impl {
  const MotionDatabase* db = nullptr;
  const FeatureIndex* index = nullptr;
  const ShardedFeatureIndex* sharded = nullptr;
  QueryServerOptions opts;

  mutable std::mutex mu;
  std::condition_variable cv_work;  ///< queue became non-empty / stopping
  std::condition_variable cv_done;  ///< some outcomes became ready
  /// Index-swap rendezvous: SwapIndex waits here for in-flight batch
  /// evaluations to commit; batch formation waits here for a pending
  /// swap to finish.
  std::condition_variable cv_swap;

  /// Resolved time source (opts.clock or the system clock).
  const Clock* clock = nullptr;
  /// EWMA of per-request drain time in microseconds (integer, α=1/2);
  /// feeds the retry_after_us hint. 0 until the first batch commits.
  uint64_t drain_ewma_us = 0;

  /// Micro-batches formed but not yet committed (their evaluation may
  /// be running outside the lock). SwapIndex quiesces on this.
  size_t inflight = 0;
  /// Pending SwapIndex calls; batch formation holds off while > 0.
  size_t swapping = 0;

  struct Request {
    bool classify = false;
    std::vector<double> query;
    size_t k = 1;
    uint64_t ticket = 0;
    /// Absolute expiry on the server clock; 0 = never expires.
    uint64_t deadline_at_us = 0;
  };
  struct Outcome {
    bool ready = false;
    bool classify = false;
    bool degraded = false;
    double error_bound = 0.0;
    Status status;
    std::vector<QueryHit> hits;
    size_t label = 0;
  };
  struct CacheEntry {
    uint64_t hash = 0;
    size_t k = 0;
    std::vector<double> query;
    std::vector<QueryHit> hits;
    /// Database epoch the hits were computed (or last revalidated) at.
    uint64_t db_epoch = 0;
    /// Per-shard epochs at store time when the entry was served
    /// through a ShardedFeatureIndex; empty otherwise. The lookup-time
    /// revalidation walks exactly the shards whose epoch moved.
    std::vector<uint64_t> shard_epochs;
    /// The entry's k-th (worst) hit distance — the radius the
    /// ShardAllBeyond certificate must clear for a mutated shard.
    double kth = 0.0;
  };

  /// One micro-batch moving through the form → evaluate → commit
  /// pipeline. Formation and commit run under the lock; evaluation
  /// touches only the flight itself and the index captured into it,
  /// so the flights of one wave evaluate concurrently.
  struct Flight {
    enum Mode { kExact, kIndex, kSharded };
    Mode mode = kExact;
    const FeatureIndex* via_index = nullptr;
    const ShardedFeatureIndex* via_sharded = nullptr;
    uint64_t epoch = 0;
    bool degraded = false;
    bool formed = false;  ///< counted in `inflight`; must commit
    uint64_t n_expired = 0;
    Status fault_status;
    std::vector<Request> batch;
    struct Plan {
      uint64_t hash = 0;
      bool from_cache = false;
      std::vector<QueryHit> cached;  ///< filled when from_cache
      size_t eval_slot = 0;          ///< index into uniq when !from_cache
    };
    std::vector<Plan> plan;
    std::vector<size_t> uniq;  ///< batch positions evaluated (first of dupes)
    uint64_t n_hits = 0, n_miss = 0, n_coal = 0;
    /// Shard-epoch vector snapshot at formation (sharded mode);
    /// stamped into every cache entry this flight stores.
    std::vector<uint64_t> shard_epochs;
    // --- evaluation outputs ---
    std::vector<std::vector<QueryHit>> eval_hits;
    std::vector<double> eval_bounds;
    IndexQueryStats agg;
    std::vector<IndexQueryStats> per_shard;
    std::vector<uint64_t> shard_scans;
    Status eval_status;
    uint64_t t0 = 0, t1 = 0;
  };

  std::deque<Request> queue;
  std::unordered_map<uint64_t, Outcome> outcomes;
  uint64_t next_ticket = 1;
  QueryServerStats counters;

  /// FIFO cache: list front = oldest entry; the multimap resolves a
  /// seeded hash to its entries (full key compared on lookup, so a
  /// hash collision can never serve the wrong result).
  std::list<CacheEntry> cache_fifo;
  std::unordered_multimap<uint64_t, std::list<CacheEntry>::iterator>
      cache_map;

  std::thread worker;
  bool running = false;
  bool stopping = false;

  Result<uint64_t> Submit(bool classify, std::vector<double> query,
                          size_t k, uint64_t deadline_us);
  /// Forms one micro-batch under the lock: expiry sweep, serving-mode
  /// capture, watermark, extraction, fault draw, cache lookups with
  /// revalidation, in-batch coalescing. Returns false when no batch
  /// was formed (empty queue, or a swap is pending and `may_wait` is
  /// false — callers holding uncommitted flights must not block, or
  /// the swap could never quiesce).
  bool FormFlight(Flight* f, bool may_wait);
  /// Evaluates a formed flight's unique misses outside the lock.
  void EvaluateFlight(Flight* f) const;
  /// Commits a flight under the lock in wave order: counters, EWMA,
  /// cache inserts, outcome fulfilment, inflight release.
  Status CommitFlight(Flight* f);
  /// One wave: form up to pipeline_depth flights, evaluate them
  /// concurrently, commit in formation order.
  Status ServeWave(size_t* served_out);
  Status ExactBatch(const std::vector<const std::vector<double>*>& queries,
                    size_t k,
                    std::vector<std::vector<QueryHit>*> hit_sinks) const;
  /// Cache lookup with validity check. An entry stored at the current
  /// epoch hits directly. After a mutation, an entry can survive only
  /// through the sharded revalidation certificate (`shx` non-null =
  /// serving through a fresh sharded index): for every shard whose
  /// epoch moved, no cached hit may live in it and the shard must
  /// prove all its records lie strictly beyond the entry's k-th
  /// distance. Invalid entries are erased and attributed to the first
  /// failing shard.
  bool LookupCache(uint64_t hash, const std::vector<double>& query,
                   size_t k, uint64_t epoch,
                   const ShardedFeatureIndex* shx,
                   std::vector<QueryHit>* hits_out);
  void InsertCached(CacheEntry entry);
  void EnsureShardStats(size_t num_shards);
  /// Folds a scatter-gather evaluation's per-shard stats into the
  /// flight, counting `scans_per_shard` per-(query, shard) scan tasks
  /// against every shard.
  static void AddPerShard(Flight* f,
                          const std::vector<IndexQueryStats>& per_shard,
                          uint64_t scans_per_shard);
  Status Swap(const FeatureIndex* fi, const ShardedFeatureIndex* si);
  /// expect: 0 = kNN ticket, 1 = classify ticket, -1 = either kind.
  Result<Outcome> Take(uint64_t ticket, int expect);
  void WorkerLoop();
};

Result<uint64_t> QueryServer::Impl::Submit(bool classify,
                                           std::vector<double> query,
                                           size_t k, uint64_t deadline_us) {
  if (query.size() != db->feature_dimension()) {
    return Status::InvalidArgument(
        "query dimension " + std::to_string(query.size()) +
        " does not match database dimension " +
        std::to_string(db->feature_dimension()));
  }
  for (double v : query) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "query feature contains a non-finite value");
    }
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (k > db->size()) {
    return Status::InvalidArgument(
        "k=" + std::to_string(k) + " exceeds database size " +
        std::to_string(db->size()));
  }
  if (deadline_us == 0) deadline_us = opts.default_deadline_us;
  std::unique_lock<std::mutex> lock(mu);
  if (queue.size() >= opts.max_queue) {
    ++counters.rejected;
    // Shed with a hint: with `queue.size()` requests ahead and the
    // EWMA per-request drain time, a slot should free after roughly
    // (depth + 1) × ewma — monotone in depth, tracks serving speed.
    const uint64_t per_req = drain_ewma_us > 0 ? drain_ewma_us : 1;
    const uint64_t hint = (queue.size() + 1) * per_req;
    return Status::OutOfRange(
        "admission queue full (" + std::to_string(opts.max_queue) +
        " requests waiting); retry_after_us=" + std::to_string(hint));
  }
  const uint64_t ticket = next_ticket++;
  Request req;
  req.classify = classify;
  req.query = std::move(query);
  req.k = k;
  req.ticket = ticket;
  if (deadline_us > 0) {
    req.deadline_at_us = clock->NowMicros() + deadline_us;
  }
  queue.push_back(std::move(req));
  Outcome& out = outcomes[ticket];
  out.classify = classify;
  ++counters.submitted;
  if (queue.size() > counters.queue_high_water) {
    counters.queue_high_water = queue.size();
  }
  lock.unlock();
  cv_work.notify_one();
  return ticket;
}

bool QueryServer::Impl::LookupCache(uint64_t hash,
                                    const std::vector<double>& query,
                                    size_t k, uint64_t epoch,
                                    const ShardedFeatureIndex* shx,
                                    std::vector<QueryHit>* hits_out) {
  auto [begin, end] = cache_map.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    CacheEntry& e = *it->second;
    if (e.k != k || e.query != query) continue;
    if (e.db_epoch == epoch) {
      *hits_out = e.hits;
      return true;
    }
    // The database mutated since the entry was stored. Without a
    // fresh sharded index there is no certificate to keep it alive.
    if (shx != nullptr && e.shard_epochs.size() == shx->num_shards()) {
      const std::vector<uint64_t>& cur = shx->shard_epochs();
      bool valid = true;
      size_t bad_shard = cur.size();
      for (size_t s = 0; s < cur.size(); ++s) {
        if (e.shard_epochs[s] == cur[s]) continue;
        // Shard s mutated: the entry survives only if none of its
        // hits live in s and s certifies that every record it now
        // holds lies strictly beyond the entry's k-th distance (so
        // nothing in s could have entered the top-k).
        bool depends = e.hits.size() < e.k;
        for (const QueryHit& h : e.hits) {
          if (depends) break;
          auto owner = shx->ShardOfRecord(h.record_index);
          depends = !owner.ok() || *owner == s;
        }
        if (depends || !shx->ShardAllBeyond(s, query, e.kth)) {
          valid = false;
          bad_shard = s;
          break;
        }
      }
      if (valid) {
        e.db_epoch = epoch;
        e.shard_epochs = cur;
        ++counters.cache_revalidations;
        *hits_out = e.hits;
        return true;
      }
      EnsureShardStats(cur.size());
      ++counters.shard_stats[bad_shard].cache_invalidations;
    }
    cache_fifo.erase(it->second);
    cache_map.erase(it);
    return false;
  }
  return false;
}

void QueryServer::Impl::InsertCached(CacheEntry entry) {
  // Replace any existing entry for the same (query, k): with validity
  // out of the key, a re-evaluated query would otherwise accumulate
  // duplicates.
  auto [begin, end] = cache_map.equal_range(entry.hash);
  for (auto it = begin; it != end; ++it) {
    const CacheEntry& e = *it->second;
    if (e.k == entry.k && e.query == entry.query) {
      cache_fifo.erase(it->second);
      cache_map.erase(it);
      break;
    }
  }
  while (cache_fifo.size() >= opts.cache_capacity) {
    const CacheEntry& oldest = cache_fifo.front();
    auto [obegin, oend] = cache_map.equal_range(oldest.hash);
    for (auto it = obegin; it != oend; ++it) {
      if (it->second == cache_fifo.begin()) {
        cache_map.erase(it);
        break;
      }
    }
    cache_fifo.pop_front();
    ++counters.evictions;
  }
  cache_fifo.push_back(std::move(entry));
  auto it = std::prev(cache_fifo.end());
  cache_map.emplace(it->hash, it);
}

void QueryServer::Impl::EnsureShardStats(size_t num_shards) {
  if (counters.shard_stats.size() < num_shards) {
    counters.shard_stats.resize(num_shards);
  }
}

Status QueryServer::Impl::ExactBatch(
    const std::vector<const std::vector<double>*>& queries, size_t k,
    std::vector<std::vector<QueryHit>*> hit_sinks) const {
  // Blocked many-to-many sweep over the database's packed mirror: the
  // whole micro-batch streams each block tile once (distance_kernels
  // §10), then a per-query bounded top-k selection in squared space.
  // Per-pair bits equal the pair kernel's, and the (distance, index)
  // tie-break matches the linear scan, so element i is bit-identical
  // to db->NearestNeighbors(*queries[i], k).
  const size_t nq = queries.size();
  const size_t n = db->size();
  const size_t d = db->feature_dimension();
  const size_t kk = std::min(k, n);
  std::vector<double> qbuf(nq * d);
  for (size_t i = 0; i < nq; ++i) {
    std::memcpy(qbuf.data() + i * d, queries[i]->data(),
                d * sizeof(double));
  }
  std::vector<double> sq(nq * n);
  SquaredL2ManyToMany(qbuf.data(), nq, db->packed_features().data(), n, d,
                      sq.data(), n);
  return ParallelFor(
      nq,
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        BoundedTopK top;
        std::vector<TopKEntry> entries;
        for (size_t q = begin; q < end; ++q) {
          const double* row = sq.data() + q * n;
          top.Reset(kk);
          for (size_t i = 0; i < n; ++i) top.Push(row[i], i);
          top.ExtractSorted(&entries);
          std::vector<QueryHit>& hits = *hit_sinks[q];
          hits.resize(entries.size());
          for (size_t i = 0; i < entries.size(); ++i) {
            hits[i].record_index = entries[i].second;
            hits[i].distance = std::sqrt(entries[i].first);
          }
        }
        return Status::OK();
      },
      opts.parallel);
}

bool QueryServer::Impl::FormFlight(Flight* f, bool may_wait) {
  std::unique_lock<std::mutex> lock(mu);
  if (swapping > 0) {
    // A swap is quiescing. A caller with uncommitted flights must not
    // block here — the swap waits on those very commits.
    if (!may_wait) return false;
    cv_swap.wait(lock, [&] { return swapping == 0; });
  }
  const uint64_t epoch = db->epoch();
  f->epoch = epoch;
  f->fault_status = Status::OK();
  // Expiry sweep: fail every overdue request wherever it sits in the
  // queue. An expired request is shed whole — it never occupies a
  // batch slot and is never answered with work done past its budget.
  if (!queue.empty()) {
    const uint64_t now = clock->NowMicros();
    std::deque<Request> keep;
    for (Request& req : queue) {
      if (req.deadline_at_us != 0 && now >= req.deadline_at_us) {
        auto it = outcomes.find(req.ticket);
        if (it != outcomes.end()) {
          it->second.status = Status::DeadlineExceeded(
              "request deadline elapsed while waiting (ticket " +
              std::to_string(req.ticket) + ")");
          it->second.ready = true;
        }
        ++f->n_expired;
      } else {
        keep.push_back(std::move(req));
      }
    }
    queue.swap(keep);
    counters.expired += f->n_expired;
  }
  // Serving-mode capture: the flight evaluates wholly through the
  // index installed NOW — a later SwapIndex cannot tear it (the swap
  // waits for this flight to commit). A fresh sharded index wins; a
  // fresh plain index is next; otherwise the exact blocked fallback.
  if (sharded != nullptr && sharded->num_partitions() > 0 &&
      sharded->applied_epoch() == epoch) {
    f->mode = Flight::kSharded;
    f->via_sharded = sharded;
  } else if (index != nullptr && index->num_partitions() > 0 &&
             index->built_epoch() == epoch) {
    f->mode = Flight::kIndex;
    f->via_index = index;
  } else {
    f->mode = Flight::kExact;
  }
  // Degradation needs a coarse tier on the serving index; without one
  // the exact path serves under any load.
  const bool coarse_capable =
      (f->mode == Flight::kSharded &&
       f->via_sharded->has_quantized_tier()) ||
      (f->mode == Flight::kIndex && f->via_index->has_quantized_tier());
  // Degradation trigger: a pure function of post-sweep queue depth,
  // so a replayed request sequence degrades identically at any
  // thread count and pipeline depth (DESIGN.md §12.2).
  f->degraded = coarse_capable && opts.degrade_watermark > 0 &&
                queue.size() >= opts.degrade_watermark;
  while (!queue.empty() && f->batch.size() < opts.max_batch) {
    f->batch.push_back(std::move(queue.front()));
    queue.pop_front();
  }
  if (f->batch.empty()) return false;
  // Fault draws happen under the formation lock: draw order equals
  // batch order, so one seed fixes the whole fault tape.
  if (opts.faults != nullptr) {
    f->fault_status = opts.faults->OnBatchFormed(f->batch.size());
  }
  if (f->mode == Flight::kSharded) {
    f->shard_epochs = f->via_sharded->shard_epochs();
  }
  const ShardedFeatureIndex* shx =
      f->mode == Flight::kSharded ? f->via_sharded : nullptr;
  f->plan.resize(f->batch.size());
  for (size_t i = 0; i < f->batch.size(); ++i) {
    const Request& req = f->batch[i];
    Flight::Plan& pl = f->plan[i];
    pl.hash = HashKey(opts.cache_seed, req.query, req.k);
    if (opts.cache_capacity > 0 &&
        LookupCache(pl.hash, req.query, req.k, epoch, shx, &pl.cached)) {
      pl.from_cache = true;
      ++f->n_hits;
      continue;
    }
    ++f->n_miss;
    // Coalesce duplicates inside the batch onto one evaluation.
    bool coalesced = false;
    for (size_t u = 0; u < f->uniq.size(); ++u) {
      const Request& first = f->batch[f->uniq[u]];
      if (first.k == req.k && first.query == req.query) {
        pl.eval_slot = u;
        coalesced = true;
        ++f->n_coal;
        break;
      }
    }
    if (!coalesced) {
      pl.eval_slot = f->uniq.size();
      f->uniq.push_back(i);
    }
  }
  f->formed = true;
  ++inflight;
  return true;
}

void QueryServer::Impl::AddPerShard(
    Flight* f, const std::vector<IndexQueryStats>& per_shard,
    uint64_t scans_per_shard) {
  if (f->per_shard.size() < per_shard.size()) {
    f->per_shard.resize(per_shard.size());
  }
  if (f->shard_scans.size() < per_shard.size()) {
    f->shard_scans.resize(per_shard.size(), 0);
  }
  for (size_t s = 0; s < per_shard.size(); ++s) {
    AccumulateIndexStats(&f->per_shard[s], per_shard[s]);
    f->shard_scans[s] += scans_per_shard;
  }
}

void QueryServer::Impl::EvaluateFlight(Flight* f) const {
  Status eval_status = f->fault_status;
  const size_t nu = f->uniq.size();
  f->eval_hits.resize(nu);
  f->eval_bounds.assign(nu, 0.0);
  f->t0 = clock->NowMicros();
  if (nu > 0 && eval_status.ok() && f->degraded) {
    // Degraded mode: answer from the coarse tier alone. The unique
    // evaluations are grouped by k (std::map: deterministic order) and
    // each group drains through ONE blocked coarse scan — the same
    // query-block engine as the exact path (DESIGN.md §16), which is
    // per-query bit-identical to CoarseNearestNeighbors, so every
    // answer and error bound matches the former per-query loop.
    std::map<size_t, std::vector<size_t>> by_k;
    for (size_t u = 0; u < nu; ++u) {
      by_k[f->batch[f->uniq[u]].k].push_back(u);
    }
    for (const auto& [k, slots] : by_k) {
      std::vector<std::vector<double>> queries(slots.size());
      for (size_t s = 0; s < slots.size(); ++s) {
        queries[s] = f->batch[f->uniq[slots[s]]].query;
      }
      IndexQueryStats st;
      std::vector<double> bounds;
      Result<std::vector<std::vector<QueryHit>>> hits(
          std::vector<std::vector<QueryHit>>{});
      if (f->mode == Flight::kSharded) {
        std::vector<IndexQueryStats> ps;
        hits = f->via_sharded->BatchCoarseNearestNeighbors(
            queries, k, &bounds, &st, &ps, &opts.parallel);
        if (hits.ok()) AddPerShard(f, ps, slots.size());
      } else {
        hits = f->via_index->BatchCoarseNearestNeighbors(
            queries, k, &bounds, &st, &opts.parallel);
      }
      if (!hits.ok()) {
        eval_status =
            hits.status().WithContext("query server degraded batch");
        break;
      }
      AccumulateIndexStats(&f->agg, st);
      for (size_t s = 0; s < slots.size(); ++s) {
        f->eval_hits[slots[s]] = std::move((*hits)[s]);
        f->eval_bounds[slots[s]] = bounds[s];
      }
    }
  } else if (nu > 0 && eval_status.ok()) {
    // Requests may carry different k; group the unique evaluations by
    // k so each group is one batched kernel call. std::map keeps the
    // group order deterministic.
    std::map<size_t, std::vector<size_t>> by_k;
    for (size_t u = 0; u < nu; ++u) {
      by_k[f->batch[f->uniq[u]].k].push_back(u);
    }
    for (const auto& [k, slots] : by_k) {
      if (f->mode == Flight::kSharded) {
        std::vector<std::vector<double>> queries(slots.size());
        for (size_t s = 0; s < slots.size(); ++s) {
          queries[s] = f->batch[f->uniq[slots[s]]].query;
        }
        IndexQueryStats st;
        std::vector<IndexQueryStats> ps;
        auto hits = f->via_sharded->BatchNearestNeighbors(
            queries, k, &st, &ps, &opts.parallel);
        if (!hits.ok()) {
          eval_status = hits.status().WithContext("query server batch");
          break;
        }
        AccumulateIndexStats(&f->agg, st);
        AddPerShard(f, ps, slots.size());
        for (size_t s = 0; s < slots.size(); ++s) {
          f->eval_hits[slots[s]] = std::move((*hits)[s]);
        }
      } else if (f->mode == Flight::kIndex) {
        std::vector<std::vector<double>> queries(slots.size());
        for (size_t s = 0; s < slots.size(); ++s) {
          queries[s] = f->batch[f->uniq[slots[s]]].query;
        }
        IndexQueryStats st;
        auto hits = f->via_index->BatchNearestNeighbors(queries, k, &st,
                                                        &opts.parallel);
        if (!hits.ok()) {
          eval_status = hits.status().WithContext("query server batch");
          break;
        }
        AccumulateIndexStats(&f->agg, st);
        for (size_t s = 0; s < slots.size(); ++s) {
          f->eval_hits[slots[s]] = std::move((*hits)[s]);
        }
      } else {
        std::vector<const std::vector<double>*> queries(slots.size());
        std::vector<std::vector<QueryHit>*> sinks(slots.size());
        for (size_t s = 0; s < slots.size(); ++s) {
          queries[s] = &f->batch[f->uniq[slots[s]]].query;
          sinks[s] = &f->eval_hits[slots[s]];
        }
        Status st = ExactBatch(queries, k, std::move(sinks));
        if (!st.ok()) {
          eval_status = st.WithContext("query server batch");
          break;
        }
      }
    }
  }
  f->t1 = clock->NowMicros();
  f->eval_status = eval_status;
}

Status QueryServer::Impl::CommitFlight(Flight* f) {
  {
    std::unique_lock<std::mutex> lock(mu);
    if (f->formed) --inflight;
    counters.served += f->batch.size();
    ++counters.batches;
    // Micro-batch size histogram: bucket 0 = size 1, bucket b >= 1 =
    // sizes (2^(b-1), 2^b]. bucket(n) = ceil(log2(n)).
    {
      size_t bucket = 0;
      for (size_t n = f->batch.size() - 1; n > 0; n >>= 1) ++bucket;
      if (counters.batch_size_hist.size() <= bucket) {
        counters.batch_size_hist.resize(bucket + 1, 0);
      }
      ++counters.batch_size_hist[bucket];
    }
    counters.cache_hits += f->n_hits;
    counters.cache_misses += f->n_miss;
    counters.coalesced += f->n_coal;
    if (f->degraded) ++counters.degraded_batches;
    if (f->mode != Flight::kExact) {
      AccumulateIndexStats(&counters.index_stats, f->agg);
    }
    if (f->mode == Flight::kSharded) {
      EnsureShardStats(f->via_sharded->num_shards());
      for (size_t s = 0; s < f->per_shard.size(); ++s) {
        ShardServeStats& ss = counters.shard_stats[s];
        ss.scans += f->shard_scans[s];
        ss.distance_computations += f->per_shard[s].distance_computations;
        ss.coarse_computations += f->per_shard[s].coarse_computations;
        ss.coarse_pruned += f->per_shard[s].coarse_pruned;
      }
    }
    // Drain-rate EWMA (integer, α=1/2): feeds the retry_after hint.
    const uint64_t per_req =
        std::max<uint64_t>(1, (f->t1 - f->t0) / f->batch.size());
    drain_ewma_us =
        drain_ewma_us == 0 ? per_req : (drain_ewma_us + per_req) / 2;
    // Degraded answers are never cached: a later cache hit would serve
    // the approximation after pressure cleared.
    if (f->eval_status.ok() && opts.cache_capacity > 0 && !f->degraded) {
      for (size_t u = 0; u < f->uniq.size(); ++u) {
        const Request& req = f->batch[f->uniq[u]];
        CacheEntry entry;
        entry.hash = f->plan[f->uniq[u]].hash;
        entry.k = req.k;
        entry.query = req.query;
        entry.hits = f->eval_hits[u];
        entry.db_epoch = f->epoch;
        entry.shard_epochs = f->shard_epochs;
        entry.kth = entry.hits.empty() ? 0.0 : entry.hits.back().distance;
        InsertCached(std::move(entry));
      }
    }
    for (size_t i = 0; i < f->batch.size(); ++i) {
      auto it = outcomes.find(f->batch[i].ticket);
      if (it == outcomes.end()) continue;  // ticket abandoned
      Outcome& out = it->second;
      if (!f->eval_status.ok() && !f->plan[i].from_cache) {
        out.status = f->eval_status;
      } else {
        const std::vector<QueryHit>& hits =
            f->plan[i].from_cache ? f->plan[i].cached
                                  : f->eval_hits[f->plan[i].eval_slot];
        // Cache hits are exact answers even inside a degraded batch.
        if (!f->plan[i].from_cache && f->degraded) {
          out.degraded = true;
          out.error_bound = f->eval_bounds[f->plan[i].eval_slot];
          ++counters.degraded;
        }
        if (out.classify) {
          auto label = db->VoteAmongHits(hits);
          if (!label.ok()) {
            out.status = label.status();
          } else {
            out.label = *label;
          }
        } else {
          out.hits = hits;
        }
      }
      out.ready = true;
    }
  }
  cv_done.notify_all();
  cv_swap.notify_all();
  return f->eval_status;
}

Status QueryServer::Impl::ServeWave(size_t* served_out) {
  const size_t depth = std::max<size_t>(1, opts.pipeline_depth);
  std::vector<Flight> flights;
  flights.reserve(depth);
  bool any_expired = false;
  for (size_t i = 0; i < depth; ++i) {
    Flight f;
    // Only the first formation may wait out a pending swap: once this
    // wave holds an uncommitted flight, blocking would deadlock the
    // swap's quiesce.
    const bool formed = FormFlight(&f, /*may_wait=*/flights.empty());
    any_expired = any_expired || f.n_expired > 0;
    if (!formed) break;
    flights.push_back(std::move(f));
  }
  if (flights.empty()) {
    if (served_out != nullptr) *served_out = 0;
    if (any_expired) cv_done.notify_all();
    return Status::OK();
  }
  if (flights.size() == 1) {
    EvaluateFlight(&flights[0]);
  } else {
    // Overlap the wave's evaluation stages on the thread pool. Each
    // flight is evaluated whole (grain 1); index-internal ParallelFor
    // calls nest inline, so the thread budget applies at flight level.
    ParallelOptions wave = opts.parallel;
    wave.grain = 1;
    (void)ParallelFor(
        flights.size(),
        [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
          for (size_t i = begin; i < end; ++i) {
            EvaluateFlight(&flights[i]);
          }
          return Status::OK();
        },
        wave);
  }
  size_t served = 0;
  Status status = Status::OK();
  for (Flight& f : flights) {
    Status st = CommitFlight(&f);
    if (status.ok() && !st.ok()) status = st;
    served += f.batch.size();
  }
  if (served_out != nullptr) *served_out = served;
  if (any_expired) cv_done.notify_all();
  return status;
}

Status QueryServer::Impl::Swap(const FeatureIndex* fi,
                               const ShardedFeatureIndex* si) {
  {
    std::unique_lock<std::mutex> lock(mu);
    ++swapping;
    cv_swap.wait(lock, [&] { return inflight == 0; });
    index = fi;
    sharded = si;
    --swapping;
  }
  cv_swap.notify_all();
  return Status::OK();
}

Result<QueryServer::Impl::Outcome> QueryServer::Impl::Take(uint64_t ticket,
                                                           int expect) {
  std::unique_lock<std::mutex> lock(mu);
  auto it = outcomes.find(ticket);
  if (it == outcomes.end()) {
    return Status::NotFound("unknown or already-taken ticket " +
                            std::to_string(ticket));
  }
  if (expect >= 0 && it->second.classify != (expect == 1)) {
    return Status::InvalidArgument(
        expect == 1 ? "ticket belongs to a kNN request"
                    : "ticket belongs to a classify request");
  }
  while (!it->second.ready) {
    if (running) {
      cv_done.wait(lock);
    } else {
      // No worker: serve inline until this ticket's wave has run.
      lock.unlock();
      size_t served = 0;
      Status st = ServeWave(&served);
      lock.lock();
      it = outcomes.find(ticket);
      if (it == outcomes.end()) {
        return Status::NotFound("ticket lost while serving inline");
      }
      if (!st.ok() && !it->second.ready) return st;
      if (served == 0 && !it->second.ready) {
        return Status::Unknown(
            "ticket never served: queue drained without it");
      }
    }
    it = outcomes.find(ticket);
    if (it == outcomes.end()) {
      return Status::NotFound("ticket taken concurrently");
    }
  }
  Outcome out = std::move(it->second);
  outcomes.erase(it);
  if (!out.status.ok()) return out.status;
  return out;
}

void QueryServer::Impl::WorkerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv_work.wait(lock, [&] { return stopping || !queue.empty(); });
      if (queue.empty() && stopping) return;
    }
    // Per-request failures are recorded in the outcomes; the worker
    // itself keeps serving.
    size_t served = 0;
    (void)ServeWave(&served);
  }
}

QueryServer::QueryServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
QueryServer::QueryServer(QueryServer&&) noexcept = default;
QueryServer& QueryServer::operator=(QueryServer&&) noexcept = default;

QueryServer::~QueryServer() {
  if (impl_ != nullptr) Stop();
}

namespace {

Status ValidateServerOptions(const MotionDatabase* database,
                             const QueryServerOptions& options) {
  if (database == nullptr) {
    return Status::InvalidArgument("null database");
  }
  if (database->empty()) {
    return Status::FailedPrecondition("database is empty");
  }
  if (options.max_queue == 0) {
    return Status::InvalidArgument("max_queue must be >= 1");
  }
  if (options.max_batch == 0) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (options.pipeline_depth == 0) {
    return Status::InvalidArgument("pipeline_depth must be >= 1");
  }
  if (options.degrade_watermark > options.max_queue) {
    return Status::InvalidArgument(
        "degrade_watermark (" + std::to_string(options.degrade_watermark) +
        ") exceeds max_queue (" + std::to_string(options.max_queue) +
        "); it could never fire");
  }
  return Status::OK();
}

}  // namespace

Result<QueryServer> QueryServer::Create(const MotionDatabase* database,
                                        const FeatureIndex* index,
                                        const QueryServerOptions& options) {
  MOCEMG_RETURN_NOT_OK(ValidateServerOptions(database, options));
  auto impl = std::make_unique<Impl>();
  impl->db = database;
  impl->index = index;
  impl->opts = options;
  impl->clock = options.clock != nullptr ? options.clock : SystemClock();
  return QueryServer(std::move(impl));
}

Result<QueryServer> QueryServer::Create(const MotionDatabase* database,
                                        const ShardedFeatureIndex* index,
                                        const QueryServerOptions& options) {
  MOCEMG_RETURN_NOT_OK(ValidateServerOptions(database, options));
  if (index != nullptr && index->database() != database) {
    return Status::InvalidArgument(
        "sharded index is not built over the server's database");
  }
  auto impl = std::make_unique<Impl>();
  impl->db = database;
  impl->sharded = index;
  impl->opts = options;
  impl->clock = options.clock != nullptr ? options.clock : SystemClock();
  return QueryServer(std::move(impl));
}

Status QueryServer::SwapIndex(const FeatureIndex* index) {
  return impl_->Swap(index, nullptr);
}

Status QueryServer::SwapIndex(const ShardedFeatureIndex* index) {
  if (index != nullptr && index->database() != impl_->db) {
    return Status::InvalidArgument(
        "sharded index is not built over the server's database");
  }
  return impl_->Swap(nullptr, index);
}

Result<uint64_t> QueryServer::SubmitNearestNeighbors(
    std::vector<double> query, size_t k) {
  return impl_->Submit(false, std::move(query), k, 0);
}

Result<uint64_t> QueryServer::SubmitNearestNeighbors(
    std::vector<double> query, size_t k, uint64_t deadline_us) {
  return impl_->Submit(false, std::move(query), k, deadline_us);
}

Result<uint64_t> QueryServer::SubmitClassify(std::vector<double> query,
                                             size_t k) {
  return impl_->Submit(true, std::move(query), k, 0);
}

Result<uint64_t> QueryServer::SubmitClassify(std::vector<double> query,
                                             size_t k,
                                             uint64_t deadline_us) {
  return impl_->Submit(true, std::move(query), k, deadline_us);
}

Status QueryServer::DrainOnce(size_t* served_out) {
  return impl_->ServeWave(served_out);
}

Status QueryServer::Drain() {
  size_t served = 0;
  do {
    MOCEMG_RETURN_NOT_OK(impl_->ServeWave(&served));
  } while (served > 0);
  return Status::OK();
}

Result<std::vector<QueryHit>> QueryServer::TakeHits(uint64_t ticket) {
  MOCEMG_ASSIGN_OR_RETURN(Impl::Outcome out, impl_->Take(ticket, 0));
  return std::move(out.hits);
}

Result<size_t> QueryServer::TakeLabel(uint64_t ticket) {
  MOCEMG_ASSIGN_OR_RETURN(Impl::Outcome out, impl_->Take(ticket, 1));
  return out.label;
}

Result<ServedAnswer> QueryServer::TakeAnswer(uint64_t ticket) {
  MOCEMG_ASSIGN_OR_RETURN(Impl::Outcome out, impl_->Take(ticket, -1));
  ServedAnswer answer;
  answer.degraded = out.degraded;
  answer.error_bound = out.error_bound;
  answer.hits = std::move(out.hits);
  answer.label = out.label;
  return answer;
}

Result<std::vector<QueryHit>> QueryServer::NearestNeighbors(
    const std::vector<double>& query, size_t k) {
  MOCEMG_ASSIGN_OR_RETURN(uint64_t ticket,
                          SubmitNearestNeighbors(query, k));
  return TakeHits(ticket);
}

Result<size_t> QueryServer::Classify(const std::vector<double>& query,
                                     size_t k) {
  MOCEMG_ASSIGN_OR_RETURN(uint64_t ticket, SubmitClassify(query, k));
  return TakeLabel(ticket);
}

namespace {

/// Shared submit-all / take-all pump for the batch conveniences:
/// admission rejections are handled with backpressure — take the
/// oldest outstanding result (which blocks until its batch is served,
/// freeing queue space) and retry.
template <typename SubmitFn, typename TakeFn, typename ResultT>
Status PumpBatch(size_t n, const SubmitFn& submit, const TakeFn& take,
                 std::vector<ResultT>* results) {
  std::vector<uint64_t> tickets(n, 0);
  results->resize(n);
  size_t taken = 0;
  for (size_t i = 0; i < n; ++i) {
    for (;;) {
      auto ticket = submit(i);
      if (ticket.ok()) {
        tickets[i] = *ticket;
        break;
      }
      if (ticket.status().code() != StatusCode::kOutOfRange ||
          taken >= i) {
        return ticket.status();
      }
      MOCEMG_ASSIGN_OR_RETURN((*results)[taken], take(tickets[taken]));
      ++taken;
    }
  }
  for (; taken < n; ++taken) {
    MOCEMG_ASSIGN_OR_RETURN((*results)[taken], take(tickets[taken]));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::vector<QueryHit>>>
QueryServer::NearestNeighborsBatch(
    const std::vector<std::vector<double>>& queries, size_t k) {
  std::vector<std::vector<QueryHit>> results;
  MOCEMG_RETURN_NOT_OK(PumpBatch(
      queries.size(),
      [&](size_t i) { return SubmitNearestNeighbors(queries[i], k); },
      [&](uint64_t t) { return TakeHits(t); }, &results));
  return results;
}

Result<std::vector<size_t>> QueryServer::ClassifyBatch(
    const std::vector<std::vector<double>>& queries, size_t k) {
  std::vector<size_t> results;
  MOCEMG_RETURN_NOT_OK(PumpBatch(
      queries.size(),
      [&](size_t i) { return SubmitClassify(queries[i], k); },
      [&](uint64_t t) { return TakeLabel(t); }, &results));
  return results;
}

Status QueryServer::Start() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  if (impl_->running) return Status::OK();
  impl_->stopping = false;
  impl_->running = true;
  impl_->worker = std::thread([impl = impl_.get()] { impl->WorkerLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    if (!impl_->running) return;
    impl_->stopping = true;
  }
  impl_->cv_work.notify_all();
  impl_->worker.join();
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->running = false;
    impl_->stopping = false;
  }
}

void QueryServer::NoteSnapshotLoad(bool loaded_from_snapshot) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  ++impl_->counters.snapshot_loads;
  if (!loaded_from_snapshot) ++impl_->counters.snapshot_fallbacks;
}

QueryServerStats QueryServer::stats() const {
  std::unique_lock<std::mutex> lock(impl_->mu);
  QueryServerStats out = impl_->counters;
  const KernelDispatchInfo kinfo = GetKernelDispatchInfo();
  out.kernel_backend = kinfo.active;
  out.cpu_features = kinfo.cpu_features;
  return out;
}

uint64_t RetryAfterMicros(const Status& status) {
  static const char kTag[] = "retry_after_us=";
  const std::string& msg = status.message();
  const size_t at = msg.find(kTag);
  if (at == std::string::npos) return 0;
  uint64_t value = 0;
  for (size_t i = at + sizeof(kTag) - 1; i < msg.size(); ++i) {
    const char c = msg[i];
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

JitteredBackoff::JitteredBackoff(const BackoffOptions& options)
    : opts_(options), rng_(options.seed), base_us_(options.initial_us) {}

uint64_t JitteredBackoff::NextDelayUs() {
  const double base = static_cast<double>(base_us_);
  const double jitter = opts_.jitter;
  // Uniform in [base·(1−j), base·(1+j)], at least 1µs so a sleep
  // always happens and the schedule stays strictly ordered.
  const double lo = base * (1.0 - jitter);
  const double hi = base * (1.0 + jitter);
  const double drawn = jitter > 0.0 ? rng_.Uniform(lo, hi) : base;
  const double next = base * opts_.multiplier;
  base_us_ = next >= static_cast<double>(opts_.max_us)
                 ? opts_.max_us
                 : static_cast<uint64_t>(next);
  const double clamped = std::min(
      std::max(drawn, 1.0), static_cast<double>(opts_.max_us));
  return static_cast<uint64_t>(clamped);
}

void JitteredBackoff::Reset() { base_us_ = opts_.initial_us; }

Result<uint64_t> SubmitWithBackoff(QueryServer* server,
                                   std::vector<double> query, size_t k,
                                   bool classify,
                                   const BackoffOptions& backoff,
                                   const Clock* clock) {
  if (server == nullptr) {
    return Status::InvalidArgument("null server");
  }
  if (clock == nullptr) clock = SystemClock();
  JitteredBackoff schedule(backoff);
  Status last = Status::OK();
  const size_t attempts = std::max<size_t>(1, backoff.max_attempts);
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    Result<uint64_t> ticket =
        classify ? server->SubmitClassify(query, k)
                 : server->SubmitNearestNeighbors(query, k);
    if (ticket.ok()) return ticket;
    if (!ticket.status().IsOutOfRange()) return ticket.status();
    last = ticket.status();
    if (attempt + 1 == attempts) break;
    // Honour whichever is larger: the client's own schedule or the
    // server's observed-drain-rate hint.
    const uint64_t delay =
        std::max(schedule.NextDelayUs(), RetryAfterMicros(last));
    clock->SleepMicros(delay);
  }
  return last;
}

}  // namespace mocemg
