#include "db/sharded_index.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "util/distance_kernels.h"
#include "util/macros.h"
#include "util/top_k.h"

namespace mocemg {
namespace {

// Auto query-block size for the sharded batch grid — matches the
// single-index default (feature_index.cc) so a 1-shard sharded index
// forms literally the same blocks as FeatureIndex.
constexpr size_t kDefaultShardQueryBlock = 32;

void AccumulateShardStats(const IndexQueryStats& from,
                          IndexQueryStats* into) {
  into->distance_computations += from.distance_computations;
  into->partitions_visited += from.partitions_visited;
  into->partitions_pruned += from.partitions_pruned;
  into->coarse_computations += from.coarse_computations;
  into->coarse_pruned += from.coarse_pruned;
  into->f32_scans += from.f32_scans;
  into->f32_refined += from.f32_refined;
}

}  // namespace

Result<ShardedFeatureIndex> ShardedFeatureIndex::Build(
    const MotionDatabase* database, const ShardedIndexOptions& options) {
  if (database == nullptr) {
    return Status::InvalidArgument("null database");
  }
  ShardedFeatureIndex index;
  index.database_ = database;
  index.options_ = options;
  MOCEMG_RETURN_NOT_OK(index.Rebuild());
  return index;
}

Status ShardedFeatureIndex::Rebuild() {
  if (database_ == nullptr || database_->empty()) {
    return Status::FailedPrecondition("database is empty");
  }
  // Same resolve-and-store contract as FeatureIndex::Rebuild: shards
  // pack (and snapshots persist) a concrete f64/f32, never "default".
  options_.index.exact_precision =
      ResolveExactPrecision(options_.index.exact_precision);
  MOCEMG_ASSIGN_OR_RETURN(IndexLayout layout,
                          ComputeIndexLayout(*database_, options_.index));
  const size_t num_parts = layout.members.size();
  if (num_parts >= std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("partition count overflows the shard map");
  }
  size_t num_shards = options_.num_shards;
  if (num_shards == 0) {
    num_shards = std::max<size_t>(1, std::min<size_t>(4, num_parts));
  }
  const size_t n = database_->size();
  const size_t d = database_->feature_dimension();
  record_to_partition_.assign(n, 0);
  for (size_t p = 0; p < num_parts; ++p) {
    for (size_t rec : layout.members[p]) {
      record_to_partition_[rec] = static_cast<uint32_t>(p);
    }
  }
  global_references_ = std::move(layout.references);
  // Shard s owns global partitions {p : p mod N == s} in ascending
  // order — a pure function of (partition id, shard count), so the
  // snapshot manifest never has to store the mapping.
  shards_.assign(num_shards, IndexPartitionSet{});
  for (size_t s = 0; s < num_shards; ++s) {
    Matrix refs(0, d);
    std::vector<std::vector<size_t>> members;
    for (size_t p = s; p < num_parts; p += num_shards) {
      MOCEMG_RETURN_NOT_OK(
          refs.AppendRows(global_references_.RowSlice(p, p + 1)));
      members.push_back(layout.members[p]);
    }
    MOCEMG_RETURN_NOT_OK(
        shards_[s].Pack(*database_, refs, members, options_.index));
  }
  shard_epochs_.assign(num_shards, database_->epoch());
  applied_epoch_ = database_->epoch();
  return Status::OK();
}

Status ShardedFeatureIndex::ApplyUpdate(size_t record_index) {
  if (database_ == nullptr || shards_.empty()) {
    return Status::FailedPrecondition("index is not built");
  }
  if (database_->size() != record_to_partition_.size()) {
    return Status::FailedPrecondition(
        "the record set changed since the last Rebuild; ApplyUpdate only "
        "absorbs UpdateFeature mutations — call Rebuild()");
  }
  if (record_index >= record_to_partition_.size()) {
    return Status::InvalidArgument("record index out of range");
  }
  if (database_->epoch() != applied_epoch_ + 1) {
    return Status::FailedPrecondition(
        "ApplyUpdate must run once, in order, after each UpdateFeature "
        "(database epoch " + std::to_string(database_->epoch()) +
        ", last applied " + std::to_string(applied_epoch_) + ")");
  }
  const size_t p = record_to_partition_[record_index];
  const size_t shard = p % shards_.size();
  const size_t local = p / shards_.size();
  MOCEMG_RETURN_NOT_OK(
      shards_[shard].RefreshPartition(*database_, local, options_.index));
  applied_epoch_ = database_->epoch();
  shard_epochs_[shard] = applied_epoch_;
  return Status::OK();
}

Status ShardedFeatureIndex::ValidateQuery(const std::vector<double>& query,
                                          size_t k) const {
  if (database_ == nullptr || shards_.empty()) {
    return Status::FailedPrecondition("index is not built");
  }
  if (database_->epoch() != applied_epoch_) {
    return Status::FailedPrecondition(
        "index is stale: the database mutated (epoch " +
        std::to_string(database_->epoch()) + ") past the last applied "
        "epoch " + std::to_string(applied_epoch_) +
        "; call ApplyUpdate() or Rebuild()");
  }
  if (query.size() != database_->feature_dimension()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  for (double v : query) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "query feature contains a non-finite value");
    }
  }
  return Status::OK();
}

Result<std::vector<QueryHit>> ShardedFeatureIndex::NearestNeighbors(
    const std::vector<double>& query, size_t k, IndexQueryStats* stats,
    std::vector<IndexQueryStats>* per_shard) const {
  MOCEMG_RETURN_NOT_OK(ValidateQuery(query, k));
  const size_t kk = std::min(k, database_->size());
  const double q_sq = SquaredNorm(query.data(), query.size());
  const size_t num_shards = shards_.size();
  std::vector<std::vector<TopKEntry>> lists(num_shards);
  std::vector<IndexQueryStats> shard_stats(num_shards);
  IndexPartitionSet::Scratch scratch;
  for (size_t s = 0; s < num_shards; ++s) {
    scratch.top.Reset(kk);
    shards_[s].ScanExact(query, q_sq, &scratch.top, &scratch,
                         &shard_stats[s]);
    scratch.top.ExtractSorted(&lists[s]);
  }
  BoundedTopK merged(kk);
  MergeSortedTopK(lists, &merged);
  std::vector<TopKEntry> entries;
  merged.ExtractSorted(&entries);
  std::vector<QueryHit> out(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    out[i].record_index = entries[i].second;
    out[i].distance = std::sqrt(entries[i].first);
  }
  if (stats != nullptr) {
    IndexQueryStats total;
    for (const IndexQueryStats& s : shard_stats) {
      total.distance_computations += s.distance_computations;
      total.partitions_visited += s.partitions_visited;
      total.partitions_pruned += s.partitions_pruned;
      total.coarse_computations += s.coarse_computations;
      total.coarse_pruned += s.coarse_pruned;
      total.f32_scans += s.f32_scans;
      total.f32_refined += s.f32_refined;
    }
    *stats = total;
  }
  if (per_shard != nullptr) *per_shard = std::move(shard_stats);
  return out;
}

Result<std::vector<std::vector<QueryHit>>>
ShardedFeatureIndex::BatchNearestNeighbors(
    const std::vector<std::vector<double>>& queries, size_t k,
    IndexQueryStats* stats, std::vector<IndexQueryStats>* per_shard,
    const ParallelOptions* parallel_override) const {
  for (size_t q = 0; q < queries.size(); ++q) {
    Status st = ValidateQuery(queries[q], k);
    if (!st.ok()) {
      return st.WithContext("while answering batch query " +
                            std::to_string(q));
    }
  }
  const size_t num_shards = shards_.size();
  const size_t nq = queries.size();
  const size_t kk = std::min(k, database_->size());
  const size_t dim = database_->feature_dimension();
  const ParallelOptions& parallel =
      parallel_override != nullptr ? *parallel_override
                                   : options_.index.parallel;
  // Scatter: one task per (query-block × shard) cell. The batch is cut
  // into fixed consecutive query blocks — a pure function of (query
  // count, query_block), independent of the thread chunking — and each
  // cell runs one shard's lockstep block scan into per-query heaps.
  // Every cell writes only its own (query, shard) list slots, so the
  // grid parallelizes freely; the per-query gather below runs in fixed
  // shard order, keeping results and stats thread-invariant.
  size_t qb = options_.index.query_block != 0 ? options_.index.query_block
                                              : kDefaultShardQueryBlock;
  qb = std::max<size_t>(1, std::min(qb, std::max<size_t>(nq, 1)));
  const size_t num_blocks = (nq + qb - 1) / qb;
  const size_t cells = num_blocks * num_shards;
  std::vector<std::vector<TopKEntry>> lists(nq * num_shards);
  std::vector<IndexQueryStats> cell_stats(cells);
  std::vector<double> packed(nq * dim);
  std::vector<double> q_sq(nq);
  for (size_t q = 0; q < nq; ++q) {
    std::memcpy(packed.data() + q * dim, queries[q].data(),
                dim * sizeof(double));
    q_sq[q] = SquaredNorm(queries[q].data(), queries[q].size());
  }
  ParallelOptions cell_parallel = parallel;
  cell_parallel.grain = 1;
  Status st = ParallelFor(
      cells,
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        IndexPartitionSet::BlockScratch bs;
        std::vector<BoundedTopK> tops(qb);
        for (size_t cell = begin; cell < end; ++cell) {
          const size_t blk = cell / num_shards;
          const size_t s = cell % num_shards;
          const size_t q0 = blk * qb;
          const size_t bq = std::min(qb, nq - q0);
          for (size_t i = 0; i < bq; ++i) tops[i].Reset(kk);
          shards_[s].ScanExactBlock(packed.data() + q0 * dim,
                                    q_sq.data() + q0, bq, dim, tops.data(),
                                    &bs, &cell_stats[cell]);
          for (size_t i = 0; i < bq; ++i) {
            tops[i].ExtractSorted(&lists[(q0 + i) * num_shards + s]);
          }
        }
        return Status::OK();
      },
      cell_parallel);
  MOCEMG_RETURN_NOT_OK(st);
  // Gather: merge each query's shard lists in shard order.
  std::vector<std::vector<QueryHit>> results(nq);
  std::vector<std::vector<TopKEntry>> row(num_shards);
  BoundedTopK merged;
  std::vector<TopKEntry> entries;
  for (size_t q = 0; q < nq; ++q) {
    for (size_t s = 0; s < num_shards; ++s) {
      row[s] = std::move(lists[q * num_shards + s]);
    }
    merged.Reset(kk);
    MergeSortedTopK(row, &merged);
    merged.ExtractSorted(&entries);
    results[q].resize(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      results[q][i].record_index = entries[i].second;
      results[q][i].distance = std::sqrt(entries[i].first);
    }
  }
  // Stats fold in fixed (block, shard) cell order — identical at any
  // thread count, and (all counters being integer sums of per-query
  // contributions) identical to the per-query fold at any block size.
  if (stats != nullptr || per_shard != nullptr) {
    IndexQueryStats total;
    std::vector<IndexQueryStats> by_shard(num_shards);
    for (size_t cell = 0; cell < cells; ++cell) {
      AccumulateShardStats(cell_stats[cell], &total);
      AccumulateShardStats(cell_stats[cell], &by_shard[cell % num_shards]);
    }
    if (stats != nullptr) *stats = total;
    if (per_shard != nullptr) *per_shard = std::move(by_shard);
  }
  return results;
}

Result<std::vector<std::vector<QueryHit>>>
ShardedFeatureIndex::BatchCoarseNearestNeighbors(
    const std::vector<std::vector<double>>& queries, size_t k,
    std::vector<double>* error_bounds, IndexQueryStats* stats,
    std::vector<IndexQueryStats>* per_shard,
    const ParallelOptions* parallel_override) const {
  for (size_t q = 0; q < queries.size(); ++q) {
    Status st = ValidateQuery(queries[q], k);
    if (!st.ok()) {
      return st.WithContext("while answering batch query " +
                            std::to_string(q));
    }
  }
  const size_t num_shards = shards_.size();
  const size_t nq = queries.size();
  const size_t kk = std::min(k, database_->size());
  const size_t dim = database_->feature_dimension();
  const ParallelOptions& parallel =
      parallel_override != nullptr ? *parallel_override
                                   : options_.index.parallel;
  size_t qb = options_.index.query_block != 0 ? options_.index.query_block
                                              : kDefaultShardQueryBlock;
  qb = std::max<size_t>(1, std::min(qb, std::max<size_t>(nq, 1)));
  const size_t num_blocks = (nq + qb - 1) / qb;
  const size_t cells = num_blocks * num_shards;
  std::vector<std::vector<TopKEntry>> lists(nq * num_shards);
  std::vector<IndexQueryStats> cell_stats(cells);
  // Per-(query, shard) certified bounds, shard-major so each cell's
  // query-block slice is contiguous; the per-query bound maxes across
  // shards afterwards, exactly like the per-query scatter-gather.
  std::vector<double> shard_bounds(num_shards * nq, 0.0);
  std::vector<double> packed(nq * dim);
  std::vector<double> q_sq(nq);
  for (size_t q = 0; q < nq; ++q) {
    std::memcpy(packed.data() + q * dim, queries[q].data(),
                dim * sizeof(double));
    q_sq[q] = SquaredNorm(queries[q].data(), queries[q].size());
  }
  ParallelOptions cell_parallel = parallel;
  cell_parallel.grain = 1;
  Status st = ParallelFor(
      cells,
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        IndexPartitionSet::BlockScratch bs;
        std::vector<BoundedTopK> tops(qb);
        for (size_t cell = begin; cell < end; ++cell) {
          const size_t blk = cell / num_shards;
          const size_t s = cell % num_shards;
          const size_t q0 = blk * qb;
          const size_t bq = std::min(qb, nq - q0);
          for (size_t i = 0; i < bq; ++i) tops[i].Reset(kk);
          shards_[s].ScanCoarseBlock(packed.data() + q0 * dim,
                                     q_sq.data() + q0, bq, dim,
                                     tops.data(),
                                     shard_bounds.data() + s * nq + q0,
                                     &bs, &cell_stats[cell]);
          for (size_t i = 0; i < bq; ++i) {
            tops[i].ExtractSorted(&lists[(q0 + i) * num_shards + s]);
          }
        }
        return Status::OK();
      },
      cell_parallel);
  MOCEMG_RETURN_NOT_OK(st);
  std::vector<std::vector<QueryHit>> results(nq);
  if (error_bounds != nullptr) error_bounds->assign(nq, 0.0);
  std::vector<std::vector<TopKEntry>> row(num_shards);
  BoundedTopK merged;
  std::vector<TopKEntry> entries;
  for (size_t q = 0; q < nq; ++q) {
    for (size_t s = 0; s < num_shards; ++s) {
      row[s] = std::move(lists[q * num_shards + s]);
    }
    merged.Reset(kk);
    MergeSortedTopK(row, &merged);
    merged.ExtractSorted(&entries);
    results[q].resize(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      results[q][i].record_index = entries[i].second;
      results[q][i].distance = entries[i].first;  // distance space
    }
    if (error_bounds != nullptr) {
      double bound = 0.0;
      for (size_t s = 0; s < num_shards; ++s) {
        bound = std::max(bound, shard_bounds[s * nq + q]);
      }
      (*error_bounds)[q] = bound;
    }
  }
  if (stats != nullptr || per_shard != nullptr) {
    IndexQueryStats total;
    std::vector<IndexQueryStats> by_shard(num_shards);
    for (size_t cell = 0; cell < cells; ++cell) {
      AccumulateShardStats(cell_stats[cell], &total);
      AccumulateShardStats(cell_stats[cell], &by_shard[cell % num_shards]);
    }
    if (stats != nullptr) *stats = total;
    if (per_shard != nullptr) *per_shard = std::move(by_shard);
  }
  return results;
}

Result<std::vector<QueryHit>> ShardedFeatureIndex::CoarseNearestNeighbors(
    const std::vector<double>& query, size_t k, double* error_bound,
    IndexQueryStats* stats, std::vector<IndexQueryStats>* per_shard) const {
  MOCEMG_RETURN_NOT_OK(ValidateQuery(query, k));
  const size_t kk = std::min(k, database_->size());
  const double q_sq = SquaredNorm(query.data(), query.size());
  const size_t num_shards = shards_.size();
  std::vector<std::vector<TopKEntry>> lists(num_shards);
  std::vector<IndexQueryStats> shard_stats(num_shards);
  // The coarse scan has no cross-shard pruning (every row is scored),
  // so the per-shard bound maxes to exactly the single-set bound.
  double bound = 0.0;
  BoundedTopK top;
  for (size_t s = 0; s < num_shards; ++s) {
    top.Reset(kk);
    double shard_bound = 0.0;
    shards_[s].ScanCoarse(query, q_sq, &top, &shard_bound,
                          &shard_stats[s]);
    bound = std::max(bound, shard_bound);
    top.ExtractSorted(&lists[s]);
  }
  BoundedTopK merged(kk);
  MergeSortedTopK(lists, &merged);
  std::vector<TopKEntry> entries;
  merged.ExtractSorted(&entries);
  std::vector<QueryHit> out(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    out[i].record_index = entries[i].second;
    out[i].distance = entries[i].first;  // already in distance space
  }
  if (error_bound != nullptr) *error_bound = bound;
  if (stats != nullptr) {
    IndexQueryStats total;
    for (const IndexQueryStats& s : shard_stats) {
      total.distance_computations += s.distance_computations;
      total.partitions_visited += s.partitions_visited;
      total.partitions_pruned += s.partitions_pruned;
      total.coarse_computations += s.coarse_computations;
      total.coarse_pruned += s.coarse_pruned;
      total.f32_scans += s.f32_scans;
      total.f32_refined += s.f32_refined;
    }
    *stats = total;
  }
  if (per_shard != nullptr) *per_shard = std::move(shard_stats);
  return out;
}

Result<size_t> ShardedFeatureIndex::ShardOfRecord(size_t record_index) const {
  if (shards_.empty()) {
    return Status::FailedPrecondition("index is not built");
  }
  if (record_index >= record_to_partition_.size()) {
    return Status::InvalidArgument("record index out of range");
  }
  return static_cast<size_t>(record_to_partition_[record_index]) %
         shards_.size();
}

bool ShardedFeatureIndex::ShardAllBeyond(size_t shard,
                                         const std::vector<double>& query,
                                         double kth) const {
  if (shard >= shards_.size()) return false;
  return shards_[shard].AllBeyond(query, kth);
}

size_t ShardedFeatureIndex::num_partitions() const {
  size_t total = 0;
  for (const IndexPartitionSet& s : shards_) total += s.num_partitions();
  return total;
}

bool ShardedFeatureIndex::has_quantized_tier() const {
  for (const IndexPartitionSet& s : shards_) {
    if (s.has_quantized_tier()) return true;
  }
  return false;
}

}  // namespace mocemg
