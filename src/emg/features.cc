#include "emg/features.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace mocemg {

double IntegralOfAbsoluteValue(const double* samples, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += std::fabs(samples[i]);
  return sum;
}

double IntegralOfAbsoluteValue(const std::vector<double>& samples) {
  return IntegralOfAbsoluteValue(samples.data(), samples.size());
}

double MeanAbsoluteValue(const double* samples, size_t n) {
  if (n == 0) return 0.0;
  return IntegralOfAbsoluteValue(samples, n) / static_cast<double>(n);
}

double RootMeanSquare(const double* samples, size_t n) {
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += samples[i] * samples[i];
  return std::sqrt(sum / static_cast<double>(n));
}

double WaveformLength(const double* samples, size_t n) {
  double sum = 0.0;
  for (size_t i = 1; i < n; ++i) {
    sum += std::fabs(samples[i] - samples[i - 1]);
  }
  return sum;
}

size_t ZeroCrossings(const double* samples, size_t n, double threshold) {
  size_t count = 0;
  for (size_t i = 1; i < n; ++i) {
    const bool sign_change = (samples[i] > 0.0 && samples[i - 1] < 0.0) ||
                             (samples[i] < 0.0 && samples[i - 1] > 0.0);
    if (sign_change &&
        std::fabs(samples[i] - samples[i - 1]) >= threshold) {
      ++count;
    }
  }
  return count;
}

size_t SlopeSignChanges(const double* samples, size_t n, double threshold) {
  size_t count = 0;
  for (size_t i = 1; i + 1 < n; ++i) {
    const double d1 = samples[i] - samples[i - 1];
    const double d2 = samples[i] - samples[i + 1];
    if (d1 * d2 > 0.0 &&
        (std::fabs(d1) >= threshold || std::fabs(d2) >= threshold)) {
      ++count;
    }
  }
  return count;
}

size_t WillisonAmplitude(const double* samples, size_t n,
                         double threshold) {
  size_t count = 0;
  for (size_t i = 1; i < n; ++i) {
    if (std::fabs(samples[i] - samples[i - 1]) > threshold) ++count;
  }
  return count;
}

Result<std::vector<double>> EmgHistogram(const double* samples, size_t n,
                                         size_t bins, double lo,
                                         double hi) {
  if (bins == 0) return Status::InvalidArgument("histogram needs bins > 0");
  if (lo >= hi) return Status::InvalidArgument("histogram needs lo < hi");
  std::vector<double> counts(bins, 0.0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (size_t i = 0; i < n; ++i) {
    double b = (samples[i] - lo) / width;
    const ptrdiff_t idx = std::clamp<ptrdiff_t>(
        static_cast<ptrdiff_t>(std::floor(b)), 0,
        static_cast<ptrdiff_t>(bins) - 1);
    counts[static_cast<size_t>(idx)] += 1.0;
  }
  return counts;
}

Result<std::vector<double>> BurgArCoefficients(const double* samples,
                                               size_t n, size_t order) {
  if (order == 0) return Status::InvalidArgument("AR order must be > 0");
  if (n <= order) {
    return Status::InvalidArgument(
        "AR(" + std::to_string(order) + ") needs more than " +
        std::to_string(order) + " samples, got " + std::to_string(n));
  }
  // Burg recursion. f/b are the forward/backward prediction errors.
  std::vector<double> f(samples, samples + n);
  std::vector<double> b(samples, samples + n);
  std::vector<double> a(order, 0.0);
  double dk = 0.0;
  for (size_t i = 0; i < n; ++i) dk += 2.0 * samples[i] * samples[i];
  dk -= samples[0] * samples[0] + samples[n - 1] * samples[n - 1];
  if (dk <= 0.0) {
    return Status::NumericalError("zero-energy signal in Burg AR fit");
  }
  std::vector<double> a_prev(order, 0.0);
  for (size_t k = 0; k < order; ++k) {
    double num = 0.0;
    for (size_t i = k + 1; i < n; ++i) num += f[i] * b[i - k - 1];
    const double mu = 2.0 * num / dk;
    // Levinson update of the coefficient vector.
    a_prev.assign(a.begin(), a.end());
    a[k] = mu;
    for (size_t i = 0; i < k; ++i) a[i] = a_prev[i] - mu * a_prev[k - 1 - i];
    // Update prediction errors.
    for (size_t i = n - 1; i > k; --i) {
      const double f_old = f[i];
      const double b_old = b[i - k - 1];
      f[i] = f_old - mu * b_old;
      b[i - k - 1] = b_old - mu * f_old;
    }
    dk = (1.0 - mu * mu) * dk - f[k + 1] * f[k + 1] -
         b[n - 2 - k] * b[n - 2 - k];
    if (dk <= 0.0) break;  // perfectly predicted; remaining coeffs zero
  }
  return a;
}

const char* EmgFeatureKindName(EmgFeatureKind kind) {
  switch (kind) {
    case EmgFeatureKind::kIav:
      return "iav";
    case EmgFeatureKind::kMav:
      return "mav";
    case EmgFeatureKind::kRms:
      return "rms";
    case EmgFeatureKind::kWaveformLength:
      return "wl";
    case EmgFeatureKind::kZeroCrossings:
      return "zc";
    case EmgFeatureKind::kAr4:
      return "ar4";
  }
  return "?";
}

size_t EmgFeatureWidth(EmgFeatureKind kind) {
  return kind == EmgFeatureKind::kAr4 ? 4 : 1;
}

Status ExtractEmgFeatureInto(EmgFeatureKind kind, const double* samples,
                             size_t n, double* out) {
  if (n == 0) return Status::InvalidArgument("empty feature window");
  switch (kind) {
    case EmgFeatureKind::kIav:
      out[0] = IntegralOfAbsoluteValue(samples, n);
      return Status::OK();
    case EmgFeatureKind::kMav:
      out[0] = MeanAbsoluteValue(samples, n);
      return Status::OK();
    case EmgFeatureKind::kRms:
      out[0] = RootMeanSquare(samples, n);
      return Status::OK();
    case EmgFeatureKind::kWaveformLength:
      out[0] = WaveformLength(samples, n);
      return Status::OK();
    case EmgFeatureKind::kZeroCrossings:
      out[0] = static_cast<double>(ZeroCrossings(samples, n));
      return Status::OK();
    case EmgFeatureKind::kAr4: {
      // Burg allocates its recursion buffers; AR(4) is an ablation
      // path, not the paper default, so it stays off the zero-alloc
      // fast path.
      auto ar = BurgArCoefficients(samples, n, 4);
      if (!ar.ok()) {
        // Flat windows (e.g. rest periods of rectified EMG) carry no AR
        // structure; degrade to zeros rather than failing the pipeline.
        std::fill(out, out + 4, 0.0);
        return Status::OK();
      }
      std::copy(ar->begin(), ar->end(), out);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown EMG feature kind");
}

Result<std::vector<double>> ExtractEmgFeature(EmgFeatureKind kind,
                                              const double* samples,
                                              size_t n) {
  std::vector<double> out(EmgFeatureWidth(kind), 0.0);
  MOCEMG_RETURN_NOT_OK(ExtractEmgFeatureInto(kind, samples, n, out.data()));
  return out;
}

bool EmgFeatureSupportsIncremental(EmgFeatureKind kind) {
  return kind != EmgFeatureKind::kAr4;
}

namespace {

// The exact predicate ZeroCrossings applies at threshold 0 (the value
// ExtractEmgFeatureInto uses): a strict sign change whose swing is a
// comparable number. Mirrored here so add and remove cancel exactly.
inline bool PairCrossesZero(double a, double b) {
  const bool sign_change = (b > 0.0 && a < 0.0) || (b < 0.0 && a > 0.0);
  return sign_change && std::fabs(b - a) >= 0.0;
}

}  // namespace

void EmgWindowSums::Reset() {
  sum_abs = 0.0;
  sum_sq = 0.0;
  waveform_length = 0.0;
  zero_crossings = 0;
}

void EmgWindowSums::AddTailSample(double x) {
  sum_abs += std::fabs(x);
  sum_sq += x * x;
}

void EmgWindowSums::AddTailSample(double x, double prev) {
  AddTailSample(x);
  waveform_length += std::fabs(x - prev);
  if (PairCrossesZero(prev, x)) ++zero_crossings;
}

void EmgWindowSums::RemoveHeadSample(double x, double next) {
  sum_abs -= std::fabs(x);
  sum_sq -= x * x;
  waveform_length -= std::fabs(next - x);
  if (PairCrossesZero(x, next)) --zero_crossings;
}

void EmgWindowSums::Recompute(const double* samples, size_t begin,
                              size_t end) {
  Reset();
  for (size_t i = begin; i < end; ++i) {
    if (i > begin) {
      AddTailSample(samples[i], samples[i - 1]);
    } else {
      AddTailSample(samples[i]);
    }
  }
}

void EmgWindowSums::Slide(const double* samples, size_t old_begin,
                          size_t old_end, size_t new_begin,
                          size_t new_end) {
  if (new_begin >= old_end) {
    // Disjoint windows (hop >= window): nothing carries over.
    Recompute(samples, new_begin, new_end);
    return;
  }
  // Scalars: the old window owns [old_begin, old_end), the new one
  // [new_begin, new_end); with overlap the difference is two ranges.
  for (size_t i = old_begin; i < new_begin; ++i) {
    sum_abs -= std::fabs(samples[i]);
    sum_sq -= samples[i] * samples[i];
  }
  for (size_t i = old_end; i < new_end; ++i) {
    sum_abs += std::fabs(samples[i]);
    sum_sq += samples[i] * samples[i];
  }
  // Pairs (i−1, i): owned for i in (begin, end), so the leaving set is
  // i in [old_begin+1, new_begin+1) and the entering set is
  // i in [max(old_end, new_begin+1), new_end).
  for (size_t i = old_begin + 1; i < new_begin + 1; ++i) {
    waveform_length -= std::fabs(samples[i] - samples[i - 1]);
    if (PairCrossesZero(samples[i - 1], samples[i])) --zero_crossings;
  }
  for (size_t i = std::max(old_end, new_begin + 1); i < new_end; ++i) {
    waveform_length += std::fabs(samples[i] - samples[i - 1]);
    if (PairCrossesZero(samples[i - 1], samples[i])) ++zero_crossings;
  }
}

Status EmgWindowSums::Emit(EmgFeatureKind kind, size_t n,
                           double* out) const {
  if (n == 0) return Status::InvalidArgument("empty feature window");
  switch (kind) {
    case EmgFeatureKind::kIav:
      out[0] = sum_abs;
      return Status::OK();
    case EmgFeatureKind::kMav:
      out[0] = sum_abs / static_cast<double>(n);
      return Status::OK();
    case EmgFeatureKind::kRms:
      // Removal round-off can drive a near-zero running Σx² a hair
      // negative; clamp so the sqrt stays real.
      out[0] = std::sqrt(std::max(sum_sq, 0.0) / static_cast<double>(n));
      return Status::OK();
    case EmgFeatureKind::kWaveformLength:
      out[0] = waveform_length;
      return Status::OK();
    case EmgFeatureKind::kZeroCrossings:
      out[0] = static_cast<double>(zero_crossings);
      return Status::OK();
    case EmgFeatureKind::kAr4:
      break;
  }
  return Status::InvalidArgument(
      std::string("no incremental form for EMG feature '") +
      EmgFeatureKindName(kind) + "'");
}

}  // namespace mocemg
