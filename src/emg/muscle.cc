#include "emg/muscle.h"

#include "util/string_util.h"

namespace mocemg {

const char* MuscleName(Muscle muscle) {
  switch (muscle) {
    case Muscle::kBiceps:
      return "biceps";
    case Muscle::kTriceps:
      return "triceps";
    case Muscle::kUpperForearm:
      return "upper_forearm";
    case Muscle::kLowerForearm:
      return "lower_forearm";
    case Muscle::kFrontShin:
      return "front_shin";
    case Muscle::kBackShin:
      return "back_shin";
    case Muscle::kNumMuscles:
      break;
  }
  return "?";
}

Result<Muscle> MuscleFromName(const std::string& name) {
  for (int i = 0; i < static_cast<int>(Muscle::kNumMuscles); ++i) {
    const Muscle m = static_cast<Muscle>(i);
    if (EqualsIgnoreCase(name, MuscleName(m))) return m;
  }
  return Status::NotFound("unknown muscle '" + name + "'");
}

const std::vector<Muscle>& LimbMuscles(Limb limb) {
  static const std::vector<Muscle> kHandMuscles = {
      Muscle::kBiceps, Muscle::kTriceps, Muscle::kUpperForearm,
      Muscle::kLowerForearm};
  static const std::vector<Muscle> kLegMuscles = {Muscle::kFrontShin,
                                                  Muscle::kBackShin};
  return limb == Limb::kRightHand ? kHandMuscles : kLegMuscles;
}

}  // namespace mocemg
