/// \file acquisition.h
/// \brief The Myomonitor-equivalent signal-conditioning chain (Section 5
/// of the paper): amplified raw EMG is band-pass filtered 20–450 Hz,
/// full-wave rectified, and down-sampled from 1000 Hz to the mocap frame
/// rate (120 Hz) so both streams share a time base.

#ifndef MOCEMG_EMG_ACQUISITION_H_
#define MOCEMG_EMG_ACQUISITION_H_

#include "emg/emg_recording.h"
#include "util/result.h"

namespace mocemg {

/// \brief Parameters of the conditioning chain; defaults match the
/// paper's Delsys configuration.
struct AcquisitionOptions {
  double band_low_hz = 20.0;
  double band_high_hz = 450.0;
  /// Butterworth order per band edge (the cascade is HP·LP).
  int filter_order = 4;
  /// Output rate after down-sampling; the Vicon frame rate.
  double output_rate_hz = 120.0;
  /// Power-line notch frequency (Hz); 0 disables. The paper's Delsys
  /// front end suppressed mains hum in hardware; rigs without that need
  /// 50 or 60 here.
  double notch_hz = 0.0;
  /// Q of the notch (bandwidth = center/Q).
  double notch_q = 30.0;
  /// Skip the band-pass (for already-conditioned inputs).
  bool skip_bandpass = false;
};

/// \brief Applies band-pass → full-wave rectification → resampling to
/// every channel of a raw recording. The result is a *conditioned*
/// recording at `output_rate_hz` whose samples are non-negative envelope
/// values in volts — the exact stream the paper's feature extraction
/// (IAV) consumes.
Result<EmgRecording> ConditionRecording(const EmgRecording& raw,
                                        const AcquisitionOptions& options = {});

}  // namespace mocemg

#endif  // MOCEMG_EMG_ACQUISITION_H_
