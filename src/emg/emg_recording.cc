#include "emg/emg_recording.h"

#include <cmath>

#include "util/macros.h"

namespace mocemg {

Result<EmgRecording> EmgRecording::Create(
    std::vector<Muscle> muscles,
    std::vector<std::vector<double>> channels, double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) {
    return Status::InvalidArgument("sample rate must be positive");
  }
  if (muscles.size() != channels.size()) {
    return Status::InvalidArgument(
        std::to_string(muscles.size()) + " muscle labels for " +
        std::to_string(channels.size()) + " channels");
  }
  for (size_t i = 1; i < channels.size(); ++i) {
    if (channels[i].size() != channels[0].size()) {
      return Status::InvalidArgument(
          "channel " + std::to_string(i) + " has " +
          std::to_string(channels[i].size()) + " samples, expected " +
          std::to_string(channels[0].size()));
    }
  }
  EmgRecording rec;
  rec.muscles_ = std::move(muscles);
  rec.channels_ = std::move(channels);
  rec.sample_rate_hz_ = sample_rate_hz;
  return rec;
}

Result<const std::vector<double>*> EmgRecording::ChannelForMuscle(
    Muscle muscle) const {
  MOCEMG_ASSIGN_OR_RETURN(size_t idx, IndexOf(muscle));
  return &channels_[idx];
}

Result<size_t> EmgRecording::IndexOf(Muscle muscle) const {
  for (size_t i = 0; i < muscles_.size(); ++i) {
    if (muscles_[i] == muscle) return i;
  }
  return Status::NotFound(std::string("muscle '") + MuscleName(muscle) +
                          "' not instrumented");
}

Result<EmgRecording> EmgRecording::SampleSlice(size_t begin,
                                               size_t end) const {
  if (begin > end || end > num_samples()) {
    return Status::OutOfRange("sample slice outside recording");
  }
  std::vector<std::vector<double>> sliced;
  sliced.reserve(channels_.size());
  for (const auto& ch : channels_) {
    sliced.emplace_back(ch.begin() + static_cast<ptrdiff_t>(begin),
                        ch.begin() + static_cast<ptrdiff_t>(end));
  }
  return Create(muscles_, std::move(sliced), sample_rate_hz_);
}

Status EmgRecording::Validate() const {
  if (num_samples() == 0) {
    return Status::FailedPrecondition("recording has no samples");
  }
  for (const auto& ch : channels_) {
    if (ch.size() != channels_[0].size()) {
      return Status::FailedPrecondition("ragged channel lengths");
    }
    for (double v : ch) {
      if (!std::isfinite(v)) {
        return Status::NumericalError("non-finite EMG sample");
      }
    }
  }
  return Status::OK();
}

}  // namespace mocemg
