/// \file emg_io.h
/// \brief CSV exchange format for EMG recordings (hand-rolled, matching
/// the delimited-text exports of Myomonitor-class systems).
///
/// Layout: comment lines carry metadata, a header row names the channels
/// by muscle, and each data row is one sample across channels:
///   # sample_rate_hz=1000
///   biceps,triceps,upper_forearm,lower_forearm
///   1.2e-05,3.4e-06,...
/// The sample-rate comment is mandatory on read.

#ifndef MOCEMG_EMG_EMG_IO_H_
#define MOCEMG_EMG_EMG_IO_H_

#include <string>

#include "emg/emg_recording.h"
#include "util/result.h"

namespace mocemg {

/// \brief Parses the CSV exchange format into a recording.
Result<EmgRecording> ParseEmgCsv(const std::string& text);

/// \brief Reads and parses an EMG CSV file.
Result<EmgRecording> ReadEmgCsvFile(const std::string& path);

/// \brief Serializes a recording to the CSV exchange format.
std::string WriteEmgCsv(const EmgRecording& recording);

/// \brief Writes a recording to a CSV file.
Status WriteEmgCsvFile(const EmgRecording& recording,
                       const std::string& path);

}  // namespace mocemg

#endif  // MOCEMG_EMG_EMG_IO_H_
