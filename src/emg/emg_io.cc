#include "emg/emg_io.h"

#include <cmath>
#include <sstream>

#include "util/csv.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace mocemg {
namespace {

constexpr char kRateKey[] = "sample_rate_hz=";

}  // namespace

Result<EmgRecording> ParseEmgCsv(const std::string& text) {
  // Extract the sample-rate comment before handing off to the CSV parser
  // (which skips comments).
  double sample_rate = -1.0;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      const std::string_view t = Trim(line);
      if (t.empty()) continue;
      if (t.front() != '#') break;
      const size_t pos = t.find(kRateKey);
      if (pos != std::string_view::npos) {
        MOCEMG_ASSIGN_OR_RETURN(
            sample_rate, ParseDouble(t.substr(pos + sizeof(kRateKey) - 1)));
      }
    }
  }
  if (!std::isfinite(sample_rate) || sample_rate <= 0.0) {
    return Status::ParseError(
        "EMG CSV must carry a '# sample_rate_hz=<rate>' comment with a "
        "positive finite rate");
  }

  MOCEMG_ASSIGN_OR_RETURN(CsvTable table, CsvTable::FromString(text));
  if (table.header().empty()) {
    return Status::ParseError("EMG CSV missing channel header");
  }
  std::vector<Muscle> muscles;
  for (const std::string& name : table.header()) {
    MOCEMG_ASSIGN_OR_RETURN(Muscle m,
                            MuscleFromName(std::string(Trim(name))));
    muscles.push_back(m);
  }
  MOCEMG_ASSIGN_OR_RETURN(auto numeric, table.ToNumeric());
  std::vector<std::vector<double>> channels(muscles.size());
  for (auto& ch : channels) ch.reserve(numeric.size());
  for (size_t r = 0; r < numeric.size(); ++r) {
    if (numeric[r].size() != muscles.size()) {
      return Status::ParseError(
          "row " + std::to_string(r) + " has " +
          std::to_string(numeric[r].size()) + " fields, expected " +
          std::to_string(muscles.size()) + " (truncated recording?)");
    }
    for (size_t c = 0; c < muscles.size(); ++c) {
      if (!std::isfinite(numeric[r][c])) {
        return Status::ParseError(
            "non-finite sample in row " + std::to_string(r) +
            ", channel '" + table.header()[c] +
            "'; amplifier faults must be repaired upstream, not "
            "serialized as NaN");
      }
      channels[c].push_back(numeric[r][c]);
    }
  }
  return EmgRecording::Create(std::move(muscles), std::move(channels),
                              sample_rate);
}

Result<EmgRecording> ReadEmgCsvFile(const std::string& path) {
  MOCEMG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  auto result = ParseEmgCsv(text);
  if (!result.ok()) {
    return result.status().WithContext("while parsing '" + path + "'");
  }
  return result;
}

std::string WriteEmgCsv(const EmgRecording& recording) {
  CsvWriter w;
  w.WriteComment(std::string(kRateKey) +
                 FormatDouble(recording.sample_rate_hz(), 6));
  std::vector<std::string> header;
  for (Muscle m : recording.muscles()) header.emplace_back(MuscleName(m));
  w.WriteRow(header);
  const size_t n = recording.num_samples();
  std::vector<double> row(recording.num_channels());
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < recording.num_channels(); ++c) {
      row[c] = recording.channel(c)[i];
    }
    w.WriteNumericRow(row, 10);
  }
  return w.str();
}

Status WriteEmgCsvFile(const EmgRecording& recording,
                       const std::string& path) {
  return WriteStringToFile(path, WriteEmgCsv(recording));
}

}  // namespace mocemg
