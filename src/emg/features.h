/// \file features.h
/// \brief Time-domain EMG features. The paper's primary feature is the
/// Integral of Absolute Value (IAV, Eq. 1); the related-work section
/// surveys the classic alternatives (zero crossings [7], EMG histogram
/// [15], AR coefficients [5]); all are implemented here so the ablation
/// bench (abl5) can compare them inside the same pipeline.
///
/// All extractors operate on one channel's samples within one window and
/// return scalar(s); the core pipeline concatenates them per channel.

#ifndef MOCEMG_EMG_FEATURES_H_
#define MOCEMG_EMG_FEATURES_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Integral of Absolute Value (Eq. 1): Σ|x_k| over the window.
/// On the conditioned (already rectified, non-negative) stream this is
/// the plain sum, exactly as the paper computes it.
double IntegralOfAbsoluteValue(const double* samples, size_t n);
double IntegralOfAbsoluteValue(const std::vector<double>& samples);

/// \brief Mean Absolute Value: IAV / n.
double MeanAbsoluteValue(const double* samples, size_t n);

/// \brief Root mean square.
double RootMeanSquare(const double* samples, size_t n);

/// \brief Waveform length: Σ|x_{k+1} − x_k|.
double WaveformLength(const double* samples, size_t n);

/// \brief Zero crossings with a noise dead-band `threshold` (Hudgins).
/// Counts sign changes where the swing exceeds the threshold.
size_t ZeroCrossings(const double* samples, size_t n,
                     double threshold = 0.0);

/// \brief Slope sign changes with dead-band `threshold` (Hudgins).
size_t SlopeSignChanges(const double* samples, size_t n,
                        double threshold = 0.0);

/// \brief Willison amplitude: count of |x_{k+1} − x_k| > threshold.
size_t WillisonAmplitude(const double* samples, size_t n, double threshold);

/// \brief EMG histogram (Zardoshti-Kermani): `bins` counts of samples in
/// equal-width bins spanning [lo, hi]; samples outside are clamped into
/// the edge bins. Fails if bins == 0 or lo >= hi.
Result<std::vector<double>> EmgHistogram(const double* samples, size_t n,
                                         size_t bins, double lo, double hi);

/// \brief Autoregressive model coefficients of order `order` via Burg's
/// method (Graupe's AR feature). Returns `order` coefficients a_1..a_p of
/// x_k ≈ Σ a_i x_{k−i}. Fails when n <= order or the signal has no
/// energy.
Result<std::vector<double>> BurgArCoefficients(const double* samples,
                                               size_t n, size_t order);

/// \brief Named selector used by the ablation bench to swap the EMG
/// feature family while keeping the rest of the pipeline fixed.
enum class EmgFeatureKind : int {
  kIav = 0,
  kMav,
  kRms,
  kWaveformLength,
  kZeroCrossings,
  kAr4,
};

const char* EmgFeatureKindName(EmgFeatureKind kind);

/// \brief Number of values ExtractEmgFeature produces per channel
/// window (1 for the scalar features, 4 for AR(4)).
size_t EmgFeatureWidth(EmgFeatureKind kind);

/// \brief Extracts the chosen feature(s) for one channel window; scalar
/// features return one value, AR(4) returns four.
Result<std::vector<double>> ExtractEmgFeature(EmgFeatureKind kind,
                                              const double* samples,
                                              size_t n);

/// \brief Allocation-free variant for hot loops: writes exactly
/// EmgFeatureWidth(kind) values into `out`. Identical values to
/// ExtractEmgFeature.
Status ExtractEmgFeatureInto(EmgFeatureKind kind, const double* samples,
                             size_t n, double* out);

}  // namespace mocemg

#endif  // MOCEMG_EMG_FEATURES_H_
