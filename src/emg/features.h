/// \file features.h
/// \brief Time-domain EMG features. The paper's primary feature is the
/// Integral of Absolute Value (IAV, Eq. 1); the related-work section
/// surveys the classic alternatives (zero crossings [7], EMG histogram
/// [15], AR coefficients [5]); all are implemented here so the ablation
/// bench (abl5) can compare them inside the same pipeline.
///
/// All extractors operate on one channel's samples within one window and
/// return scalar(s); the core pipeline concatenates them per channel.

#ifndef MOCEMG_EMG_FEATURES_H_
#define MOCEMG_EMG_FEATURES_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Integral of Absolute Value (Eq. 1): Σ|x_k| over the window.
/// On the conditioned (already rectified, non-negative) stream this is
/// the plain sum, exactly as the paper computes it.
double IntegralOfAbsoluteValue(const double* samples, size_t n);
double IntegralOfAbsoluteValue(const std::vector<double>& samples);

/// \brief Mean Absolute Value: IAV / n.
double MeanAbsoluteValue(const double* samples, size_t n);

/// \brief Root mean square.
double RootMeanSquare(const double* samples, size_t n);

/// \brief Waveform length: Σ|x_{k+1} − x_k|.
double WaveformLength(const double* samples, size_t n);

/// \brief Zero crossings with a noise dead-band `threshold` (Hudgins).
/// Counts sign changes where the swing exceeds the threshold.
size_t ZeroCrossings(const double* samples, size_t n,
                     double threshold = 0.0);

/// \brief Slope sign changes with dead-band `threshold` (Hudgins).
size_t SlopeSignChanges(const double* samples, size_t n,
                        double threshold = 0.0);

/// \brief Willison amplitude: count of |x_{k+1} − x_k| > threshold.
size_t WillisonAmplitude(const double* samples, size_t n, double threshold);

/// \brief EMG histogram (Zardoshti-Kermani): `bins` counts of samples in
/// equal-width bins spanning [lo, hi]; samples outside are clamped into
/// the edge bins. Fails if bins == 0 or lo >= hi.
Result<std::vector<double>> EmgHistogram(const double* samples, size_t n,
                                         size_t bins, double lo, double hi);

/// \brief Autoregressive model coefficients of order `order` via Burg's
/// method (Graupe's AR feature). Returns `order` coefficients a_1..a_p of
/// x_k ≈ Σ a_i x_{k−i}. Fails when n <= order or the signal has no
/// energy.
Result<std::vector<double>> BurgArCoefficients(const double* samples,
                                               size_t n, size_t order);

/// \brief Named selector used by the ablation bench to swap the EMG
/// feature family while keeping the rest of the pipeline fixed.
enum class EmgFeatureKind : int {
  kIav = 0,
  kMav,
  kRms,
  kWaveformLength,
  kZeroCrossings,
  kAr4,
};

const char* EmgFeatureKindName(EmgFeatureKind kind);

/// \brief Number of values ExtractEmgFeature produces per channel
/// window (1 for the scalar features, 4 for AR(4)).
size_t EmgFeatureWidth(EmgFeatureKind kind);

/// \brief Extracts the chosen feature(s) for one channel window; scalar
/// features return one value, AR(4) returns four.
Result<std::vector<double>> ExtractEmgFeature(EmgFeatureKind kind,
                                              const double* samples,
                                              size_t n);

/// \brief Allocation-free variant for hot loops: writes exactly
/// EmgFeatureWidth(kind) values into `out`. Identical values to
/// ExtractEmgFeature.
Status ExtractEmgFeatureInto(EmgFeatureKind kind, const double* samples,
                             size_t n, double* out);

/// \brief True for kinds EmgWindowSums can emit — every scalar
/// time-domain feature. AR(4) has no O(hop) update (Burg's recursion is
/// inherently whole-window) and keeps the exact path.
bool EmgFeatureSupportsIncremental(EmgFeatureKind kind);

/// \brief O(hop) sliding-window state for the scalar time-domain
/// features: running Σ|x|, Σx², Σ|Δx| and the sign-change count over
/// one channel's current window. Sliding updates touch only the samples
/// (and sample pairs) entering or leaving the window, so IAV, MAV, RMS,
/// waveform length, and zero crossings update in O(hop) instead of
/// O(window). The zero-crossing count is integer-exact; the float sums
/// accumulate round-off relative to a fresh pass, which callers bound
/// with a periodic Recompute (see core/incremental_window.h for the
/// drift contract).
///
/// Pair bookkeeping convention: the window [begin, end) owns the
/// consecutive-sample pairs (i−1, i) for i in (begin, end) — exactly
/// the pairs WaveformLength and ZeroCrossings visit.
struct EmgWindowSums {
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  double waveform_length = 0.0;
  size_t zero_crossings = 0;

  void Reset();

  /// Exact recomputation over samples[begin, end) — the drift-bounding
  /// refresh and the seed for the first window of a run.
  void Recompute(const double* samples, size_t begin, size_t end);

  /// Slides from window [old_begin, old_end) to [new_begin, new_end)
  /// over the same sample stream, removing and adding only the
  /// difference. Requires forward motion (new_begin >= old_begin,
  /// new_end >= old_end); callers handle disjoint windows by calling
  /// Recompute instead (Slide degrades to exactly that internally when
  /// the spans do not overlap).
  void Slide(const double* samples, size_t old_begin, size_t old_end,
             size_t new_begin, size_t new_end);

  /// Appends sample x at the tail of the window. The two-argument form
  /// also adds the (prev, x) pair; the one-argument form is for the
  /// very first sample of the window (no pair yet). Streaming callers
  /// (core/streaming.h) use these as frames arrive.
  void AddTailSample(double x);
  void AddTailSample(double x, double prev);

  /// Removes the head sample x and its (x, next) pair — the inverse of
  /// the tail pushes, applied when the window start advances by one.
  void RemoveHeadSample(double x, double next);

  /// Writes the EmgFeatureWidth(kind) value(s) of the maintained window
  /// (of length n) into `out`. Fails with kInvalidArgument for kinds
  /// without an incremental form (see EmgFeatureSupportsIncremental).
  Status Emit(EmgFeatureKind kind, size_t n, double* out) const;
};

}  // namespace mocemg

#endif  // MOCEMG_EMG_FEATURES_H_
