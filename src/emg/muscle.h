/// \file muscle.h
/// \brief Electrode placement model: the muscles the paper instruments.
/// Four electrodes per arm (biceps, triceps, upper forearm, lower
/// forearm), two per leg (front shin / tibialis anterior, back shin /
/// gastrocnemius).

#ifndef MOCEMG_EMG_MUSCLE_H_
#define MOCEMG_EMG_MUSCLE_H_

#include <string>
#include <vector>

#include "mocap/skeleton.h"
#include "util/result.h"

namespace mocemg {

/// \brief Instrumented muscle sites.
enum class Muscle : int {
  kBiceps = 0,
  kTriceps,
  kUpperForearm,
  kLowerForearm,
  kFrontShin,
  kBackShin,
  kNumMuscles,
};

/// \brief Stable lower-case name ("biceps", "front_shin", …).
const char* MuscleName(Muscle muscle);

/// \brief Parses a muscle name (case-insensitive); NotFound on miss.
Result<Muscle> MuscleFromName(const std::string& name);

/// \brief Electrode set of a limb, in the paper's order (hand: biceps,
/// triceps, upper forearm, lower forearm; leg: front shin, back shin).
const std::vector<Muscle>& LimbMuscles(Limb limb);

}  // namespace mocemg

#endif  // MOCEMG_EMG_MUSCLE_H_
