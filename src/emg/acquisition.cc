#include "emg/acquisition.h"

#include "signal/butterworth.h"
#include "signal/rectify.h"
#include "signal/resample.h"
#include "util/macros.h"

namespace mocemg {

Result<EmgRecording> ConditionRecording(const EmgRecording& raw,
                                        const AcquisitionOptions& options) {
  MOCEMG_RETURN_NOT_OK(raw.Validate());
  if (options.output_rate_hz <= 0.0) {
    return Status::InvalidArgument("output rate must be positive");
  }
  const double fs = raw.sample_rate_hz();
  if (!options.skip_bandpass && options.band_high_hz >= fs / 2.0) {
    return Status::InvalidArgument(
        "band-pass upper edge " + std::to_string(options.band_high_hz) +
        " Hz must be below Nyquist of the raw rate " + std::to_string(fs));
  }

  std::vector<std::vector<double>> conditioned;
  conditioned.reserve(raw.num_channels());
  for (size_t c = 0; c < raw.num_channels(); ++c) {
    std::vector<double> x = raw.channel(c);
    if (options.notch_hz > 0.0) {
      MOCEMG_ASSIGN_OR_RETURN(
          BiquadCascade notch,
          DesignNotch(options.notch_hz, options.notch_q, fs));
      x = notch.ProcessSignal(x);
    }
    if (!options.skip_bandpass) {
      MOCEMG_ASSIGN_OR_RETURN(
          BiquadCascade bp,
          DesignBandPass(options.filter_order, options.band_low_hz,
                         options.band_high_hz, fs));
      x = bp.ProcessSignal(x);
    }
    x = FullWaveRectify(x);
    MOCEMG_ASSIGN_OR_RETURN(x, Resample(x, fs, options.output_rate_hz));
    // Rectified signals stay non-negative through an ideal resampler, but
    // the anti-alias filter can ring slightly below zero; clamp.
    for (double& v : x) {
      if (v < 0.0) v = 0.0;
    }
    conditioned.push_back(std::move(x));
  }
  return EmgRecording::Create(raw.muscles(), std::move(conditioned),
                              options.output_rate_hz);
}

}  // namespace mocemg
