#include "emg/acquisition.h"

#include <algorithm>
#include <cmath>

#include "signal/butterworth.h"
#include "signal/rectify.h"
#include "signal/resample.h"
#include "util/macros.h"

namespace mocemg {

Result<EmgRecording> ConditionRecording(const EmgRecording& raw,
                                        const AcquisitionOptions& options) {
  MOCEMG_RETURN_NOT_OK(raw.Validate());
  if (options.output_rate_hz <= 0.0) {
    return Status::InvalidArgument("output rate must be positive");
  }
  const double fs = raw.sample_rate_hz();
  if (!options.skip_bandpass) {
    if (options.band_low_hz < 0.0 ||
        options.band_low_hz >= options.band_high_hz) {
      return Status::InvalidArgument(
          "band-pass edges [" + std::to_string(options.band_low_hz) +
          ", " + std::to_string(options.band_high_hz) +
          "] Hz must satisfy 0 <= low < high");
    }
    if (options.band_high_hz >= fs / 2.0) {
      return Status::InvalidArgument(
          "band-pass upper edge " + std::to_string(options.band_high_hz) +
          " Hz is at or above the Nyquist frequency " +
          std::to_string(fs / 2.0) + " Hz of the " + std::to_string(fs) +
          " Hz raw rate: content there is already aliased and cannot "
          "be recovered by filtering");
    }
  }
  if (options.notch_hz > 0.0 && options.notch_hz >= fs / 2.0) {
    return Status::InvalidArgument(
        "notch frequency " + std::to_string(options.notch_hz) +
        " Hz is at or above the Nyquist frequency " +
        std::to_string(fs / 2.0) +
        " Hz: power-line hum at that rate aliases to a different "
        "frequency and the notch would dig into clean signal instead");
  }

  std::vector<std::vector<double>> conditioned;
  conditioned.reserve(raw.num_channels());
  for (size_t c = 0; c < raw.num_channels(); ++c) {
    std::vector<double> x = raw.channel(c);
    if (options.notch_hz > 0.0) {
      MOCEMG_ASSIGN_OR_RETURN(
          BiquadCascade notch,
          DesignNotch(options.notch_hz, options.notch_q, fs));
      // Warm-start: the notch's startup transient decays with time
      // constant Q/(π·f0) and would otherwise bleed hum into the first
      // feature windows. Prepend whole seconds copied from the signal
      // start — an integer number of hum cycles for any whole-Hz line
      // frequency, so the hum phase is continuous at the junction and
      // the resonator state settles on the true phasor.
      const size_t needed = static_cast<size_t>(
          4.0 * options.notch_q * fs / (M_PI * options.notch_hz));
      const size_t block = static_cast<size_t>(std::lround(fs));
      size_t warm = 0;
      if (block > 0 && x.size() >= block) {
        const size_t blocks =
            std::min((needed + block - 1) / block, x.size() / block);
        warm = blocks * block;
      }
      std::vector<double> padded;
      padded.reserve(warm + x.size());
      padded.insert(padded.end(), x.begin(),
                    x.begin() + static_cast<ptrdiff_t>(warm));
      padded.insert(padded.end(), x.begin(), x.end());
      padded = notch.ProcessSignal(padded);
      x.assign(padded.begin() + static_cast<ptrdiff_t>(warm),
               padded.end());
    }
    if (!options.skip_bandpass) {
      MOCEMG_ASSIGN_OR_RETURN(
          BiquadCascade bp,
          DesignBandPass(options.filter_order, options.band_low_hz,
                         options.band_high_hz, fs));
      x = bp.ProcessSignal(x);
    }
    x = FullWaveRectify(x);
    MOCEMG_ASSIGN_OR_RETURN(x, Resample(x, fs, options.output_rate_hz));
    // Rectified signals stay non-negative through an ideal resampler, but
    // the anti-alias filter can ring slightly below zero; clamp.
    for (double& v : x) {
      if (v < 0.0) v = 0.0;
    }
    conditioned.push_back(std::move(x));
  }
  return EmgRecording::Create(raw.muscles(), std::move(conditioned),
                              options.output_rate_hz);
}

}  // namespace mocemg
