/// \file emg_recording.h
/// \brief Multi-channel EMG container. A recording is either "raw" (as
/// sampled by the amplifier, 1000 Hz, signed volts) or "conditioned"
/// (band-passed, full-wave rectified, resampled to the mocap frame rate)
/// — the AcquisitionChain in acquisition.h performs that conversion.

#ifndef MOCEMG_EMG_EMG_RECORDING_H_
#define MOCEMG_EMG_EMG_RECORDING_H_

#include <string>
#include <vector>

#include "emg/muscle.h"
#include "util/result.h"

namespace mocemg {

/// \brief A synchronous multi-channel EMG capture.
class EmgRecording {
 public:
  EmgRecording() = default;

  /// \brief Wraps channel data; all channels must be equal length and
  /// match the number of muscle labels.
  static Result<EmgRecording> Create(std::vector<Muscle> muscles,
                                     std::vector<std::vector<double>> channels,
                                     double sample_rate_hz);

  const std::vector<Muscle>& muscles() const { return muscles_; }
  size_t num_channels() const { return channels_.size(); }
  size_t num_samples() const {
    return channels_.empty() ? 0 : channels_[0].size();
  }
  double sample_rate_hz() const { return sample_rate_hz_; }
  double duration_seconds() const {
    return num_samples() == 0
               ? 0.0
               : static_cast<double>(num_samples()) / sample_rate_hz_;
  }

  /// \brief Samples of channel `i` (volts).
  const std::vector<double>& channel(size_t i) const { return channels_[i]; }
  std::vector<double>& mutable_channel(size_t i) { return channels_[i]; }

  /// \brief Channel for a given muscle; NotFound if not instrumented.
  Result<const std::vector<double>*> ChannelForMuscle(Muscle muscle) const;

  /// \brief Index of a muscle's channel; NotFound if not instrumented.
  Result<size_t> IndexOf(Muscle muscle) const;

  /// \brief Sub-recording of samples [begin, end) on all channels.
  Result<EmgRecording> SampleSlice(size_t begin, size_t end) const;

  /// \brief Sanity checks: finite samples, equal channel lengths.
  Status Validate() const;

 private:
  std::vector<Muscle> muscles_;
  std::vector<std::vector<double>> channels_;
  double sample_rate_hz_ = 1000.0;
};

}  // namespace mocemg

#endif  // MOCEMG_EMG_EMG_RECORDING_H_
